//! A concurrent library application: many clients lending, returning,
//! and querying books at once — the workload the paper's introduction
//! motivates ("collaborative XML document processing").
//!
//! Deadlock victims retry with fresh transactions, the standard pattern
//! for 2PL systems.
//!
//! ```sh
//! cargo run --release --example concurrent_library
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use xtc::core::{InsertPos, IsolationLevel, XtcConfig, XtcDb, XtcError};
use xtc::tamix::{bib, BibConfig};

fn main() {
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 5,
        ..XtcConfig::default()
    }));
    let cfg = BibConfig {
        books: 40,
        topics: 4,
        persons: 20,
        ..BibConfig::scaled()
    };
    bib::generate_into(&db, &cfg);
    println!(
        "library loaded: {} nodes, {} books",
        db.store().node_count(),
        cfg.books
    );

    let lends = Arc::new(AtomicU64::new(0));
    let queries = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for client in 0..8u64 {
        let db = db.clone();
        let (lends, queries, retries) = (lends.clone(), queries.clone(), retries.clone());
        let books = cfg.books;
        handles.push(std::thread::spawn(move || {
            let mut state = client.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut rand = move |m: u64| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % m
            };
            for _ in 0..50 {
                let book_id = format!("b{}", rand(books as u64));
                if rand(2) == 0 {
                    // Query: read the book's details.
                    if with_retries(&db, &retries, |txn| {
                        let Some(book) = txn.element_by_id(&book_id)? else {
                            return Ok(());
                        };
                        let _ = txn.attributes(&book)?;
                        let _ = txn.subtree(&book)?;
                        Ok(())
                    }) {
                        queries.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    // Lend: append a lend record to the history.
                    let person = format!("p{}", rand(20));
                    if with_retries(&db, &retries, |txn| {
                        let Some(book) = txn.element_by_id(&book_id)? else {
                            return Ok(());
                        };
                        let Some(history) = txn.last_child(&book)? else {
                            return Ok(());
                        };
                        let lend =
                            txn.insert_element(&history, InsertPos::LastChild, "lend")?;
                        txn.set_attribute(&lend, "person", &person)?;
                        txn.set_attribute(&lend, "return", "2006-09-15")?;
                        Ok(())
                    }) {
                        lends.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let dl = db.lock_table().deadlocks();
    println!(
        "done: {} queries, {} lends, {} retries, {} deadlocks resolved \
         ({} conversion-caused)",
        queries.load(Ordering::Relaxed),
        lends.load(Ordering::Relaxed),
        retries.load(Ordering::Relaxed),
        dl.total(),
        dl.conversion_caused(),
    );
    assert_eq!(db.lock_table().granted_count(), 0, "no locks leaked");
}

/// Runs `body` in a fresh transaction, retrying on deadlock aborts.
fn with_retries(
    db: &XtcDb,
    retries: &AtomicU64,
    body: impl Fn(&xtc::core::Transaction<'_>) -> Result<(), XtcError>,
) -> bool {
    for _ in 0..10 {
        let txn = db.begin();
        match body(&txn) {
            Ok(()) => {
                if txn.commit().is_ok() {
                    return true;
                }
            }
            Err(e) if e.is_retryable() => {
                txn.abort();
                retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            Err(_) => {
                txn.abort();
                return false;
            }
        }
    }
    false
}
