//! Declarative access over the navigational model (§6): path
//! expressions evaluated under the lock protocol, and SPLID structural
//! joins combining index streams without touching the document.
//!
//! ```sh
//! cargo run --release --example declarative_queries
//! ```

use xtc::core::{IsolationLevel, XtcConfig, XtcDb};
use xtc::query::{join, PathExpr};
use xtc::tamix::{bib, BibConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 5,
        ..XtcConfig::default()
    });
    let cfg = BibConfig {
        books: 30,
        topics: 3,
        ..BibConfig::scaled()
    };
    bib::generate_into(&db, &cfg);

    let txn = db.begin();

    // Path expressions: every step locks through the protocol.
    for path in [
        "/bib/topics/topic[@id='t1']/book[1]/title",
        "//book[@year='1995']/title",
        "//topic[2]/book/@id",
    ] {
        let expr = PathExpr::parse(path)?;
        match expr.eval_values(&txn)? {
            xtc::query::QueryValue::Nodes(nodes) => {
                println!("{path}");
                for n in &nodes {
                    println!("    {n}  {:?}", txn.element_text(n)?);
                }
            }
            xtc::query::QueryValue::Strings(values) => {
                println!("{path}\n    {values:?}");
            }
        }
    }

    // Structural joins: combine element-index streams by SPLID arithmetic
    // alone — no document access at all.
    let topics = txn.elements_named("topic")?;
    let lends = txn.elements_named("lend")?;
    let pairs = join::ancestor_descendant(&topics, &lends);
    println!(
        "\nstructural join: {} (topic, lend) pairs from {} topics x {} lends",
        pairs.len(),
        topics.len(),
        lends.len()
    );
    let in_first_topic = join::contained_in(&topics[..1], &lends);
    println!(
        "semi-join: {} lends inside topic {}",
        in_first_topic.len(),
        topics[0]
    );

    println!("\nlocks held during the query transaction: {}", txn.held_locks());
    txn.commit()?;
    Ok(())
}
