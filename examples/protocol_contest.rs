//! A miniature re-run of the paper's contest: CLUSTER1 throughput for one
//! representative of each protocol group, plus the CLUSTER2 deletion
//! experiment — in under a minute.
//!
//! ```sh
//! cargo run --release --example protocol_contest
//! ```
//!
//! For the full sweeps behind Figures 7–11 use the `fig7`…`fig11`
//! binaries in `crates/bench` (see EXPERIMENTS.md).

use std::time::Duration;
use xtc::core::{IsolationLevel, XtcConfig, XtcDb};
use xtc::tamix::{bib as bibgen, run_cluster1, run_cluster2, BibConfig, TamixParams};

fn main() {
    let bib = BibConfig::scaled();
    let contestants = ["Node2PLa", "URIX", "taDOM3+"];

    println!("CLUSTER1 (72 active transactions, repeatable read, lock depth 4):\n");
    println!(
        "{:>10} {:>10} {:>9} {:>10} {:>12} {:>14}",
        "protocol", "committed", "aborted", "deadlocks", "conversions", "lock requests"
    );
    for proto in contestants {
        let mut params = TamixParams::cluster1(proto, IsolationLevel::Repeatable, 4);
        params.duration = Duration::from_millis(2000);
        let r = run_cluster1(&params, &bib);
        println!(
            "{:>10} {:>10} {:>9} {:>10} {:>12} {:>14}",
            r.protocol,
            r.committed(),
            r.aborted(),
            r.deadlocks,
            r.conversion_deadlocks,
            r.lock_requests
        );
        // §4.1 metric: min/avg/max duration per transaction type.
        for (name, stats) in &r.per_type {
            println!(
                "{:>22} min {:>6?}  avg {:>6?}  max {:>6?}",
                name,
                stats.min(),
                stats.avg(),
                stats.max()
            );
        }
    }

    println!("\nCLUSTER2 (single TAdelBook, repeatable read):\n");
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "protocol", "time [µs]", "lock requests", "page reads"
    );
    for proto in ["Node2PL", "NO2PL", "OO2PL", "Node2PLa", "URIX", "taDOM3+"] {
        let r = run_cluster2(proto, &bib, 2);
        println!(
            "{:>10} {:>12} {:>14} {:>12}",
            r.protocol,
            r.duration.as_micros(),
            r.lock_requests,
            r.page_reads
        );
    }
    // Per-mode lock-request histogram for one TAqueryBook under taDOM3+ —
    // the §4.1 lock-manager metric.
    let db = XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        ..XtcConfig::default()
    });
    bibgen::generate_into(&db, &bib);
    {
        let txn = db.begin();
        let book = txn.element_by_id("b0").unwrap().unwrap();
        let _ = txn.subtree(&book).unwrap();
        txn.commit().unwrap();
    }
    println!("\nlock requests by mode for one book read under taDOM3+:");
    for (family, mode, count) in db.lock_table().requests_by_mode() {
        println!("    {family:>8} {mode:>5} {count:>6}");
    }

    println!(
        "\nExpected shapes (paper §5): taDOM* > MGL* > *-2PL in CLUSTER1\n\
         throughput; the plain *-2PL group pays roughly double in CLUSTER2\n\
         (IDX location steps through the node manager)."
    );
}
