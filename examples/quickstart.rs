//! Quickstart: open a database, load XML, and run transactions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xtc::core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An embedded XTC database: pick any of the paper's eleven lock
    // protocols by name — the winning group's taDOM3+ is the default.
    let db = XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        ..XtcConfig::default()
    });

    // Bulk-load a document (unlocked; do this before going concurrent).
    db.load_xml(
        r#"<bib>
             <book id="b1" year="2006"><title>Contest of XML Lock Protocols</title></book>
             <book id="b2" year="1993"><title>Transaction Processing</title></book>
           </bib>"#,
    )?;

    // A read transaction: direct jump via the ID index, then navigation.
    let txn = db.begin();
    let book = txn.element_by_id("b1")?.expect("b1 exists");
    println!("found   <{}> year={}",
        txn.name(&book)?.unwrap(),
        txn.attribute(&book, "year")?.unwrap());
    let title = txn.element_children(&book)?[0].clone();
    println!("title   {:?}", txn.element_text(&title)?);
    txn.commit()?;

    // A writer: insert a chapter, update it, then change our mind.
    let txn = db.begin();
    let book = txn.element_by_id("b2")?.unwrap();
    let chapter = txn.insert_element(&book, InsertPos::LastChild, "chapter")?;
    txn.insert_text(&chapter, InsertPos::LastChild, "draft text")?;
    txn.set_attribute(&chapter, "num", "1")?;
    txn.abort(); // rolls the whole thing back

    let txn = db.begin();
    let book = txn.element_by_id("b2")?.unwrap();
    println!(
        "after abort, b2 has {} element children (unchanged)",
        txn.element_children(&book)?.len()
    );
    txn.commit()?;

    // Serialize the document back out.
    println!(
        "\n{}",
        xtc::node::serialize_subtree(db.store(), &xtc::splid::SplId::root())
    );
    Ok(())
}
