//! The four isolation levels of the experiments, demonstrated: what each
//! level lets a concurrent reader see while a writer is in flight
//! (§4.3, footnote 5).
//!
//! ```sh
//! cargo run --example isolation_levels
//! ```

use std::sync::Arc;
use xtc::core::{IsolationLevel, XtcConfig, XtcDb};

fn main() {
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        lock_timeout: std::time::Duration::from_millis(300),
        ..XtcConfig::default()
    }));
    db.load_xml(r#"<bib><book id="b1"><title>Original</title></book></bib>"#)
        .unwrap();

    // A writer updates the title and stays open (uncommitted).
    let writer = db.begin();
    let book = writer.element_by_id("b1").unwrap().unwrap();
    let title = writer.element_children(&book).unwrap()[0].clone();
    let text = writer.first_child(&title).unwrap().unwrap();
    writer.update_text(&text, "Dirty draft").unwrap();
    println!("writer holds an uncommitted update: \"Dirty draft\"\n");

    for iso in [
        IsolationLevel::None,
        IsolationLevel::Uncommitted,
        IsolationLevel::Committed,
        IsolationLevel::Repeatable,
    ] {
        let reader = db.begin_with(iso, 4);
        let seen = reader.text_content(&text);
        match seen {
            Ok(v) => println!(
                "reader at {:<12} sees {:?} (held locks afterwards: {})",
                iso.name(),
                v.unwrap_or_default(),
                reader.held_locks()
            ),
            Err(e) => println!(
                "reader at {:<12} blocks on the writer's X lock -> {e}",
                iso.name()
            ),
        }
        reader.abort();
    }

    writer.abort();
    let check = db.begin();
    println!(
        "\nafter the writer aborts, the title is {:?} again",
        check.text_content(&text).unwrap().unwrap()
    );
    check.commit().unwrap();
}
