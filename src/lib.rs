//! Umbrella crate for the xtc-rs workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can use a single dependency. Library users normally
//! depend on [`xtc_core`] directly.

pub use xtc_core as core;
pub use xtc_lock as lock;
pub use xtc_node as node;
pub use xtc_obs as obs;
pub use xtc_protocols as protocols;
pub use xtc_query as query;
pub use xtc_repl as repl;
pub use xtc_server as server;
pub use xtc_splid as splid;
pub use xtc_storage as storage;
pub use xtc_tamix as tamix;
