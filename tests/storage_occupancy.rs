//! The §3.1 storage claim at document scale: "a very high degree of
//! storage occupancy (> 96%) for DOM trees is achieved for a variety of
//! different update workloads", plus the §3.2 SPLID size claim under
//! prefix compression.

use xtc::node::{DocStore, DocStoreConfig};
use xtc::tamix::{bib, BibConfig};

#[test]
fn bib_document_build_reaches_paper_occupancy() {
    let store = DocStore::new(DocStoreConfig::default());
    bib::generate(&store, &BibConfig::scaled());
    let rep = store.occupancy();
    assert!(
        rep.occupancy() > 0.9,
        "document-order build occupancy {:.3} below the paper's ballpark",
        rep.occupancy()
    );
}

#[test]
fn occupancy_survives_update_workloads() {
    use xtc::node::InsertPos;
    let store = DocStore::new(DocStoreConfig::default());
    let cfg = BibConfig::scaled();
    bib::generate(&store, &cfg);

    // An update mix: delete a third of the books, re-insert lends into
    // the remainder, rename topics.
    for b in (0..cfg.books).step_by(3) {
        let book = store.element_by_id(&format!("b{b}")).unwrap();
        store.delete_subtree(&book).unwrap();
    }
    for b in (1..cfg.books).step_by(3) {
        let book = store.element_by_id(&format!("b{b}")).unwrap();
        let history = store.element_children(&book).pop().unwrap();
        for i in 0..5 {
            let lend = store
                .insert_element(&history, InsertPos::LastChild, "lend")
                .unwrap();
            store
                .set_attribute(&lend, "person", &format!("p{i}"))
                .unwrap();
        }
    }
    for t in 0..cfg.topics {
        let topic = store.element_by_id(&format!("t{t}")).unwrap();
        store.rename_element(&topic, "subject").unwrap();
    }
    let rep = store.occupancy();
    assert!(
        rep.occupancy() > 0.6,
        "post-update occupancy {:.3} collapsed",
        rep.occupancy()
    );
    // Compression must survive churn too: deletes rebuild leaves (shifting
    // restart positions) and the re-inserted lends interleave with old
    // labels, yet stored SPLIDs stay within the paper's 2-3 byte claim.
    let per_key = rep.stored_bytes_per_key(store.node_count());
    assert!(
        per_key <= 3.0,
        "post-update stored bytes per SPLID {per_key:.2} left the 2-3 byte band"
    );
    assert!(
        rep.key_bytes_stored * 2 < rep.key_bytes_logical,
        "post-update front coding saves under 50%: {} stored vs {} logical",
        rep.key_bytes_stored,
        rep.key_bytes_logical
    );
}

#[test]
fn stored_splids_average_2_to_3_bytes_with_prefix_compression() {
    // §3.2: "storing a SPLID only consumed 2-3 bytes in the average"
    // thanks to document order + prefix compression. The measurement uses
    // dist = 2, the paper's recommendation for almost static documents —
    // larger gaps trade storage for insertion headroom (also §3.2).
    let store = DocStore::new(DocStoreConfig {
        dist: 2,
        ..DocStoreConfig::default()
    });
    bib::generate(&store, &BibConfig::scaled());
    let rep = store.occupancy();
    let per_key = rep.stored_bytes_per_key(store.node_count());
    assert!(
        per_key <= 3.0,
        "stored bytes per SPLID {per_key:.2} exceeds the paper's 2-3 byte claim"
    );
    // Front coding strips everything consecutive document-order labels
    // share (all but the tail division) — even at dist = 2, where raw keys
    // are already short, it must save well over half the logical bytes.
    // Measured: 1.27 B/key stored vs 5.05 B/key logical (74.9% saving).
    assert!(
        rep.key_bytes_stored * 2 < rep.key_bytes_logical,
        "front coding saves under 50%: {} stored vs {} logical",
        rep.key_bytes_stored,
        rep.key_bytes_logical
    );
}

#[test]
fn stored_splid_size_stays_in_band_across_dist_settings() {
    // §3.2: larger `dist` buys insertion headroom with bigger divisions —
    // the encoded labels grow, but front coding absorbs nearly all of it
    // because neighbours still share everything but the tail division.
    // Measured (scaled bib): dist 2 → 1.27 B/key, dist 4 → 1.43,
    // dist 16 → 2.00 — the whole sweep stays inside the 2-3 byte claim.
    for dist in [2u32, 4, 16] {
        let store = DocStore::new(DocStoreConfig {
            dist,
            ..DocStoreConfig::default()
        });
        bib::generate(&store, &BibConfig::scaled());
        let rep = store.occupancy();
        assert!(
            rep.occupancy() > 0.9,
            "dist {dist}: build occupancy {:.3} below the paper's ballpark",
            rep.occupancy()
        );
        let per_key = rep.stored_bytes_per_key(store.node_count());
        assert!(
            per_key <= 3.0,
            "dist {dist}: stored bytes per SPLID {per_key:.2} left the 2-3 byte band"
        );
        assert!(
            rep.key_bytes_stored * 2 < rep.key_bytes_logical,
            "dist {dist}: front coding saves under 50%: {} stored vs {} logical",
            rep.key_bytes_stored,
            rep.key_bytes_logical
        );
    }
}
