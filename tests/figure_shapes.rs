//! Smoke tests asserting the *shapes* of the paper's evaluation figures
//! at miniature scale (the full sweeps live in `crates/bench`). These are
//! deliberately coarse (who wins, roughly by how much) so they stay
//! robust across machines.

use std::time::Duration;
use xtc::core::IsolationLevel;
use xtc::tamix::{run_cluster1, run_cluster2, BibConfig, TamixParams};

fn params(protocol: &str, depth: u32) -> TamixParams {
    let mut p = TamixParams::cluster1(protocol, IsolationLevel::Repeatable, depth);
    p.duration = Duration::from_millis(800);
    p.wait_after_commit = Duration::from_millis(5);
    p.wait_after_operation = Duration::from_micros(500);
    p.initial_wait_max = Duration::from_millis(10);
    p
}

/// Figure 7 shape: *writer* throughput at a healthy depth beats the
/// document-lock edge (depth 0) under repeatable read. Readers share the
/// document lock just fine, so the depth effect shows in the writers —
/// and only once lock-hold times are non-trivial (think time per op).
#[test]
fn fig7_shape_depth_helps_repeatable() {
    let bib = BibConfig::tiny();
    let mut p0 = params("taDOM3+", 0);
    p0.wait_after_operation = Duration::from_millis(1);
    let mut p4 = params("taDOM3+", 4);
    p4.wait_after_operation = Duration::from_millis(1);
    let r0 = run_cluster1(&p0, &bib);
    let r4 = run_cluster1(&p4, &bib);
    let writers = |r: &xtc::tamix::RunReport| {
        r.committed() - r.committed_of(xtc::tamix::TxnKind::QueryBook)
    };
    assert!(
        writers(&r4) > writers(&r0),
        "depth 4 writers ({}) must beat depth 0 writers ({})",
        writers(&r4),
        writers(&r0)
    );
}

/// Figure 9 shape: the taDOM group beats the *-2PL representative at a
/// fine lock depth. Writers only, with per-op think time, so the signal
/// (Node2PLa's whole-level parent locks) survives a loaded machine.
#[test]
fn fig9_shape_tadom_beats_node2pla() {
    let bib = BibConfig::tiny();
    let mut pt = params("taDOM3+", 4);
    pt.wait_after_operation = Duration::from_millis(1);
    let mut ps = params("Node2PLa", 4);
    ps.wait_after_operation = Duration::from_millis(1);
    let tadom = run_cluster1(&pt, &bib);
    let star = run_cluster1(&ps, &bib);
    let writers = |r: &xtc::tamix::RunReport| {
        r.committed() - r.committed_of(xtc::tamix::TxnKind::QueryBook)
    };
    assert!(
        writers(&tadom) > writers(&star),
        "taDOM3+ writers ({}) must beat Node2PLa writers ({})",
        writers(&tadom),
        writers(&star)
    );
}

/// Figure 11 shape: the plain *-2PL group pays a clear premium for the
/// IDX location steps; intention protocols (incl. Node2PLa) do not.
///
/// The cost comparison runs on *virtual* time: CLUSTER2 charges the
/// simulated per-page-read latency to the virtual clock, so the numbers
/// are a deterministic function of the access pattern. (A wall-clock
/// `duration` comparison here flaked under a fully parallel test run —
/// scheduler noise could swamp a few hundred microseconds of spin.)
#[test]
fn fig11_shape_star2pl_pays_for_idx_scans() {
    let bib = BibConfig::tiny();
    let node2pl = run_cluster2("Node2PL", &bib, 2);
    let node2pla = run_cluster2("Node2PLa", &bib, 2);
    let tadom = run_cluster2("taDOM3+", &bib, 2);
    assert!(
        node2pl.page_reads as f64 > 1.2 * tadom.page_reads as f64,
        "Node2PL must re-read the subtree: {} vs {} page reads",
        node2pl.page_reads,
        tadom.page_reads
    );
    assert!(
        node2pla.page_reads < node2pl.page_reads,
        "intention locks spare Node2PLa the scan"
    );
    assert!(
        node2pl.vt.page_read_us as f64 > 1.2 * tadom.vt.page_read_us as f64,
        "simulated scan time must show up: {}us vs {}us of page reads",
        node2pl.vt.page_read_us,
        tadom.vt.page_read_us
    );
    assert!(
        node2pl.vt.protocol_cost_us() > tadom.vt.protocol_cost_us(),
        "total simulated protocol cost must favor taDOM: {}us vs {}us",
        node2pl.vt.protocol_cost_us(),
        tadom.vt.protocol_cost_us()
    );
}

/// Deadlock classification: CLUSTER1 deadlocks are predominantly
/// conversion-caused, as the paper's TaMix analysis reports.
///
/// A single short run sometimes produced ≤ 5 deadlocks, in which case
/// the old guard skipped the assertion silently — the test could go
/// green for months without checking anything. Now runs accumulate
/// across seeds until the sample is big enough, and an insufficient
/// sample fails loudly instead of silently passing.
#[test]
fn deadlocks_are_mostly_conversion_caused() {
    let bib = BibConfig::tiny();
    let mut deadlocks = 0u64;
    let mut conversion = 0u64;
    for seed in 0..4u64 {
        // Depth 1 on the tiny doc plus per-op think time produces
        // contention and lock conversions (read-then-write on the same
        // subtree escalating shared to exclusive).
        let mut p = params("taDOM2", 1);
        p.wait_after_operation = Duration::from_millis(1);
        p.seed = 42 + seed * 101;
        let r = run_cluster1(&p, &bib);
        deadlocks += r.deadlocks;
        conversion += r.conversion_deadlocks;
        if deadlocks > 5 {
            break;
        }
        eprintln!(
            "deadlocks_are_mostly_conversion_caused: {} deadlocks after seed {} — \
             sample too small, running another round",
            deadlocks, p.seed
        );
    }
    assert!(
        deadlocks > 5,
        "contention setup failed to produce a usable sample: only {deadlocks} deadlocks \
         across 4 seeded runs (check TamixParams contention knobs)"
    );
    assert!(
        conversion * 2 >= deadlocks,
        "expected conversion deadlocks to dominate: {conversion} of {deadlocks}"
    );
}
