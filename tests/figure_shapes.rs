//! Smoke tests asserting the *shapes* of the paper's evaluation figures
//! at miniature scale (the full sweeps live in `crates/bench`). These are
//! deliberately coarse (who wins, roughly by how much) so they stay
//! robust across machines.

use std::time::Duration;
use xtc::core::IsolationLevel;
use xtc::tamix::{run_cluster1, run_cluster2, BibConfig, TamixParams};

fn params(protocol: &str, depth: u32) -> TamixParams {
    let mut p = TamixParams::cluster1(protocol, IsolationLevel::Repeatable, depth);
    p.duration = Duration::from_millis(800);
    p.wait_after_commit = Duration::from_millis(5);
    p.wait_after_operation = Duration::from_micros(500);
    p.initial_wait_max = Duration::from_millis(10);
    p
}

/// Figure 7 shape: *writer* throughput at a healthy depth beats the
/// document-lock edge (depth 0) under repeatable read. Readers share the
/// document lock just fine, so the depth effect shows in the writers —
/// and only once lock-hold times are non-trivial (think time per op).
#[test]
fn fig7_shape_depth_helps_repeatable() {
    let bib = BibConfig::tiny();
    let mut p0 = params("taDOM3+", 0);
    p0.wait_after_operation = Duration::from_millis(1);
    let mut p4 = params("taDOM3+", 4);
    p4.wait_after_operation = Duration::from_millis(1);
    let r0 = run_cluster1(&p0, &bib);
    let r4 = run_cluster1(&p4, &bib);
    let writers = |r: &xtc::tamix::RunReport| {
        r.committed() - r.committed_of(xtc::tamix::TxnKind::QueryBook)
    };
    assert!(
        writers(&r4) > writers(&r0),
        "depth 4 writers ({}) must beat depth 0 writers ({})",
        writers(&r4),
        writers(&r0)
    );
}

/// Figure 9 shape: the taDOM group beats the *-2PL representative at a
/// fine lock depth. Writers only, with per-op think time, so the signal
/// (Node2PLa's whole-level parent locks) survives a loaded machine.
#[test]
fn fig9_shape_tadom_beats_node2pla() {
    let bib = BibConfig::tiny();
    let mut pt = params("taDOM3+", 4);
    pt.wait_after_operation = Duration::from_millis(1);
    let mut ps = params("Node2PLa", 4);
    ps.wait_after_operation = Duration::from_millis(1);
    let tadom = run_cluster1(&pt, &bib);
    let star = run_cluster1(&ps, &bib);
    let writers = |r: &xtc::tamix::RunReport| {
        r.committed() - r.committed_of(xtc::tamix::TxnKind::QueryBook)
    };
    assert!(
        writers(&tadom) > writers(&star),
        "taDOM3+ writers ({}) must beat Node2PLa writers ({})",
        writers(&tadom),
        writers(&star)
    );
}

/// Figure 11 shape: the plain *-2PL group pays a clear premium for the
/// IDX location steps; intention protocols (incl. Node2PLa) do not.
#[test]
fn fig11_shape_star2pl_pays_for_idx_scans() {
    let bib = BibConfig::tiny();
    let node2pl = run_cluster2("Node2PL", &bib, 2);
    let node2pla = run_cluster2("Node2PLa", &bib, 2);
    let tadom = run_cluster2("taDOM3+", &bib, 2);
    assert!(
        node2pl.page_reads as f64 > 1.2 * tadom.page_reads as f64,
        "Node2PL must re-read the subtree: {} vs {} page reads",
        node2pl.page_reads,
        tadom.page_reads
    );
    assert!(
        node2pla.page_reads < node2pl.page_reads,
        "intention locks spare Node2PLa the scan"
    );
    assert!(
        node2pl.duration > tadom.duration,
        "scan time must show up: {:?} vs {:?}",
        node2pl.duration,
        tadom.duration
    );
}

/// Deadlock classification: CLUSTER1 deadlocks are predominantly
/// conversion-caused, as the paper's TaMix analysis reports.
#[test]
fn deadlocks_are_mostly_conversion_caused() {
    let bib = BibConfig::tiny();
    // Depth 2 on the tiny doc produces contention and conversions.
    let r = run_cluster1(&params("taDOM2", 1), &bib);
    if r.deadlocks > 5 {
        assert!(
            r.conversion_deadlocks * 2 >= r.deadlocks,
            "expected conversion deadlocks to dominate: {} of {}",
            r.conversion_deadlocks,
            r.deadlocks
        );
    }
}
