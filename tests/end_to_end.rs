//! End-to-end tests across all crates: generated documents, concurrent
//! TaMix workloads, and structural consistency afterwards.

use std::time::Duration;
use xtc::core::IsolationLevel;
use xtc::tamix::{bib, run_cluster1, BibConfig, TamixParams, TxnKind};

/// After a concurrent CLUSTER1-style run, the document must still satisfy
/// its structural invariants: every book has exactly the five expected
/// children, every topic still resolves by id (renames only change
/// names), histories contain only lend elements with person attributes.
fn assert_document_consistent(db: &xtc::core::XtcDb, cfg: &BibConfig) {
    let store = db.store();
    let topics = store.elements_named("topic").len() + store.elements_named("subject").len();
    assert_eq!(topics, cfg.topics, "topics neither vanish nor multiply");
    let mut books_seen = 0;
    for t in 0..cfg.topics {
        let topic = store
            .element_by_id(&format!("t{t}"))
            .expect("topic resolvable by id");
        for book in store.element_children(&topic) {
            books_seen += 1;
            let names: Vec<String> = store
                .element_children(&book)
                .iter()
                .map(|c| store.name_of(c).unwrap())
                .collect();
            assert_eq!(
                names,
                ["title", "author", "price", "chapters", "history"],
                "book structure intact"
            );
            let history = store.element_children(&book).pop().unwrap();
            for lend in store.element_children(&history) {
                assert_eq!(store.name_of(&lend).as_deref(), Some("lend"));
                assert!(
                    store.attribute_value(&lend, "person").is_some(),
                    "every lend names a person"
                );
            }
        }
    }
    assert_eq!(books_seen, store.elements_named("book").len());
    assert_eq!(db.lock_table().granted_count(), 0, "no lock leaked");
}

fn quick_params(protocol: &str) -> TamixParams {
    let mut p = TamixParams::cluster1(protocol, IsolationLevel::Repeatable, 4);
    p.duration = Duration::from_millis(600);
    p.wait_after_commit = Duration::from_millis(5);
    p.wait_after_operation = Duration::ZERO;
    p.initial_wait_max = Duration::from_millis(10);
    p.clients = 2;
    p
}

#[test]
fn cluster1_preserves_document_consistency_under_tadom3_plus() {
    let cfg = BibConfig::tiny();
    let params = quick_params("taDOM3+");
    let report = run_cluster1(&params, &cfg);
    assert!(report.committed() > 0);
    // Re-open a database and regenerate to compare invariants? No — the
    // report's db is internal; instead rerun with a shared db via the
    // public API below.
}

#[test]
fn concurrent_mixed_workload_keeps_invariants_for_each_group_representative() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use xtc::tamix::txns::{run_txn, Pacing};

    for proto in ["Node2PL", "OO2PL", "Node2PLa", "IRX", "URIX", "taDOM2", "taDOM3+"] {
        let cfg = BibConfig::tiny();
        let db = Arc::new(xtc::core::XtcDb::new(xtc::core::XtcConfig {
            protocol: proto.into(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 4,
            lock_timeout: Duration::from_secs(5),
            ..xtc::core::XtcConfig::default()
        }));
        bib::generate_into(&db, &cfg);

        let mut handles = Vec::new();
        for (i, kind) in [
            TxnKind::QueryBook,
            TxnKind::Chapter,
            TxnKind::LendAndReturn,
            TxnKind::RenameTopic,
            TxnKind::QueryBook,
            TxnKind::LendAndReturn,
            TxnKind::DelBook,
        ]
        .into_iter()
        .enumerate()
        {
            let db = db.clone();
            let cfg = cfg.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(100 + i as u64);
                let mut committed = 0;
                for _ in 0..15 {
                    if run_txn(
                        &db,
                        kind,
                        &cfg,
                        &mut rng,
                        Pacing::default(),
                    )
                    .is_ok()
                    {
                        committed += 1;
                    }
                }
                committed
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "{proto}: nothing committed");
        assert_document_consistent(&db, &cfg);
    }
}

#[test]
fn isolation_none_has_highest_throughput_repeatable_lowest_deadlock_free_zero() {
    // A coarse but robust shape check for Figure 7's ordering at a fixed
    // depth: none >= repeatable in committed transactions, and isolation
    // none never deadlocks.
    let cfg = BibConfig::tiny();
    let mut none = quick_params("taDOM3+");
    none.isolation = IsolationLevel::None;
    let r_none = run_cluster1(&none, &cfg);
    let r_rep = run_cluster1(&quick_params("taDOM3+"), &cfg);
    assert_eq!(r_none.deadlocks, 0);
    assert!(r_none.committed() > 0 && r_rep.committed() > 0);
    // Locking never speeds things up; wide margin because this test may
    // share the machine with other load.
    assert!(
        r_none.committed() * 4 >= r_rep.committed(),
        "locking must not speed things up: none={} repeatable={}",
        r_none.committed(),
        r_rep.committed()
    );
}

#[test]
fn lock_depth_zero_is_a_document_lock() {
    // Figure 7/9's left edge: at depth 0 every writer serializes while
    // holding the document lock for its full (think-time-stretched)
    // duration, so far fewer writer transactions commit than at depth 4.
    // Without think times a single document lock is actually *cheap* —
    // the paper's depth-0 collapse is a lock-hold-time effect.
    let cfg = BibConfig::tiny();
    let mut p0 = quick_params("taDOM3+");
    p0.lock_depth = 0;
    p0.wait_after_operation = Duration::from_millis(1);
    let r0 = run_cluster1(&p0, &cfg);
    let mut p4 = quick_params("taDOM3+");
    p4.wait_after_operation = Duration::from_millis(1);
    let r4 = run_cluster1(&p4, &cfg);
    let writers =
        |r: &xtc::tamix::RunReport| r.committed() - r.committed_of(TxnKind::QueryBook);
    assert!(
        writers(&r4) > writers(&r0),
        "depth 4 must beat the document lock: {} vs {}",
        writers(&r4),
        writers(&r0)
    );
}
