//! Concurrency tests for the lock table: blocking, FIFO fairness,
//! conversion priority, deadlock detection and victim choice.

use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_lock::algebra::{AlgebraMode, Region, SelfAcc};
use xtc_lock::{
    Acquired, LockClass, LockError, LockName, LockTable, LockTarget, ModeTable, TxnId, TxnRegistry,
};
use xtc_obs::{EventKind, Obs, ObsConfig};
use xtc_splid::SplId;

/// A miniature S/U/X family for table tests.
fn sux() -> Arc<ModeTable> {
    Arc::new(ModeTable::generate(
        "sux",
        &[
            ("S", AlgebraMode::new(SelfAcc::Read, Region::NONE, Region::NONE)),
            (
                "U",
                AlgebraMode::new(SelfAcc::Update, Region::NONE, Region::NONE),
            ),
            (
                "X",
                AlgebraMode::new(SelfAcc::Excl, Region::NONE, Region::NONE),
            ),
        ],
        &[],
    ))
}

fn table() -> (Arc<LockTable>, Arc<TxnRegistry>) {
    let reg = Arc::new(TxnRegistry::new());
    // Tracing on: the tests synchronize on recorded lock events instead
    // of sleeping.
    let t = Arc::new(
        LockTable::new(vec![sux()], reg.clone(), Duration::from_secs(5))
            .with_obs(Obs::with_config(Some(&ObsConfig::default()))),
    );
    (t, reg)
}

/// Number of `LockWait` events recorded for `txn`.
fn lock_waits(t: &LockTable, txn: TxnId) -> usize {
    t.obs()
        .events()
        .iter()
        .filter(|e| e.txn == txn && matches!(e.kind, EventKind::LockWait { .. }))
        .count()
}

/// Number of `LockGrant` events (grant after blocking) recorded for `txn`.
fn grants(t: &LockTable, txn: TxnId) -> usize {
    t.obs()
        .events()
        .iter()
        .filter(|e| e.txn == txn && matches!(e.kind, EventKind::LockGrant { .. }))
        .count()
}

/// Blocks until `txn` has at least `n` `LockWait` events. The event is
/// recorded under the shard mutex *before* the requester blocks, so
/// observing it proves the request is enqueued and cannot be granted
/// until a subsequent release — the handshake that replaces the old
/// sleep-then-assert synchronization.
fn await_enqueued(t: &LockTable, txn: TxnId, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while lock_waits(t, txn) < n {
        assert!(
            Instant::now() < deadline,
            "txn {txn} never enqueued (expected {n} waits)"
        );
        std::thread::yield_now();
    }
}

fn node(s: &str) -> LockName {
    LockName {
        family: 0,
        target: LockTarget::Node(SplId::parse(s).unwrap()),
    }
}

fn m(t: &LockTable, name: &str) -> u8 {
    t.family(0).mode_named(name).unwrap()
}

#[test]
fn shared_locks_coexist_exclusive_blocks() {
    let (t, reg) = table();
    let (a, b) = (reg.begin(), reg.begin());
    let n = node("1.3");
    let s = m(&t, "S");
    assert_eq!(
        t.lock(a, &n, s, LockClass::Long, false).unwrap(),
        Acquired::Granted
    );
    assert_eq!(
        t.lock(b, &n, s, LockClass::Long, false).unwrap(),
        Acquired::Granted
    );
    assert_eq!(t.granted_count(), 2);
    // X from a third txn blocks until both release.
    let c = reg.begin();
    let t2 = t.clone();
    let n2 = n.clone();
    let x = m(&t, "X");
    let h = std::thread::spawn(move || t2.lock(c, &n2, x, LockClass::Long, false));
    await_enqueued(&t, c, 1);
    assert!(!h.is_finished(), "X must wait for readers");
    t.release_all(a);
    // b still holds S, so c stays queued: no grant event may exist.
    assert_eq!(grants(&t, c), 0, "X must wait for the second reader too");
    assert!(!h.is_finished());
    t.release_all(b);
    assert_eq!(h.join().unwrap().unwrap(), Acquired::Granted);
    assert_eq!(grants(&t, c), 1, "the blocked X records exactly one grant");
}

#[test]
fn reacquire_and_upgrade_same_txn() {
    let (t, reg) = table();
    let a = reg.begin();
    let n = node("1.3");
    t.lock(a, &n, m(&t, "S"), LockClass::Long, false).unwrap();
    // Re-acquiring the same or weaker mode is a no-op.
    t.lock(a, &n, m(&t, "S"), LockClass::Long, false).unwrap();
    assert_eq!(t.held_mode(a, &n), Some(m(&t, "S")));
    // Upgrading to X succeeds immediately (no other holders).
    t.lock(a, &n, m(&t, "X"), LockClass::Long, false).unwrap();
    assert_eq!(t.held_mode(a, &n), Some(m(&t, "X")));
    assert_eq!(t.granted_count(), 1, "conversion does not duplicate entries");
}

#[test]
fn conversion_deadlock_detected_and_classified() {
    let (t, reg) = table();
    let (a, b) = (reg.begin(), reg.begin());
    let n = node("1.3");
    let s = m(&t, "S");
    let x = m(&t, "X");
    t.lock(a, &n, s, LockClass::Long, false).unwrap();
    t.lock(b, &n, s, LockClass::Long, false).unwrap();
    // Both try to convert S -> X: the classic conversion deadlock. A
    // victim rolls back (releases its locks) like the transaction layer
    // does.
    let (t2, n2, reg2) = (t.clone(), n.clone(), reg.clone());
    let h = std::thread::spawn(move || {
        let r = t2.lock(b, &n2, x, LockClass::Long, false);
        if r.is_err() {
            t2.release_all(b);
            reg2.finish(b);
        }
        r
    });
    // Wait until b's conversion request is queued, so a's own request
    // deterministically closes the cycle.
    await_enqueued(&t, b, 1);
    let res = t.lock(a, &n, x, LockClass::Long, false);
    let other = h.join().unwrap();
    // Exactly one of the two must die; the victim is the younger (b).
    match (res, other) {
        (Ok(Acquired::Granted), Err(e)) => {
            assert!(e.is_deadlock(), "{e:?}");
        }
        (Err(e), _) => panic!("older transaction a must not be the victim: {e:?}"),
        (Ok(o), r) => panic!("unexpected outcome {o:?} / {r:?}"),
    }
    let stats = t.deadlocks();
    assert_eq!(stats.total(), 1);
    assert_eq!(stats.conversion_caused(), 1, "conversion deadlock");
    assert_eq!(t.held_mode(a, &n), Some(x));
}

#[test]
fn two_name_cycle_detected_as_distinct_subtree_deadlock() {
    let (t, reg) = table();
    let (a, b) = (reg.begin(), reg.begin());
    let (n1, n2) = (node("1.3"), node("1.5"));
    let x = m(&t, "X");
    t.lock(a, &n1, x, LockClass::Long, false).unwrap();
    t.lock(b, &n2, x, LockClass::Long, false).unwrap();
    let (t2, n1c, reg2) = (t.clone(), n1.clone(), reg.clone());
    let h = std::thread::spawn(move || {
        let r = t2.lock(b, &n1c, x, LockClass::Long, false);
        if r.is_err() {
            t2.release_all(b);
            reg2.finish(b);
        }
        r
    });
    await_enqueued(&t, b, 1);
    let res = t.lock(a, &n2, x, LockClass::Long, false);
    let other = h.join().unwrap();
    // b (younger) must be the victim.
    assert!(other.is_err());
    assert!(other.unwrap_err().is_deadlock());
    res.expect("survivor acquires after victim aborts and releases");
    let stats = t.deadlocks();
    assert_eq!(stats.total(), 1);
    assert_eq!(
        stats.conversion_caused(),
        0,
        "no conversion involved in this cycle"
    );
}

#[test]
fn aborted_victim_waiting_elsewhere_wakes_with_error() {
    let (t, reg) = table();
    let (a, b) = (reg.begin(), reg.begin());
    let (n1, n2) = (node("1.3"), node("1.5"));
    let x = m(&t, "X");
    t.lock(a, &n1, x, LockClass::Long, false).unwrap();
    // b waits on n1.
    let t2 = t.clone();
    let n1c = n1.clone();
    let h = std::thread::spawn(move || t2.lock(b, &n1c, x, LockClass::Long, false));
    await_enqueued(&t, b, 1);
    // Someone marks b aborted (as a deadlock victim would be).
    reg.mark_aborted(b);
    let res = h.join().unwrap();
    assert_eq!(res, Err(LockError::Aborted));
    // n1 is still exclusively held by a; n2 free.
    t.lock(a, &n2, x, LockClass::Long, false).unwrap();
}

#[test]
fn timeout_fires() {
    let reg = Arc::new(TxnRegistry::new());
    let t = Arc::new(LockTable::new(
        vec![sux()],
        reg.clone(),
        Duration::from_millis(120),
    ));
    let (a, b) = (reg.begin(), reg.begin());
    let n = node("1.3");
    let x = m(&t, "X");
    t.lock(a, &n, x, LockClass::Long, false).unwrap();
    let res = t.lock(b, &n, x, LockClass::Long, false);
    assert_eq!(res, Err(LockError::Timeout));
}

#[test]
fn update_mode_asymmetry_at_the_table() {
    let (t, reg) = table();
    let (a, b, c) = (reg.begin(), reg.begin(), reg.begin());
    let n = node("1.3");
    let (s, u) = (m(&t, "S"), m(&t, "U"));
    t.lock(a, &n, s, LockClass::Long, false).unwrap();
    // U joins an existing reader…
    t.lock(b, &n, u, LockClass::Long, false).unwrap();
    // …but a *new* reader is blocked behind the held U.
    let t2 = t.clone();
    let n2 = n.clone();
    let h = std::thread::spawn(move || t2.lock(c, &n2, s, LockClass::Long, false));
    await_enqueued(&t, c, 1);
    assert!(!h.is_finished(), "reader must queue behind held U");
    t.release_all(b);
    h.join().unwrap().unwrap();
}

#[test]
fn end_of_operation_releases_only_short_locks() {
    let (t, reg) = table();
    let a = reg.begin();
    let (n1, n2) = (node("1.3"), node("1.5"));
    t.lock(a, &n1, m(&t, "S"), LockClass::Short, false).unwrap();
    t.lock(a, &n2, m(&t, "X"), LockClass::Long, false).unwrap();
    t.release_end_of_operation(a);
    assert_eq!(t.held_mode(a, &n1), None);
    assert_eq!(t.held_mode(a, &n2), Some(m(&t, "X")));
    t.release_all(a);
    assert_eq!(t.granted_count(), 0);
}

#[test]
fn fifo_queue_blocks_later_compatible_conflicting_requests() {
    // a holds X; b queues S; c queues X; after a releases, b gets S, c
    // still waits (incompatible with b), then gets X after b releases.
    let (t, reg) = table();
    let (a, b, c) = (reg.begin(), reg.begin(), reg.begin());
    let n = node("1.3");
    let (s, x) = (m(&t, "S"), m(&t, "X"));
    t.lock(a, &n, x, LockClass::Long, false).unwrap();
    let (tb, nb) = (t.clone(), n.clone());
    let hb = std::thread::spawn(move || tb.lock(b, &nb, s, LockClass::Long, false));
    await_enqueued(&t, b, 1);
    let (tc, nc) = (t.clone(), n.clone());
    let hc = std::thread::spawn(move || tc.lock(c, &nc, x, LockClass::Long, false));
    await_enqueued(&t, c, 1);
    t.release_all(a);
    hb.join().unwrap().unwrap();
    // b now holds S, incompatible with c's X: no grant may be recorded.
    assert_eq!(grants(&t, c), 0, "X waits for the granted reader");
    assert!(!hc.is_finished());
    t.release_all(b);
    hc.join().unwrap().unwrap();
}

#[test]
fn many_threads_hammering_one_name_stay_consistent() {
    let (t, reg) = table();
    let n = node("1.3");
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let t = t.clone();
            let reg = reg.clone();
            let n = n.clone();
            std::thread::spawn(move || {
                let mut granted = 0;
                for _ in 0..50 {
                    let txn = reg.begin();
                    let mode = if i % 2 == 0 { "S" } else { "X" };
                    let mode = t.family(0).mode_named(mode).unwrap();
                    match t.lock(txn, &n, mode, LockClass::Long, false) {
                        Ok(_) => granted += 1,
                        Err(e) => assert!(e.is_deadlock() || e == LockError::Timeout),
                    }
                    t.release_all(txn);
                    reg.finish(txn);
                }
                granted
            })
        })
        .collect();
    let total: usize = threads.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0);
    assert_eq!(t.granted_count(), 0, "all locks released");
    assert_eq!(reg.live(), 0);
}

/// Regression test for the exponential wait-for-graph DFS: dozens of
/// transactions contending on a handful of names create dense graphs;
/// detection must stay linear and the pile-up must resolve quickly
/// (by grants and victim aborts) instead of spinning for hours.
#[test]
fn dense_contention_resolves_quickly() {
    let reg = Arc::new(TxnRegistry::new());
    let t = Arc::new(LockTable::new(
        vec![sux()],
        reg.clone(),
        Duration::from_secs(10),
    ));
    let started = std::time::Instant::now();
    let names: Vec<LockName> = ["1.3", "1.5", "1.7"].iter().map(|s| node(s)).collect();
    let handles: Vec<_> = (0..40)
        .map(|i| {
            let (t, reg, names) = (t.clone(), reg.clone(), names.clone());
            std::thread::spawn(move || {
                let mut outcomes = (0u32, 0u32);
                for round in 0..12 {
                    let txn = reg.begin();
                    let s = t.family(0).mode_named("S").unwrap();
                    let x = t.family(0).mode_named("X").unwrap();
                    let a = &names[(i + round) % names.len()];
                    let b = &names[(i + round + 1) % names.len()];
                    let r = t
                        .lock(txn, a, s, LockClass::Long, false)
                        .and_then(|_| t.lock(txn, b, s, LockClass::Long, false))
                        .and_then(|_| t.lock(txn, a, x, LockClass::Long, false))
                        .and_then(|_| t.lock(txn, b, x, LockClass::Long, false));
                    if r.is_ok() {
                        outcomes.0 += 1;
                    } else {
                        outcomes.1 += 1;
                    }
                    t.release_all(txn);
                    reg.finish(txn);
                }
                outcomes
            })
        })
        .collect();
    let (mut committed, mut aborted) = (0, 0);
    for h in handles {
        let (c, a) = h.join().unwrap();
        committed += c;
        aborted += a;
    }
    assert!(committed > 0, "progress required");
    let _ = aborted;
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "dense contention took {:?}",
        started.elapsed()
    );
    assert_eq!(t.granted_count(), 0);
}
