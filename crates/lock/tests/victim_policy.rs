//! Victim-policy tests: for a fixed deadlock scenario, each
//! [`VictimPolicy`] must pick its victim deterministically — and the
//! three policies must be distinguishable (they do not all collapse to
//! youngest-victim).

use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_lock::algebra::{AlgebraMode, Region, SelfAcc};
use xtc_lock::{
    LockClass, LockName, LockTable, LockTarget, ModeTable, TxnId, TxnRegistry, VictimPolicy,
};
use xtc_obs::{EventKind, Obs, ObsConfig};
use xtc_splid::SplId;

/// Blocks until `txn` has at least `n` `LockWait` events recorded — the
/// event is written under the shard mutex before the requester blocks,
/// so observing it proves the request is enqueued (replaces the old
/// sleep-then-request synchronization).
fn await_enqueued(t: &LockTable, txn: TxnId, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let waits = t
            .obs()
            .events()
            .iter()
            .filter(|e| e.txn == txn && matches!(e.kind, EventKind::LockWait { .. }))
            .count();
        if waits >= n {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "txn {txn} never enqueued (expected {n} waits)"
        );
        std::thread::yield_now();
    }
}

fn sux() -> Arc<ModeTable> {
    Arc::new(ModeTable::generate(
        "sux",
        &[
            ("S", AlgebraMode::new(SelfAcc::Read, Region::NONE, Region::NONE)),
            (
                "X",
                AlgebraMode::new(SelfAcc::Excl, Region::NONE, Region::NONE),
            ),
        ],
        &[],
    ))
}

fn node(s: &str) -> LockName {
    LockName {
        family: 0,
        target: LockTarget::Node(SplId::parse(s).unwrap()),
    }
}

/// The fixed scenario: `a` (older) holds X on `n1`; `b` (younger) holds X
/// on `n2` **plus three extra nodes** (so `b` is lock-heavier than `a`).
/// `b` then requests `n1` and blocks; `a` requests `n2`, closing the
/// cycle. Returns the id of the transaction that died as the victim.
fn run_two_txn_cycle(policy: VictimPolicy) -> (TxnId, TxnId, TxnId) {
    let reg = Arc::new(TxnRegistry::new());
    let t = Arc::new(
        LockTable::new(vec![sux()], reg.clone(), Duration::from_secs(10))
            .with_victim_policy(policy)
            .with_obs(Obs::with_config(Some(&ObsConfig::default()))),
    );
    let (a, b) = (reg.begin(), reg.begin());
    let x = t.family(0).mode_named("X").unwrap();
    let (n1, n2) = (node("1.3"), node("1.5"));
    t.lock(a, &n1, x, LockClass::Long, false).unwrap();
    t.lock(b, &n2, x, LockClass::Long, false).unwrap();
    for extra in ["1.7", "1.9", "1.11"] {
        t.lock(b, &node(extra), x, LockClass::Long, false).unwrap();
    }
    let (t2, n1c, reg2) = (t.clone(), n1.clone(), reg.clone());
    let h = std::thread::spawn(move || {
        let r = t2.lock(b, &n1c, x, LockClass::Long, false);
        if r.is_err() {
            t2.release_all(b);
            reg2.finish(b);
        }
        r
    });
    await_enqueued(&t, b, 1);
    let res_a = t.lock(a, &n2, x, LockClass::Long, false);
    if res_a.is_err() {
        // Roll the victim back *before* joining, so the survivor's
        // blocked request can be granted.
        t.release_all(a);
        reg.finish(a);
    }
    let res_b = h.join().unwrap();
    let victim = match (&res_a, &res_b) {
        (Err(e), Ok(_)) => {
            assert!(e.is_deadlock(), "{e:?}");
            a
        }
        (Ok(_), Err(e)) => {
            assert!(e.is_deadlock(), "{e:?}");
            b
        }
        other => panic!("exactly one victim expected, got {other:?}"),
    };
    assert_eq!(t.deadlocks().total(), 1);
    (a, b, victim)
}

#[test]
fn youngest_policy_deterministically_kills_the_younger() {
    // Repeated runs of the same scenario must always pick the same
    // victim: the younger b, even though b holds more locks.
    for _ in 0..3 {
        let (_a, b, victim) = run_two_txn_cycle(VictimPolicy::Youngest);
        assert_eq!(victim, b, "youngest policy must kill b");
    }
}

#[test]
fn fewest_locks_policy_deterministically_kills_the_lightest() {
    // Same scenario, different policy, different victim: a holds one lock
    // against b's four, so FewestLocks must kill a despite a being older.
    for _ in 0..3 {
        let (a, _b, victim) = run_two_txn_cycle(VictimPolicy::FewestLocks);
        assert_eq!(victim, a, "fewest-locks policy must kill a");
    }
}

#[test]
fn most_waiters_policy_deterministically_kills_the_most_blocking() {
    // Three transactions: c (outside the cycle) also waits on a's lock,
    // so a blocks two transactions while b blocks one. MostWaiters must
    // kill a; Youngest would have killed b.
    for _ in 0..3 {
        let reg = Arc::new(TxnRegistry::new());
        let t = Arc::new(
            LockTable::new(vec![sux()], reg.clone(), Duration::from_secs(10))
                .with_victim_policy(VictimPolicy::MostWaiters)
                .with_obs(Obs::with_config(Some(&ObsConfig::default()))),
        );
        let (a, b, c) = (reg.begin(), reg.begin(), reg.begin());
        let x = t.family(0).mode_named("X").unwrap();
        let (n1, n2) = (node("1.3"), node("1.5"));
        t.lock(a, &n1, x, LockClass::Long, false).unwrap();
        t.lock(b, &n2, x, LockClass::Long, false).unwrap();
        // c queues behind a on n1 — an innocent bystander edge c -> a.
        let (tc, n1c) = (t.clone(), n1.clone());
        let hc = std::thread::spawn(move || tc.lock(c, &n1c, x, LockClass::Long, false));
        await_enqueued(&t, c, 1);
        // b queues behind a on n1 too: edge b -> a, still no cycle.
        let (tb, n1b, regb) = (t.clone(), n1.clone(), reg.clone());
        let hb = std::thread::spawn(move || {
            let r = tb.lock(b, &n1b, x, LockClass::Long, false);
            if r.is_err() {
                tb.release_all(b);
                regb.finish(b);
            }
            r
        });
        await_enqueued(&t, b, 1);
        // a requests n2: cycle a <-> b with waiters(a) = {b, c},
        // waiters(b) = {a}.
        let res_a = t.lock(a, &n2, x, LockClass::Long, false);
        let err = res_a.expect_err("a blocks two transactions and must die");
        assert!(err.is_deadlock(), "{err:?}");
        t.release_all(a);
        reg.finish(a);
        // With a gone, the queue on n1 drains in FIFO order: c first,
        // then b after c releases.
        hc.join().unwrap().expect("c acquires n1 after the victim dies");
        t.release_all(c);
        reg.finish(c);
        hb.join().unwrap().expect("b acquires n1 after c releases");
        t.release_all(b);
        reg.finish(b);
        assert_eq!(t.deadlocks().total(), 1);
        assert_eq!(t.granted_count(), 0);
    }
}
