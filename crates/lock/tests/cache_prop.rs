//! Seeded property test for the per-transaction lock cache: random
//! request sequences against a cache-enabled table and a cache-disabled
//! shadow table must stay observably identical, and the cache itself
//! must obey its coherence rules (mirror the table's granted mode, never
//! survive a short-lock release for short entries, an epoch bump, or
//! release-all).
//!
//! The workspace proptest is stubbed offline, so this is a plain
//! hand-rolled generator: xorshift64* streams over a fixed seed set.

use std::sync::Arc;
use std::time::Duration;
use xtc_lock::algebra::{AlgebraMode, Region, SelfAcc};
use xtc_lock::{
    Acquired, LockClass, LockName, LockTable, LockTarget, ModeTable, TxnRegistry,
};
use xtc_splid::SplId;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A miniature S/U/X family: upgrades form a chain, so a held mode
/// either absorbs a request or converts upward — both cache cases.
fn sux() -> Arc<ModeTable> {
    Arc::new(ModeTable::generate(
        "sux",
        &[
            ("S", AlgebraMode::new(SelfAcc::Read, Region::NONE, Region::NONE)),
            (
                "U",
                AlgebraMode::new(SelfAcc::Update, Region::NONE, Region::NONE),
            ),
            (
                "X",
                AlgebraMode::new(SelfAcc::Excl, Region::NONE, Region::NONE),
            ),
        ],
        &[],
    ))
}

fn pool() -> Vec<LockName> {
    ["1", "1.3", "1.3.5", "1.3.5.7", "1.5", "1.5.3", "1.7", "1.9.3"]
        .iter()
        .map(|s| LockName {
            family: 0,
            target: LockTarget::Node(SplId::parse(s).unwrap()),
        })
        .collect()
}

fn build(cache: bool) -> (Arc<LockTable>, Arc<TxnRegistry>) {
    let reg = Arc::new(TxnRegistry::new());
    let t = Arc::new(
        LockTable::new(vec![sux()], reg.clone(), Duration::from_secs(5))
            .with_lock_cache(cache),
    );
    (t, reg)
}

fn run_case(seed: u64) {
    let mut rng = XorShift(seed | 1);
    let names = pool();
    let (on, on_reg) = build(true);
    let (off, off_reg) = build(false);

    for _round in 0..30 {
        let ta = on_reg.begin_handle();
        let tb = off_reg.begin_handle();
        for _op in 0..60 {
            let name = &names[rng.below(names.len() as u64) as usize];
            let mode = rng.below(3) as u8;
            let class = if rng.below(2) == 0 {
                LockClass::Short
            } else {
                LockClass::Long
            };

            let ra = on.lock_with(&ta, name, mode, class, false).unwrap();
            let rb = off.lock_with(&tb, name, mode, class, false).unwrap();
            assert_eq!(ra, Acquired::Granted, "single txn never blocks");
            assert_eq!(ra, rb, "cache on/off must grant identically");

            // Both tables must agree on the held (converted) mode …
            let held = on.held_mode(ta.id(), name);
            assert_eq!(
                held,
                off.held_mode(tb.id(), name),
                "held modes diverge between cache on and off"
            );

            // … and the cache must mirror the table exactly: the entry
            // for a just-granted name exists, carries the table's mode,
            // a class at least as strong as this request, and absorbs an
            // immediate repeat of the request (the hit condition).
            let (cm, cc) = ta
                .cached_mode(name)
                .expect("a just-granted lock must be cached");
            assert_eq!(Some(cm), held, "cached mode must equal the table's");
            assert!(cc >= class, "cached class must cover the request");
            assert_eq!(
                on.family(0).conversion(cm, mode).result,
                cm,
                "cached mode must absorb the request it was granted for"
            );

            match rng.below(20) {
                // Short-lock release (end of operation): every surviving
                // cache entry must be a still-held Long lock.
                0 => {
                    on.release_end_of_operation(ta.id());
                    off.release_end_of_operation(tb.id());
                    for n in &names {
                        if let Some((m, c)) = ta.cached_mode(n) {
                            assert_eq!(
                                c,
                                LockClass::Long,
                                "short entries must not survive a short release"
                            );
                            assert_eq!(
                                on.held_mode(ta.id(), n),
                                Some(m),
                                "surviving cache entries must still be held"
                            );
                        } else {
                            assert_eq!(
                                on.held_mode(ta.id(), n).map(|_| LockClass::Long),
                                off.held_mode(tb.id(), n).map(|_| LockClass::Long),
                                "tables diverge after short release"
                            );
                        }
                    }
                }
                // Epoch bump (what escalation-depth changes do): the
                // cache empties while the table keeps every lock.
                1 => {
                    ta.invalidate_cache();
                    for n in &names {
                        assert_eq!(
                            ta.cached_mode(n),
                            None,
                            "no entry survives an epoch bump"
                        );
                    }
                }
                _ => {}
            }
        }
        on.release_all(ta.id());
        off.release_all(tb.id());
        for n in &names {
            assert_eq!(ta.cached_mode(n), None, "no entry survives release_all");
        }
        assert_eq!(on.granted_count(), 0, "locks leaked (cache on)");
        assert_eq!(off.granted_count(), 0, "locks leaked (cache off)");
        on_reg.finish(ta.id());
        off_reg.finish(tb.id());
    }

    assert_eq!(
        on.requests(),
        off.requests(),
        "request accounting must not depend on the cache"
    );
    assert!(on.cache_hits() > 0, "the sequence must exercise the cache");
    assert_eq!(off.cache_hits(), 0, "disabled cache must never hit");
    assert_eq!(
        on.cache_hits() + on.table_requests(),
        on.requests(),
        "every request is either a hit or table traffic"
    );
}

#[test]
fn cache_matches_shadow_table_across_seeds() {
    for seed in [0xDEAD_BEEF, 42, 0x5EED_0001, 7, 0xA5A5_A5A5] {
        run_case(seed);
    }
}
