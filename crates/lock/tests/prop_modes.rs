//! Property tests over generated mode tables: structural invariants every
//! protocol's matrices must satisfy.

use proptest::prelude::*;
use xtc_lock::algebra::{compatible, AlgebraMode, CovNonNone, Region, SelfAcc};
use xtc_lock::{Annex, ModeTable};

fn arb_self() -> impl Strategy<Value = SelfAcc> {
    prop_oneof![
        Just(SelfAcc::None),
        Just(SelfAcc::Traverse),
        Just(SelfAcc::Read),
        Just(SelfAcc::Update),
        Just(SelfAcc::Excl),
    ]
}

fn arb_region() -> impl Strategy<Value = Region> {
    (
        prop_oneof![
            Just(None),
            Just(Some(CovNonNone::Read)),
            Just(Some(CovNonNone::Update)),
            Just(Some(CovNonNone::Excl)),
        ],
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(cov, r, w)| Region {
            cov,
            int_read: r,
            int_write: w,
        })
}

fn arb_mode() -> impl Strategy<Value = AlgebraMode> {
    (arb_self(), arb_region(), arb_region())
        .prop_map(|(s, c, b)| AlgebraMode::new(s, c, b))
}

proptest! {
    /// Join is a least upper bound: commutative, idempotent, covering.
    #[test]
    fn join_is_lub(a in arb_mode(), b in arb_mode(), c in arb_mode()) {
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(a), a);
        prop_assert!(a.join(b).covers(a));
        prop_assert!(a.join(b).covers(b));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
    }

    /// Covers is a partial order compatible with join.
    #[test]
    fn covers_is_partial_order(a in arb_mode(), b in arb_mode()) {
        prop_assert!(a.covers(a));
        if a.covers(b) && b.covers(a) {
            // Antisymmetry holds only up to int-flag redundancy under
            // full coverage; joins of equal-covering modes must coincide
            // in observable behaviour:
            let j = a.join(b);
            prop_assert!(j.covers(a) && j.covers(b));
        }
    }

    /// Compatibility is anti-monotone in strength: a stronger requested or
    /// held mode conflicts with at least as much.
    #[test]
    fn compat_antimonotone(a in arb_mode(), b in arb_mode(), other in arb_mode()) {
        if a.covers(b) {
            if compatible(a, other) {
                prop_assert!(compatible(b, other), "{a:?} covers {b:?} vs {other:?}");
            }
            if compatible(other, a) {
                prop_assert!(compatible(other, b));
            }
        }
    }

    /// Exclusive self access conflicts with any non-traverse self access.
    #[test]
    fn exclusive_is_exclusive(b in arb_mode()) {
        let x = AlgebraMode::new(SelfAcc::Excl, Region::NONE, Region::NONE);
        if matches!(b.self_acc, SelfAcc::Read | SelfAcc::Update | SelfAcc::Excl) {
            prop_assert!(!compatible(x, b));
            prop_assert!(!compatible(b, x));
        }
    }
}

/// Table-level invariants for every protocol's generated family tables.
#[test]
fn generated_tables_satisfy_structural_invariants() {
    for proto in [
        "Node2PL", "NO2PL", "OO2PL", "Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+",
        "taDOM3", "taDOM3+",
    ] {
        let handle = xtc_protocols::build(proto).unwrap();
        for table in &handle.families {
            check_table(table);
        }
    }
}

fn check_table(t: &ModeTable) {
    let n = t.len() as u8;
    for held in 0..n {
        for req in 0..n {
            let conv = t.conversion(held, req);
            // Conversion diagonal is identity.
            if held == req {
                assert_eq!(conv.result, held, "{}: diagonal", t.family());
                assert_eq!(conv.annex, Annex::None);
            }
            // Conversion results never weaken the held mode's conflicts
            // against *write* requests: anything exclusive that conflicted
            // before still conflicts. Annex conversions are exempt — the
            // per-child locks carry the delegated coverage (e.g. LR+IX →
            // IX_NR admits CX on the node, but the NR child locks block
            // the actual child write).
            if conv.annex != Annex::None {
                continue;
            }
            let res = conv.result;
            for other in 0..n {
                let other_alg = t.alg(other);
                if other_alg.has_write() && !t.compatible(other, held) {
                    assert!(
                        !t.compatible(other, res),
                        "{}: convert({},{}) = {} lets {} through",
                        t.family(),
                        t.name(held),
                        t.name(req),
                        t.name(res),
                        t.name(other)
                    );
                }
            }
            // Annex child modes exist and are read-type.
            if let Annex::ChildLocks(c) = conv.annex {
                assert!(!t.alg(c).has_write(), "{}: annex must be a read", t.family());
            }
        }
    }
    // Compatibility must agree with the algebra (the matrix is not
    // hand-edited).
    for a in 0..n {
        for b in 0..n {
            assert_eq!(
                t.compatible(a, b),
                compatible(t.alg(a), t.alg(b)),
                "{}: compat({}, {})",
                t.family(),
                t.name(a),
                t.name(b)
            );
        }
    }
}
