//! Per-protocol lock mode tables: compatibility and conversion matrices
//! generated from the region algebra.
//!
//! A [`ModeTable`] holds one protocol family's mode set (e.g. taDOM2's
//! IR/NR/LR/SR/IX/CX/SU/SX). The compatibility matrix is the algebra's
//! [`compatible`](crate::algebra::compatible) evaluated pairwise; the
//! conversion matrix implements the paper's semantics:
//!
//! 1. if the held mode already covers the request → keep it (for two
//!    pure-read modes, `U` coverage counts as satisfied by `R` coverage —
//!    this reproduces Fig. 2's `R + U → R`),
//! 2. if the request covers the held mode → take the request,
//! 3. otherwise take the join; if a mode equals it exactly, use that
//!    (taDOM2+'s LRIX/LRCX/SRIX/SRCX exist precisely for this),
//! 4. else a *benign* covering mode (one whose over-coverage is read-only)
//!    is used when available,
//! 5. else, when the join carries `Read` coverage of the child level, the
//!    **annex rule** of Fig. 4 applies: the coverage is replaced by
//!    per-child locks (`CX_NR`, `IX_SR`, …) and the intent-only mode is
//!    taken,
//! 6. else the minimal covering mode — the `U + IX → X` escalation.
//!
//! Explicit `overrides` pin the handful of cells where the paper prints a
//! normalization choice the rules cannot express (e.g. `IR + NR → NR`,
//! where both modes are equivalent in every observable way).

use crate::algebra::{compatible, AlgebraMode, CovNonNone, Region, SelfAcc};

/// Index of a mode within its [`ModeTable`].
pub type ModeIdx = u8;

/// Additional locks a conversion requires (the subscripted results of
/// Fig. 4): acquire the given mode on every direct child of the context
/// node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Annex {
    /// No additional locks.
    None,
    /// Lock each direct child with this mode.
    ChildLocks(ModeIdx),
}

/// Result of converting a held lock under an additional request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conversion {
    /// The mode the context-node lock converts to.
    pub result: ModeIdx,
    /// Additional per-child locks required first.
    pub annex: Annex,
}

/// One protocol family's modes with precomputed matrices.
#[derive(Debug)]
pub struct ModeTable {
    family: &'static str,
    names: Vec<String>,
    algs: Vec<AlgebraMode>,
    compat: Vec<bool>,
    convert: Vec<Conversion>,
}

impl ModeTable {
    /// Generates a table from named algebra modes.
    ///
    /// `overrides` pins `(held, requested) → result` cells by name.
    ///
    /// # Panics
    /// If a conversion cannot be resolved (the mode set lacks a top) or an
    /// override names an unknown mode.
    pub fn generate(
        family: &'static str,
        modes: &[(&str, AlgebraMode)],
        overrides: &[(&str, &str, &str)],
    ) -> ModeTable {
        Self::generate_opts(family, modes, overrides, false)
    }

    /// Like [`ModeTable::generate`], with the Fig. 4 annex rule enabled
    /// (taDOM protocols only — MGL-style protocols escalate instead).
    pub fn generate_with_annex(
        family: &'static str,
        modes: &[(&str, AlgebraMode)],
        overrides: &[(&str, &str, &str)],
    ) -> ModeTable {
        Self::generate_opts(family, modes, overrides, true)
    }

    fn generate_opts(
        family: &'static str,
        modes: &[(&str, AlgebraMode)],
        overrides: &[(&str, &str, &str)],
        annex: bool,
    ) -> ModeTable {
        let names: Vec<String> = modes.iter().map(|(n, _)| n.to_string()).collect();
        let algs: Vec<AlgebraMode> = modes.iter().map(|(_, a)| *a).collect();
        let n = algs.len();
        assert!(n > 0 && n <= u8::MAX as usize, "bad mode count");
        let mut compat = vec![false; n * n];
        for req in 0..n {
            for held in 0..n {
                compat[req * n + held] = compatible(algs[req], algs[held]);
            }
        }
        let mut convert = Vec::with_capacity(n * n);
        for held in 0..n {
            for req in 0..n {
                convert.push(derive_conversion(family, &names, &algs, held, req, annex));
            }
        }
        let mut table = ModeTable {
            family,
            names,
            algs,
            compat,
            convert,
        };
        for (held, req, result) in overrides {
            let h = table.mode_named(held).unwrap_or_else(|| {
                panic!("{family}: override names unknown mode {held}")
            });
            let r = table.mode_named(req).expect("override mode");
            let res = table.mode_named(result).expect("override mode");
            table.convert[h as usize * n + req_idx(r) as usize] = Conversion {
                result: res,
                annex: Annex::None,
            };
        }
        table
    }

    /// The family name (diagnostics).
    pub fn family(&self) -> &'static str {
        self.family
    }

    /// Number of modes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false (tables are non-empty); clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mode name by index.
    pub fn name(&self, m: ModeIdx) -> &str {
        &self.names[m as usize]
    }

    /// Algebra interpretation by index.
    pub fn alg(&self, m: ModeIdx) -> AlgebraMode {
        self.algs[m as usize]
    }

    /// Index of a mode by name.
    pub fn mode_named(&self, name: &str) -> Option<ModeIdx> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| i as ModeIdx)
    }

    /// May `requested` be granted while `held` is granted to another
    /// transaction?
    pub fn compatible(&self, requested: ModeIdx, held: ModeIdx) -> bool {
        self.compat[requested as usize * self.len() + held as usize]
    }

    /// The conversion for (held, requested).
    pub fn conversion(&self, held: ModeIdx, requested: ModeIdx) -> Conversion {
        self.convert[held as usize * self.len() + requested as usize]
    }
}

fn req_idx(r: ModeIdx) -> ModeIdx {
    r
}

/// Derives one conversion cell per the module-level rules.
fn derive_conversion(
    family: &str,
    names: &[String],
    algs: &[AlgebraMode],
    held: usize,
    req: usize,
    annex: bool,
) -> Conversion {
    let h = algs[held];
    let r = algs[req];
    // Rule 1: the held mode already covers the request — under the
    // pure-read U≈R equivalence, reproducing Fig. 2's R + U → R.
    if covers_for_conversion(h, r) {
        return plain(held);
    }
    // Rule 2: the request strictly covers the held mode (no equivalence:
    // taking the request must never downgrade a held update intent).
    if r.covers(h) {
        return plain(req);
    }
    let join = h.join(r);
    // Rule 3: exact join.
    if let Some(i) = algs.iter().position(|a| *a == join) {
        return plain(i);
    }
    // Rule 4: benign covering mode (read-only over-coverage).
    if let Some(i) = minimal_covering(algs, join, true) {
        return plain(i);
    }
    // Rule 5: the annex route — replace child-level Read coverage by
    // per-child locks.
    if annex && join.children.cov == Some(CovNonNone::Read) {
        let child_alg = AlgebraMode::new(
            SelfAcc::Read,
            if join.below.cov == Some(CovNonNone::Read) {
                Region::cov(CovNonNone::Read)
            } else {
                Region::NONE
            },
            if join.below.cov == Some(CovNonNone::Read) {
                Region::cov(CovNonNone::Read)
            } else {
                Region::NONE
            },
        );
        if let Some(child) = algs.iter().position(|a| *a == child_alg) {
            let mut reduced = join;
            reduced.children.cov = None;
            reduced.children.int_read = true;
            if reduced.below.cov == Some(CovNonNone::Read) {
                // The per-child subtree locks carry the deep coverage.
                reduced.below.cov = None;
            }
            if let Some(i) = algs
                .iter()
                .position(|a| *a == reduced)
                .or_else(|| minimal_covering(algs, reduced, true))
            {
                return Conversion {
                    result: i as ModeIdx,
                    annex: Annex::ChildLocks(child as ModeIdx),
                };
            }
        }
    }
    // Rule 6: escalation (e.g. U + IX → X).
    if let Some(i) = minimal_covering(algs, join, false) {
        return plain(i);
    }
    panic!(
        "{family}: no conversion for {} + {} (mode set lacks a top)",
        names[held], names[req]
    );
}

fn plain(i: usize) -> Conversion {
    Conversion {
        result: i as ModeIdx,
        annex: Annex::None,
    }
}

/// Held-covers-request with the pure-read U≈R equivalence: between two
/// modes without any write authority, `Read` coverage satisfies an
/// `Update` request (Fig. 2's `R + U → R`, Fig. 4's `SR + SU → SR`).
fn covers_for_conversion(holder: AlgebraMode, wanted: AlgebraMode) -> bool {
    if holder.covers(wanted) {
        return true;
    }
    if holder.has_write() || wanted.has_write() {
        return false;
    }
    holder.covers(weaken_update(wanted))
}

fn weaken_update(mut m: AlgebraMode) -> AlgebraMode {
    if m.self_acc == SelfAcc::Update {
        m.self_acc = SelfAcc::Read;
    }
    for r in [&mut m.children, &mut m.below] {
        if r.cov == Some(CovNonNone::Update) {
            r.cov = Some(CovNonNone::Read);
        }
    }
    m
}

/// The lowest-weight mode covering `target`. With `benign_only`, modes
/// whose over-coverage introduces new Update/Exclusive strength are
/// excluded (read-level over-coverage is harmless).
fn minimal_covering(algs: &[AlgebraMode], target: AlgebraMode, benign_only: bool) -> Option<usize> {
    algs.iter()
        .enumerate()
        .filter(|(_, a)| a.covers(target))
        .filter(|(_, a)| !benign_only || benign_over(**a, target))
        .min_by_key(|(i, a)| (a.weight(), *i))
        .map(|(i, _)| i)
}

/// Over-coverage of `m` beyond `target` is benign when it never exceeds
/// `Read` strength where the target had less.
fn benign_over(m: AlgebraMode, target: AlgebraMode) -> bool {
    let self_ok = m.self_acc <= target.self_acc.max(SelfAcc::Read);
    let reg_ok = |a: Region, t: Region| match a.cov {
        None => true,
        Some(CovNonNone::Read) => true,
        Some(c) => t.cov >= Some(c),
    };
    self_ok && reg_ok(m.children, target.children) && reg_ok(m.below, target.below)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{CovNonNone::*, Region, SelfAcc as S};

    /// The URIX mode set (Fig. 2) under the algebra, MGL semantics:
    /// R/U/X are subtree locks; intention locks also read-pin the node.
    fn urix() -> ModeTable {
        ModeTable::generate(
            "urix-test",
            &[
                ("IR", AlgebraMode::new(S::Read, Region::intents(true, false), Region::intents(true, false))),
                ("IX", AlgebraMode::new(S::Read, Region::intents(true, true), Region::intents(true, true))),
                ("R", AlgebraMode::new(S::Read, Region::cov(Read), Region::cov(Read))),
                ("RIX", AlgebraMode::new(
                    S::Read,
                    Region { cov: Some(Read), int_read: true, int_write: true },
                    Region { cov: Some(Read), int_read: true, int_write: true },
                )),
                ("U", AlgebraMode::new(S::Update, Region::cov(Update), Region::cov(Update))),
                ("X", AlgebraMode::new(S::Excl, Region::cov(Excl), Region::cov(Excl))),
            ],
            &[],
        )
    }

    #[test]
    fn urix_compatibility_matches_figure_2() {
        let t = urix();
        // Fig. 2, rows = requested, columns = held: IR IX R RIX U X.
        let expected = [
            ("IR", [true, true, true, true, false, false]),
            ("IX", [true, true, false, false, false, false]),
            ("R", [true, false, true, false, false, false]),
            ("RIX", [true, false, false, false, false, false]),
            ("U", [true, false, true, false, false, false]),
            ("X", [false, false, false, false, false, false]),
        ];
        let order = ["IR", "IX", "R", "RIX", "U", "X"];
        for (req, row) in expected {
            for (j, held) in order.iter().enumerate() {
                let got = t.compatible(t.mode_named(req).unwrap(), t.mode_named(held).unwrap());
                assert_eq!(got, row[j], "compat({req}, {held})");
            }
        }
    }

    #[test]
    fn urix_conversion_matches_figure_2() {
        let t = urix();
        // Fig. 2 conversion matrix: rows = held, columns = requested.
        let expected = [
            ("IR", ["IR", "IX", "R", "RIX", "U", "X"]),
            ("IX", ["IX", "IX", "RIX", "RIX", "X", "X"]),
            ("R", ["R", "RIX", "R", "RIX", "R", "X"]),
            ("RIX", ["RIX", "RIX", "RIX", "RIX", "X", "X"]),
            ("U", ["U", "X", "U", "X", "U", "X"]),
            ("X", ["X", "X", "X", "X", "X", "X"]),
        ];
        let order = ["IR", "IX", "R", "RIX", "U", "X"];
        for (held, row) in expected {
            for (j, req) in order.iter().enumerate() {
                let conv = t.conversion(t.mode_named(held).unwrap(), t.mode_named(req).unwrap());
                assert_eq!(
                    t.name(conv.result),
                    row[j],
                    "convert(held={held}, req={req})"
                );
                assert_eq!(conv.annex, Annex::None, "URIX conversions need no annex");
            }
        }
    }

    #[test]
    fn conversion_result_covers_both_inputs_up_to_u_equivalence() {
        let t = urix();
        for held in 0..t.len() as ModeIdx {
            for req in 0..t.len() as ModeIdx {
                let c = t.conversion(held, req);
                let res = t.alg(c.result);
                assert!(
                    covers_for_conversion(res, t.alg(held))
                        && covers_for_conversion(res, t.alg(req)),
                    "convert({}, {}) = {} does not cover inputs",
                    t.name(held),
                    t.name(req),
                    t.name(c.result)
                );
            }
        }
    }

    #[test]
    fn overrides_apply() {
        let t = ModeTable::generate(
            "ov",
            &[
                ("A", AlgebraMode::new(S::Read, Region::NONE, Region::NONE)),
                ("B", AlgebraMode::new(S::Read, Region::intents(true, false), Region::NONE)),
            ],
            &[("B", "A", "A")],
        );
        let (a, b) = (t.mode_named("A").unwrap(), t.mode_named("B").unwrap());
        assert_eq!(t.conversion(b, a).result, a);
        // Unoverridden direction keeps the derived value (B covers A).
        assert_eq!(t.conversion(a, b).result, b);
    }
}
