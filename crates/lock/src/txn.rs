//! Transaction registry: identities, abort flags, held-lock bookkeeping,
//! the per-transaction lock cache, and isolation levels.
//!
//! The registry is deliberately two-tiered. A global `TxnId → handle` map
//! exists only for the *slow* paths that must reach a transaction by id
//! (deadlock victim selection, diagnostics, tests). Everything on the
//! lock-acquisition *fast* path — abort checks, held-lock recording, the
//! lock cache — lives inside a per-transaction [`TxnHandle`] that the
//! transaction layer resolves once at begin and threads through every
//! request, so no lock request ever contends on a global mutex for
//! bookkeeping.

use crate::modes::ModeIdx;
use crate::table::LockName;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Transaction identifier. Monotonically increasing; the deadlock victim
/// policy ("youngest dies") compares these.
pub type TxnId = u64;

/// How long a lock is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// Released at the end of the current operation (short read locks of
    /// isolation level *committed*).
    Short,
    /// Released at commit/abort.
    Long,
}

/// The four isolation levels of the experiments (§4.3, footnote 5):
/// "While none acquires no locks at all, all others need long write locks;
/// uncommitted means no read locks, committed and repeatable short and
/// long read locks, respectively."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// No locks at all.
    None,
    /// Uncommitted read: long write locks, no read locks.
    Uncommitted,
    /// Committed read: long write locks, short read locks.
    Committed,
    /// Repeatable read: long write and read locks.
    Repeatable,
    /// Serializable: repeatable read plus index-key locks protecting
    /// direct jumps against phantoms (footnote 1 of the paper: "offered
    /// by the taDOM* group, but not used in our experiments"; here it is
    /// implemented for every protocol via key-value locks on the ID
    /// index).
    Serializable,
}

impl IsolationLevel {
    /// Lock class for read locks, or `None` when reads go unlocked.
    pub fn read_class(self) -> Option<LockClass> {
        match self {
            IsolationLevel::None | IsolationLevel::Uncommitted => None,
            IsolationLevel::Committed => Some(LockClass::Short),
            IsolationLevel::Repeatable | IsolationLevel::Serializable => Some(LockClass::Long),
        }
    }

    /// Lock class for write locks, or `None` when writes go unlocked.
    pub fn write_class(self) -> Option<LockClass> {
        match self {
            IsolationLevel::None => None,
            _ => Some(LockClass::Long),
        }
    }

    /// The four levels of the paper's experiments, weakest first (bench
    /// sweep order; serializable was not measured in the paper and is
    /// kept out of the figure sweeps).
    pub const ALL: [IsolationLevel; 4] = [
        IsolationLevel::None,
        IsolationLevel::Uncommitted,
        IsolationLevel::Committed,
        IsolationLevel::Repeatable,
    ];

    /// `true` when direct jumps must also lock the index key they probe
    /// (phantom protection for `getElementById`).
    pub fn locks_index_keys(self) -> bool {
        matches!(self, IsolationLevel::Serializable)
    }

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::None => "none",
            IsolationLevel::Uncommitted => "uncommitted",
            IsolationLevel::Committed => "committed",
            IsolationLevel::Repeatable => "repeatable",
            IsolationLevel::Serializable => "serializable",
        }
    }
}

/// One held lock: the mode the shared table actually granted (which may
/// exceed the requested mode after a conversion), the strongest class it
/// was requested under, and the cache epoch it was recorded in.
#[derive(Debug, Clone, Copy)]
struct HeldLock {
    mode: ModeIdx,
    class: LockClass,
    epoch: u64,
}

/// Per-transaction state: everything the lock-acquisition fast path needs
/// without touching a global mutex.
///
/// The held-lock map doubles as the **lock cache**: each entry remembers
/// the mode the shared [`LockTable`](crate::LockTable) granted, so a
/// repeated request the held mode already covers can be served without
/// any shared-state traffic. Entries only *hit* while their epoch matches
/// the handle's current cache epoch; bumping the epoch
/// ([`invalidate_cache`](TxnHandle::invalidate_cache), done on lock
/// escalation) force-misses every cached entry without forgetting the
/// locks themselves — the next table round-trip re-primes them.
#[derive(Debug)]
pub struct TxnHandle {
    id: TxnId,
    aborted: AtomicBool,
    /// Mirrors `held.len()`; readable by other threads (the `FewestLocks`
    /// victim policy) without taking the per-transaction mutex.
    held_count: AtomicUsize,
    /// Cache generation; entries from older generations never hit.
    cache_epoch: AtomicU64,
    /// Held locks by name. Per-transaction mutex: uncontended in normal
    /// operation (a transaction runs on one thread), taken cross-thread
    /// only transiently.
    held: Mutex<HashMap<LockName, HeldLock>>,
}

impl TxnHandle {
    fn new(id: TxnId) -> Self {
        TxnHandle {
            id,
            aborted: AtomicBool::new(false),
            held_count: AtomicUsize::new(0),
            cache_epoch: AtomicU64::new(0),
            held: Mutex::new(HashMap::new()),
        }
    }

    /// The transaction's id (also its age for victim selection).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Whether the transaction has been marked as a deadlock victim.
    /// One atomic load — the per-request fast path.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Marks the transaction aborted; returns `true` if this call
    /// performed the transition.
    pub fn mark_aborted(&self) -> bool {
        !self.aborted.swap(true, Ordering::SeqCst)
    }

    /// Records a (possibly re-acquired) lock: O(1) hash insert on the
    /// per-transaction mutex. Keeps the strongest class; `mode` is the
    /// mode the shared table actually granted, which re-primes the cache
    /// under the current epoch.
    pub fn record_lock(&self, name: &LockName, mode: ModeIdx, class: LockClass) {
        let epoch = self.cache_epoch.load(Ordering::Relaxed);
        let mut held = self.held.lock();
        match held.get_mut(name) {
            Some(e) => {
                e.class = e.class.max(class);
                e.mode = mode;
                e.epoch = epoch;
            }
            None => {
                held.insert(name.clone(), HeldLock { mode, class, epoch });
                self.held_count.store(held.len(), Ordering::Relaxed);
            }
        }
    }

    /// The cached `(granted mode, class)` for a name, if the entry is
    /// from the current cache epoch. A `None` only means "go ask the
    /// shared table" — the lock itself may well still be held.
    pub fn cached_mode(&self, name: &LockName) -> Option<(ModeIdx, LockClass)> {
        let held = self.held.lock();
        let e = held.get(name)?;
        (e.epoch == self.cache_epoch.load(Ordering::Relaxed)).then_some((e.mode, e.class))
    }

    /// Invalidates the lock cache without forgetting held locks: every
    /// subsequent request round-trips through the shared table once,
    /// re-priming its entry. Called on lock-escalation changes.
    pub fn invalidate_cache(&self) {
        self.cache_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Drains the locks to release: all of them, or only the short ones.
    /// Removed entries leave the cache with them — a released lock can
    /// never produce a cache hit.
    pub fn take_releasable(&self, all: bool) -> Vec<LockName> {
        let mut held = self.held.lock();
        let names: Vec<LockName> = if all {
            held.drain().map(|(n, _)| n).collect()
        } else {
            let short: Vec<LockName> = held
                .iter()
                .filter(|(_, e)| e.class == LockClass::Short)
                .map(|(n, _)| n.clone())
                .collect();
            for n in &short {
                held.remove(n);
            }
            short
        };
        self.held_count.store(held.len(), Ordering::Relaxed);
        names
    }

    /// Number of locks currently recorded: one atomic load (used by the
    /// `FewestLocks` victim policy inside deadlock detection).
    pub fn held_count(&self) -> usize {
        self.held_count.load(Ordering::Relaxed)
    }
}

/// Registry of live transactions: allocates ids and maps them to their
/// [`TxnHandle`]s for the by-id slow paths.
#[derive(Debug, Default)]
pub struct TxnRegistry {
    next: AtomicU64,
    txns: Mutex<HashMap<TxnId, Arc<TxnHandle>>>,
}

impl TxnRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TxnRegistry::default()
    }

    /// Starts a transaction, returning its id. Convenience over
    /// [`begin_handle`](TxnRegistry::begin_handle) for callers that
    /// address transactions by id (tests, benches).
    pub fn begin(&self) -> TxnId {
        self.begin_handle().id()
    }

    /// Starts a transaction and returns its handle — resolve once, then
    /// thread it through every lock request.
    pub fn begin_handle(&self) -> Arc<TxnHandle> {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let handle = Arc::new(TxnHandle::new(id));
        self.txns.lock().insert(id, handle.clone());
        handle
    }

    /// The handle of a live transaction.
    pub fn handle(&self, txn: TxnId) -> Option<Arc<TxnHandle>> {
        self.txns.lock().get(&txn).cloned()
    }

    /// Marks a transaction as deadlock victim; returns `true` if this call
    /// performed the transition (so concurrent detectors of the same cycle
    /// count one deadlock, not two).
    pub fn mark_aborted(&self, txn: TxnId) -> bool {
        match self.handle(txn) {
            Some(h) => h.mark_aborted(),
            None => false,
        }
    }

    /// Whether the transaction has been marked as victim.
    pub fn is_aborted(&self, txn: TxnId) -> bool {
        self.handle(txn).map(|h| h.is_aborted()).unwrap_or(false)
    }

    /// Drains the locks to release: all of them, or only the short ones.
    pub fn take_releasable(&self, txn: TxnId, all: bool) -> Vec<LockName> {
        match self.handle(txn) {
            Some(h) => h.take_releasable(all),
            None => Vec::new(),
        }
    }

    /// Number of locks currently recorded for the transaction.
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.handle(txn).map(|h| h.held_count()).unwrap_or(0)
    }

    /// Removes a finished transaction. Call after releasing its locks.
    pub fn finish(&self, txn: TxnId) {
        self.txns.lock().remove(&txn);
    }

    /// Number of live transactions.
    pub fn live(&self) -> usize {
        self.txns.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{LockName, LockTarget};
    use xtc_splid::SplId;

    fn name(fam: u8) -> LockName {
        LockName {
            family: fam,
            target: LockTarget::Node(SplId::root()),
        }
    }

    #[test]
    fn begin_ids_are_monotonic() {
        let r = TxnRegistry::new();
        let a = r.begin();
        let b = r.begin();
        assert!(b > a);
        assert_eq!(r.live(), 2);
        r.finish(a);
        assert_eq!(r.live(), 1);
    }

    #[test]
    fn abort_flag_visible_through_handle() {
        let r = TxnRegistry::new();
        let h = r.begin_handle();
        assert!(!r.is_aborted(h.id()));
        r.mark_aborted(h.id());
        assert!(r.is_aborted(h.id()));
        // The handle sees the flag without the registry mutex.
        assert!(h.is_aborted());
        // Only the first transition reports `true`.
        assert!(!h.mark_aborted());
    }

    #[test]
    fn lock_classes_upgrade_and_release_by_class() {
        let r = TxnRegistry::new();
        let h = r.begin_handle();
        h.record_lock(&name(0), 0, LockClass::Short);
        h.record_lock(&name(1), 0, LockClass::Long);
        h.record_lock(&name(0), 0, LockClass::Long); // upgrade
        let short = h.take_releasable(false);
        assert!(short.is_empty(), "upgraded lock must not release early");
        assert_eq!(h.held_count(), 2);
        let all = h.take_releasable(true);
        assert_eq!(all.len(), 2);
        assert_eq!(h.held_count(), 0);
    }

    #[test]
    fn short_locks_release_at_end_of_operation() {
        let r = TxnRegistry::new();
        let h = r.begin_handle();
        h.record_lock(&name(0), 0, LockClass::Short);
        h.record_lock(&name(1), 0, LockClass::Long);
        let short = h.take_releasable(false);
        assert_eq!(short, vec![name(0)]);
        assert_eq!(h.held_count(), 1);
    }

    #[test]
    fn cache_entries_expire_with_the_epoch_and_with_release() {
        let r = TxnRegistry::new();
        let h = r.begin_handle();
        h.record_lock(&name(0), 3, LockClass::Long);
        assert_eq!(h.cached_mode(&name(0)), Some((3, LockClass::Long)));
        // Epoch bump: the lock is still held (and releasable) but can no
        // longer be served from the cache.
        h.invalidate_cache();
        assert_eq!(h.cached_mode(&name(0)), None);
        assert_eq!(h.held_count(), 1);
        // Re-recording under the new epoch re-primes the cache.
        h.record_lock(&name(0), 3, LockClass::Long);
        assert_eq!(h.cached_mode(&name(0)), Some((3, LockClass::Long)));
        // Release removes the entry outright.
        assert_eq!(h.take_releasable(true).len(), 1);
        assert_eq!(h.cached_mode(&name(0)), None);
    }

    #[test]
    fn record_lock_keeps_strongest_class_and_latest_mode() {
        let r = TxnRegistry::new();
        let h = r.begin_handle();
        h.record_lock(&name(0), 1, LockClass::Long);
        h.record_lock(&name(0), 2, LockClass::Short);
        // Mode follows the table's latest grant; class never weakens.
        assert_eq!(h.cached_mode(&name(0)), Some((2, LockClass::Long)));
        assert_eq!(h.held_count(), 1, "re-acquisition is not a new lock");
    }

    #[test]
    fn isolation_level_classes_match_footnote_5() {
        use IsolationLevel::*;
        assert_eq!(None.read_class(), Option::None);
        assert_eq!(None.write_class(), Option::None);
        assert_eq!(Uncommitted.read_class(), Option::None);
        assert_eq!(Uncommitted.write_class(), Some(LockClass::Long));
        assert_eq!(Committed.read_class(), Some(LockClass::Short));
        assert_eq!(Committed.write_class(), Some(LockClass::Long));
        assert_eq!(Repeatable.read_class(), Some(LockClass::Long));
        assert_eq!(Repeatable.write_class(), Some(LockClass::Long));
    }
}
