//! Transaction registry: identities, abort flags, held-lock bookkeeping,
//! and isolation levels.

use crate::table::LockName;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Transaction identifier. Monotonically increasing; the deadlock victim
/// policy ("youngest dies") compares these.
pub type TxnId = u64;

/// How long a lock is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// Released at the end of the current operation (short read locks of
    /// isolation level *committed*).
    Short,
    /// Released at commit/abort.
    Long,
}

/// The four isolation levels of the experiments (§4.3, footnote 5):
/// "While none acquires no locks at all, all others need long write locks;
/// uncommitted means no read locks, committed and repeatable short and
/// long read locks, respectively."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// No locks at all.
    None,
    /// Uncommitted read: long write locks, no read locks.
    Uncommitted,
    /// Committed read: long write locks, short read locks.
    Committed,
    /// Repeatable read: long write and read locks.
    Repeatable,
    /// Serializable: repeatable read plus index-key locks protecting
    /// direct jumps against phantoms (footnote 1 of the paper: "offered
    /// by the taDOM* group, but not used in our experiments"; here it is
    /// implemented for every protocol via key-value locks on the ID
    /// index).
    Serializable,
}

impl IsolationLevel {
    /// Lock class for read locks, or `None` when reads go unlocked.
    pub fn read_class(self) -> Option<LockClass> {
        match self {
            IsolationLevel::None | IsolationLevel::Uncommitted => None,
            IsolationLevel::Committed => Some(LockClass::Short),
            IsolationLevel::Repeatable | IsolationLevel::Serializable => Some(LockClass::Long),
        }
    }

    /// Lock class for write locks, or `None` when writes go unlocked.
    pub fn write_class(self) -> Option<LockClass> {
        match self {
            IsolationLevel::None => None,
            _ => Some(LockClass::Long),
        }
    }

    /// The four levels of the paper's experiments, weakest first (bench
    /// sweep order; serializable was not measured in the paper and is
    /// kept out of the figure sweeps).
    pub const ALL: [IsolationLevel; 4] = [
        IsolationLevel::None,
        IsolationLevel::Uncommitted,
        IsolationLevel::Committed,
        IsolationLevel::Repeatable,
    ];

    /// `true` when direct jumps must also lock the index key they probe
    /// (phantom protection for `getElementById`).
    pub fn locks_index_keys(self) -> bool {
        matches!(self, IsolationLevel::Serializable)
    }

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            IsolationLevel::None => "none",
            IsolationLevel::Uncommitted => "uncommitted",
            IsolationLevel::Committed => "committed",
            IsolationLevel::Repeatable => "repeatable",
            IsolationLevel::Serializable => "serializable",
        }
    }
}

#[derive(Debug, Default)]
struct TxnEntry {
    aborted: Arc<AtomicBool>,
    /// Held lock names with their class (strongest wins on re-acquire).
    held: Vec<(LockName, LockClass)>,
}

/// Registry of live transactions.
#[derive(Debug, Default)]
pub struct TxnRegistry {
    next: AtomicU64,
    txns: Mutex<HashMap<TxnId, TxnEntry>>,
}

impl TxnRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TxnRegistry::default()
    }

    /// Starts a transaction.
    pub fn begin(&self) -> TxnId {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.txns.lock().insert(id, TxnEntry::default());
        id
    }

    /// The abort flag handle for a transaction (shared so waiters can poll
    /// it without the registry mutex).
    pub fn abort_flag(&self, txn: TxnId) -> Option<Arc<AtomicBool>> {
        self.txns.lock().get(&txn).map(|e| e.aborted.clone())
    }

    /// Marks a transaction as deadlock victim; returns `true` if this call
    /// performed the transition (so concurrent detectors of the same cycle
    /// count one deadlock, not two).
    pub fn mark_aborted(&self, txn: TxnId) -> bool {
        match self.txns.lock().get(&txn) {
            Some(e) => !e.aborted.swap(true, Ordering::SeqCst),
            None => false,
        }
    }

    /// Whether the transaction has been marked as victim.
    pub fn is_aborted(&self, txn: TxnId) -> bool {
        self.txns
            .lock()
            .get(&txn)
            .map(|e| e.aborted.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    /// Records a (possibly re-acquired) lock; keeps the strongest class.
    pub fn record_lock(&self, txn: TxnId, name: LockName, class: LockClass) {
        let mut g = self.txns.lock();
        let Some(e) = g.get_mut(&txn) else { return };
        match e.held.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c = (*c).max(class),
            None => e.held.push((name, class)),
        }
    }

    /// Drains the locks to release: all of them, or only the short ones.
    pub fn take_releasable(&self, txn: TxnId, all: bool) -> Vec<LockName> {
        let mut g = self.txns.lock();
        let Some(e) = g.get_mut(&txn) else {
            return Vec::new();
        };
        if all {
            e.held.drain(..).map(|(n, _)| n).collect()
        } else {
            let (short, long): (Vec<_>, Vec<_>) = e
                .held
                .drain(..)
                .partition(|(_, c)| *c == LockClass::Short);
            e.held = long;
            short.into_iter().map(|(n, _)| n).collect()
        }
    }

    /// Number of locks currently recorded for the transaction.
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.txns.lock().get(&txn).map(|e| e.held.len()).unwrap_or(0)
    }

    /// Removes a finished transaction. Call after releasing its locks.
    pub fn finish(&self, txn: TxnId) {
        self.txns.lock().remove(&txn);
    }

    /// Number of live transactions.
    pub fn live(&self) -> usize {
        self.txns.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{LockName, LockTarget};
    use xtc_splid::SplId;

    fn name(fam: u8) -> LockName {
        LockName {
            family: fam,
            target: LockTarget::Node(SplId::root()),
        }
    }

    #[test]
    fn begin_ids_are_monotonic() {
        let r = TxnRegistry::new();
        let a = r.begin();
        let b = r.begin();
        assert!(b > a);
        assert_eq!(r.live(), 2);
        r.finish(a);
        assert_eq!(r.live(), 1);
    }

    #[test]
    fn abort_flag_visible() {
        let r = TxnRegistry::new();
        let t = r.begin();
        assert!(!r.is_aborted(t));
        let flag = r.abort_flag(t).unwrap();
        r.mark_aborted(t);
        assert!(r.is_aborted(t));
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn lock_classes_upgrade_and_release_by_class() {
        let r = TxnRegistry::new();
        let t = r.begin();
        r.record_lock(t, name(0), LockClass::Short);
        r.record_lock(t, name(1), LockClass::Long);
        r.record_lock(t, name(0), LockClass::Long); // upgrade
        let short = r.take_releasable(t, false);
        assert!(short.is_empty(), "upgraded lock must not release early");
        assert_eq!(r.held_count(t), 2);
        let all = r.take_releasable(t, true);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn short_locks_release_at_end_of_operation() {
        let r = TxnRegistry::new();
        let t = r.begin();
        r.record_lock(t, name(0), LockClass::Short);
        r.record_lock(t, name(1), LockClass::Long);
        let short = r.take_releasable(t, false);
        assert_eq!(short, vec![name(0)]);
        assert_eq!(r.held_count(t), 1);
    }

    #[test]
    fn isolation_level_classes_match_footnote_5() {
        use IsolationLevel::*;
        assert_eq!(None.read_class(), Option::None);
        assert_eq!(None.write_class(), Option::None);
        assert_eq!(Uncommitted.read_class(), Option::None);
        assert_eq!(Uncommitted.write_class(), Some(LockClass::Long));
        assert_eq!(Committed.read_class(), Some(LockClass::Short));
        assert_eq!(Committed.write_class(), Some(LockClass::Long));
        assert_eq!(Repeatable.read_class(), Some(LockClass::Long));
        assert_eq!(Repeatable.write_class(), Some(LockClass::Long));
    }
}
