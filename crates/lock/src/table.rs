//! The lock table: sharded hash table of lock heads with FIFO wait queues,
//! conversion priority, and integrated wait-for-graph deadlock detection.
//!
//! One [`LockTable`] serves all protocols: a protocol is a set of mode
//! *families* (its [`ModeTable`]s) plus mapping logic (`xtc-protocols`).
//! Lock names carry the family, so e.g. Node2PL's structure, content, and
//! jump locks live in separate families that never conflict with each
//! other — exactly the three separate matrices of Figure 1.

use crate::error::LockError;
use crate::modes::{Annex, ModeIdx, ModeTable};
use crate::txn::{LockClass, TxnHandle, TxnId, TxnRegistry};
use parking_lot::{Condvar, Mutex};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_obs::{CostKind, EventKind, Obs};
use xtc_splid::SplId;

/// The four virtual navigation edges whose stability repeatable-read
/// traversal must guarantee (§2 intro, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `getFirstChild()` of the named node.
    FirstChild,
    /// `getLastChild()` of the named node.
    LastChild,
    /// `getNextSibling()` of the named node.
    NextSibling,
    /// `getPreviousSibling()` of the named node.
    PrevSibling,
}

/// What a lock protects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockTarget {
    /// A node, identified by its SPLID.
    Node(SplId),
    /// A virtual navigation edge anchored at a node.
    Edge(SplId, EdgeKind),
    /// A probed value of the ID index — locked under isolation level
    /// serializable so `getElementById` jumps are phantom-free even for
    /// values that do not (yet) exist.
    IndexKey(Vec<u8>),
}

/// Index of a mode family within the protocol's family list.
pub type FamilyId = u8;

/// A lockable name: target + mode family. Different families on the same
/// target never conflict (Figure 1's separate matrices).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockName {
    /// The protocol-defined family this lock belongs to.
    pub family: FamilyId,
    /// What is being locked.
    pub target: LockTarget,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquired {
    /// The lock is held in a sufficient mode.
    Granted,
    /// The requested conversion first requires per-child annex locks
    /// (Fig. 4's subscript rule). Acquire `child_mode` on every direct
    /// child, then retry with `annex_done = true`.
    NeedsAnnex {
        /// Mode to acquire on each direct child.
        child_mode: ModeIdx,
    },
}

/// How the deadlock detector picks the cycle member to abort.
///
/// The paper's XTC uses "youngest dies" (transaction ids are begin
/// timestamps). The alternatives trade rollback cost against starvation
/// behaviour and are exposed for the robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Abort the most recently started cycle member (largest [`TxnId`]).
    /// Cheap rollbacks, no starvation of old transactions.
    #[default]
    Youngest,
    /// Abort the member holding the fewest locks — approximates the
    /// smallest amount of work undone. Ties break youngest-first.
    FewestLocks,
    /// Abort the member the most other transactions are waiting on —
    /// frees the widest blocked set. Ties break youngest-first.
    MostWaiters,
}

impl VictimPolicy {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            VictimPolicy::Youngest => "youngest",
            VictimPolicy::FewestLocks => "fewest-locks",
            VictimPolicy::MostWaiters => "most-waiters",
        }
    }
}

/// Counters of deadlock events, classified per the paper's TaMix analysis:
/// "whether it was caused by lock conversion (frequent occurrence) or by
/// lock requests in separate subtrees (rather rare cases)".
#[derive(Debug, Default)]
pub struct DeadlockStats {
    total: AtomicU64,
    conversion: AtomicU64,
}

impl DeadlockStats {
    /// Total deadlocks resolved (one per victim).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Deadlocks involving at least one lock conversion.
    pub fn conversion_caused(&self) -> u64 {
        self.conversion.load(Ordering::Relaxed)
    }

    fn record(&self, conversion: bool) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if conversion {
            self.conversion.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct Waiter {
    txn: TxnId,
    mode: ModeIdx,
}

#[derive(Default)]
struct LockHead {
    /// One entry per holding transaction.
    granted: Vec<(TxnId, ModeIdx)>,
    /// FIFO queue of new requests.
    queue: VecDeque<Waiter>,
    /// Pending conversions (txn already in `granted`; target mode). These
    /// have priority over queued requests and act as grant barriers for
    /// newcomers, preventing conversion starvation.
    converting: Vec<(TxnId, ModeIdx)>,
}

impl LockHead {
    fn is_unused(&self) -> bool {
        self.granted.is_empty() && self.queue.is_empty() && self.converting.is_empty()
    }
}

struct Shard {
    state: Mutex<HashMap<LockName, LockHead>>,
    cv: Condvar,
}

#[derive(Default)]
struct WaitGraph {
    /// blocked txn → (was it converting, the txns it waits for).
    edges: HashMap<TxnId, (bool, HashSet<TxnId>)>,
}

impl WaitGraph {
    /// Finds a cycle through `start`, returning the members of one path
    /// back to `start`.
    ///
    /// Linear-time reachability DFS: the visited set persists across
    /// backtracking (each node's edge list is scanned exactly once). A
    /// path-enumerating DFS is exponential on the dense wait-for graphs
    /// low lock depths produce — 72 transactions contending on a handful
    /// of names generate graphs where that blows up for hours while
    /// holding the graph mutex.
    fn cycle_through(&self, start: TxnId) -> Option<Vec<TxnId>> {
        let mut visited: HashSet<TxnId> = [start].into();
        let mut path = vec![start];
        self.dfs(start, start, &mut path, &mut visited)
    }

    fn dfs(
        &self,
        start: TxnId,
        cur: TxnId,
        path: &mut Vec<TxnId>,
        visited: &mut HashSet<TxnId>,
    ) -> Option<Vec<TxnId>> {
        let (_, nexts) = self.edges.get(&cur)?;
        for &n in nexts {
            if n == start {
                return Some(path.clone());
            }
            if visited.insert(n) {
                path.push(n);
                if let Some(c) = self.dfs(start, n, path, visited) {
                    return Some(c);
                }
                path.pop();
            }
        }
        None
    }
}

/// The lock table shared by all transactions of one database.
pub struct LockTable {
    shards: Box<[Shard]>,
    families: Vec<Arc<ModeTable>>,
    registry: Arc<TxnRegistry>,
    wfg: Mutex<WaitGraph>,
    deadlocks: DeadlockStats,
    victim_policy: VictimPolicy,
    timeout: Duration,
    /// Whether repeated requests already covered by a held mode may be
    /// served from the per-transaction cache without touching a shard.
    cache_enabled: bool,
    /// Lock escalations performed (transactions switching to shallower
    /// effective lock depth under held-lock pressure).
    escalations: AtomicU64,
    /// Total lock requests served (lock-manager overhead metric). Counts
    /// every request, cache hit or not — this is the paper-comparable
    /// `lock_requests` number of Figs. 7–10.
    requests: AtomicU64,
    /// Requests that actually reached the shared table (cache misses).
    table_requests: AtomicU64,
    /// Requests served from the per-transaction lock cache.
    cache_hits: AtomicU64,
    /// Requests per (family, mode) — the per-mode histogram of §4.1's
    /// lock-manager metrics.
    mode_requests: Vec<Vec<AtomicU64>>,
    /// Observability handle: lock waits charge their measured duration to
    /// its virtual clock; lock events trace through it when tracing.
    obs: Obs,
    /// Failpoint scope of the owning engine: the `lock.acquire` fault
    /// site evaluates in it so chaos can fault one document's lock
    /// manager without touching its catalog neighbors.
    failpoint_scope: xtc_failpoint::ScopeId,
}

/// Wait-slice granularity: bounds the latency of deadlock-victim wakeup
/// (a victim marked between its flag check and its wait misses one
/// notification at most).
const WAIT_SLICE: Duration = Duration::from_millis(20);

impl LockTable {
    /// Creates a table for the given mode families.
    pub fn new(
        families: Vec<Arc<ModeTable>>,
        registry: Arc<TxnRegistry>,
        timeout: Duration,
    ) -> Self {
        let shard_count = 64;
        let shards = (0..shard_count)
            .map(|_| Shard {
                state: Mutex::new(HashMap::new()),
                cv: Condvar::new(),
            })
            .collect();
        let mode_requests = families
            .iter()
            .map(|f| (0..f.len()).map(|_| AtomicU64::new(0)).collect())
            .collect();
        LockTable {
            shards,
            families,
            registry,
            wfg: Mutex::new(WaitGraph::default()),
            deadlocks: DeadlockStats::default(),
            victim_policy: VictimPolicy::default(),
            timeout,
            cache_enabled: true,
            escalations: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            table_requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            mode_requests,
            obs: Obs::default(),
            failpoint_scope: xtc_failpoint::GLOBAL,
        }
    }

    /// Wires the table to an observability handle (builder style; default
    /// a private clock with tracing off). Lock waits charge the handle's
    /// virtual clock, and — when tracing — acquire/wait/grant/convert and
    /// deadlock-victim events are recorded.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle this table reports into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Sets the engine failpoint scope the `lock.acquire` site evaluates
    /// in (builder style; default [`xtc_failpoint::GLOBAL`]).
    pub fn with_failpoint_scope(mut self, scope: xtc_failpoint::ScopeId) -> Self {
        self.failpoint_scope = scope;
        self
    }

    /// Sets the deadlock victim policy (builder style; default
    /// [`VictimPolicy::Youngest`]).
    pub fn with_victim_policy(mut self, policy: VictimPolicy) -> Self {
        self.victim_policy = policy;
        self
    }

    /// Enables or disables the per-transaction lock cache (builder style;
    /// default enabled). Disabling forces every request through the
    /// shared table — the baseline arm of the `lockperf` benchmark and
    /// the cache-equivalence suite.
    pub fn with_lock_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// The active deadlock victim policy.
    pub fn victim_policy(&self) -> VictimPolicy {
        self.victim_policy
    }

    /// Whether the per-transaction lock cache is enabled.
    pub fn lock_cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Records one lock escalation (a transaction crossing its held-lock
    /// threshold and switching to a shallower effective lock depth).
    pub fn record_escalation(&self) {
        self.escalations.fetch_add(1, Ordering::Relaxed);
    }

    /// Lock escalations performed.
    pub fn escalations(&self) -> u64 {
        self.escalations.load(Ordering::Relaxed)
    }

    /// The mode table of a family.
    pub fn family(&self, f: FamilyId) -> &ModeTable {
        &self.families[f as usize]
    }

    /// Deadlock counters.
    pub fn deadlocks(&self) -> &DeadlockStats {
        &self.deadlocks
    }

    /// Total lock requests served.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests that reached the shared table (cache misses).
    pub fn table_requests(&self) -> u64 {
        self.table_requests.load(Ordering::Relaxed)
    }

    /// Requests served from the per-transaction lock cache.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Lock requests per mode: `(family name, mode name, count)` for
    /// every mode that was requested at least once.
    pub fn requests_by_mode(&self) -> Vec<(&'static str, String, u64)> {
        let mut out = Vec::new();
        for (f, fam) in self.families.iter().enumerate() {
            for m in 0..fam.len() {
                let n = self.mode_requests[f][m].load(Ordering::Relaxed);
                if n > 0 {
                    out.push((fam.family(), fam.name(m as ModeIdx).to_string(), n));
                }
            }
        }
        out
    }

    /// The transaction registry this table records held locks in.
    pub fn registry(&self) -> &Arc<TxnRegistry> {
        &self.registry
    }

    fn shard(&self, name: &LockName) -> &Shard {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Stable-within-a-run identity hash of a lock name for trace events
    /// (events are fixed-size; names are protocol-level structures).
    fn name_hash(name: &LockName) -> u64 {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        h.finish()
    }

    /// Requests `mode` on `name` for `txn`, blocking until granted,
    /// deadlock-aborted, or timed out. By-id convenience over
    /// [`lock_with`](LockTable::lock_with): resolves the handle through
    /// the registry map on every call, so hot paths should resolve once
    /// at begin and use `lock_with` directly.
    pub fn lock(
        &self,
        txn: TxnId,
        name: &LockName,
        mode: ModeIdx,
        class: LockClass,
        annex_done: bool,
    ) -> Result<Acquired, LockError> {
        let handle = self
            .registry
            .handle(txn)
            .expect("transaction not registered");
        self.lock_with(&handle, name, mode, class, annex_done)
    }

    /// Requests `mode` on `name` for the transaction behind `txn`,
    /// blocking until granted, deadlock-aborted, or timed out.
    ///
    /// Returns [`Acquired::NeedsAnnex`] (without blocking or changing
    /// state) when the implied conversion requires per-child locks first.
    ///
    /// **Fast path**: when the cache is enabled and the transaction's
    /// cached entry for `name` already covers the request — held mode
    /// absorbs the requested one under the family's conversion lattice
    /// with no annex obligation, and the cached class is at least as
    /// strong — the request is served without touching any shared state.
    /// The failpoint, the request counters, and the abort check still run
    /// on this path so fault injection and `lock_requests` accounting are
    /// identical with the cache on or off.
    pub fn lock_with(
        &self,
        txn: &TxnHandle,
        name: &LockName,
        mode: ModeIdx,
        class: LockClass,
        annex_done: bool,
    ) -> Result<Acquired, LockError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match xtc_failpoint::eval_in(self.failpoint_scope, "lock.acquire") {
            Some(xtc_failpoint::FailAction::Delay(d)) => std::thread::sleep(d),
            Some(xtc_failpoint::FailAction::Error) => return Err(LockError::Injected),
            None => {}
        }
        if let Some(fam) = self.mode_requests.get(name.family as usize) {
            if let Some(ctr) = fam.get(mode as usize) {
                ctr.fetch_add(1, Ordering::Relaxed);
            }
        }
        if txn.is_aborted() {
            return Err(LockError::Aborted);
        }
        let table = self.family(name.family);
        assert!(
            (mode as usize) < table.len(),
            "mode index {mode} out of range for family {}",
            table.family()
        );

        if self.cache_enabled {
            if let Some((held, held_class)) = txn.cached_mode(name) {
                if held_class >= class {
                    let conv = table.conversion(held, mode);
                    if conv.result == held && conv.annex == Annex::None {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.obs.record_with(txn.id(), || EventKind::LockAcquire {
                            name: Self::name_hash(name),
                            mode: held,
                        });
                        return Ok(Acquired::Granted);
                    }
                }
            }
        }
        self.table_requests.fetch_add(1, Ordering::Relaxed);

        let id = txn.id();
        let shard = self.shard(name);
        let mut g = shard.state.lock();
        // Avoid `entry(name.clone())`: a SPLID-bearing name clone on every
        // already-present head is pure overhead; clone only on first use.
        if !g.contains_key(name) {
            g.insert(name.clone(), LockHead::default());
        }
        let head = g.get_mut(name).expect("lock head just ensured");

        if let Some(pos) = head.granted.iter().position(|(t, _)| *t == id) {
            // Conversion path. Record the mode the table actually holds
            // (not the requested one) so the cache mirrors the table.
            let held = head.granted[pos].1;
            let conv = table.conversion(held, mode);
            if conv.result == held {
                drop(g);
                txn.record_lock(name, held, class);
                self.obs.record_with(id, || EventKind::LockAcquire {
                    name: Self::name_hash(name),
                    mode: held,
                });
                return Ok(Acquired::Granted);
            }
            if let Annex::ChildLocks(child_mode) = conv.annex {
                if !annex_done {
                    return Ok(Acquired::NeedsAnnex { child_mode });
                }
            }
            let target = conv.result;
            if self.conversion_grantable(head, id, target, table) {
                head.granted[pos].1 = target;
                drop(g);
                txn.record_lock(name, target, class);
                self.obs.record_with(id, || EventKind::LockConvert {
                    name: Self::name_hash(name),
                    from: held,
                    to: target,
                });
                return Ok(Acquired::Granted);
            }
            head.converting.push((id, target));
            // Recorded while the shard is still locked and before the
            // requester blocks: an observer that sees this event knows the
            // requester cannot be granted until a release happens — the
            // handshake the lock tests synchronize on instead of sleeping.
            self.obs.record_with(id, || EventKind::LockWait {
                name: Self::name_hash(name),
                mode: target,
                converting: true,
            });
            let res = self.wait(shard, g, name, txn, target, table, true);
            if res.is_ok() {
                txn.record_lock(name, target, class);
            }
            return res.map(|()| Acquired::Granted);
        }

        // New request path.
        if head.queue.is_empty() && self.new_grantable(head, id, mode, table, usize::MAX) {
            head.granted.push((id, mode));
            drop(g);
            txn.record_lock(name, mode, class);
            self.obs.record_with(id, || EventKind::LockAcquire {
                name: Self::name_hash(name),
                mode,
            });
            return Ok(Acquired::Granted);
        }
        head.queue.push_back(Waiter { txn: id, mode });
        // See the conversion path: recorded under the shard lock, before
        // blocking, so observers can use it as an "is queued" handshake.
        self.obs.record_with(id, || EventKind::LockWait {
            name: Self::name_hash(name),
            mode,
            converting: false,
        });
        let res = self.wait(shard, g, name, txn, mode, table, false);
        if res.is_ok() {
            txn.record_lock(name, mode, class);
        }
        res.map(|()| Acquired::Granted)
    }

    /// Grant check for a pending conversion: compatible with every *other*
    /// granted mode.
    fn conversion_grantable(
        &self,
        head: &LockHead,
        txn: TxnId,
        target: ModeIdx,
        table: &ModeTable,
    ) -> bool {
        head.granted
            .iter()
            .filter(|(t, _)| *t != txn)
            .all(|(_, m)| table.compatible(target, *m))
    }

    /// Grant check for a queued request at position `pos` (or `usize::MAX`
    /// for "queue empty" fast path): compatible with granted modes,
    /// pending conversion targets, and all earlier waiters.
    fn new_grantable(
        &self,
        head: &LockHead,
        _txn: TxnId,
        mode: ModeIdx,
        table: &ModeTable,
        pos: usize,
    ) -> bool {
        head.granted.iter().all(|(_, m)| table.compatible(mode, *m))
            && head
                .converting
                .iter()
                .all(|(_, m)| table.compatible(mode, *m))
            && head
                .queue
                .iter()
                .take(pos)
                .all(|w| table.compatible(mode, w.mode))
    }

    /// Blocks until the pending request/conversion is granted.
    #[allow(clippy::too_many_arguments)]
    fn wait(
        &self,
        shard: &Shard,
        mut g: parking_lot::MutexGuard<'_, HashMap<LockName, LockHead>>,
        name: &LockName,
        handle: &TxnHandle,
        target: ModeIdx,
        table: &ModeTable,
        converting: bool,
    ) -> Result<(), LockError> {
        let txn = handle.id();
        let started = Instant::now();
        let deadline = started + self.timeout;
        // Attribute the measured wall time of this wait to the virtual
        // clock, whatever the outcome — blocked time is protocol cost even
        // when it ends in an abort or a timeout.
        let charge_wait = |granted: bool| {
            let waited_us = started.elapsed().as_micros() as u64;
            self.obs.charge(CostKind::LockWait, waited_us);
            if granted {
                self.obs.record_with(txn, || EventKind::LockGrant {
                    name: Self::name_hash(name),
                    mode: target,
                    waited_us,
                });
            }
        };
        loop {
            // Aborted by another detector's victim choice?
            if handle.is_aborted() {
                self.remove_request(&mut g, name, txn, converting);
                self.clear_edges(txn);
                shard.cv.notify_all();
                charge_wait(false);
                return Err(LockError::Aborted);
            }
            // Try to grant.
            let head = g.get_mut(name).expect("lock head disappeared");
            if converting {
                if self.conversion_grantable(head, txn, target, table) {
                    head.converting.retain(|(t, _)| *t != txn);
                    let e = head
                        .granted
                        .iter_mut()
                        .find(|(t, _)| *t == txn)
                        .expect("converter lost its grant");
                    e.1 = target;
                    self.clear_edges(txn);
                    shard.cv.notify_all();
                    charge_wait(true);
                    return Ok(());
                }
            } else {
                let pos = head
                    .queue
                    .iter()
                    .position(|w| w.txn == txn)
                    .expect("waiter vanished from queue");
                if self.new_grantable(head, txn, target, table, pos) {
                    head.queue.remove(pos);
                    head.granted.push((txn, target));
                    self.clear_edges(txn);
                    shard.cv.notify_all();
                    charge_wait(true);
                    return Ok(());
                }
            }
            // Record who blocks us and check for deadlock.
            let blockers = self.blockers_of(g.get(name).unwrap(), txn, target, table, converting);
            if let Some(err) = self.update_graph_and_detect(txn, converting, blockers) {
                self.remove_request(&mut g, name, txn, converting);
                shard.cv.notify_all();
                charge_wait(false);
                return Err(err);
            }
            if Instant::now() >= deadline {
                self.remove_request(&mut g, name, txn, converting);
                self.clear_edges(txn);
                shard.cv.notify_all();
                charge_wait(false);
                return Err(LockError::Timeout);
            }
            shard.cv.wait_for(&mut g, WAIT_SLICE);
        }
    }

    fn blockers_of(
        &self,
        head: &LockHead,
        txn: TxnId,
        target: ModeIdx,
        table: &ModeTable,
        converting: bool,
    ) -> HashSet<TxnId> {
        let mut out = HashSet::new();
        for (t, m) in &head.granted {
            if *t != txn && !table.compatible(target, *m) {
                out.insert(*t);
            }
        }
        if !converting {
            for (t, m) in &head.converting {
                if *t != txn && !table.compatible(target, *m) {
                    out.insert(*t);
                }
            }
            for w in head
                .queue
                .iter()
                .take_while(|w| w.txn != txn)
            {
                if !table.compatible(target, w.mode) {
                    out.insert(w.txn);
                }
            }
        }
        out
    }

    /// Picks the cycle member to abort under the configured
    /// [`VictimPolicy`]. Every policy is deterministic for a given cycle
    /// and wait-for graph; ties break towards the youngest member so the
    /// choice is total.
    fn choose_victim(&self, cycle: &[TxnId], wfg: &WaitGraph) -> TxnId {
        match self.victim_policy {
            VictimPolicy::Youngest => *cycle.iter().max().expect("cycle non-empty"),
            VictimPolicy::FewestLocks => cycle
                .iter()
                .copied()
                .min_by_key(|t| (self.registry.held_count(*t), std::cmp::Reverse(*t)))
                .expect("cycle non-empty"),
            VictimPolicy::MostWaiters => cycle
                .iter()
                .copied()
                .max_by_key(|t| {
                    let waiters = wfg
                        .edges
                        .values()
                        .filter(|(_, blocked_on)| blocked_on.contains(t))
                        .count();
                    (waiters, *t)
                })
                .expect("cycle non-empty"),
        }
    }

    /// Updates this transaction's wait-for edges, looks for a cycle, and
    /// resolves it by aborting the member chosen by the victim policy.
    /// Returns an error when this transaction is the victim.
    fn update_graph_and_detect(
        &self,
        txn: TxnId,
        converting: bool,
        blockers: HashSet<TxnId>,
    ) -> Option<LockError> {
        let mut wfg = self.wfg.lock();
        wfg.edges.insert(txn, (converting, blockers));
        let cycle = wfg.cycle_through(txn)?;
        let conversion_involved = cycle
            .iter()
            .any(|t| wfg.edges.get(t).map(|(c, _)| *c).unwrap_or(false))
            || converting;
        let victim = self.choose_victim(&cycle, &wfg);
        if victim == txn {
            wfg.edges.remove(&txn);
            drop(wfg);
            if self.registry.mark_aborted(txn) {
                self.deadlocks.record(conversion_involved);
                self.obs.record_for(
                    txn,
                    EventKind::DeadlockVictim {
                        victim: txn,
                        conversion: conversion_involved,
                    },
                );
            }
            return Some(LockError::Deadlock {
                conversion: conversion_involved,
            });
        }
        drop(wfg);
        if self.registry.mark_aborted(victim) {
            self.deadlocks.record(conversion_involved);
            self.obs.record_for(
                victim,
                EventKind::DeadlockVictim {
                    victim,
                    conversion: conversion_involved,
                },
            );
        }
        // Wake the victim wherever it waits.
        for s in self.shards.iter() {
            s.cv.notify_all();
        }
        None
    }

    fn clear_edges(&self, txn: TxnId) {
        self.wfg.lock().edges.remove(&txn);
    }

    fn remove_request(
        &self,
        g: &mut HashMap<LockName, LockHead>,
        name: &LockName,
        txn: TxnId,
        converting: bool,
    ) {
        if let Some(head) = g.get_mut(name) {
            if converting {
                head.converting.retain(|(t, _)| *t != txn);
            } else {
                head.queue.retain(|w| w.txn != txn);
            }
            if head.is_unused() {
                g.remove(name);
            }
        }
        self.clear_edges(txn);
    }

    /// The mode `txn` currently holds on `name`, if any.
    pub fn held_mode(&self, txn: TxnId, name: &LockName) -> Option<ModeIdx> {
        let g = self.shard(name).state.lock();
        g.get(name)?
            .granted
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, m)| *m)
    }

    /// Releases the short-class locks of `txn` (end of operation under
    /// isolation level *committed*).
    pub fn release_end_of_operation(&self, txn: TxnId) {
        for name in self.registry.take_releasable(txn, false) {
            self.release_one(txn, &name);
        }
    }

    /// Releases every lock of `txn` (commit or abort).
    pub fn release_all(&self, txn: TxnId) {
        for name in self.registry.take_releasable(txn, true) {
            self.release_one(txn, &name);
        }
        self.clear_edges(txn);
    }

    fn release_one(&self, txn: TxnId, name: &LockName) {
        let shard = self.shard(name);
        let mut g = shard.state.lock();
        if let Some(head) = g.get_mut(name) {
            head.granted.retain(|(t, _)| *t != txn);
            if head.is_unused() {
                g.remove(name);
            }
        }
        drop(g);
        shard.cv.notify_all();
    }

    /// Number of granted lock entries across all shards (diagnostics).
    pub fn granted_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().values().map(|h| h.granted.len()).sum::<usize>())
            .sum()
    }
}
