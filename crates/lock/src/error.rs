//! Lock-manager errors.

use std::fmt;

/// Why a lock request failed. All variants mean the transaction must be
/// rolled back (the experiments count these as aborts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// This transaction was chosen as the victim of a deadlock it was part
    /// of. `conversion` classifies the cycle per the paper's analysis
    /// (conversion deadlock vs. distinct-subtree deadlock).
    Deadlock {
        /// At least one cycle member was waiting on a lock conversion.
        conversion: bool,
    },
    /// Another transaction's deadlock detection chose this transaction as
    /// victim while it was waiting.
    Aborted,
    /// The lock wait exceeded the configured timeout (safety valve; also
    /// counted as an abort).
    Timeout,
    /// A failpoint injected this failure (chaos testing only; never
    /// produced in production builds).
    Injected,
}

impl LockError {
    /// `true` for the two deadlock-victim variants.
    pub fn is_deadlock(self) -> bool {
        matches!(self, LockError::Deadlock { .. } | LockError::Aborted)
    }
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Deadlock { conversion: true } => {
                write!(f, "deadlock victim (conversion deadlock)")
            }
            LockError::Deadlock { conversion: false } => {
                write!(f, "deadlock victim (distinct-subtree deadlock)")
            }
            LockError::Aborted => write!(f, "aborted as deadlock victim while waiting"),
            LockError::Timeout => write!(f, "lock wait timed out"),
            LockError::Injected => write!(f, "failpoint-injected lock failure"),
        }
    }
}

impl std::error::Error for LockError {}
