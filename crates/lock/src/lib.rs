//! # xtc-lock — the XTC lock manager with meta-synchronization
//!
//! The protocol-agnostic lock manager of *Contest of XML Lock Protocols*
//! (VLDB 2006, §3.3). It provides:
//!
//! * a **region algebra** ([`algebra`]) interpreting every lock mode of
//!   the contested protocols over three regions of the context node —
//!   the algebra reproduces the paper's printed matrices (Fig. 1, 2, 3a,
//!   4) and *generates* the unpublished ones (taDOM2+/3/3+),
//! * **mode tables** ([`ModeTable`]) with compatibility and conversion
//!   matrices, including the annex rules of Fig. 4 (`CX_NR`, `IX_SR`, …),
//! * a sharded **lock table** ([`LockTable`]) with FIFO queues, conversion
//!   priority, Gray-style asymmetric U-modes, per-family independence
//!   (Node2PL's separate structure/content/jump matrices), and
//! * **deadlock handling**: wait-for-graph cycle detection on block,
//!   youngest-victim abort, and classification into conversion vs.
//!   distinct-subtree deadlocks (the TaMix metric of §4.2),
//! * the **meta-synchronization interface** ([`MetaOp`], [`Protocol`]):
//!   node / level / tree / edge lock requests with release at commit or
//!   end-of-operation, parameterized by the four isolation levels of the
//!   experiments.

#![warn(missing_docs)]

pub mod algebra;
mod error;
mod meta;
mod modes;
mod table;
mod txn;

pub use error::LockError;
pub use meta::{clamp_to_depth, DocView, LockCtx, MetaOp, Protocol};
pub use modes::{Annex, Conversion, ModeIdx, ModeTable};
pub use table::{
    Acquired, DeadlockStats, EdgeKind, FamilyId, LockName, LockTable, LockTarget, VictimPolicy,
};
pub use txn::{IsolationLevel, LockClass, TxnHandle, TxnId, TxnRegistry};
