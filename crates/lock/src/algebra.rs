//! The region algebra underlying every lock mode in the contest.
//!
//! A node lock mode is interpreted over three regions of the context node:
//!
//! * **self** — the node itself,
//! * **children** — all direct children as a unit (the taDOM *level*),
//! * **below** — all deeper descendants as a unit.
//!
//! Each region carries a uniform *coverage* (`-`/R/U/X) plus two *intent*
//! flags saying that individual members of the region are (or may become)
//! read-/write-locked by deeper locks of the same transaction. The self
//! region additionally distinguishes *traverse* access (the node is merely
//! passed through / its existence pinned) from a genuine read — the
//! refinement that lets taDOM3's node-rename lock (`NX`) coexist with pure
//! traversal (`IR`) but not with a real node read (`NR`), cf. footnote 3
//! of the paper.
//!
//! Compatibility is region-wise conflict with Gray & Reuter's asymmetric
//! U-mode rules (validated against the paper's printed matrices: Fig. 1,
//! Fig. 2, Fig. 3a, Fig. 4 — see `xtc-protocols` tests). Conversion is a
//! least-upper-bound in the induced lattice, computed per protocol in
//! `crate::modes` with the paper's annex rules (the `CX_NR`-style
//! subscripts of Fig. 4) when a protocol's mode set lacks the exact join.

/// Uniform coverage of a whole region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cov {
    /// No coverage.
    None,
    /// Shared (read) coverage of every member.
    Read,
    /// Update coverage: read now, possibly write later (Gray's U).
    Update,
    /// Exclusive coverage of every member.
    Excl,
}

/// Access to the context node itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SelfAcc {
    /// Untouched.
    None,
    /// Traversed / existence pinned, content and name not read.
    Traverse,
    /// Read.
    Read,
    /// Update (read with intent to write).
    Update,
    /// Exclusive.
    Excl,
}

/// Coverage + member-intent state of one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Region {
    /// Uniform coverage of the region.
    pub cov: Option<CovNonNone>,
    /// Some members are individually read-locked deeper.
    pub int_read: bool,
    /// Some members are individually write-locked deeper.
    pub int_write: bool,
}

/// Non-`None` coverage (so `Region::cov: Option<_>` has no redundant
/// state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CovNonNone {
    /// Shared.
    Read,
    /// Update.
    Update,
    /// Exclusive.
    Excl,
}

impl Region {
    /// No access at all.
    pub const NONE: Region = Region {
        cov: None,
        int_read: false,
        int_write: false,
    };

    /// Uniform coverage, no member intents.
    pub const fn cov(c: CovNonNone) -> Region {
        Region {
            cov: Some(c),
            int_read: false,
            int_write: false,
        }
    }

    /// Member-intent-only region.
    pub const fn intents(read: bool, write: bool) -> Region {
        Region {
            cov: None,
            int_read: read,
            int_write: write,
        }
    }

    fn cov_rank(self) -> u8 {
        match self.cov {
            None => 0,
            Some(CovNonNone::Read) => 1,
            Some(CovNonNone::Update) => 2,
            Some(CovNonNone::Excl) => 3,
        }
    }
}

/// A lock mode as a point in the region algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgebraMode {
    /// Access to the node itself.
    pub self_acc: SelfAcc,
    /// The direct-child level.
    pub children: Region,
    /// All deeper descendants.
    pub below: Region,
}

impl AlgebraMode {
    /// The bottom of the lattice (no access).
    pub const NONE: AlgebraMode = AlgebraMode {
        self_acc: SelfAcc::None,
        children: Region::NONE,
        below: Region::NONE,
    };

    /// Builds a mode from its parts.
    pub const fn new(self_acc: SelfAcc, children: Region, below: Region) -> Self {
        AlgebraMode {
            self_acc,
            children,
            below,
        }
    }

    /// Region-wise least upper bound.
    pub fn join(self, other: AlgebraMode) -> AlgebraMode {
        AlgebraMode {
            self_acc: self.self_acc.max(other.self_acc),
            children: join_region(self.children, other.children),
            below: join_region(self.below, other.below),
        }
    }

    /// `true` when this mode grants every guarantee of `other` (same or
    /// stronger everywhere). Whole-region coverage subsumes member
    /// intents: `cov >= Read` covers `int_read`, `cov == Excl` covers
    /// `int_write`.
    pub fn covers(self, other: AlgebraMode) -> bool {
        self.self_acc >= other.self_acc
            && region_covers(self.children, other.children)
            && region_covers(self.below, other.below)
    }

    /// `true` when the mode carries write authority anywhere (exclusive
    /// coverage or write intents). Pure-read modes (incl. U modes, which
    /// only *announce* updates) return `false`.
    pub fn has_write(self) -> bool {
        self.self_acc == SelfAcc::Excl
            || self.children.cov == Some(CovNonNone::Excl)
            || self.below.cov == Some(CovNonNone::Excl)
            || self.children.int_write
            || self.below.int_write
    }

    /// A total "strength" score used to pick the minimal covering mode
    /// deterministically during table generation.
    pub fn weight(self) -> u32 {
        let self_w = match self.self_acc {
            SelfAcc::None => 0,
            SelfAcc::Traverse => 1,
            SelfAcc::Read => 2,
            SelfAcc::Update => 3,
            SelfAcc::Excl => 5,
        };
        let reg = |r: Region| {
            u32::from(r.cov_rank()) * 4 + u32::from(r.int_read) + 2 * u32::from(r.int_write)
        };
        self_w + reg(self.children) * 3 + reg(self.below) * 2
    }
}

fn join_region(a: Region, b: Region) -> Region {
    Region {
        cov: a.cov.max(b.cov),
        int_read: a.int_read || b.int_read,
        int_write: a.int_write || b.int_write,
    }
}

fn region_covers(a: Region, b: Region) -> bool {
    a.cov_rank() >= b.cov_rank()
        && (!b.int_read || a.int_read || a.cov_rank() >= 1)
        && (!b.int_write || a.int_write || a.cov == Some(CovNonNone::Excl))
}

/// Region-wise compatibility of a **requested** mode against a **held**
/// mode. Asymmetric: Gray's U rules let an update request join existing
/// readers while blocking new readers behind a held U.
pub fn compatible(requested: AlgebraMode, held: AlgebraMode) -> bool {
    self_compatible(requested.self_acc, held.self_acc)
        && region_compatible(requested.children, held.children)
        && region_compatible(requested.below, held.below)
}

fn self_compatible(req: SelfAcc, held: SelfAcc) -> bool {
    use SelfAcc::*;
    match (req, held) {
        (None, _) | (_, None) => true,
        // Traversal does not read content/name: compatible with everything
        // including a node-exclusive rename (taDOM3 refinement).
        (Traverse, _) | (_, Traverse) => true,
        (Read, Read) => true,
        (Read, Update) => false, // new readers blocked behind held U
        (Update, Read) => true,  // U joins existing readers
        (Update, Update) => false,
        (Excl, _) | (_, Excl) => false,
    }
}

fn region_compatible(req: Region, held: Region) -> bool {
    use CovNonNone::*;
    // coverage vs coverage
    let cc = match (req.cov, held.cov) {
        (None, _) | (_, None) => true,
        (Some(Read), Some(Read)) => true,
        (Some(Read), Some(Update)) => false,
        (Some(Update), Some(Read)) => true,
        (Some(Update), Some(Update)) => false,
        (Some(Excl), _) | (_, Some(Excl)) => false,
    };
    if !cc {
        return false;
    }
    // requested intents vs held coverage
    if req.int_write && held.cov.is_some() {
        return false;
    }
    if req.int_read && matches!(held.cov, Some(Update) | Some(Excl)) {
        return false;
    }
    // requested coverage vs held intents
    if held.int_write && req.cov.is_some() {
        return false;
    }
    if held.int_read && req.cov == Some(Excl) {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use CovNonNone::*;
    use SelfAcc as S;

    fn m(s: S, c: Region, b: Region) -> AlgebraMode {
        AlgebraMode::new(s, c, b)
    }

    // taDOM2 modes under the algebra (self = Read for intention modes:
    // the unrefined protocol does not distinguish IR from NR).
    fn ir() -> AlgebraMode {
        m(S::Read, Region::intents(true, false), Region::intents(true, false))
    }
    fn nr() -> AlgebraMode {
        m(S::Read, Region::NONE, Region::NONE)
    }
    fn lr() -> AlgebraMode {
        m(S::Read, Region::cov(Read), Region::NONE)
    }
    fn sr() -> AlgebraMode {
        m(S::Read, Region::cov(Read), Region::cov(Read))
    }
    fn ix() -> AlgebraMode {
        // Write intent strictly below the child level: the child on the
        // path to the write holds an intention itself (read-pinned), the
        // write sits deeper. This is what makes IX compatible with LR.
        m(S::Read, Region::intents(true, false), Region::intents(false, true))
    }
    fn cx() -> AlgebraMode {
        // A *direct child* is exclusively locked (and with it its
        // subtree) — incompatible with whole-level reads (LR).
        m(S::Read, Region::intents(true, true), Region::intents(false, true))
    }
    fn su() -> AlgebraMode {
        m(S::Update, Region::cov(Update), Region::cov(Update))
    }
    fn sx() -> AlgebraMode {
        m(S::Excl, Region::cov(Excl), Region::cov(Excl))
    }

    #[test]
    fn join_is_commutative_and_idempotent() {
        let modes = [ir(), nr(), lr(), sr(), ix(), su(), sx()];
        for a in modes {
            assert_eq!(a.join(a), a);
            for b in modes {
                assert_eq!(a.join(b), b.join(a));
                assert!(a.join(b).covers(a));
                assert!(a.join(b).covers(b));
            }
        }
    }

    #[test]
    fn covers_is_reflexive_and_antisymmetric_on_distinct() {
        assert!(sr().covers(lr()));
        assert!(lr().covers(nr()));
        assert!(!nr().covers(lr()));
        assert!(sx().covers(su()));
        assert!(!su().covers(sx()));
        // coverage subsumes intents
        assert!(sr().covers(ir()));
        assert!(sx().covers(ix()));
        assert!(!su().covers(ix()), "U does not authorize member writes");
    }

    #[test]
    fn compat_spot_checks_against_figure_3a() {
        // Requested LR vs held IX: + (level read vs writes strictly below
        // the children... wait: IX intents sit on both regions) — in the
        // printed matrix LR/IX is '+' only because IX's child-region holds
        // intents, not coverage.
        assert!(compatible(lr(), ix()));
        assert!(compatible(ix(), lr()));
        // SR vs IX: − both directions (subtree read vs member writes).
        assert!(!compatible(sr(), ix()));
        assert!(!compatible(ix(), sr()));
        // SU asymmetry: SU may be requested over held readers, but new
        // read requests are blocked behind a held SU.
        assert!(compatible(su(), sr()));
        assert!(!compatible(sr(), su()));
        assert!(!compatible(ir(), su()));
        assert!(compatible(su(), ir()));
        // SX conflicts with everything but None.
        for held in [ir(), nr(), lr(), sr(), ix(), cx(), su(), sx()] {
            assert!(!compatible(sx(), held));
            assert!(!compatible(held, sx()));
        }
        assert!(compatible(sx(), AlgebraMode::NONE));
    }

    #[test]
    fn compat_is_antimonotone_in_strength() {
        // If a covers b, then a conflicts with at least everything b
        // conflicts with (as requested and as held).
        let modes = [
            AlgebraMode::NONE,
            ir(),
            nr(),
            lr(),
            sr(),
            ix(),
            su(),
            sx(),
            m(S::Traverse, Region::NONE, Region::NONE),
            m(S::Excl, Region::NONE, Region::NONE), // NX-like
            m(S::Update, Region::NONE, Region::NONE), // NU-like
        ];
        for a in modes {
            for b in modes {
                if !a.covers(b) {
                    continue;
                }
                for other in modes {
                    if compatible(a, other) {
                        assert!(
                            compatible(b, other),
                            "{a:?} covers {b:?} but is more permissive vs {other:?}"
                        );
                    }
                    if compatible(other, a) {
                        assert!(compatible(other, b));
                    }
                }
            }
        }
    }

    #[test]
    fn tadom3_rename_refinement() {
        // NX (node-only exclusive) coexists with traversal (IR with
        // Traverse self) but not with a node read (NR).
        let nx = m(S::Excl, Region::NONE, Region::NONE);
        let ir3 = m(
            S::Traverse,
            Region::intents(true, false),
            Region::intents(true, false),
        );
        assert!(compatible(ir3, nx));
        assert!(compatible(nx, ir3));
        assert!(!compatible(nr(), nx));
        assert!(!compatible(nx, nr()));
        // But NX still cannot coexist with a subtree read of the parent…
        // (checked at the parent: CX vs LR/SR) — and not with another NX.
        assert!(!compatible(nx, nx));
    }

    #[test]
    fn update_mode_is_not_a_write() {
        assert!(!su().has_write());
        assert!(ix().has_write());
        assert!(sx().has_write());
        assert!(!sr().has_write());
    }
}
