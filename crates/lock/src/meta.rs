//! Meta-synchronization (§3.3): the abstract lock-request interface that
//! decouples the node manager from the concrete lock protocol.
//!
//! "The key idea to really enable cross-protocol comparison was the
//! appropriate isolation of the XTC lock manager as a kind of abstract
//! data type. It accepts the locking requests from the XTC node manager
//! in a more abstract form as so-called meta-lock requests. […]
//! Exchanging the lock manager's interface implementation exchanges the
//! system's complete XML locking mechanism."
//!
//! The transaction layer (`xtc-core`) emits one [`MetaOp`] per DOM
//! operation; a [`Protocol`] implementation maps it to concrete mode
//! acquisitions on the shared [`LockTable`].

use crate::error::LockError;
use crate::modes::ModeIdx;
use crate::table::{Acquired, EdgeKind, FamilyId, LockName, LockTable, LockTarget};
use crate::txn::{IsolationLevel, LockClass, TxnHandle};
use xtc_splid::SplId;

/// Read-only document access a protocol needs while mapping meta-locks:
/// enumerating children (annex locks, level locks) and locating
/// ID-attribute owners inside a subtree (the *-2PL group's IDX scans).
/// Implemented by the node manager (via an adapter in `xtc-core`).
pub trait DocView: Send + Sync {
    /// Direct children of a node, in document order (including the
    /// attribute root).
    fn children(&self, id: &SplId) -> Vec<SplId>;

    /// Elements inside the subtree (inclusive) owning an `id` attribute.
    /// Traverses the document — deliberately expensive (§5.3).
    fn subtree_id_owners(&self, id: &SplId) -> Vec<SplId>;

    /// Every node of the subtree rooted at `id` (inclusive), in document
    /// order. Used by protocols without subtree lock modes (NO2PL/OO2PL)
    /// that must lock subtree members individually.
    fn subtree_nodes(&self, id: &SplId) -> Vec<SplId>;
}

/// The meta-lock requests of §3.3, phrased as the DOM-level operations the
/// transaction layer performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOp<'a> {
    /// Read a single node (content/name inspection).
    ReadNode(&'a SplId),
    /// Navigate from a node along an edge to an (optional) target node.
    Navigate {
        /// The context node the step starts from.
        from: &'a SplId,
        /// The step's result node, if any.
        to: Option<&'a SplId>,
        /// Which navigation edge is traversed.
        edge: EdgeKind,
    },
    /// Read all direct children (`getChildNodes` / `getAttributes`) — the
    /// shared level lock of §3.3.
    ReadLevel(&'a SplId),
    /// Read a whole subtree (`getFragmentNodes`-style access).
    ReadTree(&'a SplId),
    /// Read a whole subtree with declared intent to update parts of it
    /// (tree update lock).
    UpdateTree(&'a SplId),
    /// Modify the content of a node (text/attribute value update).
    WriteContent(&'a SplId),
    /// Rename a node (DOM level 3).
    Rename(&'a SplId),
    /// Insert a new node under `parent` between `left` and `right`.
    InsertNode {
        /// Parent of the new node.
        parent: &'a SplId,
        /// The new node's label.
        node: &'a SplId,
        /// Left sibling, if any.
        left: Option<&'a SplId>,
        /// Right sibling, if any.
        right: Option<&'a SplId>,
    },
    /// Delete the subtree rooted at `node`.
    DeleteTree {
        /// Root of the doomed subtree.
        node: &'a SplId,
        /// Left sibling of `node`, if any (its next-sibling edge changes).
        left: Option<&'a SplId>,
        /// Right sibling of `node`, if any (its previous-sibling edge
        /// changes).
        right: Option<&'a SplId>,
    },
    /// Direct jump to a node via an index (`getElementById`, element
    /// index) for reading.
    JumpRead(&'a SplId),
    /// Serializable-only: shared lock on a probed ID-index value (present
    /// or absent) — the phantom protection of footnote 1.
    IndexKeyRead(&'a [u8]),
    /// Serializable-aware: exclusive lock on an ID-index value being
    /// created, changed, or removed.
    IndexKeyWrite(&'a [u8]),
}

/// Everything a protocol needs to serve one meta-lock request.
pub struct LockCtx<'a> {
    /// The requesting transaction's handle, resolved once at begin —
    /// lock requests never take the global registry mutex.
    pub txn: &'a TxnHandle,
    /// The shared lock table.
    pub table: &'a LockTable,
    /// Document access for annex/level/IDX mapping.
    pub doc: &'a dyn DocView,
    /// The transaction's isolation level.
    pub isolation: IsolationLevel,
    /// The configured lock depth (ignored by protocols without depth
    /// support).
    pub lock_depth: u32,
}

impl LockCtx<'_> {
    /// Lock class for read-type locks under the current isolation level,
    /// or `None` when no lock is to be acquired.
    pub fn read_class(&self) -> Option<LockClass> {
        self.isolation.read_class()
    }

    /// Lock class for write-type locks, or `None` (isolation `none`).
    pub fn write_class(&self) -> Option<LockClass> {
        self.isolation.write_class()
    }

    /// Acquires `mode` on a node in `family`, resolving annex requirements
    /// by locking every direct child first (Fig. 4 subscript rule).
    pub fn lock_node(
        &self,
        family: FamilyId,
        node: &SplId,
        mode: ModeIdx,
        class: LockClass,
    ) -> Result<(), LockError> {
        let name = LockName {
            family,
            target: LockTarget::Node(node.clone()),
        };
        match self.table.lock_with(self.txn, &name, mode, class, false)? {
            Acquired::Granted => Ok(()),
            Acquired::NeedsAnnex { child_mode } => {
                for child in self.doc.children(node) {
                    let cname = LockName {
                        family,
                        target: LockTarget::Node(child),
                    };
                    match self.table.lock_with(self.txn, &cname, child_mode, class, false)? {
                        Acquired::Granted => {}
                        Acquired::NeedsAnnex { .. } => {
                            unreachable!("annex child locks never cascade")
                        }
                    }
                }
                match self.table.lock_with(self.txn, &name, mode, class, true)? {
                    Acquired::Granted => Ok(()),
                    Acquired::NeedsAnnex { .. } => {
                        unreachable!("annex already satisfied")
                    }
                }
            }
        }
    }

    /// Acquires `mode` on an index-key value in `family`.
    pub fn lock_index_key(
        &self,
        family: FamilyId,
        key: &[u8],
        mode: ModeIdx,
        class: LockClass,
    ) -> Result<(), LockError> {
        let name = LockName {
            family,
            target: LockTarget::IndexKey(key.to_vec()),
        };
        match self.table.lock_with(self.txn, &name, mode, class, false)? {
            Acquired::Granted => Ok(()),
            Acquired::NeedsAnnex { .. } => unreachable!("index keys have no children"),
        }
    }

    /// Acquires `mode` on a navigation edge in `family`.
    pub fn lock_edge(
        &self,
        family: FamilyId,
        node: &SplId,
        kind: EdgeKind,
        mode: ModeIdx,
        class: LockClass,
    ) -> Result<(), LockError> {
        let name = LockName {
            family,
            target: LockTarget::Edge(node.clone(), kind),
        };
        match self.table.lock_with(self.txn, &name, mode, class, false)? {
            Acquired::Granted => Ok(()),
            Acquired::NeedsAnnex { .. } => unreachable!("edge modes have no annexes"),
        }
    }
}

/// A lock protocol: maps meta-lock requests to concrete lock acquisitions.
/// The eleven contestants live in `xtc-protocols`.
pub trait Protocol: Send + Sync {
    /// Protocol name as used in the paper ("taDOM3+", "Node2PLa", …).
    fn name(&self) -> &'static str;

    /// Whether the protocol honours the lock-depth parameter (§2.2
    /// footnote 2). The plain *-2PL group does not.
    fn supports_lock_depth(&self) -> bool;

    /// Serves one meta-lock request, blocking as needed.
    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError>;

    /// Whether read-type meta-locks are served from versioned snapshots
    /// instead of the lock table. A versioned protocol's `acquire` is
    /// only invoked for write-type requests; the transaction layer
    /// resolves reads against a version store at the transaction's
    /// snapshot and never blocks them.
    fn versioned_reads(&self) -> bool {
        false
    }

    /// Whether the protocol defers conflict detection to commit: the
    /// transaction layer tracks a read set and validates it against
    /// committed writes at commit time (optimistic concurrency control).
    fn validates_at_commit(&self) -> bool {
        false
    }
}

/// Depth clamping (§2.2 footnote 2): "Lock depth n determines that, while
/// navigating through the document, individual locks are acquired for
/// existing nodes up to level n. If necessary, all nodes below level n are
/// locked by a subtree lock at level n." Returns the node to lock and
/// whether a subtree lock must be used.
pub fn clamp_to_depth(node: &SplId, depth: u32) -> (SplId, bool) {
    if node.level() as u32 > depth {
        let anc = node
            .ancestor_at_level(depth as usize)
            .expect("depth < level implies the ancestor exists");
        (anc, true)
    } else {
        (node.clone(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_to_depth_matches_footnote() {
        let n = SplId::parse("1.5.3.3.11.3").unwrap(); // level 5
        assert_eq!(n.level(), 5);
        let (same, sub) = clamp_to_depth(&n, 7);
        assert_eq!(same, n);
        assert!(!sub);
        let (same, sub) = clamp_to_depth(&n, 5);
        assert_eq!(same, n);
        assert!(!sub);
        let (anc, sub) = clamp_to_depth(&n, 3);
        assert_eq!(anc, SplId::parse("1.5.3.3").unwrap());
        assert!(sub);
        let (root, sub) = clamp_to_depth(&n, 0);
        assert!(root.is_root());
        assert!(sub);
    }
}
