//! # xtc-server — the catalog's concurrent front door
//!
//! A small connection-oriented server over a multi-document
//! [`Catalog`]: each TCP connection is a *session* served by its own
//! thread; a session opens one document at a time by name and runs
//! TaMix transactions against it through the engine's retry loop. The
//! protocol is deliberately minimal — newline-delimited ASCII commands
//! with `ok …` / `err …` replies — because the contested machinery
//! (admission, locks, WAL, retry) all lives *below* this layer; the
//! server's job is only routing and session lifecycle (DESIGN.md §14).
//!
//! ## Protocol
//!
//! On connect the server greets with `xtc ok session=<id> docs=<n>`.
//! Then, per line:
//!
//! | command        | reply                                                |
//! |----------------|------------------------------------------------------|
//! | `ping`         | `ok pong`                                            |
//! | `docs`         | `ok docs=<name,name,…>`                              |
//! | `open <doc>`   | `ok open <doc>` / `err unknown-doc <doc>`            |
//! | `seed <n>`     | `ok seed=<n>` (reseeds the session RNG)              |
//! | `run <kind>`   | `ok kind=… role=… committed=1 did_work=… attempts=… vt_us=… wall_us=…` / `err …` |
//! | `stats`        | `ok docs=… active_sessions=… total_sessions=… in_flight=… committed=… failed=… replica_reads=… doc=<name>:<role>:<lag_us>:<replicas> …` |
//! | `quit`         | `ok bye`, then the server closes the connection      |
//!
//! `run` accepts both paper names (`TAqueryBook`) and short names
//! (`QueryBook`), case-insensitively. A `run` whose retries exhaust
//! replies `err txn <kind> <reason>` — the session stays usable.
//!
//! ## Replica routing
//!
//! When read replicas are attached to a document ([`Catalog`]'s routing
//! table, kept by `xtc-repl`'s `ReplGroup`), read-only transaction types
//! (`TAqueryBook`) route to the least-lagged healthy replica and reply
//! with `role=replica`; every writer type routes to the primary. The
//! `stats` reply carries one `doc=<name>:<role>:<lag_us>:<replicas>`
//! token per document describing where its reads go right now.
//!
//! Transactions go through [`XtcDb::run_retrying`], so every reply
//! carries both wall-clock and *virtual-time* cost attribution
//! (`vt_us`: the engine-charged simulated microseconds across all
//! attempts and backoffs), which the server benchmark aggregates into
//! per-type tail-latency distributions.
//!
//! [`XtcDb::run_retrying`]: xtc_core::XtcDb::run_retrying

#![warn(missing_docs)]

pub mod client;
mod session;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use xtc_core::{Catalog, RetryPolicy};
use xtc_tamix::BibConfig;

pub use client::{Client, DocReplication, RunReply, StatsReply};

/// Configuration of an [`XtcServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (the bound address is on
    /// the [`ServerHandle`]).
    pub addr: String,
    /// Retry policy for `run` commands (attempt budget, backoff).
    pub retry: RetryPolicy,
    /// Shape of the hosted bib documents — the transaction bodies draw
    /// their random targets from its ID ranges.
    pub bib: BibConfig,
    /// Base seed; session `s` draws from a stream seeded with
    /// `seed ^ s` (stable across runs, distinct across sessions).
    pub seed: u64,
    /// Stack size for session threads. Thousands of concurrent
    /// sessions mean thousands of threads; the protocol loop is shallow,
    /// so a small stack keeps the address-space bill down.
    pub session_stack_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            retry: RetryPolicy {
                max_attempts: 8,
                base: Duration::from_micros(200),
                ..RetryPolicy::default()
            },
            bib: BibConfig::tiny(),
            seed: 42,
            session_stack_bytes: 256 * 1024,
        }
    }
}

/// Server-wide counters (all relaxed: diagnostics, not synchronization).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions ever accepted.
    pub total_sessions: AtomicU64,
    /// Sessions currently connected.
    pub active_sessions: AtomicU64,
    /// `run` commands that committed.
    pub txns_committed: AtomicU64,
    /// `run` commands whose retries exhausted.
    pub txns_failed: AtomicU64,
    /// Committed `run`s served by a read replica rather than a primary.
    pub replica_reads: AtomicU64,
}

impl ServerStats {
    fn load(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.total_sessions.load(Ordering::Relaxed),
            self.active_sessions.load(Ordering::Relaxed),
            self.txns_committed.load(Ordering::Relaxed),
            self.txns_failed.load(Ordering::Relaxed),
            self.replica_reads.load(Ordering::Relaxed),
        )
    }
}

/// Everything a session needs a handle on, shared by `Arc`.
pub(crate) struct Shared {
    pub(crate) catalog: Arc<Catalog>,
    pub(crate) stats: ServerStats,
    pub(crate) retry: RetryPolicy,
    pub(crate) bib: BibConfig,
    pub(crate) seed: u64,
}

/// The server front-end: an accept loop spawning one thread per
/// connection. Construct with [`XtcServer::serve`]; the returned
/// [`ServerHandle`] owns the lifecycle.
pub struct XtcServer;

impl XtcServer {
    /// Binds `config.addr` and starts accepting sessions against
    /// `catalog`. Returns immediately; sessions are served on
    /// background threads until [`ServerHandle::shutdown`].
    pub fn serve(catalog: Arc<Catalog>, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            catalog,
            stats: ServerStats::default(),
            retry: config.retry,
            bib: config.bib,
            seed: config.seed,
        });
        let accept_thread = {
            let shutdown = shutdown.clone();
            let shared = shared.clone();
            let stack = config.session_stack_bytes.max(64 * 1024);
            std::thread::Builder::new()
                .name("xtc-server-accept".to_string())
                .spawn(move || accept_loop(listener, shared, shutdown, stack))?
        };
        Ok(ServerHandle {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            shared,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    stack: usize,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        // The shutdown wake-up connection (see ServerHandle::shutdown)
        // lands here too; checking after accept covers both paths.
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let session_id = shared.stats.total_sessions.fetch_add(1, Ordering::Relaxed);
        shared.stats.active_sessions.fetch_add(1, Ordering::Relaxed);
        let session_shared = shared.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("xtc-session-{session_id}"))
            .stack_size(stack)
            .spawn(move || {
                let _ = session::run(stream, session_id, &session_shared);
                session_shared
                    .stats
                    .active_sessions
                    .fetch_sub(1, Ordering::Relaxed);
            });
        if spawned.is_err() {
            // Out of threads: the kernel told us the fleet is full.
            // Dropping the stream refuses this session; the counter was
            // provisionally bumped above, so undo it.
            shared.stats.active_sessions.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// A running server: its bound address and the means to stop it.
/// Dropping the handle shuts the accept loop down (sessions already
/// connected drain on their own threads).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Stops accepting new sessions and joins the accept thread.
    /// Connected sessions keep draining until their clients disconnect.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // The accept loop is blocked in accept(); a throwaway connection
        // wakes it so it can observe the flag and exit.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
