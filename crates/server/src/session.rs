//! One session: the per-connection protocol loop.

use crate::Shared;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_core::XtcDb;
use xtc_tamix::txns::{run_txn_body, Pacing, TxnKind};

/// Parses a transaction-type name: paper form (`TAqueryBook`) or short
/// form (`QueryBook`), case-insensitive.
fn parse_kind(s: &str) -> Option<TxnKind> {
    let lower = s.to_ascii_lowercase();
    let stripped = lower.strip_prefix("ta").unwrap_or(&lower);
    TxnKind::ALL
        .into_iter()
        .find(|k| k.name().to_ascii_lowercase().trim_start_matches("ta") == stripped)
}

pub(crate) fn run(stream: TcpStream, session_id: u64, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(
        writer,
        "xtc ok session={session_id} docs={}",
        shared.catalog.len()
    )?;

    let mut rng = SmallRng::seed_from_u64(shared.seed ^ session_id);
    let mut doc: Option<(String, Arc<XtcDb>)> = None;
    let pacing = Pacing {
        wait_after_operation: Duration::ZERO,
    };

    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let mut words = line.split_ascii_whitespace();
        let reply = match (words.next(), words.next()) {
            (Some("ping"), _) => "ok pong".to_string(),
            (Some("quit"), _) => {
                writeln!(writer, "ok bye")?;
                return Ok(());
            }
            (Some("docs"), _) => format!("ok docs={}", shared.catalog.doc_names().join(",")),
            (Some("open"), Some(name)) => match shared.catalog.get(name) {
                Some(db) => {
                    doc = Some((name.to_string(), db));
                    format!("ok open {name}")
                }
                None => format!("err unknown-doc {name}"),
            },
            (Some("open"), None) => "err bad-command open needs a document name".to_string(),
            (Some("seed"), Some(n)) => match n.parse::<u64>() {
                Ok(seed) => {
                    rng = SmallRng::seed_from_u64(seed);
                    format!("ok seed={seed}")
                }
                Err(_) => format!("err bad-command seed {n:?} is not a number"),
            },
            (Some("seed"), None) => "err bad-command seed needs a number".to_string(),
            (Some("run"), Some(kind)) => match parse_kind(kind) {
                Some(kind) => run_one(shared, &doc, kind, &mut rng, pacing),
                None => format!("err bad-command unknown transaction type {kind:?}"),
            },
            (Some("run"), None) => "err bad-command run needs a transaction type".to_string(),
            (Some("stats"), _) => {
                let (total, active, committed, failed) = shared.stats.load();
                format!(
                    "ok docs={} active_sessions={active} total_sessions={total} \
                     in_flight={} committed={committed} failed={failed}",
                    shared.catalog.len(),
                    shared.catalog.admitted_in_flight(),
                )
            }
            (Some(cmd), _) => format!("err bad-command {cmd:?}"),
            (None, _) => continue, // blank line
        };
        writeln!(writer, "{reply}")?;
    }
}

/// Executes one `run` command through the engine's retry loop and
/// formats the reply with wall- and virtual-time attribution.
fn run_one(
    shared: &Arc<Shared>,
    doc: &Option<(String, Arc<XtcDb>)>,
    kind: TxnKind,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> String {
    let Some((_, db)) = doc else {
        return "err no-doc open a document first".to_string();
    };
    let started = Instant::now();
    let (result, stats) =
        db.run_retrying(&shared.retry, |txn| run_txn_body(txn, kind, &shared.bib, rng, pacing));
    let wall_us = started.elapsed().as_micros() as u64;
    match result {
        Ok(did_work) => {
            shared.stats.txns_committed.fetch_add(1, Ordering::Relaxed);
            format!(
                "ok kind={} committed=1 did_work={} attempts={} vt_us={} wall_us={wall_us}",
                kind.name(),
                u8::from(did_work),
                stats.attempts,
                stats.vt_elapsed_us,
            )
        }
        Err(e) => {
            shared.stats.txns_failed.fetch_add(1, Ordering::Relaxed);
            // Replies are one line; error Displays contain no newlines.
            format!("err txn {} {e}", kind.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_parse_in_both_forms() {
        assert_eq!(parse_kind("TAqueryBook"), Some(TxnKind::QueryBook));
        assert_eq!(parse_kind("querybook"), Some(TxnKind::QueryBook));
        assert_eq!(parse_kind("LendAndReturn"), Some(TxnKind::LendAndReturn));
        assert_eq!(parse_kind("TArenameTopic"), Some(TxnKind::RenameTopic));
        assert_eq!(parse_kind("Chapter"), Some(TxnKind::Chapter));
        assert_eq!(parse_kind("DelBook"), Some(TxnKind::DelBook));
        assert_eq!(parse_kind("nonsense"), None);
    }
}
