//! One session: the per-connection protocol loop.

use crate::Shared;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_core::{DocRole, ReadRoute};
use xtc_tamix::txns::{run_txn_body, Pacing, TxnKind};

/// Parses a transaction-type name: paper form (`TAqueryBook`) or short
/// form (`QueryBook`), case-insensitive.
fn parse_kind(s: &str) -> Option<TxnKind> {
    let lower = s.to_ascii_lowercase();
    let stripped = lower.strip_prefix("ta").unwrap_or(&lower);
    TxnKind::ALL
        .into_iter()
        .find(|k| k.name().to_ascii_lowercase().trim_start_matches("ta") == stripped)
}

pub(crate) fn run(stream: TcpStream, session_id: u64, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(
        writer,
        "xtc ok session={session_id} docs={}",
        shared.catalog.len()
    )?;

    let mut rng = SmallRng::seed_from_u64(shared.seed ^ session_id);
    // Only the *name* is held open: every `run` re-routes through the
    // catalog, so a replica attached (or a primary promoted) mid-session
    // takes effect on the next transaction.
    let mut doc: Option<String> = None;
    let pacing = Pacing {
        wait_after_operation: Duration::ZERO,
        ..Pacing::default()
    };

    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let mut words = line.split_ascii_whitespace();
        let reply = match (words.next(), words.next()) {
            (Some("ping"), _) => "ok pong".to_string(),
            (Some("quit"), _) => {
                writeln!(writer, "ok bye")?;
                return Ok(());
            }
            (Some("docs"), _) => format!("ok docs={}", shared.catalog.doc_names().join(",")),
            (Some("open"), Some(name)) => match shared.catalog.get(name) {
                Some(_) => {
                    doc = Some(name.to_string());
                    format!("ok open {name}")
                }
                None => format!("err unknown-doc {name}"),
            },
            (Some("open"), None) => "err bad-command open needs a document name".to_string(),
            (Some("seed"), Some(n)) => match n.parse::<u64>() {
                Ok(seed) => {
                    rng = SmallRng::seed_from_u64(seed);
                    format!("ok seed={seed}")
                }
                Err(_) => format!("err bad-command seed {n:?} is not a number"),
            },
            (Some("seed"), None) => "err bad-command seed needs a number".to_string(),
            (Some("run"), Some(kind)) => match parse_kind(kind) {
                Some(kind) => run_one(shared, &doc, kind, &mut rng, pacing),
                None => format!("err bad-command unknown transaction type {kind:?}"),
            },
            (Some("run"), None) => "err bad-command run needs a transaction type".to_string(),
            (Some("stats"), _) => {
                let (total, active, committed, failed, replica_reads) = shared.stats.load();
                let mut reply = format!(
                    "ok docs={} active_sessions={active} total_sessions={total} \
                     in_flight={} committed={committed} failed={failed} \
                     replica_reads={replica_reads}",
                    shared.catalog.len(),
                    shared.catalog.admitted_in_flight(),
                );
                // Per-document replication state: where a read routes
                // right now, its lag, and the attached replica count.
                for name in shared.catalog.doc_names() {
                    if let Ok(route) = shared.catalog.route_read(&name) {
                        let lag = route.shared.as_ref().map_or(0, |s| s.lag_us());
                        reply.push_str(&format!(
                            " doc={name}:{}:{lag}:{}",
                            route.role.name(),
                            shared.catalog.replica_count(&name),
                        ));
                    }
                }
                reply
            }
            (Some(cmd), _) => format!("err bad-command {cmd:?}"),
            (None, _) => continue, // blank line
        };
        writeln!(writer, "{reply}")?;
    }
}

/// Executes one `run` command through the engine's retry loop and
/// formats the reply with wall- and virtual-time attribution. Writers
/// always run on the primary; read-only transactions are routed to the
/// least-lagged healthy replica (the primary when none is attached).
fn run_one(
    shared: &Arc<Shared>,
    doc: &Option<String>,
    kind: TxnKind,
    rng: &mut SmallRng,
    pacing: Pacing,
) -> String {
    let Some(name) = doc else {
        return "err no-doc open a document first".to_string();
    };
    let route = if kind.is_writer() {
        match shared.catalog.route_write(name) {
            Ok(db) => ReadRoute {
                db,
                role: DocRole::Primary,
                shared: None,
            },
            Err(_) => return format!("err unknown-doc {name}"),
        }
    } else {
        match shared.catalog.route_read(name) {
            Ok(route) => route,
            Err(_) => return format!("err unknown-doc {name}"),
        }
    };
    // A replica read holds the apply latch for the whole transaction so
    // the apply loop can never tear its committed snapshot.
    let _latch = route.shared.as_ref().map(|s| s.read_latch());
    let started = Instant::now();
    let (result, stats) = route
        .db
        .run_retrying(&shared.retry, |txn| run_txn_body(txn, kind, &shared.bib, rng, pacing));
    let wall_us = started.elapsed().as_micros() as u64;
    match result {
        Ok(did_work) => {
            shared.stats.txns_committed.fetch_add(1, Ordering::Relaxed);
            if route.role == DocRole::Replica {
                shared.stats.replica_reads.fetch_add(1, Ordering::Relaxed);
            }
            format!(
                "ok kind={} role={} committed=1 did_work={} attempts={} vt_us={} \
                 wall_us={wall_us}",
                kind.name(),
                route.role.name(),
                u8::from(did_work),
                stats.attempts,
                stats.vt_elapsed_us,
            )
        }
        Err(e) => {
            shared.stats.txns_failed.fetch_add(1, Ordering::Relaxed);
            // Replies are one line; error Displays contain no newlines.
            format!("err txn {} {e}", kind.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_parse_in_both_forms() {
        assert_eq!(parse_kind("TAqueryBook"), Some(TxnKind::QueryBook));
        assert_eq!(parse_kind("querybook"), Some(TxnKind::QueryBook));
        assert_eq!(parse_kind("LendAndReturn"), Some(TxnKind::LendAndReturn));
        assert_eq!(parse_kind("TArenameTopic"), Some(TxnKind::RenameTopic));
        assert_eq!(parse_kind("Chapter"), Some(TxnKind::Chapter));
        assert_eq!(parse_kind("DelBook"), Some(TxnKind::DelBook));
        assert_eq!(parse_kind("nonsense"), None);
    }
}
