//! A blocking line-protocol client, used by the server benchmark and
//! the integration tests. One [`Client`] is one session.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A connected session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    session_id: u64,
}

/// Parsed reply to a successful `run` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReply {
    /// Paper name of the transaction type (`TAqueryBook`, …).
    pub kind: String,
    /// Whether the body did its work (`false` = target vanished and the
    /// transaction committed trivially).
    pub did_work: bool,
    /// Attempts the retry loop made (1 = first try committed).
    pub attempts: u32,
    /// Virtual microseconds charged across all attempts and backoffs.
    pub vt_us: u64,
    /// Wall-clock microseconds of the whole retry loop, server-side.
    pub wall_us: u64,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects and consumes the greeting.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        let session_id = greeting
            .split_ascii_whitespace()
            .find_map(|w| w.strip_prefix("session=")?.parse().ok())
            .ok_or_else(|| proto_err(format!("bad greeting: {greeting:?}")))?;
        Ok(Client {
            reader,
            writer,
            session_id,
        })
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Sends one command line and returns the raw reply line.
    pub fn command(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Lists the hosted document names.
    pub fn docs(&mut self) -> io::Result<Vec<String>> {
        let reply = self.command("docs")?;
        let list = reply
            .strip_prefix("ok docs=")
            .ok_or_else(|| proto_err(reply.clone()))?;
        Ok(list.split(',').filter(|s| !s.is_empty()).map(String::from).collect())
    }

    /// Opens a document for this session's subsequent `run`s. `Ok(false)`
    /// = the server doesn't host that name.
    pub fn open(&mut self, doc: &str) -> io::Result<bool> {
        let reply = self.command(&format!("open {doc}"))?;
        if reply.starts_with("ok open ") {
            Ok(true)
        } else if reply.starts_with("err unknown-doc") {
            Ok(false)
        } else {
            Err(proto_err(reply))
        }
    }

    /// Reseeds the session's target-draw RNG.
    pub fn seed(&mut self, seed: u64) -> io::Result<()> {
        let reply = self.command(&format!("seed {seed}"))?;
        reply
            .starts_with("ok seed=")
            .then_some(())
            .ok_or_else(|| proto_err(reply))
    }

    /// Runs one transaction of `kind` on the opened document.
    /// `Ok(Err(reason))` = the server replied `err …` (retries
    /// exhausted, no document open); the session remains usable.
    pub fn run(&mut self, kind: &str) -> io::Result<Result<RunReply, String>> {
        let reply = self.command(&format!("run {kind}"))?;
        if let Some(rest) = reply.strip_prefix("ok ") {
            let field = |key: &str| -> io::Result<&str> {
                rest.split_ascii_whitespace()
                    .find_map(|w| w.strip_prefix(key))
                    .ok_or_else(|| proto_err(format!("missing {key} in {reply:?}")))
            };
            Ok(Ok(RunReply {
                kind: field("kind=")?.to_string(),
                did_work: field("did_work=")? == "1",
                attempts: field("attempts=")?.parse().map_err(|_| proto_err(&reply))?,
                vt_us: field("vt_us=")?.parse().map_err(|_| proto_err(&reply))?,
                wall_us: field("wall_us=")?.parse().map_err(|_| proto_err(&reply))?,
            }))
        } else if let Some(reason) = reply.strip_prefix("err ") {
            Ok(Err(reason.to_string()))
        } else {
            Err(proto_err(reply))
        }
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        (self.command("ping")? == "ok pong")
            .then_some(())
            .ok_or_else(|| proto_err("bad ping reply"))
    }

    /// Polite goodbye (the server closes the connection after).
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.command("quit")?;
        Ok(())
    }
}
