//! A blocking line-protocol client, used by the server benchmark and
//! the integration tests. One [`Client`] is one session.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// A connected session.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    session_id: u64,
}

/// Parsed reply to a successful `run` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReply {
    /// Paper name of the transaction type (`TAqueryBook`, …).
    pub kind: String,
    /// Which role served the transaction: `"primary"`, or `"replica"`
    /// for a read routed to a read replica.
    pub role: String,
    /// Whether the body did its work (`false` = target vanished and the
    /// transaction committed trivially).
    pub did_work: bool,
    /// Attempts the retry loop made (1 = first try committed).
    pub attempts: u32,
    /// Virtual microseconds charged across all attempts and backoffs.
    pub vt_us: u64,
    /// Wall-clock microseconds of the whole retry loop, server-side.
    pub wall_us: u64,
}

/// Replication state of one hosted document, from a `stats` reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocReplication {
    /// Document name.
    pub name: String,
    /// Where a read routes right now: `"primary"` or `"replica"`.
    pub role: String,
    /// Deterministic lag of the routed replica, in virtual microseconds
    /// (0 when reads go to the primary).
    pub lag_us: u64,
    /// Read replicas attached to the document.
    pub replicas: usize,
}

/// Parsed reply to a `stats` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Hosted documents.
    pub docs: usize,
    /// Sessions currently connected.
    pub active_sessions: u64,
    /// Sessions ever accepted.
    pub total_sessions: u64,
    /// Transactions currently admitted across the catalog.
    pub in_flight: u64,
    /// `run` commands that committed (server-wide).
    pub committed: u64,
    /// `run` commands whose retries exhausted (server-wide).
    pub failed: u64,
    /// Committed `run`s served by a read replica.
    pub replica_reads: u64,
    /// Per-document replication state, in document-name order.
    pub doc_replication: Vec<DocReplication>,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects and consumes the greeting.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let mut reader = BufReader::new(writer.try_clone()?);
        let mut greeting = String::new();
        reader.read_line(&mut greeting)?;
        let session_id = greeting
            .split_ascii_whitespace()
            .find_map(|w| w.strip_prefix("session=")?.parse().ok())
            .ok_or_else(|| proto_err(format!("bad greeting: {greeting:?}")))?;
        Ok(Client {
            reader,
            writer,
            session_id,
        })
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Sends one command line and returns the raw reply line.
    pub fn command(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    /// Lists the hosted document names.
    pub fn docs(&mut self) -> io::Result<Vec<String>> {
        let reply = self.command("docs")?;
        let list = reply
            .strip_prefix("ok docs=")
            .ok_or_else(|| proto_err(reply.clone()))?;
        Ok(list.split(',').filter(|s| !s.is_empty()).map(String::from).collect())
    }

    /// Opens a document for this session's subsequent `run`s. `Ok(false)`
    /// = the server doesn't host that name.
    pub fn open(&mut self, doc: &str) -> io::Result<bool> {
        let reply = self.command(&format!("open {doc}"))?;
        if reply.starts_with("ok open ") {
            Ok(true)
        } else if reply.starts_with("err unknown-doc") {
            Ok(false)
        } else {
            Err(proto_err(reply))
        }
    }

    /// Reseeds the session's target-draw RNG.
    pub fn seed(&mut self, seed: u64) -> io::Result<()> {
        let reply = self.command(&format!("seed {seed}"))?;
        reply
            .starts_with("ok seed=")
            .then_some(())
            .ok_or_else(|| proto_err(reply))
    }

    /// Runs one transaction of `kind` on the opened document.
    /// `Ok(Err(reason))` = the server replied `err …` (retries
    /// exhausted, no document open); the session remains usable.
    pub fn run(&mut self, kind: &str) -> io::Result<Result<RunReply, String>> {
        let reply = self.command(&format!("run {kind}"))?;
        if let Some(rest) = reply.strip_prefix("ok ") {
            let field = |key: &str| -> io::Result<&str> {
                rest.split_ascii_whitespace()
                    .find_map(|w| w.strip_prefix(key))
                    .ok_or_else(|| proto_err(format!("missing {key} in {reply:?}")))
            };
            Ok(Ok(RunReply {
                kind: field("kind=")?.to_string(),
                role: field("role=")?.to_string(),
                did_work: field("did_work=")? == "1",
                attempts: field("attempts=")?.parse().map_err(|_| proto_err(&reply))?,
                vt_us: field("vt_us=")?.parse().map_err(|_| proto_err(&reply))?,
                wall_us: field("wall_us=")?.parse().map_err(|_| proto_err(&reply))?,
            }))
        } else if let Some(reason) = reply.strip_prefix("err ") {
            Ok(Err(reason.to_string()))
        } else {
            Err(proto_err(reply))
        }
    }

    /// Fetches and parses the server-wide counters and per-document
    /// replication state.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        let reply = self.command("stats")?;
        let rest = reply
            .strip_prefix("ok ")
            .ok_or_else(|| proto_err(reply.clone()))?
            .to_string();
        let field = |key: &str| -> io::Result<u64> {
            rest.split_ascii_whitespace()
                .find_map(|w| w.strip_prefix(key))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| proto_err(format!("missing {key} in {reply:?}")))
        };
        let mut doc_replication = Vec::new();
        for token in rest.split_ascii_whitespace() {
            let Some(spec) = token.strip_prefix("doc=") else {
                continue;
            };
            let mut parts = spec.split(':');
            let bad = || proto_err(format!("bad doc token {token:?}"));
            doc_replication.push(DocReplication {
                name: parts.next().ok_or_else(bad)?.to_string(),
                role: parts.next().ok_or_else(bad)?.to_string(),
                lag_us: parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?,
                replicas: parts.next().and_then(|v| v.parse().ok()).ok_or_else(bad)?,
            });
        }
        Ok(StatsReply {
            docs: field("docs=")? as usize,
            active_sessions: field("active_sessions=")?,
            total_sessions: field("total_sessions=")?,
            in_flight: field("in_flight=")?,
            committed: field("committed=")?,
            failed: field("failed=")?,
            replica_reads: field("replica_reads=")?,
            doc_replication,
        })
    }

    /// Round-trip liveness check.
    pub fn ping(&mut self) -> io::Result<()> {
        (self.command("ping")? == "ok pong")
            .then_some(())
            .ok_or_else(|| proto_err("bad ping reply"))
    }

    /// Polite goodbye (the server closes the connection after).
    pub fn quit(mut self) -> io::Result<()> {
        let _ = self.command("quit")?;
        Ok(())
    }
}
