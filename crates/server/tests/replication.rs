//! Replica routing through the TCP front door: read-only transaction
//! types land on a read replica, writers on the primary, and the `stats`
//! reply reports per-document replication state.

use std::sync::Arc;
use std::time::Duration;
use xtc_core::{CatalogConfig, XtcConfig};
use xtc_repl::{ReplConfig, ReplGroup};
use xtc_server::{Client, ServerConfig, XtcServer};
use xtc_tamix::{build_bib_catalog, BibConfig};

#[test]
fn reads_route_to_replicas_and_stats_report_replication_state() {
    let template = XtcConfig {
        lock_timeout: Duration::from_secs(5),
        wal: Some(xtc_core::wal::WalConfig::default()),
        ..XtcConfig::default()
    };
    let catalog = Arc::new(
        build_bib_catalog(
            CatalogConfig {
                defaults: template.clone(),
                ..CatalogConfig::default()
            },
            1,
            &BibConfig::tiny(),
        )
        .unwrap(),
    );
    // One-record ship batches with a nonzero per-record cost make the
    // post-write lag observable through `stats`.
    let g = ReplGroup::new(
        catalog.clone(),
        "doc00",
        template,
        ReplConfig {
            apply_cost_us: 3,
            ship_batch: 1,
        },
    )
    .unwrap();
    g.add_replica().unwrap();
    g.catch_up().unwrap();

    let server = XtcServer::serve(catalog, ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    c.open("doc00").unwrap();
    c.seed(3).unwrap();

    // A read-only transaction is served by the replica; a writer by the
    // primary.
    let read = c.run("TAqueryBook").unwrap().unwrap();
    assert_eq!(read.role, "replica");
    assert!(read.did_work);
    let write = c.run("LendAndReturn").unwrap().unwrap();
    assert_eq!(write.role, "primary");

    // The write landed only on the primary so far; one pump round ships
    // a single record and publishes a nonzero deterministic lag.
    g.pump().unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.replica_reads, 1);
    assert_eq!(stats.committed, 2);
    let doc = &stats.doc_replication[0];
    assert_eq!((doc.name.as_str(), doc.replicas), ("doc00", 1));
    assert_eq!(doc.role, "replica");
    assert!(doc.lag_us > 0, "unshipped write should show as lag");
    assert_eq!(doc.lag_us % 3, 0, "lag is records-behind × apply cost");

    // A stale replica still serves (committed-snapshot) reads.
    assert_eq!(c.run("QueryBook").unwrap().unwrap().role, "replica");

    // Caught up again: lag drains to zero.
    g.catch_up().unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.doc_replication[0].lag_us, 0);
    assert_eq!(stats.replica_reads, 2);
    c.quit().unwrap();
}
