//! End-to-end protocol tests: a live server over a small catalog,
//! driven through real TCP connections.

use std::sync::Arc;
use std::time::Duration;
use xtc_core::{AdmissionPolicy, CatalogConfig, DocStoreConfig, XtcConfig};
use xtc_server::{Client, ServerConfig, XtcServer};
use xtc_tamix::{build_bib_catalog, doc_name, BibConfig};

fn serve(docs: usize, max_in_flight: Option<usize>) -> xtc_server::ServerHandle {
    let catalog = build_bib_catalog(
        CatalogConfig {
            defaults: XtcConfig {
                lock_timeout: Duration::from_secs(5),
                // Simulated page-read latency so `run` replies carry
                // nonzero virtual-time attribution.
                store: DocStoreConfig {
                    read_latency: Duration::from_micros(2),
                    ..DocStoreConfig::default()
                },
                ..XtcConfig::default()
            },
            max_in_flight,
            admission: AdmissionPolicy::Queue,
            ..CatalogConfig::default()
        },
        docs,
        &BibConfig::tiny(),
    )
    .unwrap();
    XtcServer::serve(Arc::new(catalog), ServerConfig::default()).unwrap()
}

#[test]
fn session_lifecycle_and_routing() {
    let server = serve(3, None);
    let mut c = Client::connect(server.addr()).unwrap();
    c.ping().unwrap();
    assert_eq!(c.docs().unwrap(), vec!["doc00", "doc01", "doc02"]);

    // Routing: unknown documents are refused, known ones open.
    assert!(!c.open("nope").unwrap());
    assert!(c.open("doc01").unwrap());

    // A run before any open fails cleanly on a fresh session.
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert_ne!(fresh.session_id(), c.session_id());
    let denied = fresh.run("QueryBook").unwrap();
    assert!(denied.unwrap_err().starts_with("no-doc"));

    // Transactions execute and report both clocks.
    c.seed(7).unwrap();
    for kind in ["TAqueryBook", "chapter", "LendAndReturn", "RenameTopic"] {
        let reply = c.run(kind).unwrap().unwrap();
        assert!(reply.attempts >= 1);
        assert!(reply.did_work, "{kind}: target should exist in a fresh doc");
        assert!(reply.vt_us > 0, "{kind}: no virtual time charged");
    }

    // Garbage is rejected without killing the session.
    assert!(c.command("frobnicate").unwrap().starts_with("err bad-command"));
    assert!(c.command("run NoSuchTxn").unwrap().starts_with("err bad-command"));
    c.ping().unwrap();

    let stats = c.command("stats").unwrap();
    assert!(stats.contains("docs=3"), "{stats}");
    assert!(stats.contains("committed="), "{stats}");
    c.quit().unwrap();
    fresh.quit().unwrap();
}

#[test]
fn sessions_on_different_documents_are_isolated() {
    let server = serve(2, None);
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();
    a.open("doc00").unwrap();
    b.open("doc01").unwrap();
    a.seed(1).unwrap();
    // Delete every book in doc00; doc01 must keep its full ID range.
    let books = BibConfig::tiny().books;
    for _ in 0..books * 4 {
        a.run("DelBook").unwrap().unwrap();
    }
    let reply = b.run("QueryBook").unwrap().unwrap();
    assert!(reply.did_work, "doc01 lost its books to doc00's deletes");
    a.quit().unwrap();
    b.quit().unwrap();
}

#[test]
fn concurrent_sessions_share_the_catalog_gate() {
    let mut server = serve(4, Some(8));
    let addr = server.addr();
    let workers: Vec<_> = (0..16)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.open(&doc_name(w % 4)).unwrap();
                let mut committed = 0;
                for _ in 0..10 {
                    if c.run("QueryBook").unwrap().is_ok() {
                        committed += 1;
                    }
                }
                c.quit().unwrap();
                committed
            })
        })
        .collect();
    let committed: usize = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(committed, 160, "queued gate should admit everything");
    // All slots returned once the fleet drained.
    assert_eq!(server.catalog().admitted_in_flight(), 0);
    server.shutdown();
    // After shutdown, new connections are refused or go unanswered, but
    // the already-collected stats survive on the handle.
    use std::sync::atomic::Ordering;
    assert_eq!(server.stats().txns_committed.load(Ordering::Relaxed), 160);
    // A session thread decrements active_sessions *after* its farewell
    // reply is on the wire, so a client can observe `ok bye` (and this
    // test can get here) a beat before the counter drops — wait for the
    // drain instead of sampling it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().active_sessions.load(Ordering::Relaxed) != 0
        && std::time::Instant::now() < deadline
    {
        std::thread::yield_now();
    }
    assert_eq!(server.stats().active_sessions.load(Ordering::Relaxed), 0);
}
