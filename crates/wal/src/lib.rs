//! # xtc-wal — write-ahead logging for the XTC reproduction
//!
//! The durability subsystem the paper's XTC testbed had and our volatile
//! reproduction lacked: an append-only, CRC-checked, segmented log of
//! transaction work, written ahead of any page flush, plus the record
//! vocabulary an ARIES-lite recovery pass needs
//! (analysis → redo from the last checkpoint → logical undo of losers —
//! the recovery driver itself lives in `xtc-core::recovery`, next to the
//! node manager it rebuilds).
//!
//! ## Record set
//!
//! [`RecordBody`]: `Begin` / `Commit` / `Abort` transaction brackets,
//! `PageRedo` (one logical storage mutation, replayed forward), `NodeUndo`
//! (the before-image needed to roll the mutation back), and fuzzy
//! `Checkpoint` records carrying a document snapshot plus the
//! active-transaction table. Every framed record carries its LSN and a
//! CRC32 ([`codec`]); a torn tail (crash mid-flush) is detected, not
//! trusted.
//!
//! Redo granularity is *logical*: a `PageRedo` describes one node-manager
//! mutation (subtree insert, subtree delete, content update, rename)
//! rather than physical page bytes. Pages still carry LSNs — the buffer
//! pool in `xtc-storage` stamps every dirtied page with the LSN of the
//! covering record and refuses to flush it until the log says that LSN is
//! durable (the WAL rule under a steal/no-force policy). Names travel as
//! strings ([`NodePayload`]), not vocabulary surrogates, so recovery can
//! re-intern into a fresh vocabulary.
//!
//! ## Group commit
//!
//! [`Wal::append`] only buffers; [`Wal::commit_sync`] makes an LSN
//! durable. The first committer becomes the *flush leader*: it waits the
//! configured flush window so concurrent commits pile into the batch,
//! writes the whole batch to the backend, syncs once, and wakes every
//! waiter — one fsync per window, not per commit. [`WalStats`] reports
//! the batch sizes.
//!
//! ## Crash semantics
//!
//! [`Wal::crash`] freezes the log: buffered (never-synced) records are
//! discarded and every later append or sync fails with
//! [`WalError::Crashed`]. What [`Wal::read_records`] returns afterwards
//! is exactly what a process kill would have left on disk — the chaos
//! tests crash the engine this way (failpoint sites `wal.commit`,
//! `wal.flush`) and then recover from the survivor prefix.

#![warn(missing_docs)]

pub mod codec;
mod log;
mod record;

pub use log::{MemBackend, Wal, WalBackend, WalConfig, WalSegment, WalStats, WalStorage};
pub use record::{NodePayload, RecordBody, RedoOp, UndoOp, WalRecord};

/// Log sequence number: 1-based position of a record in the log. `0`
/// means "nothing" (no record durable yet, page never dirtied).
pub type Lsn = u64;

/// Transaction identifier as logged (mirrors `xtc_lock::TxnId`).
pub type TxnId = u64;

/// Errors of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The log was crashed (deliberately, by a chaos test, or after an
    /// unrecoverable backend failure); no further writes are accepted.
    Crashed,
    /// A record frame claims zero length — the codec never writes one.
    ZeroLength,
    /// The byte stream ends inside a record frame.
    Truncated,
    /// A record frame failed its CRC32 check.
    BadCrc {
        /// LSN the corrupt frame claimed to carry.
        claimed_lsn: Lsn,
    },
    /// A record frame carries an unknown record-type tag.
    BadRecordType(u8),
    /// A record payload does not parse under its type tag.
    BadPayload(&'static str),
    /// Backend I/O failure (message carried as text so the error stays
    /// `Clone + Eq` for the transaction layer).
    Io(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Crashed => write!(f, "write-ahead log is crashed"),
            WalError::ZeroLength => write!(f, "zero-length record frame"),
            WalError::Truncated => write!(f, "log ends inside a record frame"),
            WalError::BadCrc { claimed_lsn } => {
                write!(f, "CRC mismatch in record claiming lsn {claimed_lsn}")
            }
            WalError::BadRecordType(t) => write!(f, "unknown record type {t}"),
            WalError::BadPayload(what) => write!(f, "malformed record payload: {what}"),
            WalError::Io(msg) => write!(f, "log I/O error: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e.to_string())
    }
}
