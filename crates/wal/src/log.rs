//! The log writer: buffered appends, leader-based group commit, crash
//! freezing, and the two backends (in-memory for tests, segmented files
//! for real durability).

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::codec;
use crate::record::{RecordBody, WalRecord};
use crate::{Lsn, WalError};

/// In-site retry budget for transient injected I/O faults — how many
/// consecutive device failures the log absorbs before declaring the
/// fault permanent.
const IO_ATTEMPTS: u32 = 4;
/// Base backoff between injected-fault retries (grows exponentially).
const IO_BACKOFF_BASE: Duration = Duration::from_micros(50);

/// Where the log's bytes live.
///
/// Backends only see *synced* batches: the [`Wal`] buffers appended
/// records in memory and hands a whole group-commit batch to
/// [`WalBackend::append`], which must make it durable before returning.
pub trait WalBackend: Send + Sync {
    /// Durably append `bytes` (write + sync, one call per flush batch).
    fn append(&self, bytes: &[u8]) -> Result<(), WalError>;
    /// The entire durable log image, in append order.
    fn read_all(&self) -> Result<Vec<u8>, WalError>;
    /// Discard everything past the first `len` bytes (used on reopen to
    /// drop a torn tail).
    fn truncate(&self, len: u64) -> Result<(), WalError>;
    /// The durable image split at the backend's natural boundaries (one
    /// entry per segment file; a single entry for unsegmented backends),
    /// concatenating to exactly [`WalBackend::read_all`]. Because flush
    /// batches never straddle a roll, every entry starts and ends on a
    /// record frame — the invariant log shipping relies on.
    fn read_segments(&self) -> Result<Vec<Vec<u8>>, WalError> {
        Ok(vec![self.read_all()?])
    }
}

/// In-memory backend: "durable" within the process, reset on drop. This
/// is what the crash tests use — [`Wal::crash`] discards the *unsynced*
/// buffer, so what this backend holds is exactly the survivor prefix.
#[derive(Default)]
pub struct MemBackend {
    bytes: Mutex<Vec<u8>>,
}

impl MemBackend {
    /// A fresh, empty backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl WalBackend for MemBackend {
    fn append(&self, bytes: &[u8]) -> Result<(), WalError> {
        self.bytes.lock().unwrap().extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>, WalError> {
        Ok(self.bytes.lock().unwrap().clone())
    }

    fn truncate(&self, len: u64) -> Result<(), WalError> {
        let mut b = self.bytes.lock().unwrap();
        b.truncate(len as usize);
        Ok(())
    }
}

/// Segmented file backend: the log is a directory of `wal-NNNNNNNN.seg`
/// files, rolled once a segment passes its size budget. Appends write to
/// the active segment and `sync_data` before returning.
struct DirBackend {
    dir: PathBuf,
    segment_bytes: u64,
    state: Mutex<DirState>,
}

struct DirState {
    /// Index of the active segment (its file may not exist yet).
    seg_index: u32,
    /// Bytes already in the active segment.
    seg_len: u64,
}

fn segment_name(index: u32) -> String {
    format!("wal-{index:08}.seg")
}

impl DirBackend {
    fn open(dir: PathBuf, segment_bytes: u64) -> Result<Self, WalError> {
        fs::create_dir_all(&dir)?;
        let segments = Self::list_segments(&dir)?;
        let (seg_index, seg_len) = match segments.last() {
            Some(&idx) => (idx, fs::metadata(dir.join(segment_name(idx)))?.len()),
            None => (0, 0),
        };
        Ok(DirBackend {
            dir,
            segment_bytes: segment_bytes.max(1),
            state: Mutex::new(DirState { seg_index, seg_len }),
        })
    }

    fn list_segments(dir: &PathBuf) -> Result<Vec<u32>, WalError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(".seg")) {
                if let Ok(idx) = num.parse::<u32>() {
                    out.push(idx);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

impl WalBackend for DirBackend {
    fn append(&self, bytes: &[u8]) -> Result<(), WalError> {
        let mut st = self.state.lock().unwrap();
        if st.seg_len >= self.segment_bytes {
            st.seg_index += 1;
            st.seg_len = 0;
        }
        let path = self.dir.join(segment_name(st.seg_index));
        let mut file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        st.seg_len += bytes.len() as u64;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>, WalError> {
        let _st = self.state.lock().unwrap();
        let mut out = Vec::new();
        for idx in Self::list_segments(&self.dir)? {
            out.extend_from_slice(&fs::read(self.dir.join(segment_name(idx)))?);
        }
        Ok(out)
    }

    fn read_segments(&self) -> Result<Vec<Vec<u8>>, WalError> {
        let _st = self.state.lock().unwrap();
        let mut out = Vec::new();
        for idx in Self::list_segments(&self.dir)? {
            out.push(fs::read(self.dir.join(segment_name(idx)))?);
        }
        Ok(out)
    }

    fn truncate(&self, len: u64) -> Result<(), WalError> {
        let mut st = self.state.lock().unwrap();
        let mut remaining = len;
        let segments = Self::list_segments(&self.dir)?;
        let mut last_kept = (0u32, 0u64);
        for idx in segments {
            let path = self.dir.join(segment_name(idx));
            let seg_len = fs::metadata(&path)?.len();
            if remaining == 0 {
                fs::remove_file(&path)?;
            } else if seg_len <= remaining {
                remaining -= seg_len;
                last_kept = (idx, seg_len);
            } else {
                let file = fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(remaining)?;
                file.sync_data()?;
                last_kept = (idx, remaining);
                remaining = 0;
            }
        }
        st.seg_index = last_kept.0;
        st.seg_len = last_kept.1;
        Ok(())
    }
}

/// Storage choice for a [`Wal`].
#[derive(Debug, Clone)]
pub enum WalStorage {
    /// Process-lifetime log (tests, crash simulation).
    Memory,
    /// Segmented files under `path`, rolled every `segment_bytes`.
    Directory {
        /// Directory holding the `wal-*.seg` files (created if absent).
        path: PathBuf,
        /// Size budget per segment before rolling to the next file.
        segment_bytes: u64,
    },
}

/// Configuration of a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Where the log's bytes live.
    pub storage: WalStorage,
    /// How long the group-commit flush leader lingers before syncing, so
    /// concurrent commits pile into one fsync. Zero = sync immediately.
    pub group_commit_window: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            storage: WalStorage::Memory,
            group_commit_window: Duration::from_micros(100),
        }
    }
}

/// Counters of the log writer (all monotonic since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (buffered; includes never-synced ones).
    pub appends: u64,
    /// Flush batches written and synced to the backend.
    pub flushes: u64,
    /// Records made durable across all flushes.
    pub synced_records: u64,
    /// Bytes made durable across all flushes.
    pub synced_bytes: u64,
    /// Largest single flush batch, in records — the group-commit win.
    pub max_batch: u64,
}

#[derive(Default)]
struct StatsInner {
    appends: AtomicU64,
    flushes: AtomicU64,
    synced_records: AtomicU64,
    synced_bytes: AtomicU64,
    max_batch: AtomicU64,
}

struct WalState {
    /// Encoded frames appended but not yet handed to the backend.
    buf: Vec<u8>,
    /// Records inside `buf`.
    buf_records: u64,
    /// Highest LSN inside `buf` (meaningless when `buf` is empty).
    buf_max_lsn: Lsn,
    /// LSN the next append will receive.
    next_lsn: Lsn,
    /// Highest LSN the backend is known to hold.
    durable_lsn: Lsn,
    /// Frozen: appends and syncs fail, buffered records are gone.
    crashed: bool,
    /// A flush leader is currently writing the backend.
    flushing: bool,
}

/// One durable log segment's worth of decoded records, as returned by
/// [`Wal::segments_since`]. The memory backend reports its whole log as
/// a single segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalSegment {
    /// The segment's intact records in LSN order (never empty).
    pub records: Vec<WalRecord>,
}

impl WalSegment {
    /// LSN of the first record in the segment.
    pub fn first_lsn(&self) -> Lsn {
        self.records.first().map(|r| r.lsn).unwrap_or(0)
    }

    /// LSN of the last record in the segment.
    pub fn last_lsn(&self) -> Lsn {
        self.records.last().map(|r| r.lsn).unwrap_or(0)
    }
}

/// The write-ahead log. See the crate docs for the protocol; in short:
/// [`append`](Wal::append) buffers, [`commit_sync`](Wal::commit_sync)
/// makes an LSN durable via leader-based group commit, and
/// [`crash`](Wal::crash) freezes the log keeping only what was synced.
pub struct Wal {
    state: Mutex<WalState>,
    cv: Condvar,
    backend: Box<dyn WalBackend>,
    window: Duration,
    stats: StatsInner,
    /// Lock-free mirror of `WalState::durable_lsn`, so hot readers (the
    /// background writeback thread, the eviction path deciding which
    /// dirty pages are WAL-safe) never contend on the log mutex.
    durable_atomic: AtomicU64,
    /// Observability handle: commit waits charge its virtual clock;
    /// append/flush/commit events trace through it when tracing.
    obs: xtc_obs::Obs,
    /// Failpoint scope of the owning engine: the WAL fault sites
    /// (`wal.append_io`, `wal.flush`, `wal.fsync`) and the recovery
    /// sites replaying this log evaluate in it, so chaos can kill one
    /// document's log without touching its catalog neighbors.
    scope: xtc_failpoint::ScopeId,
}

impl Wal {
    /// Open a log. A file-backed log that already holds records resumes
    /// after them (a torn tail from a previous crash is truncated away).
    pub fn open(config: WalConfig) -> Result<Self, WalError> {
        Self::open_with_obs(config, xtc_obs::Obs::default())
    }

    /// [`open`](Wal::open), wired to a shared observability handle.
    pub fn open_with_obs(config: WalConfig, obs: xtc_obs::Obs) -> Result<Self, WalError> {
        Self::open_scoped(config, obs, xtc_failpoint::GLOBAL)
    }

    /// [`open`](Wal::open), wired to a shared observability handle and
    /// an engine failpoint scope (see [`Wal::scope`]).
    pub fn open_scoped(
        config: WalConfig,
        obs: xtc_obs::Obs,
        scope: xtc_failpoint::ScopeId,
    ) -> Result<Self, WalError> {
        let backend: Box<dyn WalBackend> = match config.storage {
            WalStorage::Memory => Box::new(MemBackend::new()),
            WalStorage::Directory { path, segment_bytes } => {
                Box::new(DirBackend::open(path, segment_bytes)?)
            }
        };
        // Scan the durable image: resume LSNs after the intact prefix and
        // drop any torn tail so new appends extend a clean log.
        let image = backend.read_all()?;
        let mut pos = 0usize;
        let mut last_lsn: Lsn = 0;
        let mut damaged = false;
        while pos < image.len() {
            match codec::decode_record(&image[pos..]) {
                Ok((rec, used)) => {
                    last_lsn = rec.lsn;
                    pos += used;
                }
                Err(_) => {
                    damaged = true;
                    break;
                }
            }
        }
        if damaged {
            backend.truncate(pos as u64)?;
        }
        Ok(Wal {
            state: Mutex::new(WalState {
                buf: Vec::new(),
                buf_records: 0,
                buf_max_lsn: 0,
                next_lsn: last_lsn + 1,
                durable_lsn: last_lsn,
                crashed: false,
                flushing: false,
            }),
            cv: Condvar::new(),
            backend,
            window: config.group_commit_window,
            stats: StatsInner::default(),
            durable_atomic: AtomicU64::new(last_lsn),
            obs,
            scope,
        })
    }

    /// The engine failpoint scope this log's fault sites evaluate in.
    pub fn scope(&self) -> xtc_failpoint::ScopeId {
        self.scope
    }

    /// Charges the virtual clock for the wall time an [`eval_io`] site
    /// spent sleeping in transient-fault backoff (sum of the exponential
    /// backoff steps), so injected I/O retries show up in the run's cost
    /// accounting rather than as unexplained wall-clock noise.
    fn charge_transient_backoff(&self, retries: u32, base: Duration) {
        if retries > 0 {
            let slept = base.as_micros() as u64 * ((1u64 << retries.min(16)) - 1);
            self.obs.charge(xtc_obs::CostKind::RetryBackoff, slept);
        }
    }

    /// Append a record to the in-memory buffer and return its LSN. The
    /// record is **not** durable until [`commit_sync`](Wal::commit_sync)
    /// covers its LSN.
    ///
    /// Fault site `wal.append_io` models the buffer's backing device:
    /// transient faults are retried in-site with backoff; a permanent
    /// fault freezes the log (whatever was already synced remains the
    /// durable prefix) and surfaces as [`WalError::Io`] — never a panic.
    pub fn append(&self, body: &RecordBody) -> Result<Lsn, WalError> {
        match xtc_failpoint::eval_io_in(self.scope, "wal.append_io", IO_ATTEMPTS, IO_BACKOFF_BASE) {
            xtc_failpoint::IoFault::Ok => {}
            xtc_failpoint::IoFault::Transient { retries } => {
                self.charge_transient_backoff(retries, IO_BACKOFF_BASE);
            }
            xtc_failpoint::IoFault::Permanent => {
                self.crash();
                return Err(WalError::Io("injected append I/O failure".into()));
            }
        }
        let mut st = self.state.lock().unwrap();
        if st.crashed {
            return Err(WalError::Crashed);
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        let frame = codec::encode_record(lsn, body);
        st.buf.extend_from_slice(&frame);
        st.buf_records += 1;
        st.buf_max_lsn = lsn;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.obs.record(xtc_obs::EventKind::WalAppend { lsn });
        Ok(lsn)
    }

    /// The LSN the *next* append will receive. Under the engine's log
    /// mutex this is the LSN pages dirtied by the upcoming mutation will
    /// be stamped with.
    pub fn next_lsn(&self) -> Lsn {
        self.state.lock().unwrap().next_lsn
    }

    /// Highest LSN known durable. Lock-free: reads an atomic mirror, so
    /// the background writeback thread and the eviction path can poll it
    /// without touching the log mutex.
    pub fn durable_lsn(&self) -> Lsn {
        self.durable_atomic.load(Ordering::Acquire)
    }

    /// Whether [`crash`](Wal::crash) has frozen the log.
    pub fn is_crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Make every record up to `lsn` durable. The first caller becomes
    /// the flush leader: it waits the group-commit window, writes the
    /// whole buffered batch, syncs once, and wakes all waiters.
    pub fn commit_sync(&self, lsn: Lsn) -> Result<(), WalError> {
        let started = std::time::Instant::now();
        let result = self.commit_sync_inner(lsn);
        // Attribute the measured durability wait to the virtual clock —
        // group-commit lingering is protocol cost, not machine noise.
        let waited_us = started.elapsed().as_micros() as u64;
        self.obs.charge(xtc_obs::CostKind::WalFlush, waited_us);
        if result.is_ok() {
            self.obs
                .record(xtc_obs::EventKind::WalCommit { lsn, waited_us });
        }
        result
    }

    fn commit_sync_inner(&self, lsn: Lsn) -> Result<(), WalError> {
        loop {
            let mut st = self.state.lock().unwrap();
            loop {
                if st.durable_lsn >= lsn {
                    return Ok(());
                }
                if st.crashed {
                    return Err(WalError::Crashed);
                }
                if !st.flushing {
                    break;
                }
                st = self.cv.wait(st).unwrap();
            }
            st.flushing = true;
            drop(st);
            self.flush_as_leader()?;
        }
    }

    /// Flush everything currently buffered (checkpoints, shutdown).
    pub fn sync_all(&self) -> Result<Lsn, WalError> {
        let target = {
            let st = self.state.lock().unwrap();
            if st.crashed {
                return Err(WalError::Crashed);
            }
            if st.buf_records == 0 { st.durable_lsn } else { st.buf_max_lsn }
        };
        if target > 0 {
            self.commit_sync(target)?;
        }
        Ok(target)
    }

    /// Leader path: linger for the window, drain the batch, write + sync
    /// it, publish the new durable LSN. `self.state.flushing` is already
    /// set by the caller and is cleared here on every exit path.
    fn flush_as_leader(&self) -> Result<(), WalError> {
        if !self.window.is_zero() {
            std::thread::sleep(self.window);
        }
        let (batch, batch_records, batch_max) = {
            let mut st = self.state.lock().unwrap();
            if st.crashed {
                st.flushing = false;
                self.cv.notify_all();
                return Err(WalError::Crashed);
            }
            let batch = std::mem::take(&mut st.buf);
            let records = st.buf_records;
            st.buf_records = 0;
            (batch, records, st.buf_max_lsn)
        };
        if batch.is_empty() {
            let mut st = self.state.lock().unwrap();
            st.flushing = false;
            self.cv.notify_all();
            return Ok(());
        }

        // Crash site `wal.flush`: Error tears the batch mid-record — a
        // prefix reaches the backend (as a partially-written page would),
        // the log freezes, and recovery must cope with the torn tail.
        let injected = match xtc_failpoint::eval_in(self.scope, "wal.flush") {
            Some(xtc_failpoint::FailAction::Delay(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(xtc_failpoint::FailAction::Error) => true,
            None => false,
        };
        let io = if injected {
            // Every frame is at least FRAME_HEADER+1 bytes, so cutting 3
            // bytes off the end always lands inside the last record.
            let cut = batch.len() - 3;
            let _ = self.backend.append(&batch[..cut]);
            Err(WalError::Crashed)
        } else {
            // Fault site `wal.fsync` models the sync itself failing
            // *cleanly*: unlike `wal.flush` (torn tail), a permanent
            // fsync fault loses the whole batch — the backend keeps the
            // previous record-aligned prefix and the log freezes.
            match xtc_failpoint::eval_io_in(self.scope, "wal.fsync", IO_ATTEMPTS, IO_BACKOFF_BASE) {
                xtc_failpoint::IoFault::Permanent => {
                    Err(WalError::Io("injected fsync failure".into()))
                }
                xtc_failpoint::IoFault::Transient { retries } => {
                    self.charge_transient_backoff(retries, IO_BACKOFF_BASE);
                    self.backend.append(&batch)
                }
                xtc_failpoint::IoFault::Ok => self.backend.append(&batch),
            }
        };

        let mut st = self.state.lock().unwrap();
        match io {
            Ok(()) => {
                st.durable_lsn = st.durable_lsn.max(batch_max);
                self.durable_atomic
                    .fetch_max(st.durable_lsn, Ordering::AcqRel);
                st.flushing = false;
                self.cv.notify_all();
                self.stats.flushes.fetch_add(1, Ordering::Relaxed);
                self.stats.synced_records.fetch_add(batch_records, Ordering::Relaxed);
                self.stats.synced_bytes.fetch_add(batch.len() as u64, Ordering::Relaxed);
                self.stats.max_batch.fetch_max(batch_records, Ordering::Relaxed);
                self.obs.record(xtc_obs::EventKind::WalFlush {
                    records: batch_records,
                    bytes: batch.len() as u64,
                });
                Ok(())
            }
            Err(e) => {
                st.crashed = true;
                st.buf.clear();
                st.buf_records = 0;
                st.flushing = false;
                self.cv.notify_all();
                Err(e)
            }
        }
    }

    /// Simulate a process kill: discard buffered (never-synced) records
    /// and refuse all further writes. What the backend holds afterwards
    /// is exactly the durable prefix a real crash would have left.
    pub fn crash(&self) {
        let mut st = self.state.lock().unwrap();
        st.crashed = true;
        st.buf.clear();
        st.buf_records = 0;
        self.cv.notify_all();
    }

    /// Decode the durable log image: every intact record, plus the torn
    /// tail damage if the image ends inside a frame.
    pub fn read_records(&self) -> Result<(Vec<WalRecord>, Option<WalError>), WalError> {
        let image = self.backend.read_all()?;
        Ok(codec::decode_stream(&image))
    }

    /// The durable records with LSN in `(since, durable_lsn]`, grouped by
    /// backend segment — the log-shipping read path. Each group decodes
    /// independently because flush batches never straddle a segment roll,
    /// so boundaries are always record-aligned. Buffered (unsynced)
    /// records and any torn tail past the durable LSN are never shipped:
    /// a replica only sees what a crash of this log would preserve.
    ///
    /// Works on a [crashed](Wal::crash) log too — promotion ships the
    /// fenced primary's remaining durable prefix through this same call.
    pub fn segments_since(&self, since: Lsn) -> Result<Vec<WalSegment>, WalError> {
        // Durable LSN is snapshotted *before* the image is read, so the
        // image is always a superset of the prefix we admit.
        let durable = self.durable_lsn();
        let mut out = Vec::new();
        for image in self.backend.read_segments()? {
            let (records, _tail_damage) = codec::decode_stream(&image);
            let records: Vec<WalRecord> = records
                .into_iter()
                .filter(|r| r.lsn > since && r.lsn <= durable)
                .collect();
            if !records.is_empty() {
                out.push(WalSegment { records });
            }
        }
        Ok(out)
    }

    /// [`segments_since`](Wal::segments_since), flattened to one record
    /// stream in LSN order.
    pub fn records_since(&self, since: Lsn) -> Result<Vec<WalRecord>, WalError> {
        Ok(self
            .segments_since(since)?
            .into_iter()
            .flat_map(|s| s.records)
            .collect())
    }

    /// Snapshot of the writer's counters.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.stats.appends.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            synced_records: self.stats.synced_records.load(Ordering::Relaxed),
            synced_bytes: self.stats.synced_bytes.load(Ordering::Relaxed),
            max_batch: self.stats.max_batch.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_is_not_durable_until_synced() {
        let wal = Wal::open(WalConfig::default()).unwrap();
        let lsn = wal.append(&RecordBody::Begin { txn: 1 }).unwrap();
        assert_eq!(wal.durable_lsn(), 0);
        let (records, _) = wal.read_records().unwrap();
        assert!(records.is_empty());
        wal.commit_sync(lsn).unwrap();
        assert_eq!(wal.durable_lsn(), lsn);
        let (records, damage) = wal.read_records().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(damage, None);
    }

    #[test]
    fn crash_discards_buffered_records() {
        let wal = Wal::open(WalConfig::default()).unwrap();
        let l1 = wal.append(&RecordBody::Begin { txn: 1 }).unwrap();
        wal.commit_sync(l1).unwrap();
        wal.append(&RecordBody::Commit { txn: 1 }).unwrap();
        wal.crash();
        let (records, damage) = wal.read_records().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(damage, None);
        assert_eq!(wal.append(&RecordBody::Begin { txn: 2 }), Err(WalError::Crashed));
        assert_eq!(wal.commit_sync(l1 + 1), Err(WalError::Crashed));
    }

    #[test]
    fn segments_since_is_record_aligned_across_rollover() {
        let dir = std::env::temp_dir().join(format!(
            "xtc-wal-shipseg-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        // A tiny segment budget forces a roll roughly every record, so
        // the log spreads across many files.
        let wal = Wal::open(WalConfig {
            storage: WalStorage::Directory { path: dir.clone(), segment_bytes: 48 },
            group_commit_window: Duration::ZERO,
        })
        .unwrap();
        let total = 40u64;
        for txn in 1..=total {
            let lsn = wal.append(&RecordBody::Commit { txn }).unwrap();
            wal.commit_sync(lsn).unwrap();
        }
        let on_disk = DirBackend::list_segments(&dir).unwrap().len();
        assert!(on_disk > 3, "expected rollover, got {on_disk} segment files");

        // Full ship: every segment decodes independently (record-aligned
        // boundaries) and the concatenation is the exact LSN sequence.
        let segments = wal.segments_since(0).unwrap();
        assert!(segments.len() > 3);
        let mut expect = 1u64;
        for seg in &segments {
            assert!(!seg.records.is_empty());
            assert_eq!(seg.first_lsn(), expect);
            for rec in &seg.records {
                assert_eq!(rec.lsn, expect);
                expect += 1;
            }
            assert_eq!(seg.last_lsn(), expect - 1);
        }
        assert_eq!(expect, total + 1);

        // Incremental ship from an arbitrary mid-log cursor.
        let tail = wal.records_since(17).unwrap();
        assert_eq!(tail.first().unwrap().lsn, 18);
        assert_eq!(tail.len() as u64, total - 17);

        // Buffered records past the durable prefix are never shipped.
        wal.append(&RecordBody::Begin { txn: 99 }).unwrap();
        assert_eq!(wal.records_since(0).unwrap().len() as u64, total);

        // A crashed (fenced) log still ships its durable prefix.
        wal.crash();
        assert_eq!(wal.records_since(17).unwrap().len() as u64, total - 17);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_concurrent_commits() {
        use std::sync::Arc;
        let wal = Arc::new(
            Wal::open(WalConfig {
                storage: WalStorage::Memory,
                group_commit_window: Duration::from_millis(5),
            })
            .unwrap(),
        );
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    let lsn = wal.append(&RecordBody::Commit { txn: i }).unwrap();
                    wal.commit_sync(lsn).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.synced_records, 8);
        assert!(stats.flushes < 8, "expected batching, got {} flushes", stats.flushes);
        assert!(stats.max_batch >= 2);
    }
}
