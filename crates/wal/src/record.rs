//! Logical record vocabulary of the write-ahead log.
//!
//! Node identities travel as *encoded* SPLIDs (the byte form produced by
//! `xtc_splid::encode`) and names/content as plain strings — never
//! vocabulary surrogates — so a recovery pass can rebuild a document into
//! a fresh `DocStore` and re-intern every name from scratch.

use crate::{Lsn, TxnId, WalError};

/// The node kinds a redo/undo record can materialise, with names spelled
/// out (mirrors `xtc_node::NodeData`, minus the vocabulary indirection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodePayload {
    /// An element node carrying its tag name.
    Element(String),
    /// The synthetic attribute-root child of an element.
    AttrRoot,
    /// An attribute node carrying its attribute name.
    Attribute(String),
    /// A text node (value lives in the string child).
    Text,
    /// A string value node (text content or attribute value bytes).
    Str(Vec<u8>),
}

/// One logical storage mutation, replayed forward during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoOp {
    /// Materialise the given `(encoded splid, payload)` nodes.
    Insert {
        /// Nodes in document order, SPLIDs pre-encoded.
        nodes: Vec<(Vec<u8>, NodePayload)>,
    },
    /// Remove the subtree rooted at the encoded SPLID.
    Delete {
        /// Encoded SPLID of the subtree root.
        root: Vec<u8>,
    },
    /// Overwrite a node's text/attribute content.
    Content {
        /// Encoded SPLID of the content-bearing node.
        node: Vec<u8>,
        /// The content after the mutation.
        new: String,
    },
    /// Rename an element.
    Rename {
        /// Encoded SPLID of the element.
        node: Vec<u8>,
        /// The tag name after the mutation.
        new: String,
    },
}

/// The before-image needed to roll one [`RedoOp`] back (logical undo).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoOp {
    /// Undo an insert: remove the subtree rooted here.
    Delete {
        /// Encoded SPLID of the inserted subtree root.
        root: Vec<u8>,
    },
    /// Undo a delete: restore the captured subtree.
    Restore {
        /// The deleted nodes in document order, SPLIDs pre-encoded.
        nodes: Vec<(Vec<u8>, NodePayload)>,
    },
    /// Undo a content update: put the old content back.
    Content {
        /// Encoded SPLID of the content-bearing node.
        node: Vec<u8>,
        /// The content before the mutation.
        old: String,
    },
    /// Undo a rename: put the old tag name back.
    Rename {
        /// Encoded SPLID of the element.
        node: Vec<u8>,
        /// The tag name before the mutation.
        old: String,
    },
}

/// Body of one log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordBody {
    /// Transaction start (written lazily, before its first logged work).
    Begin {
        /// The starting transaction.
        txn: TxnId,
    },
    /// Transaction commit — the txn is a winner once this is durable.
    Commit {
        /// The committing transaction.
        txn: TxnId,
    },
    /// Transaction abort — all its undo work has been compensated.
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// One logical mutation, replayed forward during redo. A compensation
    /// record (written while rolling back) points at the undo record it
    /// compensates so recovery never undoes the same work twice.
    PageRedo {
        /// The mutating transaction.
        txn: TxnId,
        /// `Some(lsn)` iff this is a compensation record for that
        /// `NodeUndo` record.
        compensates: Option<Lsn>,
        /// The mutation itself.
        op: RedoOp,
    },
    /// The before-image for the transaction's most recent mutation.
    NodeUndo {
        /// The mutating transaction.
        txn: TxnId,
        /// How to roll the mutation back.
        op: UndoOp,
    },
    /// Fuzzy checkpoint: a full document snapshot plus the transactions
    /// active at checkpoint time. Redo starts after the last one.
    Checkpoint {
        /// Transactions live when the checkpoint was taken (potential
        /// losers even though their Begin precedes the checkpoint).
        active: Vec<TxnId>,
        /// Entire document as `(encoded splid, payload)` in document
        /// order.
        snapshot: Vec<(Vec<u8>, NodePayload)>,
    },
}

/// A decoded log record: an LSN plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Position in the log (1-based).
    pub lsn: Lsn,
    /// The record body.
    pub body: RecordBody,
}

// ---------------------------------------------------------------------------
// Binary encoding. Fixed-width little-endian integers, u32-length-prefixed
// byte strings, one leading tag byte per enum. Framing (length, LSN, CRC)
// is the codec's job; this file only serialises bodies.
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.buf.len() - self.pos < n {
            return Err(WalError::BadPayload("payload ends mid-field"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WalError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, WalError> {
        String::from_utf8(self.bytes()?).map_err(|_| WalError::BadPayload("non-utf8 string"))
    }

    fn done(&self) -> Result<(), WalError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WalError::BadPayload("trailing bytes after record body"))
        }
    }
}

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_PAGE_REDO: u8 = 4;
const TAG_NODE_UNDO: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;

impl NodePayload {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            NodePayload::Element(name) => {
                out.push(1);
                put_str(out, name);
            }
            NodePayload::AttrRoot => out.push(2),
            NodePayload::Attribute(name) => {
                out.push(3);
                put_str(out, name);
            }
            NodePayload::Text => out.push(4),
            NodePayload::Str(value) => {
                out.push(5);
                put_bytes(out, value);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WalError> {
        Ok(match r.u8()? {
            1 => NodePayload::Element(r.string()?),
            2 => NodePayload::AttrRoot,
            3 => NodePayload::Attribute(r.string()?),
            4 => NodePayload::Text,
            5 => NodePayload::Str(r.bytes()?),
            _ => return Err(WalError::BadPayload("unknown node payload kind")),
        })
    }
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[(Vec<u8>, NodePayload)]) {
    out.extend_from_slice(&(nodes.len() as u32).to_le_bytes());
    for (splid, payload) in nodes {
        put_bytes(out, splid);
        payload.encode_into(out);
    }
}

fn read_nodes(r: &mut Reader<'_>) -> Result<Vec<(Vec<u8>, NodePayload)>, WalError> {
    let n = r.u32()? as usize;
    // Every node costs at least 5 bytes (length prefix + kind byte); cap
    // the pre-allocation so a corrupt count cannot balloon memory.
    let mut nodes = Vec::with_capacity(n.min(r.buf.len() / 5 + 1));
    for _ in 0..n {
        let splid = r.bytes()?;
        let payload = NodePayload::decode(r)?;
        nodes.push((splid, payload));
    }
    Ok(nodes)
}

impl RedoOp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RedoOp::Insert { nodes } => {
                out.push(1);
                put_nodes(out, nodes);
            }
            RedoOp::Delete { root } => {
                out.push(2);
                put_bytes(out, root);
            }
            RedoOp::Content { node, new } => {
                out.push(3);
                put_bytes(out, node);
                put_str(out, new);
            }
            RedoOp::Rename { node, new } => {
                out.push(4);
                put_bytes(out, node);
                put_str(out, new);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WalError> {
        Ok(match r.u8()? {
            1 => RedoOp::Insert { nodes: read_nodes(r)? },
            2 => RedoOp::Delete { root: r.bytes()? },
            3 => RedoOp::Content { node: r.bytes()?, new: r.string()? },
            4 => RedoOp::Rename { node: r.bytes()?, new: r.string()? },
            _ => return Err(WalError::BadPayload("unknown redo op")),
        })
    }
}

impl UndoOp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            UndoOp::Delete { root } => {
                out.push(1);
                put_bytes(out, root);
            }
            UndoOp::Restore { nodes } => {
                out.push(2);
                put_nodes(out, nodes);
            }
            UndoOp::Content { node, old } => {
                out.push(3);
                put_bytes(out, node);
                put_str(out, old);
            }
            UndoOp::Rename { node, old } => {
                out.push(4);
                put_bytes(out, node);
                put_str(out, old);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WalError> {
        Ok(match r.u8()? {
            1 => UndoOp::Delete { root: r.bytes()? },
            2 => UndoOp::Restore { nodes: read_nodes(r)? },
            3 => UndoOp::Content { node: r.bytes()?, old: r.string()? },
            4 => UndoOp::Rename { node: r.bytes()?, old: r.string()? },
            _ => return Err(WalError::BadPayload("unknown undo op")),
        })
    }
}

impl UndoOp {
    /// The forward mutation that *performs* this undo — what a
    /// compensation record logs while a transaction rolls back.
    pub fn as_redo(&self) -> RedoOp {
        match self {
            UndoOp::Delete { root } => RedoOp::Delete { root: root.clone() },
            UndoOp::Restore { nodes } => RedoOp::Insert { nodes: nodes.clone() },
            UndoOp::Content { node, old } => RedoOp::Content {
                node: node.clone(),
                new: old.clone(),
            },
            UndoOp::Rename { node, old } => RedoOp::Rename {
                node: node.clone(),
                new: old.clone(),
            },
        }
    }
}

impl RecordBody {
    /// Serialise the body (tag byte first) into `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            RecordBody::Begin { txn } => {
                out.push(TAG_BEGIN);
                put_u64(out, *txn);
            }
            RecordBody::Commit { txn } => {
                out.push(TAG_COMMIT);
                put_u64(out, *txn);
            }
            RecordBody::Abort { txn } => {
                out.push(TAG_ABORT);
                put_u64(out, *txn);
            }
            RecordBody::PageRedo { txn, compensates, op } => {
                out.push(TAG_PAGE_REDO);
                put_u64(out, *txn);
                put_u64(out, compensates.unwrap_or(0));
                op.encode_into(out);
            }
            RecordBody::NodeUndo { txn, op } => {
                out.push(TAG_NODE_UNDO);
                put_u64(out, *txn);
                op.encode_into(out);
            }
            RecordBody::Checkpoint { active, snapshot } => {
                out.push(TAG_CHECKPOINT);
                out.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for txn in active {
                    put_u64(out, *txn);
                }
                put_nodes(out, snapshot);
            }
        }
    }

    /// Serialise the body into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        self.encode_into(&mut out);
        out
    }

    /// Parse a body from exactly `bytes` (trailing garbage is an error).
    pub fn decode(bytes: &[u8]) -> Result<Self, WalError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let body = match tag {
            TAG_BEGIN => RecordBody::Begin { txn: r.u64()? },
            TAG_COMMIT => RecordBody::Commit { txn: r.u64()? },
            TAG_ABORT => RecordBody::Abort { txn: r.u64()? },
            TAG_PAGE_REDO => {
                let txn = r.u64()?;
                let compensates = match r.u64()? {
                    0 => None,
                    lsn => Some(lsn),
                };
                RecordBody::PageRedo {
                    txn,
                    compensates,
                    op: RedoOp::decode(&mut r)?,
                }
            }
            TAG_NODE_UNDO => RecordBody::NodeUndo {
                txn: r.u64()?,
                op: UndoOp::decode(&mut r)?,
            },
            TAG_CHECKPOINT => {
                let n = r.u32()? as usize;
                let mut active = Vec::with_capacity(n.min(r.buf.len() / 8 + 1));
                for _ in 0..n {
                    active.push(r.u64()?);
                }
                RecordBody::Checkpoint {
                    active,
                    snapshot: read_nodes(&mut r)?,
                }
            }
            other => return Err(WalError::BadRecordType(other)),
        };
        r.done()?;
        Ok(body)
    }

    /// The transaction this record belongs to, if any (checkpoints are
    /// log-global).
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            RecordBody::Begin { txn }
            | RecordBody::Commit { txn }
            | RecordBody::Abort { txn }
            | RecordBody::PageRedo { txn, .. }
            | RecordBody::NodeUndo { txn, .. } => Some(*txn),
            RecordBody::Checkpoint { .. } => None,
        }
    }
}
