//! Binary framing of log records.
//!
//! Each record occupies one frame:
//!
//! ```text
//! [payload_len: u32 LE][lsn: u64 LE][crc32: u32 LE][payload: payload_len bytes]
//! ```
//!
//! The CRC (IEEE 802.3 polynomial, as in gzip/zlib) covers the LSN bytes
//! and the payload, so a frame whose length field survived a torn write
//! but whose body did not is still rejected. `payload_len == 0` is never
//! written; reading one means the stream is corrupt
//! ([`WalError::ZeroLength`]).
//!
//! [`decode_stream`] is crash-tolerant: it parses records until the first
//! damaged frame and reports the damage alongside the intact prefix — a
//! torn tail after a crash ends the log, it does not poison it.

use crate::record::{RecordBody, WalRecord};
use crate::{Lsn, WalError};

/// Frame header size: length (4) + LSN (8) + CRC (4).
pub const FRAME_HEADER: usize = 16;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `bytes`, continuing from `state` (start with `0`).
/// Exposed so tests can craft deliberately-corrupt frames.
pub fn crc32(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = !state;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Frame one record: encode the body and wrap it in length/LSN/CRC.
pub fn encode_record(lsn: Lsn, body: &RecordBody) -> Vec<u8> {
    let payload = body.encode();
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    let crc = crc32(crc32(0, &lsn.to_le_bytes()), &payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Parse one frame from the front of `bytes`. Returns the record and the
/// number of bytes consumed.
pub fn decode_record(bytes: &[u8]) -> Result<(WalRecord, usize), WalError> {
    if bytes.len() < FRAME_HEADER {
        return Err(WalError::Truncated);
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    if len == 0 {
        return Err(WalError::ZeroLength);
    }
    let lsn = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let claimed_crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() < FRAME_HEADER + len {
        return Err(WalError::Truncated);
    }
    let payload = &bytes[FRAME_HEADER..FRAME_HEADER + len];
    let actual = crc32(crc32(0, &bytes[4..12]), payload);
    if actual != claimed_crc {
        return Err(WalError::BadCrc { claimed_lsn: lsn });
    }
    let body = RecordBody::decode(payload)?;
    Ok((WalRecord { lsn, body }, FRAME_HEADER + len))
}

/// Parse a whole log image. Returns every intact record up to the first
/// damaged frame, plus the damage (if any). `None` damage means the
/// stream ended exactly on a frame boundary.
pub fn decode_stream(bytes: &[u8]) -> (Vec<WalRecord>, Option<WalError>) {
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        match decode_record(&bytes[pos..]) {
            Ok((record, used)) => {
                records.push(record);
                pos += used;
            }
            Err(e) => return (records, Some(e)),
        }
    }
    (records, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn single_record_round_trips() {
        let body = RecordBody::Commit { txn: 42 };
        let framed = encode_record(7, &body);
        let (rec, used) = decode_record(&framed).unwrap();
        assert_eq!(used, framed.len());
        assert_eq!(rec.lsn, 7);
        assert_eq!(rec.body, body);
    }

    #[test]
    fn torn_tail_yields_prefix_and_truncated() {
        let mut log = encode_record(1, &RecordBody::Begin { txn: 1 });
        let second = encode_record(2, &RecordBody::Commit { txn: 1 });
        log.extend_from_slice(&second[..second.len() - 3]);
        let (records, damage) = decode_stream(&log);
        assert_eq!(records.len(), 1);
        assert_eq!(damage, Some(WalError::Truncated));
    }
}
