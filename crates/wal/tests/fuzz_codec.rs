//! Deterministic fuzz of the WAL record codec: round trips over random
//! record bodies, stream decoding with torn tails, and graceful
//! `WalError`s on corrupted frames. Mirrors `crates/splid/tests/
//! fuzz_codec.rs`: fixed seeds, no external RNG dependency, so local
//! builds get the coverage even where proptest is unavailable.

use xtc_wal::codec::{decode_record, decode_stream, encode_record, FRAME_HEADER};
use xtc_wal::{NodePayload, RecordBody, RedoOp, UndoOp, WalError};

/// xorshift64* — no external RNG dependency, stable across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        (0..self.below(max_len)).map(|_| self.next() as u8).collect()
    }

    fn string(&mut self, max_len: u64) -> String {
        (0..self.below(max_len))
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }
}

fn random_payload(rng: &mut Rng) -> NodePayload {
    match rng.below(5) {
        0 => NodePayload::Element(rng.string(12)),
        1 => NodePayload::AttrRoot,
        2 => NodePayload::Attribute(rng.string(12)),
        3 => NodePayload::Text,
        _ => NodePayload::Str(rng.bytes(40)),
    }
}

fn random_nodes(rng: &mut Rng) -> Vec<(Vec<u8>, NodePayload)> {
    (0..rng.below(6))
        .map(|_| (rng.bytes(20), random_payload(rng)))
        .collect()
}

fn random_redo(rng: &mut Rng) -> RedoOp {
    match rng.below(4) {
        0 => RedoOp::Insert {
            nodes: random_nodes(rng),
        },
        1 => RedoOp::Delete {
            root: rng.bytes(20),
        },
        2 => RedoOp::Content {
            node: rng.bytes(20),
            new: rng.string(30),
        },
        _ => RedoOp::Rename {
            node: rng.bytes(20),
            new: rng.string(12),
        },
    }
}

fn random_undo(rng: &mut Rng) -> UndoOp {
    match rng.below(4) {
        0 => UndoOp::Delete {
            root: rng.bytes(20),
        },
        1 => UndoOp::Restore {
            nodes: random_nodes(rng),
        },
        2 => UndoOp::Content {
            node: rng.bytes(20),
            old: rng.string(30),
        },
        _ => UndoOp::Rename {
            node: rng.bytes(20),
            old: rng.string(12),
        },
    }
}

fn random_body(rng: &mut Rng) -> RecordBody {
    let txn = rng.next();
    match rng.below(6) {
        0 => RecordBody::Begin { txn },
        1 => RecordBody::Commit { txn },
        2 => RecordBody::Abort { txn },
        3 => RecordBody::PageRedo {
            txn,
            compensates: if rng.below(2) == 0 {
                None
            } else {
                Some(1 + rng.below(1 << 40))
            },
            op: random_redo(rng),
        },
        4 => RecordBody::NodeUndo {
            txn,
            op: random_undo(rng),
        },
        _ => RecordBody::Checkpoint {
            active: (0..rng.below(5)).map(|_| rng.next()).collect(),
            snapshot: random_nodes(rng),
        },
    }
}

#[test]
fn random_records_round_trip() {
    let mut rng = Rng(0x5EED_1001);
    for case in 0..4000 {
        let body = random_body(&mut rng);
        let lsn = 1 + rng.below(1 << 40);
        let frame = encode_record(lsn, &body);
        let (rec, consumed) =
            decode_record(&frame).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(consumed, frame.len(), "case {case}: partial consumption");
        assert_eq!(rec.lsn, lsn, "case {case}");
        assert_eq!(rec.body, body, "case {case}");
    }
}

#[test]
fn random_streams_round_trip_and_report_torn_tails() {
    let mut rng = Rng(0x5EED_1002);
    for case in 0..300 {
        let bodies: Vec<RecordBody> = (0..1 + rng.below(12)).map(|_| random_body(&mut rng)).collect();
        let mut stream = Vec::new();
        for (i, b) in bodies.iter().enumerate() {
            stream.extend_from_slice(&encode_record(i as u64 + 1, b));
        }
        let (recs, err) = decode_stream(&stream);
        assert!(err.is_none(), "case {case}: clean stream reported {err:?}");
        assert_eq!(recs.len(), bodies.len(), "case {case}");
        for (rec, body) in recs.iter().zip(&bodies) {
            assert_eq!(&rec.body, body, "case {case}");
        }
        // Tear the tail mid-record (a crash between write and sync): every
        // complete prefix record still decodes, the torn one reports an
        // error, and nothing panics.
        let last_start = stream.len() - encode_record(bodies.len() as u64, bodies.last().unwrap()).len();
        let cut = last_start + 1 + rng.below((stream.len() - last_start - 1) as u64) as usize;
        let (prefix, err) = decode_stream(&stream[..cut]);
        assert_eq!(prefix.len(), bodies.len() - 1, "case {case}: torn tail ate a full record");
        assert!(err.is_some(), "case {case}: torn tail went unreported");
    }
}

#[test]
fn bit_flips_never_panic_and_are_detected() {
    let mut rng = Rng(0x5EED_1003);
    let mut detected = 0u32;
    let mut flips = 0u32;
    for _ in 0..800 {
        let body = random_body(&mut rng);
        let frame = encode_record(7, &body);
        let mut bad = frame.clone();
        let bit = rng.below((bad.len() * 8) as u64) as usize;
        bad[bit / 8] ^= 1 << (7 - bit % 8);
        flips += 1;
        match decode_record(&bad) {
            // A flip inside the length field can make the frame look
            // longer than the buffer (Truncated) or empty (ZeroLength);
            // anywhere else the CRC must catch it.
            Err(_) => detected += 1,
            Ok((rec, _)) => assert_eq!(
                (rec.lsn, rec.body),
                (7, body),
                "corruption slipped past the CRC"
            ),
        }
    }
    // CRC32 misses a single-bit flip never; the only undetected cases
    // would be flips the decoder canonicalizes away, of which this format
    // has none.
    assert_eq!(detected, flips, "some single-bit flips went undetected");
}

#[test]
fn short_and_empty_frames_report_truncated_or_zero_length() {
    assert!(matches!(decode_record(&[]), Err(WalError::Truncated)));
    assert!(matches!(
        decode_record(&[0u8; FRAME_HEADER - 1]),
        Err(WalError::Truncated)
    ));
    // A zeroed header claims payload_len == 0: the all-zero torn-tail
    // case gets its own error so recovery can distinguish preallocated
    // file tails from corruption.
    assert!(matches!(
        decode_record(&[0u8; FRAME_HEADER]),
        Err(WalError::ZeroLength)
    ));
    // A frame claiming more payload than present is torn.
    let mut frame = encode_record(1, &RecordBody::Begin { txn: 1 });
    frame.truncate(frame.len() - 1);
    assert!(matches!(decode_record(&frame), Err(WalError::Truncated)));
}

#[test]
fn crc_mismatch_reports_the_claimed_lsn() {
    let mut frame = encode_record(42, &RecordBody::Commit { txn: 9 });
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    match decode_record(&frame) {
        Err(WalError::BadCrc { claimed_lsn }) => assert_eq!(claimed_lsn, 42),
        other => panic!("expected BadCrc, got {other:?}"),
    }
}
