//! Mapping tests: which locks does each protocol group acquire for a
//! given meta-operation? Uses a stub document view and inspects the lock
//! table afterwards.

use std::sync::Arc;
use std::time::Duration;
use xtc_lock::{
    DocView, EdgeKind, IsolationLevel, LockCtx, LockName, LockTable, LockTarget, MetaOp,
    TxnRegistry,
};
use xtc_protocols::ProtocolHandle;
use xtc_splid::SplId;

/// A fixed little tree: root 1 → 1.3 (topic) → 1.3.3 (book) →
/// {1.3.3.3 (title), 1.3.3.5 (history)}; the book owns an id attribute.
struct StubDoc;

impl DocView for StubDoc {
    fn children(&self, id: &SplId) -> Vec<SplId> {
        let s = id.to_string();
        match s.as_str() {
            "1" => vec![p("1.3")],
            "1.3" => vec![p("1.3.3")],
            "1.3.3" => vec![p("1.3.3.3"), p("1.3.3.5")],
            _ => vec![],
        }
    }

    fn subtree_id_owners(&self, id: &SplId) -> Vec<SplId> {
        // The book subtree contains one id owner: the book itself.
        if *id == p("1.3.3") || id.is_ancestor_of(&p("1.3.3")) {
            vec![p("1.3.3")]
        } else {
            vec![]
        }
    }

    fn subtree_nodes(&self, id: &SplId) -> Vec<SplId> {
        let mut all = vec![id.clone()];
        for c in self.children(id) {
            all.extend(self.subtree_nodes(&c));
        }
        all
    }
}

fn p(s: &str) -> SplId {
    SplId::parse(s).unwrap()
}

struct Rig {
    handle: ProtocolHandle,
    table: Arc<LockTable>,
    registry: Arc<TxnRegistry>,
}

impl Rig {
    fn new(proto: &str) -> Rig {
        let handle = xtc_protocols::build(proto).unwrap();
        let registry = Arc::new(TxnRegistry::new());
        let table = Arc::new(LockTable::new(
            handle.families.clone(),
            registry.clone(),
            Duration::from_secs(2),
        ));
        Rig {
            handle,
            table,
            registry,
        }
    }

    fn acquire(&self, txn: u64, op: &MetaOp<'_>, depth: u32) {
        let handle = self.registry.handle(txn).unwrap();
        let cx = LockCtx {
            txn: &handle,
            table: &self.table,
            doc: &StubDoc,
            isolation: IsolationLevel::Repeatable,
            lock_depth: depth,
        };
        self.handle.protocol.acquire(&cx, op).unwrap();
    }

    fn node_mode(&self, txn: u64, family: u8, node: &str) -> Option<String> {
        let name = LockName {
            family,
            target: LockTarget::Node(p(node)),
        };
        self.table
            .held_mode(txn, &name)
            .map(|m| self.table.family(family).name(m).to_string())
    }

    fn edge_mode(&self, txn: u64, family: u8, node: &str, kind: EdgeKind) -> Option<String> {
        let name = LockName {
            family,
            target: LockTarget::Edge(p(node), kind),
        };
        self.table
            .held_mode(txn, &name)
            .map(|m| self.table.family(family).name(m).to_string())
    }
}

#[test]
fn node2pl_locks_the_parent_with_t_and_m() {
    let rig = Rig::new("Node2PL");
    let t = rig.registry.begin();
    // Reading the book leaves T on its parent (the topic) — Figure 1.
    rig.acquire(t, &MetaOp::ReadNode(&p("1.3.3")), 7);
    assert_eq!(rig.node_mode(t, 0, "1.3").as_deref(), Some("T"));
    assert_eq!(rig.node_mode(t, 0, "1.3.3"), None, "not the node itself");
    // Content read lock rides along in the content family.
    assert_eq!(rig.node_mode(t, 1, "1.3.3").as_deref(), Some("S"));
    // Structural modification at the title → M on the book.
    let node = p("1.3.3.3");
    rig.acquire(
        t,
        &MetaOp::DeleteTree {
            node: &node,
            left: None,
            right: Some(&p("1.3.3.5")),
        },
        7,
    );
    assert_eq!(rig.node_mode(t, 0, "1.3.3").as_deref(), Some("M"));
}

#[test]
fn node2pl_delete_idx_locks_every_id_owner() {
    let rig = Rig::new("Node2PL");
    let t = rig.registry.begin();
    let node = p("1.3.3");
    rig.acquire(
        t,
        &MetaOp::DeleteTree {
            node: &node,
            left: None,
            right: None,
        },
        7,
    );
    // Jump family: IDX on the id owner inside the subtree (§5.3).
    assert_eq!(rig.node_mode(t, 2, "1.3.3").as_deref(), Some("IDX"));
}

#[test]
fn no2pl_locks_the_neighbourhood_not_the_level() {
    let rig = Rig::new("NO2PL");
    let t = rig.registry.begin();
    let node = p("1.3.3.3");
    let right = p("1.3.3.5");
    rig.acquire(
        t,
        &MetaOp::DeleteTree {
            node: &node,
            left: None,
            right: Some(&right),
        },
        7,
    );
    assert_eq!(rig.node_mode(t, 0, "1.3.3.3").as_deref(), Some("NX"));
    assert_eq!(rig.node_mode(t, 0, "1.3.3.5").as_deref(), Some("NX"), "right sibling");
    assert_eq!(rig.node_mode(t, 0, "1.3.3").as_deref(), Some("NX"), "parent");
    // But NOT the grand-parent or unrelated nodes.
    assert_eq!(rig.node_mode(t, 0, "1.3"), None);
}

#[test]
fn oo2pl_locks_edges_only() {
    let rig = Rig::new("OO2PL");
    let t = rig.registry.begin();
    let from = p("1.3.3.3");
    rig.acquire(
        t,
        &MetaOp::Navigate {
            from: &from,
            to: Some(&p("1.3.3.5")),
            edge: EdgeKind::NextSibling,
        },
        7,
    );
    assert_eq!(
        rig.edge_mode(t, 0, "1.3.3.3", EdgeKind::NextSibling).as_deref(),
        Some("ER")
    );
    assert_eq!(rig.node_mode(t, 0, "1.3.3.5"), None, "no node locks");
    // An insert between them takes EX on the same edge → conflicts.
    let t2 = rig.registry.begin_handle();
    let cx = LockCtx {
        txn: &t2,
        table: &rig.table,
        doc: &StubDoc,
        isolation: IsolationLevel::Repeatable,
        lock_depth: 7,
    };
    let parent = p("1.3.3");
    let node = p("1.3.3.4.3");
    let left = p("1.3.3.3");
    let right = p("1.3.3.5");
    let res = rig.handle.protocol.acquire(
        &cx,
        &MetaOp::InsertNode {
            parent: &parent,
            node: &node,
            left: Some(&left),
            right: Some(&right),
        },
    );
    assert!(res.is_err(), "EX on the read edge must block (timeout)");
}

#[test]
fn mgl_level_read_fans_out_per_child() {
    let rig = Rig::new("URIX");
    let t = rig.registry.begin();
    rig.acquire(t, &MetaOp::ReadLevel(&p("1.3.3")), 7);
    // No level lock exists: every child is locked individually.
    assert_eq!(rig.node_mode(t, 0, "1.3.3").as_deref(), Some("IR"));
    assert_eq!(rig.node_mode(t, 0, "1.3.3.3").as_deref(), Some("IR"));
    assert_eq!(rig.node_mode(t, 0, "1.3.3.5").as_deref(), Some("IR"));
}

#[test]
fn tadom_level_read_is_one_lock() {
    let rig = Rig::new("taDOM3+");
    let t = rig.registry.begin();
    rig.acquire(t, &MetaOp::ReadLevel(&p("1.3.3")), 7);
    assert_eq!(rig.node_mode(t, 0, "1.3.3").as_deref(), Some("LR"));
    assert_eq!(rig.node_mode(t, 0, "1.3.3.3"), None, "children implicit");
    // Path intentions present.
    assert_eq!(rig.node_mode(t, 0, "1.3").as_deref(), Some("IR"));
    assert_eq!(rig.node_mode(t, 0, "1").as_deref(), Some("IR"));
}

#[test]
fn tadom3_rename_uses_nx_tadom2_escalates_to_sx() {
    for (proto, expect) in [("taDOM3+", "NX"), ("taDOM3", "NX"), ("taDOM2", "SX")] {
        let rig = Rig::new(proto);
        let t = rig.registry.begin();
        rig.acquire(t, &MetaOp::Rename(&p("1.3")), 7);
        assert_eq!(
            rig.node_mode(t, 0, "1.3").as_deref(),
            Some(expect),
            "{proto}"
        );
        assert_eq!(rig.node_mode(t, 0, "1").as_deref(), Some("CX"), "{proto}");
    }
}

#[test]
fn depth_clamping_escalates_to_subtree_locks() {
    let rig = Rig::new("taDOM3+");
    let t = rig.registry.begin();
    // Reading the title (level 3) at depth 1 → SR at the topic (level 1).
    rig.acquire(t, &MetaOp::ReadNode(&p("1.3.3.3")), 1);
    assert_eq!(rig.node_mode(t, 0, "1.3").as_deref(), Some("SR"));
    assert_eq!(rig.node_mode(t, 0, "1.3.3.3"), None);
    assert_eq!(rig.node_mode(t, 0, "1").as_deref(), Some("IR"));
}

#[test]
fn jump_reads_protect_the_ancestor_path_except_star2pl() {
    // Hierarchical protocols protect jumps with intention paths (§2.2);
    // the plain *-2PL group uses IDR only.
    let rig = Rig::new("URIX");
    let t = rig.registry.begin();
    rig.acquire(t, &MetaOp::JumpRead(&p("1.3.3")), 7);
    assert_eq!(rig.node_mode(t, 0, "1").as_deref(), Some("IR"));
    assert_eq!(rig.node_mode(t, 0, "1.3").as_deref(), Some("IR"));

    let rig = Rig::new("Node2PL");
    let t = rig.registry.begin();
    rig.acquire(t, &MetaOp::JumpRead(&p("1.3.3")), 7);
    assert_eq!(rig.node_mode(t, 0, "1"), None, "no path protection");
    assert_eq!(rig.node_mode(t, 2, "1.3.3").as_deref(), Some("IDR"));
}

#[test]
fn isolation_none_never_touches_the_table() {
    for proto in xtc_protocols::ALL_PROTOCOLS {
        let rig = Rig::new(proto);
        let t = rig.registry.begin_handle();
        let cx = LockCtx {
            txn: &t,
            table: &rig.table,
            doc: &StubDoc,
            isolation: IsolationLevel::None,
            lock_depth: 4,
        };
        let node = p("1.3.3");
        for op in [
            MetaOp::ReadNode(&node),
            MetaOp::ReadTree(&node),
            MetaOp::Rename(&node),
            MetaOp::DeleteTree {
                node: &node,
                left: None,
                right: None,
            },
        ] {
            rig.handle.protocol.acquire(&cx, &op).unwrap();
        }
        assert_eq!(rig.table.granted_count(), 0, "{proto}");
    }
}
