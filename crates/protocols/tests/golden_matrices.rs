//! Golden snapshot of every protocol's generated compatibility and
//! conversion matrices.
//!
//! The printed matrices of the paper (Figures 1–4) are pinned cell-by-cell
//! in the unit tests; this test additionally freezes the *reconstructed*
//! ones (taDOM2+/3/3+ and the flat families) so any change to the region
//! algebra or the conversion rules shows up as a reviewable diff.
//!
//! Regenerate after an intentional change with:
//! `XTC_BLESS=1 cargo test -p xtc-protocols --test golden_matrices`

use std::fmt::Write as _;
use xtc_lock::Annex;

fn render_all() -> String {
    let mut out = String::new();
    for proto in xtc_protocols::ALL_PROTOCOLS {
        let handle = xtc_protocols::build(proto).unwrap();
        for table in &handle.families {
            let n = table.len() as u8;
            let _ = writeln!(out, "== {} / {} ({} modes) ==", proto, table.family(), n);
            let _ = writeln!(out, "-- compatibility (rows requested, cols held) --");
            let _ = write!(out, "{:>6}", "");
            for h in 0..n {
                let _ = write!(out, "{:>6}", table.name(h));
            }
            out.push('\n');
            for r in 0..n {
                let _ = write!(out, "{:>6}", table.name(r));
                for h in 0..n {
                    let _ = write!(out, "{:>6}", if table.compatible(r, h) { "+" } else { "-" });
                }
                out.push('\n');
            }
            let _ = writeln!(out, "-- conversion (rows held, cols requested) --");
            let _ = write!(out, "{:>6}", "");
            for r in 0..n {
                let _ = write!(out, "{:>9}", table.name(r));
            }
            out.push('\n');
            for h in 0..n {
                let _ = write!(out, "{:>6}", table.name(h));
                for r in 0..n {
                    let conv = table.conversion(h, r);
                    let cell = match conv.annex {
                        Annex::None => table.name(conv.result).to_string(),
                        Annex::ChildLocks(c) => {
                            format!("{}_{}", table.name(conv.result), table.name(c))
                        }
                    };
                    let _ = write!(out, "{cell:>9}");
                }
                out.push('\n');
            }
            out.push('\n');
        }
    }
    out
}

#[test]
fn matrices_match_golden_snapshot() {
    let got = render_all();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/matrices.txt");
    if std::env::var_os("XTC_BLESS").is_some() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run with XTC_BLESS=1 to create it");
    if got != want {
        // Locate the first differing line for a useful failure message.
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            assert_eq!(g, w, "first difference at line {}", i + 1);
        }
        assert_eq!(got.lines().count(), want.lines().count(), "length differs");
    }
}
