//! The MGL* group (§2.2): multi-granularity locking adapted to XML trees.
//!
//! Differences to classical MGL, per the paper: intention locks play a
//! double role (signal operations deeper in the tree *and* read-pin the
//! node itself), conversions propagate along the ancestor path, and the
//! protocols honour the lock-depth parameter. R/U/X are **subtree**
//! locks. The group has no level locks (`getChildNodes` pays a per-child
//! fan-out) and no node-only exclusive lock (renames escalate to subtree
//! X — the TArenameTopic weakness of Fig. 10d).

use crate::edges::edge_table;
use crate::hier::{HierModes, Hierarchical};
use crate::{ProtocolGroup, ProtocolHandle};
use std::sync::Arc;
use xtc_lock::algebra::{AlgebraMode, CovNonNone::*, Region, SelfAcc as S};
use xtc_lock::ModeTable;

const INT_R: Region = Region::intents(true, false);
const INT_RW: Region = Region::intents(true, true);

fn subtree(c: xtc_lock::algebra::CovNonNone, s: S) -> AlgebraMode {
    AlgebraMode::new(s, Region::cov(c), Region::cov(c))
}

/// IRX: a single generic intention mode I plus subtree R and X. The
/// coarse intention makes any subtree read block all deeper activity —
/// the group's weakest member.
pub fn irx() -> ProtocolHandle {
    let t = Arc::new(ModeTable::generate(
        "IRX",
        &[
            ("I", AlgebraMode::new(S::Read, INT_RW, INT_RW)),
            ("R", subtree(Read, S::Read)),
            ("X", subtree(Excl, S::Excl)),
        ],
        &[],
    ));
    let m = |n: &str| t.mode_named(n).unwrap();
    let modes = HierModes {
        intent_read: m("I"),
        intent_write: m("I"),
        child_excl: m("I"),
        node_read: m("I"),
        level_read: None,
        tree_read: m("R"),
        tree_update: None,
        tree_write: m("X"),
        rename: m("X"),
    };
    ProtocolHandle {
        protocol: Arc::new(Hierarchical::new("IRX", modes)),
        families: vec![t, edge_table()],
        group: ProtocolGroup::Mgl,
    }
}

/// IRIX: separate read/write intentions (classical IS/IX), subtree R/X.
pub fn irix() -> ProtocolHandle {
    let t = Arc::new(ModeTable::generate(
        "IRIX",
        &[
            ("IR", AlgebraMode::new(S::Read, INT_R, INT_R)),
            ("IX", AlgebraMode::new(S::Read, INT_RW, INT_RW)),
            ("R", subtree(Read, S::Read)),
            ("X", subtree(Excl, S::Excl)),
        ],
        &[],
    ));
    let m = |n: &str| t.mode_named(n).unwrap();
    let modes = HierModes {
        intent_read: m("IR"),
        intent_write: m("IX"),
        child_excl: m("IX"),
        node_read: m("IR"),
        level_read: None,
        tree_read: m("R"),
        tree_update: None,
        tree_write: m("X"),
        rename: m("X"),
    };
    ProtocolHandle {
        protocol: Arc::new(Hierarchical::new("IRIX", modes)),
        families: vec![t, edge_table()],
        group: ProtocolGroup::Mgl,
    }
}

/// URIX: IRIX enhanced by RIX and U modes (Figure 2).
pub fn urix() -> ProtocolHandle {
    let t = Arc::new(ModeTable::generate(
        "URIX",
        &[
            ("IR", AlgebraMode::new(S::Read, INT_R, INT_R)),
            ("IX", AlgebraMode::new(S::Read, INT_RW, INT_RW)),
            ("R", subtree(Read, S::Read)),
            (
                "RIX",
                AlgebraMode::new(
                    S::Read,
                    Region {
                        cov: Some(Read),
                        int_read: true,
                        int_write: true,
                    },
                    Region {
                        cov: Some(Read),
                        int_read: true,
                        int_write: true,
                    },
                ),
            ),
            ("U", subtree(Update, S::Update)),
            ("X", subtree(Excl, S::Excl)),
        ],
        &[],
    ));
    let m = |n: &str| t.mode_named(n).unwrap();
    let modes = HierModes {
        intent_read: m("IR"),
        intent_write: m("IX"),
        child_excl: m("IX"),
        node_read: m("IR"),
        level_read: None,
        tree_read: m("R"),
        tree_update: Some(m("U")),
        tree_write: m("X"),
        rename: m("X"),
    };
    ProtocolHandle {
        protocol: Arc::new(Hierarchical::new("URIX", modes)),
        families: vec![t, edge_table()],
        group: ProtocolGroup::Mgl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2's compatibility matrix (rows = requested, cols = held) —
    /// already pinned structurally in xtc-lock; re-pinned here on the
    /// actual URIX protocol table.
    #[test]
    fn urix_figure_2_compatibility() {
        let h = urix();
        let t = &h.families[0];
        let order = ["IR", "IX", "R", "RIX", "U", "X"];
        let expected: [[u8; 6]; 6] = [
            [1, 1, 1, 1, 0, 0],
            [1, 1, 0, 0, 0, 0],
            [1, 0, 1, 0, 0, 0],
            [1, 0, 0, 0, 0, 0],
            [1, 0, 1, 0, 0, 0],
            [0, 0, 0, 0, 0, 0],
        ];
        for (i, req) in order.iter().enumerate() {
            for (j, held) in order.iter().enumerate() {
                assert_eq!(
                    t.compatible(t.mode_named(req).unwrap(), t.mode_named(held).unwrap()),
                    expected[i][j] == 1,
                    "compat({req}, {held})"
                );
            }
        }
    }

    /// Figure 2's conversion matrix (rows = held, cols = requested).
    #[test]
    fn urix_figure_2_conversion() {
        let h = urix();
        let t = &h.families[0];
        let order = ["IR", "IX", "R", "RIX", "U", "X"];
        let expected: [[&str; 6]; 6] = [
            ["IR", "IX", "R", "RIX", "U", "X"],
            ["IX", "IX", "RIX", "RIX", "X", "X"],
            ["R", "RIX", "R", "RIX", "R", "X"],
            ["RIX", "RIX", "RIX", "RIX", "X", "X"],
            ["U", "X", "U", "X", "U", "X"],
            ["X", "X", "X", "X", "X", "X"],
        ];
        for (i, held) in order.iter().enumerate() {
            for (j, req) in order.iter().enumerate() {
                let conv = t.conversion(t.mode_named(held).unwrap(), t.mode_named(req).unwrap());
                assert_eq!(t.name(conv.result), expected[i][j], "convert({held}, {req})");
                assert_eq!(conv.annex, xtc_lock::Annex::None);
            }
        }
    }

    #[test]
    fn irx_single_intention_blocks_subtree_reads() {
        let h = irx();
        let t = &h.families[0];
        let (i, r) = (t.mode_named("I").unwrap(), t.mode_named("R").unwrap());
        assert!(t.compatible(i, i), "intentions coexist");
        assert!(!t.compatible(i, r), "any intention conflicts with subtree R");
        assert!(!t.compatible(r, i));
        assert!(t.compatible(r, r));
    }

    #[test]
    fn irix_intentions_are_finer_than_irx() {
        let h = irix();
        let t = &h.families[0];
        let ir = t.mode_named("IR").unwrap();
        let ix = t.mode_named("IX").unwrap();
        let r = t.mode_named("R").unwrap();
        assert!(t.compatible(ir, r), "read intention under subtree read");
        assert!(!t.compatible(ix, r));
        assert!(t.compatible(ir, ix));
        // IRIX lacks RIX: holding R and requesting IX escalates to X.
        let conv = t.conversion(r, ix);
        assert_eq!(t.name(conv.result), "X");
    }
}
