//! # xtc-protocols — the eleven contestants
//!
//! All XML lock protocols compared in *Contest of XML Lock Protocols*
//! (VLDB 2006), implemented against the meta-synchronization interface of
//! `xtc-lock`:
//!
//! | group  | protocols |
//! |--------|-----------|
//! | *-2PL  | `Node2PL`, `NO2PL`, `OO2PL`, `Node2PLa` |
//! | MGL*   | `IRX`, `IRIX`, `URIX` |
//! | taDOM* | `taDOM2`, `taDOM2+`, `taDOM3`, `taDOM3+` |
//!
//! Two post-paper contestants extend the field ([`MVCC_PROTOCOLS`],
//! [`EXTENDED_PROTOCOLS`]): `taMVCC` serves reads from versioned
//! snapshots (no read locks at all) while keeping taDOM3+ write
//! mapping, and `taOCC` adds optimistic read-set validation at commit
//! on top. Both answer the CLUSTER2 long-reader pathology, where every
//! pessimistic protocol serializes writers behind a report reader.
//!
//! Each protocol is a set of mode families (generated from the region
//! algebra of `xtc_lock::algebra`; the printed matrices of Figures 1–4
//! are pinned by tests) plus mapping logic from [`MetaOp`]s to concrete
//! lock acquisitions. Use [`build`] to obtain a protocol together with
//! the family tables its lock table must be constructed with.
//!
//! [`MetaOp`]: xtc_lock::MetaOp

#![warn(missing_docs)]

mod edges;
mod hier;
mod mgl;
mod mvcc;
mod node2pla;
mod optimistic;
mod star2pl;
mod tadom;

use std::sync::Arc;
use xtc_lock::{ModeTable, Protocol};

pub use hier::Hierarchical;
pub use mvcc::TaMvcc;
pub use node2pla::Node2PLa;
pub use optimistic::TaOcc;
pub use star2pl::{No2Pl, Node2Pl, Oo2Pl};

/// Which of the paper's three groups a protocol belongs to (drives the
/// grouping of Figures 8–11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolGroup {
    /// Node2PL, NO2PL, OO2PL, Node2PLa.
    Star2Pl,
    /// IRX, IRIX, URIX.
    Mgl,
    /// taDOM2, taDOM2+, taDOM3, taDOM3+.
    TaDom,
    /// The post-paper versioned contestants: taMVCC, taOCC.
    Versioned,
}

/// A protocol plus the mode-family tables its lock table needs.
pub struct ProtocolHandle {
    /// The protocol implementation (mapping logic).
    pub protocol: Arc<dyn Protocol>,
    /// Family tables, indexed by the `FamilyId`s the protocol uses.
    pub families: Vec<Arc<ModeTable>>,
    /// The paper's protocol group.
    pub group: ProtocolGroup,
}

/// The eleven protocol names, in the paper's presentation order.
pub const ALL_PROTOCOLS: [&str; 11] = [
    "Node2PL", "NO2PL", "OO2PL", "Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+",
    "taDOM3", "taDOM3+",
];

/// The post-paper versioned contestants (entries #12 and #13).
pub const MVCC_PROTOCOLS: [&str; 2] = ["taMVCC", "taOCC"];

/// The extended field: the paper's eleven plus the two versioned
/// contestants, in presentation order.
pub const EXTENDED_PROTOCOLS: [&str; 13] = [
    "Node2PL", "NO2PL", "OO2PL", "Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+",
    "taDOM3", "taDOM3+", "taMVCC", "taOCC",
];

/// Builds a protocol by its paper name. Returns `None` for unknown names.
pub fn build(name: &str) -> Option<ProtocolHandle> {
    match name {
        "Node2PL" => Some(star2pl::node2pl()),
        "NO2PL" => Some(star2pl::no2pl()),
        "OO2PL" => Some(star2pl::oo2pl()),
        "Node2PLa" => Some(node2pla::node2pla()),
        "IRX" => Some(mgl::irx()),
        "IRIX" => Some(mgl::irix()),
        "URIX" => Some(mgl::urix()),
        "taDOM2" => Some(tadom::tadom2()),
        "taDOM2+" => Some(tadom::tadom2_plus()),
        "taDOM3" => Some(tadom::tadom3()),
        "taDOM3+" => Some(tadom::tadom3_plus()),
        "taMVCC" => Some(mvcc::ta_mvcc()),
        "taOCC" => Some(optimistic::ta_occ()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_protocols_build() {
        for name in ALL_PROTOCOLS {
            let h = build(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(h.protocol.name(), name);
            assert!(!h.families.is_empty());
        }
        assert!(build("taDOM4").is_none());
    }

    #[test]
    fn versioned_contestants_build_and_flag_their_semantics() {
        for name in MVCC_PROTOCOLS {
            let h = build(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(h.protocol.name(), name);
            assert_eq!(h.group, ProtocolGroup::Versioned);
            assert!(h.protocol.versioned_reads(), "{name} reads are versioned");
            assert!(h.protocol.supports_lock_depth(), "{name} inherits depth");
            // taMVCC writes are plain snapshot-isolated; taOCC validates.
            assert_eq!(h.protocol.validates_at_commit(), name == "taOCC", "{name}");
            // The write side is taDOM3+: same 20-node/3-edge families.
            assert_eq!(h.families[0].len(), 20, "{name} node modes");
            assert_eq!(h.families[1].len(), 3, "{name} edge modes");
        }
        // The paper's field keeps pessimistic semantics untouched.
        for name in ALL_PROTOCOLS {
            let h = build(name).unwrap();
            assert!(!h.protocol.versioned_reads(), "{name}");
            assert!(!h.protocol.validates_at_commit(), "{name}");
        }
        assert_eq!(EXTENDED_PROTOCOLS.len(), ALL_PROTOCOLS.len() + MVCC_PROTOCOLS.len());
        for name in EXTENDED_PROTOCOLS {
            assert!(build(name).is_some(), "{name}");
        }
    }

    #[test]
    fn groups_match_the_paper() {
        for (name, group) in [
            ("Node2PL", ProtocolGroup::Star2Pl),
            ("NO2PL", ProtocolGroup::Star2Pl),
            ("OO2PL", ProtocolGroup::Star2Pl),
            ("Node2PLa", ProtocolGroup::Star2Pl),
            ("IRX", ProtocolGroup::Mgl),
            ("IRIX", ProtocolGroup::Mgl),
            ("URIX", ProtocolGroup::Mgl),
            ("taDOM2", ProtocolGroup::TaDom),
            ("taDOM2+", ProtocolGroup::TaDom),
            ("taDOM3", ProtocolGroup::TaDom),
            ("taDOM3+", ProtocolGroup::TaDom),
        ] {
            assert_eq!(build(name).unwrap().group, group, "{name}");
        }
    }

    #[test]
    fn depth_support_matches_the_paper() {
        // The plain *-2PL protocols have no lock-depth parameter (§5.2);
        // Node2PLa and everyone else do.
        for name in ALL_PROTOCOLS {
            let h = build(name).unwrap();
            let expect = !matches!(name, "Node2PL" | "NO2PL" | "OO2PL");
            assert_eq!(h.protocol.supports_lock_depth(), expect, "{name}");
        }
    }

    #[test]
    fn tadom3_plus_has_twenty_node_modes_and_three_edge_modes() {
        // §2.3: "taDOM3+ includes 20 lock modes and three modes for edges".
        let h = build("taDOM3+").unwrap();
        assert_eq!(h.families[0].len(), 20, "node modes");
        assert_eq!(h.families[1].len(), 3, "edge modes");
    }

    #[test]
    fn tadom2_has_the_eight_figure_3a_modes() {
        let h = build("taDOM2").unwrap();
        assert_eq!(h.families[0].len(), 8);
        for m in ["IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX"] {
            assert!(h.families[0].mode_named(m).is_some(), "{m}");
        }
    }

    #[test]
    fn tadom2_plus_adds_the_four_combination_modes() {
        let h = build("taDOM2+").unwrap();
        assert_eq!(h.families[0].len(), 12);
        for m in ["LRIX", "LRCX", "SRIX", "SRCX"] {
            assert!(h.families[0].mode_named(m).is_some(), "{m}");
        }
    }
}
