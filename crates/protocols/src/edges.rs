//! The shared edge-lock family: three modes for virtual navigation edges
//! (§3.3 — "edge locks (shared, update, exclusive) for previous sibling,
//! next sibling, first child, and last child").

use std::sync::Arc;
use xtc_lock::algebra::{AlgebraMode, Region, SelfAcc};
use xtc_lock::ModeTable;

/// Edge mode names in table order.
pub const ER: &str = "ER";
/// Update edge mode.
pub const EU: &str = "EU";
/// Exclusive edge mode.
pub const EX: &str = "EX";

/// Builds the three-mode edge table (shared / update / exclusive with
/// Gray's asymmetric U rules).
pub fn edge_table() -> Arc<ModeTable> {
    Arc::new(ModeTable::generate(
        "edges",
        &[
            (ER, AlgebraMode::new(SelfAcc::Read, Region::NONE, Region::NONE)),
            (EU, AlgebraMode::new(SelfAcc::Update, Region::NONE, Region::NONE)),
            (EX, AlgebraMode::new(SelfAcc::Excl, Region::NONE, Region::NONE)),
        ],
        &[],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_modes_behave_like_sux() {
        let t = edge_table();
        let er = t.mode_named(ER).unwrap();
        let eu = t.mode_named(EU).unwrap();
        let ex = t.mode_named(EX).unwrap();
        assert!(t.compatible(er, er));
        assert!(t.compatible(eu, er), "U over existing readers");
        assert!(!t.compatible(er, eu), "new readers blocked behind U");
        assert!(!t.compatible(ex, er));
        assert!(!t.compatible(er, ex));
        assert_eq!(t.conversion(er, ex).result, ex);
        assert_eq!(t.conversion(eu, er).result, eu);
    }
}
