//! taOCC: optimistic validate-at-commit on top of snapshot reads.
//!
//! The thirteenth contestant: like taMVCC, reads are lock-free snapshot
//! reads, but the transaction layer additionally tracks a read set
//! (node/level/tree keys) and validates it against writes committed
//! since the snapshot at commit time. A conflict aborts the committer
//! with a retryable [`xtc-core`] `ValidationFailed` error; the retry
//! loop's seeded jittered backoff doubles as the contention manager.
//! This buys serializable-style read validation without read locks —
//! at the price of wasted work under write-heavy contention.

use crate::mvcc::is_snapshot_read;
use crate::{tadom, ProtocolGroup, ProtocolHandle};
use std::sync::Arc;
use xtc_lock::{LockCtx, LockError, MetaOp, Protocol};

/// The taOCC protocol: snapshot reads + read-set validation at commit,
/// taDOM3+ writes.
pub struct TaOcc {
    inner: Arc<dyn Protocol>,
}

impl Protocol for TaOcc {
    fn name(&self) -> &'static str {
        "taOCC"
    }

    fn supports_lock_depth(&self) -> bool {
        self.inner.supports_lock_depth()
    }

    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError> {
        if is_snapshot_read(op) {
            return Ok(());
        }
        self.inner.acquire(cx, op)
    }

    fn versioned_reads(&self) -> bool {
        true
    }

    fn validates_at_commit(&self) -> bool {
        true
    }
}

/// Builds taOCC: taDOM3+ writes behind a snapshot-read front, with
/// commit-time read-set validation enabled.
pub fn ta_occ() -> ProtocolHandle {
    let base = tadom::tadom3_plus();
    ProtocolHandle {
        protocol: Arc::new(TaOcc {
            inner: base.protocol,
        }),
        families: base.families,
        group: ProtocolGroup::Versioned,
    }
}
