//! The plain *-2PL group (§2.1): Node2PL, NO2PL, OO2PL.
//!
//! The group strictly separates lock types: **structure locks** (node
//! level), **content locks** (S/X on a node's value), and **jump locks**
//! (IDR/IDX for direct jumps via ID attributes) — the three independent
//! matrices of Figure 1. None of the three supports the lock-depth
//! parameter or intention locks. The missing intentions are the group's
//! downfall in CLUSTER2: before deleting a subtree they "need to search
//! the entire subtree for elements owning ID attributes" and IDX-lock
//! each one (§5.3).

use crate::edges::{self, edge_table};
use crate::{ProtocolGroup, ProtocolHandle};
use std::sync::Arc;
use xtc_lock::algebra::{AlgebraMode, CovNonNone, Region, SelfAcc as S};
use xtc_lock::{
    EdgeKind, LockCtx, LockError, MetaOp, ModeIdx, ModeTable, Protocol,
};
use xtc_splid::SplId;

/// Structure family index (Node2PL: T/M on nodes; NO2PL: NS/NX on nodes;
/// OO2PL: edge modes on navigation edges).
const STRUCTURE: u8 = 0;
/// Content family index (S/X).
const CONTENT: u8 = 1;
/// Jump family index (IDR/IDX).
const JUMP: u8 = 2;

fn content_table() -> Arc<ModeTable> {
    Arc::new(ModeTable::generate(
        "content",
        &[
            ("S", AlgebraMode::new(S::Read, Region::NONE, Region::NONE)),
            ("X", AlgebraMode::new(S::Excl, Region::NONE, Region::NONE)),
        ],
        &[],
    ))
}

fn jump_table() -> Arc<ModeTable> {
    Arc::new(ModeTable::generate(
        "jump",
        &[
            ("IDR", AlgebraMode::new(S::Read, Region::NONE, Region::NONE)),
            ("IDX", AlgebraMode::new(S::Excl, Region::NONE, Region::NONE)),
        ],
        &[],
    ))
}

/// Content/jump lock helpers shared by the three protocols.
struct Star2PlCommon {
    s: ModeIdx,
    x: ModeIdx,
    idr: ModeIdx,
    idx: ModeIdx,
}

impl Star2PlCommon {
    fn new(content: &ModeTable, jump: &ModeTable) -> Self {
        Star2PlCommon {
            s: content.mode_named("S").unwrap(),
            x: content.mode_named("X").unwrap(),
            idr: jump.mode_named("IDR").unwrap(),
            idx: jump.mode_named("IDX").unwrap(),
        }
    }

    fn content_read(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        match cx.read_class() {
            Some(class) => cx.lock_node(CONTENT, n, self.s, class),
            None => Ok(()),
        }
    }

    fn content_write(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        match cx.write_class() {
            Some(class) => cx.lock_node(CONTENT, n, self.x, class),
            None => Ok(()),
        }
    }

    fn jump_read(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        match cx.read_class() {
            Some(class) => cx.lock_node(JUMP, n, self.idr, class),
            None => Ok(()),
        }
    }


    /// Serializable jump-phantom protection rides on the jump family.
    fn key_read(&self, cx: &LockCtx<'_>, key: &[u8]) -> Result<(), LockError> {
        match cx.read_class() {
            Some(class) => cx.lock_index_key(JUMP, key, self.idr, class),
            None => Ok(()),
        }
    }

    fn key_write(&self, cx: &LockCtx<'_>, key: &[u8]) -> Result<(), LockError> {
        match cx.write_class() {
            Some(class) => cx.lock_index_key(JUMP, key, self.idx, class),
            None => Ok(()),
        }
    }

    /// The §5.3 penalty: IDX locks on every ID-attribute owner inside the
    /// doomed subtree, located by scanning the subtree through the node
    /// manager.
    fn idx_scan(&self, cx: &LockCtx<'_>, subtree: &SplId) -> Result<(), LockError> {
        let Some(class) = cx.write_class() else {
            return Ok(());
        };
        for owner in cx.doc.subtree_id_owners(subtree) {
            cx.lock_node(JUMP, &owner, self.idx, class)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Node2PL
// ---------------------------------------------------------------------

/// Node2PL: structure locks T (traverse) / M (modify) on the **parent**
/// of the context node — "unnecessarily restrictive because, by locking
/// the parent, it blocks the entire level of the context node".
pub struct Node2Pl {
    t: ModeIdx,
    m: ModeIdx,
    common: Star2PlCommon,
}

/// Builds the Node2PL handle.
pub fn node2pl() -> ProtocolHandle {
    let structure = Arc::new(ModeTable::generate(
        "node2pl-structure",
        &[
            // T read-pins the parent and covers the child level shared;
            // M covers the child level exclusively.
            ("T", AlgebraMode::new(S::Read, Region::cov(CovNonNone::Read), Region::NONE)),
            ("M", AlgebraMode::new(S::Read, Region::cov(CovNonNone::Excl), Region::NONE)),
        ],
        &[],
    ));
    let content = content_table();
    let jump = jump_table();
    let p = Node2Pl {
        t: structure.mode_named("T").unwrap(),
        m: structure.mode_named("M").unwrap(),
        common: Star2PlCommon::new(&content, &jump),
    };
    ProtocolHandle {
        protocol: Arc::new(p),
        families: vec![structure, content, jump],
        group: ProtocolGroup::Star2Pl,
    }
}

impl Node2Pl {
    /// T on the parent of `n` (or on `n` itself for the root).
    fn traverse(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        let Some(class) = cx.read_class() else {
            return Ok(());
        };
        let target = n.parent().unwrap_or_else(|| n.clone());
        cx.lock_node(STRUCTURE, &target, self.t, class)
    }

    /// M on the parent of `n` (structure modification at `n`).
    fn modify(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        let Some(class) = cx.write_class() else {
            return Ok(());
        };
        let target = n.parent().unwrap_or_else(|| n.clone());
        cx.lock_node(STRUCTURE, &target, self.m, class)
    }
}

impl Protocol for Node2Pl {
    fn name(&self) -> &'static str {
        "Node2PL"
    }

    fn supports_lock_depth(&self) -> bool {
        false
    }

    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError> {
        match *op {
            MetaOp::ReadNode(n) => {
                self.traverse(cx, n)?;
                self.common.content_read(cx, n)
            }
            MetaOp::Navigate { to, .. } => match to {
                Some(to) => self.traverse(cx, to),
                None => Ok(()),
            },
            MetaOp::ReadLevel(n) => {
                if let Some(class) = cx.read_class() {
                    cx.lock_node(STRUCTURE, n, self.t, class)?;
                }
                Ok(())
            }
            MetaOp::ReadTree(n) => {
                let Some(class) = cx.read_class() else {
                    return Ok(());
                };
                self.traverse(cx, n)?;
                // Reading every node of the subtree leaves T locks on all
                // inner nodes (each is the parent of something read).
                for node in cx.doc.subtree_nodes(n) {
                    cx.lock_node(STRUCTURE, &node, self.t, class)?;
                }
                Ok(())
            }
            MetaOp::UpdateTree(n) => self.modify(cx, n),
            MetaOp::WriteContent(n) => self.common.content_write(cx, n),
            MetaOp::Rename(n) => {
                self.modify(cx, n)?;
                self.common.content_write(cx, n)
            }
            MetaOp::InsertNode { node, .. } => self.modify(cx, node),
            MetaOp::DeleteTree { node, .. } => {
                self.modify(cx, node)?;
                self.common.idx_scan(cx, node)
            }
            MetaOp::JumpRead(n) => self.common.jump_read(cx, n),
            MetaOp::IndexKeyRead(key) => self.common.key_read(cx, key),
            MetaOp::IndexKeyWrite(key) => self.common.key_write(cx, key),
        }
    }
}

// ---------------------------------------------------------------------
// NO2PL
// ---------------------------------------------------------------------

/// NO2PL: locks the accessed nodes themselves (and, for updates, only the
/// nodes *reachable from* the context node) — finer than Node2PL's
/// whole-level parent locks.
pub struct No2Pl {
    ns: ModeIdx,
    nx: ModeIdx,
    common: Star2PlCommon,
}

/// Builds the NO2PL handle.
pub fn no2pl() -> ProtocolHandle {
    let structure = Arc::new(ModeTable::generate(
        "no2pl-structure",
        &[
            ("NS", AlgebraMode::new(S::Read, Region::NONE, Region::NONE)),
            ("NX", AlgebraMode::new(S::Excl, Region::NONE, Region::NONE)),
        ],
        &[],
    ));
    let content = content_table();
    let jump = jump_table();
    let p = No2Pl {
        ns: structure.mode_named("NS").unwrap(),
        nx: structure.mode_named("NX").unwrap(),
        common: Star2PlCommon::new(&content, &jump),
    };
    ProtocolHandle {
        protocol: Arc::new(p),
        families: vec![structure, content, jump],
        group: ProtocolGroup::Star2Pl,
    }
}

impl No2Pl {
    fn share(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        match cx.read_class() {
            Some(class) => cx.lock_node(STRUCTURE, n, self.ns, class),
            None => Ok(()),
        }
    }

    fn exclusive(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        match cx.write_class() {
            Some(class) => cx.lock_node(STRUCTURE, n, self.nx, class),
            None => Ok(()),
        }
    }

    /// NX on the context node and its reachable neighbourhood.
    fn exclusive_neighbourhood(
        &self,
        cx: &LockCtx<'_>,
        n: &SplId,
        left: Option<&SplId>,
        right: Option<&SplId>,
    ) -> Result<(), LockError> {
        self.exclusive(cx, n)?;
        if let Some(p) = n.parent() {
            self.exclusive(cx, &p)?;
        }
        if let Some(l) = left {
            self.exclusive(cx, l)?;
        }
        if let Some(r) = right {
            self.exclusive(cx, r)?;
        }
        Ok(())
    }
}

impl Protocol for No2Pl {
    fn name(&self) -> &'static str {
        "NO2PL"
    }

    fn supports_lock_depth(&self) -> bool {
        false
    }

    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError> {
        match *op {
            MetaOp::ReadNode(n) => {
                self.share(cx, n)?;
                self.common.content_read(cx, n)
            }
            MetaOp::Navigate { from, to, .. } => {
                self.share(cx, from)?;
                match to {
                    Some(to) => self.share(cx, to),
                    None => Ok(()),
                }
            }
            MetaOp::ReadLevel(n) => {
                self.share(cx, n)?;
                for c in cx.doc.children(n) {
                    self.share(cx, &c)?;
                }
                Ok(())
            }
            MetaOp::ReadTree(n) | MetaOp::UpdateTree(n) => {
                let Some(class) = cx.read_class().or_else(|| cx.write_class()) else {
                    return Ok(());
                };
                for node in cx.doc.subtree_nodes(n) {
                    cx.lock_node(STRUCTURE, &node, self.ns, class)?;
                }
                Ok(())
            }
            MetaOp::WriteContent(n) => {
                self.share(cx, n)?;
                self.common.content_write(cx, n)
            }
            MetaOp::Rename(n) => self.exclusive(cx, n),
            MetaOp::InsertNode {
                parent: _,
                node,
                left,
                right,
            } => self.exclusive_neighbourhood(cx, node, left, right),
            MetaOp::DeleteTree { node, left, right } => {
                self.exclusive_neighbourhood(cx, node, left, right)?;
                if cx.write_class().is_some() {
                    let class = cx.write_class().unwrap();
                    for inner in cx.doc.subtree_nodes(node) {
                        cx.lock_node(STRUCTURE, &inner, self.nx, class)?;
                    }
                }
                self.common.idx_scan(cx, node)
            }
            MetaOp::JumpRead(n) => {
                self.common.jump_read(cx, n)?;
                self.share(cx, n)
            }
            MetaOp::IndexKeyRead(key) => self.common.key_read(cx, key),
            MetaOp::IndexKeyWrite(key) => self.common.key_write(cx, key),
        }
    }
}

// ---------------------------------------------------------------------
// OO2PL
// ---------------------------------------------------------------------

/// OO2PL: locks the traversed / affected **navigation edges** — the
/// finest granularity of the group. "OO2PL implies the acquisition of
/// finer and, therefore, a larger number of locks; the advantage of
/// higher parallelism, however, clearly outweighs this processing
/// overhead" (§5.2).
pub struct Oo2Pl {
    er: ModeIdx,
    ex: ModeIdx,
    common: Star2PlCommon,
}

/// Builds the OO2PL handle.
pub fn oo2pl() -> ProtocolHandle {
    let structure = edge_table();
    let content = content_table();
    let jump = jump_table();
    let p = Oo2Pl {
        er: structure.mode_named(edges::ER).unwrap(),
        ex: structure.mode_named(edges::EX).unwrap(),
        common: Star2PlCommon::new(&content, &jump),
    };
    ProtocolHandle {
        protocol: Arc::new(p),
        families: vec![structure, content, jump],
        group: ProtocolGroup::Star2Pl,
    }
}

impl Oo2Pl {
    fn edge(
        &self,
        cx: &LockCtx<'_>,
        n: &SplId,
        kind: EdgeKind,
        exclusive: bool,
    ) -> Result<(), LockError> {
        let class = if exclusive {
            cx.write_class()
        } else {
            cx.read_class()
        };
        let Some(class) = class else { return Ok(()) };
        let mode = if exclusive { self.ex } else { self.er };
        cx.lock_edge(STRUCTURE, n, kind, mode, class)
    }

    /// Exclusive locks on the edges affected by a structure change at the
    /// position (`parent`, `left`, `right`).
    fn boundary_edges(
        &self,
        cx: &LockCtx<'_>,
        parent: &SplId,
        left: Option<&SplId>,
        right: Option<&SplId>,
    ) -> Result<(), LockError> {
        match left {
            Some(l) => self.edge(cx, l, EdgeKind::NextSibling, true)?,
            None => self.edge(cx, parent, EdgeKind::FirstChild, true)?,
        }
        match right {
            Some(r) => self.edge(cx, r, EdgeKind::PrevSibling, true)?,
            None => self.edge(cx, parent, EdgeKind::LastChild, true)?,
        }
        Ok(())
    }
}

impl Protocol for Oo2Pl {
    fn name(&self) -> &'static str {
        "OO2PL"
    }

    fn supports_lock_depth(&self) -> bool {
        false
    }

    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError> {
        match *op {
            MetaOp::ReadNode(n) => self.common.content_read(cx, n),
            MetaOp::Navigate { from, edge, .. } => self.edge(cx, from, edge, false),
            MetaOp::ReadLevel(n) => {
                self.edge(cx, n, EdgeKind::FirstChild, false)?;
                for c in cx.doc.children(n) {
                    self.edge(cx, &c, EdgeKind::NextSibling, false)?;
                }
                Ok(())
            }
            MetaOp::ReadTree(n) | MetaOp::UpdateTree(n) => {
                // Traversing the subtree touches every first-child /
                // next-sibling edge in it.
                for node in cx.doc.subtree_nodes(n) {
                    self.edge(cx, &node, EdgeKind::FirstChild, false)?;
                    self.edge(cx, &node, EdgeKind::NextSibling, false)?;
                    self.common.content_read(cx, &node)?;
                }
                Ok(())
            }
            MetaOp::WriteContent(n) | MetaOp::Rename(n) => self.common.content_write(cx, n),
            MetaOp::InsertNode {
                parent,
                node: _,
                left,
                right,
            } => self.boundary_edges(cx, parent, left, right),
            MetaOp::DeleteTree { node, left, right } => {
                if let Some(parent) = node.parent() {
                    self.boundary_edges(cx, &parent, left, right)?;
                }
                // Invalidate navigation anchored at the vanishing nodes.
                for inner in cx.doc.subtree_nodes(node) {
                    self.edge(cx, &inner, EdgeKind::FirstChild, true)?;
                    self.edge(cx, &inner, EdgeKind::NextSibling, true)?;
                    self.edge(cx, &inner, EdgeKind::PrevSibling, true)?;
                    self.common.content_write(cx, &inner)?;
                }
                self.common.idx_scan(cx, node)
            }
            MetaOp::JumpRead(n) => self.common.jump_read(cx, n),
            MetaOp::IndexKeyRead(key) => self.common.key_read(cx, key),
            MetaOp::IndexKeyWrite(key) => self.common.key_write(cx, key),
        }
    }
}
