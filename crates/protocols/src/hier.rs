//! The shared engine for hierarchical (intention-lock) protocols: the
//! MGL* group and the taDOM* group are configurations of this engine.
//!
//! Common behaviour (§2 intro): every context-node lock is preceded by
//! intention locks on the entire ancestor path (derived from the SPLID,
//! no document access), navigation steps are isolated by edge locks, and
//! the lock-depth parameter escalates locks below level *n* to a subtree
//! lock at level *n* (footnote 2).

use crate::edges;

use xtc_lock::{
    clamp_to_depth, EdgeKind, LockClass, LockCtx, LockError, MetaOp, ModeIdx, Protocol,
};
use xtc_splid::SplId;

/// Family index of node locks.
pub const NODE_FAMILY: u8 = 0;
/// Family index of edge locks.
pub const EDGE_FAMILY: u8 = 1;

/// Mode assignments for one hierarchical protocol.
#[derive(Debug, Clone, Copy)]
pub struct HierModes {
    /// Intention lock on the path for read operations (IR / I).
    pub intent_read: ModeIdx,
    /// Intention lock on the path for write operations (IX / I).
    pub intent_write: ModeIdx,
    /// Mode on the *parent* of an exclusively locked node (taDOM's CX;
    /// same as `intent_write` for MGL protocols).
    pub child_excl: ModeIdx,
    /// Reading a single node (NR; the intention mode itself for MGL,
    /// whose intention locks double as node locks).
    pub node_read: ModeIdx,
    /// Level read (taDOM's LR); protocols without level locks lock each
    /// child individually with `node_read`.
    pub level_read: Option<ModeIdx>,
    /// Subtree read (SR / R).
    pub tree_read: ModeIdx,
    /// Subtree update (SU / U); protocols without update modes fall back
    /// to `tree_write`.
    pub tree_update: Option<ModeIdx>,
    /// Subtree exclusive (SX / X).
    pub tree_write: ModeIdx,
    /// Node rename (taDOM3's NX); others escalate to `tree_write`.
    pub rename: ModeIdx,
}

/// A hierarchical protocol instance (taDOM2/2+/3/3+, IRX, IRIX, URIX).
pub struct Hierarchical {
    name: &'static str,
    modes: HierModes,
    er: ModeIdx,
    ex: ModeIdx,
}

impl Hierarchical {
    /// Creates an instance. The caller's family list must put the node
    /// table at index 0 and the shared edge table at index 1.
    pub fn new(name: &'static str, modes: HierModes) -> Self {
        let edge_table = edges::edge_table();
        let er = edge_table.mode_named(edges::ER).expect("ER");
        let ex = edge_table.mode_named(edges::EX).expect("EX");
        Hierarchical { name, modes, er, ex }
    }

    /// Locks the ancestor path of `target` root-first: `path_mode` on all
    /// ancestors except the parent, which gets `parent_mode`.
    fn lock_path(
        &self,
        cx: &LockCtx<'_>,
        target: &SplId,
        path_mode: ModeIdx,
        parent_mode: ModeIdx,
        class: LockClass,
    ) -> Result<(), LockError> {
        let mut path: Vec<SplId> = target.ancestors().collect();
        path.reverse(); // root first
        let n = path.len();
        for (i, anc) in path.iter().enumerate() {
            let mode = if i + 1 == n { parent_mode } else { path_mode };
            cx.lock_node(NODE_FAMILY, anc, mode, class)?;
        }
        Ok(())
    }

    /// Read-type lock on a node with path protection and depth clamping.
    fn read_node(&self, cx: &LockCtx<'_>, node: &SplId) -> Result<(), LockError> {
        let Some(class) = cx.read_class() else {
            return Ok(());
        };
        let (target, subtree) = clamp_to_depth(node, cx.lock_depth);
        let m = &self.modes;
        self.lock_path(cx, &target, m.intent_read, m.intent_read, class)?;
        let mode = if subtree { m.tree_read } else { m.node_read };
        cx.lock_node(NODE_FAMILY, &target, mode, class)
    }

    /// Write-type lock (`mode`) on a node with IX path / CX parent and
    /// depth clamping (escalating to `tree_write` when clamped).
    fn write_node(
        &self,
        cx: &LockCtx<'_>,
        node: &SplId,
        mode: ModeIdx,
    ) -> Result<(), LockError> {
        let Some(class) = cx.write_class() else {
            return Ok(());
        };
        let (target, subtree) = clamp_to_depth(node, cx.lock_depth);
        let m = &self.modes;
        self.lock_path(cx, &target, m.intent_write, m.child_excl, class)?;
        let mode = if subtree { m.tree_write } else { mode };
        cx.lock_node(NODE_FAMILY, &target, mode, class)
    }

    /// Shared edge lock, skipped when the anchor lies below the lock
    /// depth (a subtree lock already stabilizes the region).
    fn edge(
        &self,
        cx: &LockCtx<'_>,
        node: &SplId,
        kind: EdgeKind,
        exclusive: bool,
    ) -> Result<(), LockError> {
        let class = if exclusive {
            cx.write_class()
        } else {
            cx.read_class()
        };
        let Some(class) = class else { return Ok(()) };
        if node.level() as u32 > cx.lock_depth {
            return Ok(());
        }
        let mode = if exclusive { self.ex } else { self.er };
        cx.lock_edge(EDGE_FAMILY, node, kind, mode, class)
    }

    /// Exclusive locks on the edges affected by inserting/removing a node
    /// between `left` and `right` under `parent`.
    fn structure_edges(
        &self,
        cx: &LockCtx<'_>,
        parent: &SplId,
        left: Option<&SplId>,
        right: Option<&SplId>,
    ) -> Result<(), LockError> {
        match left {
            Some(l) => self.edge(cx, l, EdgeKind::NextSibling, true)?,
            None => self.edge(cx, parent, EdgeKind::FirstChild, true)?,
        }
        match right {
            Some(r) => self.edge(cx, r, EdgeKind::PrevSibling, true)?,
            None => self.edge(cx, parent, EdgeKind::LastChild, true)?,
        }
        Ok(())
    }
}

impl Protocol for Hierarchical {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports_lock_depth(&self) -> bool {
        true
    }

    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError> {
        let m = &self.modes;
        match *op {
            MetaOp::ReadNode(n) | MetaOp::JumpRead(n) => self.read_node(cx, n),
            MetaOp::Navigate { from, to, edge } => {
                self.edge(cx, from, edge, false)?;
                if let Some(to) = to {
                    self.read_node(cx, to)?;
                }
                Ok(())
            }
            MetaOp::ReadLevel(n) => {
                let Some(class) = cx.read_class() else {
                    return Ok(());
                };
                let (target, subtree) = clamp_to_depth(n, cx.lock_depth);
                self.lock_path(cx, &target, m.intent_read, m.intent_read, class)?;
                if subtree {
                    return cx.lock_node(NODE_FAMILY, &target, m.tree_read, class);
                }
                match m.level_read {
                    Some(lr) => cx.lock_node(NODE_FAMILY, n, lr, class),
                    None => {
                        // No level locks (MGL*): the getChildNodes fan-out
                        // costs one request per child, plus edge locks to
                        // keep the level phantom-free.
                        cx.lock_node(NODE_FAMILY, n, m.node_read, class)?;
                        self.edge(cx, n, EdgeKind::FirstChild, false)?;
                        for child in cx.doc.children(n) {
                            cx.lock_node(NODE_FAMILY, &child, m.node_read, class)?;
                            self.edge(cx, &child, EdgeKind::NextSibling, false)?;
                        }
                        Ok(())
                    }
                }
            }
            MetaOp::ReadTree(n) => {
                let Some(class) = cx.read_class() else {
                    return Ok(());
                };
                let (target, _) = clamp_to_depth(n, cx.lock_depth);
                self.lock_path(cx, &target, m.intent_read, m.intent_read, class)?;
                cx.lock_node(NODE_FAMILY, &target, m.tree_read, class)
            }
            MetaOp::UpdateTree(n) => {
                let Some(class) = cx.write_class() else {
                    return Ok(());
                };
                let (target, _) = clamp_to_depth(n, cx.lock_depth);
                self.lock_path(cx, &target, m.intent_write, m.intent_write, class)?;
                let mode = m.tree_update.unwrap_or(m.tree_write);
                cx.lock_node(NODE_FAMILY, &target, mode, class)
            }
            MetaOp::WriteContent(n) => self.write_node(cx, n, m.tree_write),
            MetaOp::Rename(n) => self.write_node(cx, n, m.rename),
            MetaOp::InsertNode {
                parent,
                node,
                left,
                right,
            } => {
                self.write_node(cx, node, m.tree_write)?;
                if cx.write_class().is_some() && parent.level() as u32 <= cx.lock_depth {
                    self.structure_edges(cx, parent, left, right)?;
                }
                Ok(())
            }
            MetaOp::IndexKeyRead(key) => {
                let Some(class) = cx.read_class() else {
                    return Ok(());
                };
                cx.lock_index_key(NODE_FAMILY, key, m.node_read, class)
            }
            MetaOp::IndexKeyWrite(key) => {
                let Some(class) = cx.write_class() else {
                    return Ok(());
                };
                cx.lock_index_key(NODE_FAMILY, key, m.tree_write, class)
            }
            MetaOp::DeleteTree { node, left, right } => {
                self.write_node(cx, node, m.tree_write)?;
                if cx.write_class().is_some() && node.level() as u32 <= cx.lock_depth {
                    // Stabilize navigation around and into the vanishing
                    // subtree.
                    if let Some(parent) = node.parent() {
                        self.structure_edges(cx, &parent, left, right)?;
                    }
                    for kind in [
                        EdgeKind::FirstChild,
                        EdgeKind::LastChild,
                        EdgeKind::NextSibling,
                        EdgeKind::PrevSibling,
                    ] {
                        self.edge(cx, node, kind, true)?;
                    }
                }
                Ok(())
            }
        }
    }
}
