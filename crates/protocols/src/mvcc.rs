//! taMVCC: taDOM-flavored multi-version concurrency control.
//!
//! A twelfth contestant, outside the paper's original field: reads are
//! served from versioned snapshots (the transaction layer resolves them
//! against a version store at the transaction's begin stamp) and
//! therefore acquire **no** locks at all — a long report reader can no
//! longer serialize CLUSTER2 writers behind its SR/LR locks. Writes
//! still go through the full taDOM3+ mapping, so writer/writer
//! isolation keeps the strongest pessimistic behavior of the field
//! while writer/reader conflicts vanish by construction (snapshot
//! isolation with first-updater-wins, enforced by the version store).

use crate::{tadom, ProtocolGroup, ProtocolHandle};
use std::sync::Arc;
use xtc_lock::{LockCtx, LockError, MetaOp, Protocol};

/// Is this meta-lock request a read under snapshot semantics? Versioned
/// protocols serve these from the version store without locks.
/// `UpdateTree` counts as a read: the declared update intent is
/// discharged by first-updater-wins checks on the writes themselves.
pub(crate) fn is_snapshot_read(op: &MetaOp<'_>) -> bool {
    matches!(
        op,
        MetaOp::ReadNode(_)
            | MetaOp::Navigate { .. }
            | MetaOp::ReadLevel(_)
            | MetaOp::ReadTree(_)
            | MetaOp::UpdateTree(_)
            | MetaOp::JumpRead(_)
            | MetaOp::IndexKeyRead(_)
    )
}

/// The taMVCC protocol: snapshot reads, taDOM3+ writes.
pub struct TaMvcc {
    inner: Arc<dyn Protocol>,
}

impl Protocol for TaMvcc {
    fn name(&self) -> &'static str {
        "taMVCC"
    }

    fn supports_lock_depth(&self) -> bool {
        self.inner.supports_lock_depth()
    }

    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError> {
        if is_snapshot_read(op) {
            return Ok(());
        }
        self.inner.acquire(cx, op)
    }

    fn versioned_reads(&self) -> bool {
        true
    }
}

/// Builds taMVCC: the taDOM3+ write mapping (and its mode families)
/// behind a snapshot-read front.
pub fn ta_mvcc() -> ProtocolHandle {
    let base = tadom::tadom3_plus();
    ProtocolHandle {
        protocol: Arc::new(TaMvcc {
            inner: base.protocol,
        }),
        families: base.families,
        group: ProtocolGroup::Versioned,
    }
}
