//! The taDOM* group (§2.3): taDOM2, taDOM2+, taDOM3, taDOM3+.
//!
//! Mode sets under the region algebra (see DESIGN.md — the taDOM2
//! matrices reproduce the printed Figures 3a and 4; the 2+/3/3+ sets are
//! reconstructed, matching every structural statement of the paper):
//!
//! * **taDOM2** — IR, NR, LR, SR, IX, CX, SU, SX (8 modes). IX carries
//!   write intent strictly below the child level; CX marks a direct child
//!   as exclusively locked (the distinction that lets IX coexist with LR
//!   while CX does not).
//! * **taDOM2+** — adds the combination modes LRIX, LRCX, SRIX, SRCX, so
//!   the LR+IX-style conversions of Fig. 4 resolve *exactly* instead of
//!   through annex child locks.
//! * **taDOM3** — adds node-only update/exclusive (NU, NX) for DOM-3
//!   renaming, and refines IR/IX/CX's self access to *traverse* so a
//!   rename can proceed under pure traversal (footnote 3); IX/CX keep a
//!   read-pinned self so conversions from LR/SR preserve node reads.
//! * **taDOM3+** — taDOM3 plus ten combination modes (the four of 2+ and
//!   six NU/NX combinations), **20 node modes** and three edge modes as
//!   stated in §2.3, making every common conversion exact.

use crate::edges::edge_table;
use crate::hier::{HierModes, Hierarchical};
use crate::{ProtocolGroup, ProtocolHandle};
use std::sync::Arc;
use xtc_lock::algebra::{AlgebraMode, CovNonNone::*, Region, SelfAcc as S};
use xtc_lock::ModeTable;

const R_INT: Region = Region::intents(true, false);
const W_INT: Region = Region::intents(false, true);
const RW_INT: Region = Region::intents(true, true);

fn cov(c: xtc_lock::algebra::CovNonNone) -> Region {
    Region::cov(c)
}

fn cov_int(c: xtc_lock::algebra::CovNonNone, r: bool, w: bool) -> Region {
    Region {
        cov: Some(c),
        int_read: r,
        int_write: w,
    }
}

/// The eight taDOM2 base modes. `ir_self` distinguishes the unrefined
/// protocol (IR ≡ NR, self = Read) from taDOM3's traverse refinement.
fn base_modes(ir_self: S) -> Vec<(&'static str, AlgebraMode)> {
    vec![
        ("IR", AlgebraMode::new(ir_self, R_INT, Region::NONE)),
        ("NR", AlgebraMode::new(S::Read, Region::NONE, Region::NONE)),
        ("LR", AlgebraMode::new(S::Read, cov(Read), Region::NONE)),
        ("SR", AlgebraMode::new(S::Read, cov(Read), cov(Read))),
        ("IX", AlgebraMode::new(S::Read, R_INT, W_INT)),
        ("CX", AlgebraMode::new(S::Read, RW_INT, W_INT)),
        ("SU", AlgebraMode::new(S::Update, cov(Update), cov(Update))),
        ("SX", AlgebraMode::new(S::Excl, cov(Excl), cov(Excl))),
    ]
}

/// The four taDOM2+ combination modes (joins of LR/SR with IX/CX).
fn combo2() -> Vec<(&'static str, AlgebraMode)> {
    vec![
        ("LRIX", AlgebraMode::new(S::Read, cov_int(Read, true, false), W_INT)),
        ("LRCX", AlgebraMode::new(S::Read, cov_int(Read, true, true), W_INT)),
        ("SRIX", AlgebraMode::new(S::Read, cov_int(Read, true, false), cov_int(Read, false, true))),
        ("SRCX", AlgebraMode::new(S::Read, cov_int(Read, true, true), cov_int(Read, false, true))),
    ]
}

/// taDOM3's node-only rename modes.
fn rename_modes() -> Vec<(&'static str, AlgebraMode)> {
    vec![
        ("NU", AlgebraMode::new(S::Update, Region::NONE, Region::NONE)),
        ("NX", AlgebraMode::new(S::Excl, Region::NONE, Region::NONE)),
    ]
}

/// taDOM3+'s six NU/NX combination modes.
fn combo3() -> Vec<(&'static str, AlgebraMode)> {
    vec![
        ("NULR", AlgebraMode::new(S::Update, cov(Read), Region::NONE)),
        ("NUSR", AlgebraMode::new(S::Update, cov(Read), cov(Read))),
        ("NUIX", AlgebraMode::new(S::Update, R_INT, W_INT)),
        ("NUCX", AlgebraMode::new(S::Update, RW_INT, W_INT)),
        ("NXLR", AlgebraMode::new(S::Excl, cov(Read), Region::NONE)),
        ("NXSR", AlgebraMode::new(S::Excl, cov(Read), cov(Read))),
    ]
}

/// Overrides pinning the paper's IR/NR normalization (Fig. 4): the two
/// modes are observably equivalent in taDOM2, and the printed matrix
/// resolves their conversions to NR.
const IR_NR_OVERRIDES: [(&str, &str, &str); 2] = [("IR", "NR", "NR"), ("NR", "IR", "NR")];

fn hier_modes(table: &ModeTable, nx: Option<&str>) -> HierModes {
    let m = |n: &str| table.mode_named(n).unwrap_or_else(|| panic!("mode {n}"));
    HierModes {
        intent_read: m("IR"),
        intent_write: m("IX"),
        child_excl: m("CX"),
        node_read: m("NR"),
        level_read: Some(m("LR")),
        tree_read: m("SR"),
        tree_update: Some(m("SU")),
        tree_write: m("SX"),
        rename: match nx {
            Some(n) => m(n),
            None => m("SX"),
        },
    }
}

fn handle(name: &'static str, table: ModeTable, nx: Option<&str>) -> ProtocolHandle {
    let table = Arc::new(table);
    let modes = hier_modes(&table, nx);
    ProtocolHandle {
        protocol: Arc::new(Hierarchical::new(name, modes)),
        families: vec![table, edge_table()],
        group: ProtocolGroup::TaDom,
    }
}

/// taDOM2: the 8 modes of Figure 3a with the conversion rules of Fig. 4.
pub fn tadom2() -> ProtocolHandle {
    let t = ModeTable::generate_with_annex("taDOM2", &base_modes(S::Read), &IR_NR_OVERRIDES);
    handle("taDOM2", t, None)
}

/// taDOM2+: conversion-optimal via LRIX/LRCX/SRIX/SRCX.
pub fn tadom2_plus() -> ProtocolHandle {
    let mut modes = base_modes(S::Read);
    modes.extend(combo2());
    let t = ModeTable::generate_with_annex("taDOM2+", &modes, &IR_NR_OVERRIDES);
    handle("taDOM2+", t, None)
}

/// taDOM3: DOM-3 rename support (NU/NX) with the IR traverse refinement.
pub fn tadom3() -> ProtocolHandle {
    let mut modes = base_modes(S::Traverse);
    modes.extend(rename_modes());
    let t = ModeTable::generate_with_annex("taDOM3", &modes, &IR_NR_OVERRIDES);
    handle("taDOM3", t, Some("NX"))
}

/// taDOM3+: 20 node modes, optimal conversions.
pub fn tadom3_plus() -> ProtocolHandle {
    let mut modes = base_modes(S::Traverse);
    modes.extend(rename_modes());
    modes.extend(combo2());
    modes.extend(combo3());
    let t = ModeTable::generate_with_annex("taDOM3+", &modes, &IR_NR_OVERRIDES);
    handle("taDOM3+", t, Some("NX"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtc_lock::Annex;

    /// Figure 3a, rows = requested, columns = held; order:
    /// IR NR LR SR IX CX SU SX (the leading "no lock" column is implicit).
    #[test]
    fn tadom2_compatibility_matches_figure_3a() {
        let t = &tadom2().families[0];
        let order = ["IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX"];
        let expected: [(&str, [u8; 8]); 8] = [
            ("IR", [1, 1, 1, 1, 1, 1, 0, 0]),
            ("NR", [1, 1, 1, 1, 1, 1, 0, 0]),
            ("LR", [1, 1, 1, 1, 1, 0, 0, 0]),
            ("SR", [1, 1, 1, 1, 0, 0, 0, 0]),
            ("IX", [1, 1, 1, 0, 1, 1, 0, 0]),
            ("CX", [1, 1, 0, 0, 1, 1, 0, 0]),
            ("SU", [1, 1, 1, 1, 0, 0, 0, 0]),
            ("SX", [0, 0, 0, 0, 0, 0, 0, 0]),
        ];
        for (req, row) in expected {
            for (j, held) in order.iter().enumerate() {
                let got = t.compatible(t.mode_named(req).unwrap(), t.mode_named(held).unwrap());
                assert_eq!(got, row[j] == 1, "compat(req={req}, held={held})");
            }
        }
    }

    /// Figure 4, rows = held, columns = requested. Subscripted entries
    /// (e.g. CX_NR) are annex conversions.
    #[test]
    fn tadom2_conversion_matches_figure_4() {
        let t = &tadom2().families[0];
        let order = ["IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX"];
        let expected: [(&str, [&str; 8]); 8] = [
            ("IR", ["IR", "NR", "LR", "SR", "IX", "CX", "SU", "SX"]),
            ("NR", ["NR", "NR", "LR", "SR", "IX", "CX", "SU", "SX"]),
            ("LR", ["LR", "LR", "LR", "SR", "IX_NR", "CX_NR", "SU", "SX"]),
            ("SR", ["SR", "SR", "SR", "SR", "IX_SR", "CX_SR", "SR", "SX"]),
            ("IX", ["IX", "IX", "IX_NR", "IX_SR", "IX", "CX", "SX", "SX"]),
            ("CX", ["CX", "CX", "CX_NR", "CX_SR", "CX", "CX", "SX", "SX"]),
            ("SU", ["SU", "SU", "SU", "SU", "SX", "SX", "SU", "SX"]),
            ("SX", ["SX", "SX", "SX", "SX", "SX", "SX", "SX", "SX"]),
        ];
        for (held, row) in expected {
            for (j, req) in order.iter().enumerate() {
                let conv =
                    t.conversion(t.mode_named(held).unwrap(), t.mode_named(req).unwrap());
                let got = match conv.annex {
                    Annex::None => t.name(conv.result).to_string(),
                    Annex::ChildLocks(c) => format!("{}_{}", t.name(conv.result), t.name(c)),
                };
                assert_eq!(got, row[j], "convert(held={held}, req={req})");
            }
        }
    }

    #[test]
    fn tadom2_plus_conversions_are_exact_without_annex() {
        // §2.3: the + variants exist to optimize conversions — the Fig. 4
        // annex cells resolve to single combination modes.
        let t = &tadom2_plus().families[0];
        for (held, req, want) in [
            ("LR", "IX", "LRIX"),
            ("LR", "CX", "LRCX"),
            ("SR", "IX", "SRIX"),
            ("SR", "CX", "SRCX"),
            ("IX", "LR", "LRIX"),
            ("CX", "SR", "SRCX"),
            ("LRIX", "CX", "LRCX"),
            ("SRIX", "CX", "SRCX"),
            ("LRIX", "SR", "SRIX"),
        ] {
            let conv = t.conversion(t.mode_named(held).unwrap(), t.mode_named(req).unwrap());
            assert_eq!(conv.annex, Annex::None, "{held}+{req}");
            assert_eq!(t.name(conv.result), want, "{held}+{req}");
        }
    }

    #[test]
    fn tadom3_rename_lock_coexists_with_traversal_only() {
        let t = &tadom3().families[0];
        let nx = t.mode_named("NX").unwrap();
        let ir = t.mode_named("IR").unwrap();
        let nr = t.mode_named("NR").unwrap();
        let lr = t.mode_named("LR").unwrap();
        assert!(t.compatible(nx, ir), "rename under pure traversal");
        assert!(t.compatible(ir, nx));
        assert!(!t.compatible(nx, nr), "rename vs node read conflicts");
        assert!(!t.compatible(nx, lr), "parent-level read covers the child");
        assert!(!t.compatible(nx, nx));
        // NU asymmetry.
        let nu = t.mode_named("NU").unwrap();
        assert!(t.compatible(nu, nr), "NU joins an existing reader");
        assert!(!t.compatible(nr, nu), "new reads blocked behind NU");
    }

    #[test]
    fn tadom3_plus_common_conversions_are_exact() {
        let t = &tadom3_plus().families[0];
        for (held, req, want) in [
            ("LR", "IX", "LRIX"),
            ("SR", "CX", "SRCX"),
            ("LR", "NU", "LR"), // held read coverage absorbs U (Fig. 2: R+U→R)
            ("SR", "NU", "SR"),
            ("NU", "SR", "NUSR"),
            ("LR", "NX", "NXLR"),
            ("SR", "NX", "NXSR"),
            ("NU", "IX", "NUIX"),
            ("NU", "CX", "NUCX"),
            ("NU", "NX", "NX"),
            ("NU", "LR", "NULR"),
        ] {
            let conv = t.conversion(t.mode_named(held).unwrap(), t.mode_named(req).unwrap());
            assert_eq!(conv.annex, Annex::None, "{held}+{req}");
            assert_eq!(t.name(conv.result), want, "{held}+{req}");
        }
    }

    #[test]
    fn mode_census() {
        assert_eq!(tadom2().families[0].len(), 8);
        assert_eq!(tadom2_plus().families[0].len(), 12);
        assert_eq!(tadom3().families[0].len(), 10);
        assert_eq!(tadom3_plus().families[0].len(), 20);
    }

    #[test]
    fn every_conversion_is_at_least_as_strong_as_the_request() {
        // Conversion results must conflict with everything the requested
        // mode conflicts with (no isolation loss).
        for h in [tadom2(), tadom2_plus(), tadom3(), tadom3_plus()] {
            let t = &h.families[0];
            for held in 0..t.len() as u8 {
                for req in 0..t.len() as u8 {
                    let conv = t.conversion(held, req);
                    if conv.annex != Annex::None {
                        // Annex conversions delegate part of the coverage
                        // to per-child locks; the node mode alone is not
                        // comparable.
                        continue;
                    }
                    let res = conv.result;
                    // Two documented exemptions: the IR/NR normalization
                    // (equivalent modes) and the paper's R-absorbs-U rule
                    // (Fig. 2 R+U→R, Fig. 4 SR+SU→SR), which deliberately
                    // drops U's new-reader barrier while keeping all read
                    // isolation.
                    let u_absorbed = (t.name(req).contains('U') && res == held)
                        || (t.name(held).contains('U') && res == req);
                    for other in 0..t.len() as u8 {
                        if t.compatible(other, res) {
                            assert!(
                                t.compatible(other, req) && t.compatible(other, held)
                                    || u_absorbed
                                    || matches!(
                                        (t.name(held), t.name(req)),
                                        ("IR", "NR") | ("NR", "IR")
                                    ),
                                "{}: convert({}, {}) = {} weaker than inputs vs {}",
                                t.family(),
                                t.name(held),
                                t.name(req),
                                t.name(res),
                                t.name(other)
                            );
                        }
                    }
                }
            }
        }
    }
}
