//! Node2PLa (§2.2): the optimized *-2PL representative.
//!
//! Node2PL's parent-focused T/M locks, enhanced with URIX-style intention
//! locks protecting the ancestor paths of direct jumps, a lock-depth
//! parameter, and the subtree locks that parameter implies. Because
//! intentions now protect every path, subtree deletion needs **no IDX
//! scan** — which is exactly why Node2PLa escapes the group's CLUSTER2
//! penalty (Fig. 11) while keeping the group's characteristic weakness:
//! "overly restrictive parent locking" that reacts one level deeper
//! (Fig. 10) and huge granules for renames (M on the parent blocks the
//! whole level).

use crate::{ProtocolGroup, ProtocolHandle};
use std::sync::Arc;
use xtc_lock::algebra::{AlgebraMode, CovNonNone::*, Region, SelfAcc as S};
use xtc_lock::{
    clamp_to_depth, LockClass, LockCtx, LockError, MetaOp, ModeIdx, ModeTable, Protocol,
};
use xtc_splid::SplId;

const NODE_FAMILY: u8 = 0;

/// The Node2PLa protocol.
pub struct Node2PLa {
    ir: ModeIdx,
    ix: ModeIdx,
    t: ModeIdx,
    m: ModeIdx,
    sr: ModeIdx,
    su: ModeIdx,
    sx: ModeIdx,
}

/// Builds the Node2PLa handle.
pub fn node2pla() -> ProtocolHandle {
    let table = Arc::new(ModeTable::generate(
        "node2pla",
        &[
            ("IR", AlgebraMode::new(S::Read, Region::intents(true, false), Region::NONE)),
            ("IX", AlgebraMode::new(S::Read, Region::intents(true, false), Region::intents(false, true))),
            ("T", AlgebraMode::new(S::Read, Region::cov(Read), Region::NONE)),
            ("M", AlgebraMode::new(S::Read, Region::cov(Excl), Region::intents(false, true))),
            ("SR", AlgebraMode::new(S::Read, Region::cov(Read), Region::cov(Read))),
            ("SU", AlgebraMode::new(S::Update, Region::cov(Update), Region::cov(Update))),
            ("SX", AlgebraMode::new(S::Excl, Region::cov(Excl), Region::cov(Excl))),
        ],
        &[],
    ));
    let m = |n: &str| table.mode_named(n).unwrap();
    let p = Node2PLa {
        ir: m("IR"),
        ix: m("IX"),
        t: m("T"),
        m: m("M"),
        sr: m("SR"),
        su: m("SU"),
        sx: m("SX"),
    };
    ProtocolHandle {
        protocol: Arc::new(p),
        families: vec![table],
        group: ProtocolGroup::Star2Pl,
    }
}

impl Node2PLa {
    /// Intention locks root-first on all proper ancestors of `target`.
    fn lock_path(
        &self,
        cx: &LockCtx<'_>,
        target: &SplId,
        mode: ModeIdx,
        class: LockClass,
    ) -> Result<(), LockError> {
        let mut path: Vec<SplId> = target.ancestors().collect();
        path.reverse();
        for anc in &path {
            cx.lock_node(NODE_FAMILY, anc, mode, class)?;
        }
        Ok(())
    }

    /// Read access to node `n`: T on its parent (the protocol's focus),
    /// IR on the path above; depth-clamped to SR.
    fn read(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        let Some(class) = cx.read_class() else {
            return Ok(());
        };
        let focus = n.parent().unwrap_or_else(|| n.clone());
        let (target, subtree) = clamp_to_depth(&focus, cx.lock_depth);
        self.lock_path(cx, &target, self.ir, class)?;
        let mode = if subtree { self.sr } else { self.t };
        cx.lock_node(NODE_FAMILY, &target, mode, class)
    }

    /// Write access at node `n`: M on its parent, IX path; depth-clamped
    /// to SX.
    fn write(&self, cx: &LockCtx<'_>, n: &SplId) -> Result<(), LockError> {
        let Some(class) = cx.write_class() else {
            return Ok(());
        };
        let focus = n.parent().unwrap_or_else(|| n.clone());
        let (target, subtree) = clamp_to_depth(&focus, cx.lock_depth);
        self.lock_path(cx, &target, self.ix, class)?;
        let mode = if subtree { self.sx } else { self.m };
        cx.lock_node(NODE_FAMILY, &target, mode, class)
    }
}

impl Protocol for Node2PLa {
    fn name(&self) -> &'static str {
        "Node2PLa"
    }

    fn supports_lock_depth(&self) -> bool {
        true
    }

    fn acquire(&self, cx: &LockCtx<'_>, op: &MetaOp<'_>) -> Result<(), LockError> {
        match *op {
            MetaOp::ReadNode(n) | MetaOp::JumpRead(n) => self.read(cx, n),
            MetaOp::Navigate { to, .. } => match to {
                Some(to) => self.read(cx, to),
                None => Ok(()),
            },
            MetaOp::ReadLevel(n) => {
                // T on n itself covers the whole child level.
                let Some(class) = cx.read_class() else {
                    return Ok(());
                };
                let (target, subtree) = clamp_to_depth(n, cx.lock_depth);
                self.lock_path(cx, &target, self.ir, class)?;
                let mode = if subtree { self.sr } else { self.t };
                cx.lock_node(NODE_FAMILY, &target, mode, class)
            }
            MetaOp::ReadTree(n) => {
                let Some(class) = cx.read_class() else {
                    return Ok(());
                };
                let (target, _) = clamp_to_depth(n, cx.lock_depth);
                self.lock_path(cx, &target, self.ir, class)?;
                cx.lock_node(NODE_FAMILY, &target, self.sr, class)
            }
            MetaOp::UpdateTree(n) => {
                let Some(class) = cx.write_class() else {
                    return Ok(());
                };
                let (target, _) = clamp_to_depth(n, cx.lock_depth);
                self.lock_path(cx, &target, self.ix, class)?;
                cx.lock_node(NODE_FAMILY, &target, self.su, class)
            }
            MetaOp::WriteContent(n) | MetaOp::Rename(n) => self.write(cx, n),
            MetaOp::InsertNode { node, .. } => self.write(cx, node),
            MetaOp::IndexKeyRead(key) => {
                let Some(class) = cx.read_class() else {
                    return Ok(());
                };
                cx.lock_index_key(NODE_FAMILY, key, self.sr, class)
            }
            MetaOp::IndexKeyWrite(key) => {
                let Some(class) = cx.write_class() else {
                    return Ok(());
                };
                cx.lock_index_key(NODE_FAMILY, key, self.sx, class)
            }
            MetaOp::DeleteTree { node, .. } => {
                // M on the parent + SX on the subtree root; intentions on
                // every path make the IDX scan unnecessary.
                self.write(cx, node)?;
                let Some(class) = cx.write_class() else {
                    return Ok(());
                };
                let (target, _) = clamp_to_depth(node, cx.lock_depth);
                cx.lock_node(NODE_FAMILY, &target, self.sx, class)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_and_m_follow_figure_1() {
        let h = node2pla();
        let t = &h.families[0];
        let (tt, m) = (t.mode_named("T").unwrap(), t.mode_named("M").unwrap());
        assert!(t.compatible(tt, tt));
        assert!(!t.compatible(tt, m));
        assert!(!t.compatible(m, tt));
        assert!(!t.compatible(m, m));
        // Intentions coexist with T but writes deeper conflict with SR.
        let ir = t.mode_named("IR").unwrap();
        let ix = t.mode_named("IX").unwrap();
        let sr = t.mode_named("SR").unwrap();
        assert!(t.compatible(ir, tt));
        assert!(t.compatible(ix, tt), "deep writes pass a level pin above");
        assert!(!t.compatible(ix, sr));
        assert!(!t.compatible(m, sr));
    }

    #[test]
    fn conversions_close_within_the_set() {
        let h = node2pla();
        let t = &h.families[0];
        let m = |n: &str| t.mode_named(n).unwrap();
        assert_eq!(t.name(t.conversion(m("T"), m("M")).result), "M");
        assert_eq!(t.name(t.conversion(m("IR"), m("IX")).result), "IX");
        assert_eq!(t.name(t.conversion(m("T"), m("SR")).result), "SR");
        assert_eq!(t.name(t.conversion(m("SR"), m("M")).result), "SX");
        assert_eq!(t.name(t.conversion(m("SU"), m("SX")).result), "SX");
    }
}
