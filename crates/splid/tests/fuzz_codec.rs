//! Deterministic fuzz of the SPLID codec: round trips over random valid
//! division sequences, order preservation, and graceful `DecodeError`s on
//! corrupted bytes. Runs with fixed seeds so local builds get the coverage
//! even where proptest is unavailable (`prop_splid.rs` covers the
//! generative variants in CI).

use xtc_splid::{common_prefix_len, decode, encode, DecodeError, LabelAllocator, SplId};

/// xorshift64* — no external RNG dependency, stable across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random valid label: starts at the root division 1, never contains 0,
/// ends odd. Division magnitudes are drawn across all five code ranges so
/// every prefix/payload combination round-trips.
fn random_divisions(rng: &mut Rng) -> Vec<u32> {
    let len = 1 + rng.below(12) as usize;
    let mut divs = vec![1u32];
    for _ in 1..len {
        let d = match rng.below(5) {
            0 => 1 + rng.below(7) as u32,                       // range 1
            1 => 8 + rng.below(64) as u32,                      // range 2
            2 => 72 + rng.below(4096) as u32,                   // range 3
            3 => 4168 + rng.below(1 << 20) as u32,              // range 4
            _ => 1_052_744u32.saturating_add(rng.next() as u32), // range 5
        };
        divs.push(d.max(1));
    }
    if let Some(last) = divs.last_mut() {
        *last |= 1; // labels end in an odd division
    }
    divs
}

#[test]
fn random_division_sequences_round_trip() {
    let mut rng = Rng(0x5EED_0001);
    for case in 0..4000 {
        let divs = random_divisions(&mut rng);
        let label = SplId::from_divisions(&divs).unwrap();
        let bytes = encode(&label);
        let back = decode(&bytes).unwrap_or_else(|e| panic!("case {case}: {label} -> {e}"));
        assert_eq!(back, label, "case {case}");
    }
}

#[test]
fn allocator_walks_round_trip_and_preserve_order() {
    // Labels produced the way the node manager produces them: child /
    // sibling / between navigation, at several dist settings.
    let mut rng = Rng(0x5EED_0002);
    let mut labels = Vec::new();
    for &dist in &[2u32, 4, 16, 64] {
        let alloc = LabelAllocator::new(dist);
        let mut cur = SplId::root();
        let mut prev_sib: Option<SplId> = None;
        for _ in 0..400 {
            cur = match rng.below(4) {
                0 => {
                    prev_sib = None;
                    alloc.first_child(&cur)
                }
                1 => {
                    let next = alloc
                        .next_sibling(&cur)
                        .unwrap_or_else(|_| alloc.first_child(&cur));
                    prev_sib = Some(cur);
                    next
                }
                2 => match &prev_sib {
                    // The tracked left neighbour can go stale across parent
                    // hops — fall back to a child step when it is no longer
                    // a sibling.
                    Some(p) if *p < cur => alloc
                        .between(Some(p), Some(&cur))
                        .unwrap_or_else(|_| alloc.first_child(&cur)),
                    _ => alloc.first_child(&cur),
                },
                _ => {
                    prev_sib = None;
                    cur.parent().unwrap_or_else(SplId::root)
                }
            };
            labels.push(cur.clone());
        }
    }
    for l in &labels {
        assert_eq!(decode(&encode(l)).unwrap(), *l, "round trip of {l}");
    }
    // Bytewise order of encodings == document order of labels.
    let mut by_label = labels.clone();
    by_label.sort();
    by_label.dedup();
    let mut by_bytes = by_label.clone();
    by_bytes.sort_by_key(encode);
    assert_eq!(by_label, by_bytes, "encoding must preserve document order");
    // Sanity for the storage layer's front coding: consecutive labels in
    // document order share a meaningful prefix on average.
    let shared: usize = by_label
        .windows(2)
        .map(|w| common_prefix_len(&encode(&w[0]), &encode(&w[1])))
        .sum();
    assert!(
        shared > by_label.len(),
        "document-order neighbours share almost nothing: {shared} bytes over {} pairs",
        by_label.len() - 1
    );
}

#[test]
fn truncation_and_bit_flips_never_panic() {
    let mut rng = Rng(0x5EED_0003);
    for _ in 0..500 {
        let divs = random_divisions(&mut rng);
        let label = SplId::from_divisions(&divs).unwrap();
        let bytes = encode(&label);
        // Every proper byte-truncation must decode to an error or to some
        // *other* valid label (a prefix cut on a code boundary) — never
        // panic, never reproduce the original.
        for cut in 0..bytes.len() {
            match decode(&bytes[..cut]) {
                Ok(other) => assert_ne!(other, label, "truncation reproduced the label"),
                Err(
                    DecodeError::Truncated | DecodeError::Invalid(_) | DecodeError::ZeroPayload,
                ) => {}
            }
        }
        // Single-bit corruption: decode must return, not panic.
        for _ in 0..8 {
            let mut bad = bytes.clone();
            let bit = rng.below((bad.len() * 8) as u64) as usize;
            bad[bit / 8] ^= 1 << (7 - bit % 8);
            let _ = decode(&bad);
        }
    }
}

#[test]
fn truncated_code_reports_truncated() {
    // `1110` opens a range-4 code needing 20 payload bits; only 4 remain.
    assert_eq!(decode(&[0b1110_0000]), Err(DecodeError::Truncated));
    // `1111` opens a range-5 code needing 32 payload bits.
    assert_eq!(decode(&[0xFF, 0xFF]), Err(DecodeError::Truncated));
}

#[test]
fn zero_payload_reports_zero_payload() {
    // `0 000` is a range-1 code with payload 0 — division 0 never occurs.
    // The trailing 1 bit keeps the reader from treating it as padding.
    assert_eq!(decode(&[0b0000_1000]), Err(DecodeError::ZeroPayload));
}

#[test]
fn structurally_invalid_sequences_report_invalid() {
    use xtc_splid::encode_divisions;
    // Decodes fine but violates label invariants: bad root.
    assert!(matches!(
        decode(&encode_divisions(&[3, 3])),
        Err(DecodeError::Invalid(_))
    ));
    // Empty input: no divisions at all.
    assert!(matches!(decode(&[]), Err(DecodeError::Invalid(_))));
}
