//! Property-based tests for SPLID invariants.

use proptest::prelude::*;
use xtc_splid::{decode, encode, LabelAllocator, SplId};

/// Strategy: a random valid label built by random navigation from the root
/// (child / next-sibling steps), plus occasional reserved children.
fn arb_label() -> impl Strategy<Value = SplId> {
    (2u32..=32, prop::collection::vec(0u8..3, 0..12)).prop_map(|(dist, steps)| {
        let alloc = LabelAllocator::new(dist);
        let mut cur = SplId::root();
        for s in steps {
            cur = match s {
                0 => alloc.first_child(&cur),
                1 => alloc.next_sibling(&cur).unwrap_or_else(|_| alloc.first_child(&cur)),
                _ => cur.reserved_child(),
            };
        }
        cur
    })
}

proptest! {
    #[test]
    fn encode_decode_round_trip(l in arb_label()) {
        prop_assert_eq!(decode(&encode(&l)).unwrap(), l);
    }

    #[test]
    fn encoded_order_matches_document_order(a in arb_label(), b in arb_label()) {
        prop_assert_eq!(encode(&a).cmp(&encode(&b)), a.cmp(&b));
    }

    #[test]
    fn ancestors_are_prefixes_and_strictly_smaller(l in arb_label()) {
        let mut prev_len = l.divisions().len();
        for anc in l.ancestors() {
            prop_assert!(anc.divisions().len() < prev_len);
            prop_assert!(anc.is_ancestor_of(&l));
            prop_assert!(anc < l);
            prev_len = anc.divisions().len();
        }
        // Number of proper ancestors with a *distinct level* is level();
        // overflow-free navigation makes them equal here only when no even
        // connectors exist, so check the weaker, always-true property:
        prop_assert!(l.ancestors().count() >= l.level());
        prop_assert_eq!(l.ancestors().last().map(|a| a.is_root()), if l.is_root() { None } else { Some(true) });
    }

    #[test]
    fn parent_level_is_one_less(l in arb_label()) {
        if let Some(p) = l.parent() {
            prop_assert_eq!(p.level() + 1, l.level());
            prop_assert!(p.is_parent_of(&l));
        }
    }

    #[test]
    fn between_is_strictly_between_and_same_level(
        seed in arb_label(),
        dist in 2u32..=32,
        rounds in 1usize..40,
        pick_left in prop::collection::vec(any::<bool>(), 40),
    ) {
        let alloc = LabelAllocator::new(dist);
        // Build two initial siblings below `seed`.
        let mut left = alloc.first_child(&seed);
        let mut right = alloc.next_sibling(&left).unwrap();
        let parent = seed;
        for &go_left in pick_left.iter().take(rounds) {
            let m = alloc.between(Some(&left), Some(&right)).unwrap();
            prop_assert!(left < m && m < right, "{} < {} < {}", left, m, right);
            prop_assert_eq!(m.level(), left.level());
            prop_assert_eq!(m.parent().unwrap(), parent.clone());
            if go_left { left = m } else { right = m }
        }
    }

    #[test]
    fn ancestor_at_level_consistent(l in arb_label()) {
        for lvl in 0..=l.level() {
            let a = l.ancestor_at_level(lvl).unwrap();
            prop_assert_eq!(a.level(), lvl);
            prop_assert!(a == l || a.is_ancestor_of(&l));
        }
        prop_assert!(l.ancestor_at_level(l.level() + 1).is_none());
    }

    #[test]
    fn common_ancestor_is_common_and_deepest(a in arb_label(), b in arb_label()) {
        let c = a.common_ancestor(&b);
        prop_assert!(c == a || c.is_ancestor_of(&a));
        prop_assert!(c == b || c.is_ancestor_of(&b));
        // Deepest: no child of c on a's path is also on b's path.
        if let (Some(pa), Some(pb)) = (
            a.ancestor_at_level(c.level() + 1),
            b.ancestor_at_level(c.level() + 1),
        ) {
            if a != c && b != c {
                prop_assert!(pa != pb, "deeper common ancestor {} exists", pa);
            }
        }
    }
}
