//! The [`SplId`] label type: structure, level arithmetic, ancestor
//! derivation, and document-order comparison.

use std::fmt;

/// Division value reserved for attribute roots and string nodes.
///
/// The paper (§3.2): "Division value 1 at levels > 1 is used to label
/// attribute nodes (where order does not matter)." In the taDOM storage
/// model the same convention labels the string child of an attribute or
/// text node.
pub const ATTRIBUTE_DIVISION: u32 = 1;

/// Errors constructing a [`SplId`] from raw divisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplIdError {
    /// A label must contain at least one division.
    Empty,
    /// The first division of every label must be the root division `1`.
    BadRoot(u32),
    /// The last division must be odd (even divisions are connectors that
    /// never terminate a label).
    TrailingEven(u32),
    /// Division value `0` never occurs in a valid label.
    ZeroDivision,
}

impl fmt::Display for SplIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplIdError::Empty => write!(f, "label must have at least one division"),
            SplIdError::BadRoot(d) => write!(f, "label must start with root division 1, got {d}"),
            SplIdError::TrailingEven(d) => write!(f, "label must end in an odd division, got {d}"),
            SplIdError::ZeroDivision => write!(f, "division value 0 is invalid"),
        }
    }
}

impl std::error::Error for SplIdError {}

/// Structural relationship of one node's label to another's, decidable
/// from the labels alone (no document access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relationship {
    /// Identical labels.
    SelfNode,
    /// `a` is a proper ancestor of `b`.
    Ancestor,
    /// `a` is a proper descendant of `b`.
    Descendant,
    /// `a` precedes `b` in document order and is not an ancestor.
    Preceding,
    /// `a` follows `b` in document order and is not a descendant.
    Following,
}

/// A stable path labeling identifier.
///
/// Invariants (enforced by every constructor):
/// * at least one division; the first is `1` (the document root),
/// * no division is `0`,
/// * the final division is odd.
///
/// `Ord` is document order: ancestors sort before their descendants, and
/// siblings sort left to right.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SplId {
    divs: Vec<u32>,
}

impl SplId {
    /// The root label `1`.
    pub fn root() -> Self {
        SplId { divs: vec![1] }
    }

    /// Builds a label from raw divisions, validating the invariants.
    pub fn from_divisions(divs: &[u32]) -> Result<Self, SplIdError> {
        let (&first, _) = divs.split_first().ok_or(SplIdError::Empty)?;
        if first != 1 {
            return Err(SplIdError::BadRoot(first));
        }
        if divs.contains(&0) {
            return Err(SplIdError::ZeroDivision);
        }
        let last = *divs.last().expect("non-empty");
        if last.is_multiple_of(2) {
            return Err(SplIdError::TrailingEven(last));
        }
        Ok(SplId {
            divs: divs.to_vec(),
        })
    }

    /// Internal constructor for callers that maintain the invariants
    /// themselves (the allocator and the codec).
    pub(crate) fn from_vec_unchecked(divs: Vec<u32>) -> Self {
        debug_assert!(!divs.is_empty());
        debug_assert_eq!(divs[0], 1);
        debug_assert!(divs.iter().all(|&d| d != 0));
        debug_assert_eq!(divs.last().unwrap() % 2, 1);
        SplId { divs }
    }

    /// The raw division sequence.
    pub fn divisions(&self) -> &[u32] {
        &self.divs
    }

    /// Parses the dotted decimal notation used throughout the paper,
    /// e.g. `"1.3.4.3"`.
    pub fn parse(s: &str) -> Result<Self, SplIdError> {
        let divs: Vec<u32> = s
            .split('.')
            .map(|p| p.parse::<u32>().map_err(|_| SplIdError::ZeroDivision))
            .collect::<Result<_, _>>()?;
        Self::from_divisions(&divs)
    }

    /// Node level: the number of odd divisions minus one. The root `1` is
    /// level 0; `1.3.4.3` is level 2 (odd divisions `1`, `3`, `3`).
    pub fn level(&self) -> usize {
        self.divs.iter().filter(|&&d| d % 2 == 1).count() - 1
    }

    /// `true` if this is the document root label.
    pub fn is_root(&self) -> bool {
        self.divs.len() == 1
    }

    /// The parent label: strip the final (odd) division and any even
    /// overflow connectors preceding it. `1.3.4.3 → 1.3`; the root has no
    /// parent. Computed purely from the label — the property the lock
    /// manager depends on.
    pub fn parent(&self) -> Option<SplId> {
        if self.is_root() {
            return None;
        }
        let mut end = self.divs.len() - 1; // drop the trailing odd division
        while end > 1 && self.divs[end - 1].is_multiple_of(2) {
            end -= 1; // drop even connectors
        }
        Some(SplId {
            divs: self.divs[..end].to_vec(),
        })
    }

    /// Iterator over proper ancestors, nearest (parent) first, ending at
    /// the root.
    pub fn ancestors(&self) -> Ancestors<'_> {
        Ancestors {
            divs: &self.divs,
            end: if self.is_root() { 0 } else { self.divs.len() },
        }
    }

    /// The ancestor at a given level (`0` = root). Returns `None` when
    /// `level >= self.level()` does not name a *proper* ancestor, except
    /// that the node's own level returns the node itself.
    pub fn ancestor_at_level(&self, level: usize) -> Option<SplId> {
        let own = self.level();
        if level > own {
            return None;
        }
        if level == own {
            return Some(self.clone());
        }
        // Keep divisions until `level + 1` odd divisions have been kept.
        let mut odd_seen = 0usize;
        for (i, &d) in self.divs.iter().enumerate() {
            if d % 2 == 1 {
                odd_seen += 1;
                if odd_seen == level + 1 {
                    return Some(SplId {
                        divs: self.divs[..=i].to_vec(),
                    });
                }
            }
        }
        None
    }

    /// `true` if `self` is a proper ancestor of `other` (division-wise
    /// prefix; never true for equal labels).
    pub fn is_ancestor_of(&self, other: &SplId) -> bool {
        self.divs.len() < other.divs.len() && other.divs[..self.divs.len()] == self.divs[..]
    }

    /// `true` if `self` is the parent of `other`.
    pub fn is_parent_of(&self, other: &SplId) -> bool {
        other.parent().as_ref() == Some(self)
    }

    /// `true` if the two labels share the same parent.
    pub fn is_sibling_of(&self, other: &SplId) -> bool {
        self != other && self.parent() == other.parent()
    }

    /// `true` if the label lies inside an attribute-root or string-node
    /// region (contains the reserved division `1` beyond the root).
    pub fn is_attribute_related(&self) -> bool {
        self.divs[1..].contains(&ATTRIBUTE_DIVISION)
    }

    /// Child label for a node's attribute root / string child (appends the
    /// reserved division `1`).
    pub fn reserved_child(&self) -> SplId {
        let mut divs = self.divs.clone();
        divs.push(ATTRIBUTE_DIVISION);
        SplId { divs }
    }

    /// Appends a (validated odd, non-zero) division; used by the allocator.
    pub(crate) fn child_with_tail(&self, tail: &[u32]) -> SplId {
        let mut divs = self.divs.clone();
        divs.extend_from_slice(tail);
        SplId::from_vec_unchecked(divs)
    }

    /// Classifies `self` relative to `other`.
    pub fn relationship(&self, other: &SplId) -> Relationship {
        use std::cmp::Ordering::*;
        if self == other {
            Relationship::SelfNode
        } else if self.is_ancestor_of(other) {
            Relationship::Ancestor
        } else if other.is_ancestor_of(self) {
            Relationship::Descendant
        } else {
            match self.cmp(other) {
                Less => Relationship::Preceding,
                Greater => Relationship::Following,
                Equal => unreachable!("equal labels handled above"),
            }
        }
    }

    /// The deepest common ancestor of two labels (always exists — at worst
    /// the root).
    pub fn common_ancestor(&self, other: &SplId) -> SplId {
        let mut common = 0;
        for (a, b) in self.divs.iter().zip(other.divs.iter()) {
            if a == b {
                common += 1;
            } else {
                break;
            }
        }
        // A full-prefix match means one label IS an ancestor of (or equal
        // to) the other; otherwise strip trailing even connectors so the
        // prefix names an actual node.
        if common < self.divs.len() && common < other.divs.len() {
            while common > 1 && self.divs[common - 1].is_multiple_of(2) {
                common -= 1;
            }
        }
        SplId {
            divs: self.divs[..common].to_vec(),
        }
    }

    /// Number of divisions (encoded length is roughly proportional).
    pub fn len(&self) -> usize {
        self.divs.len()
    }

    /// Labels are never empty; provided for clippy symmetry with `len`.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for SplId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.divs.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// `Debug` prints the dotted form — labels appear constantly in lock-trace
/// output and the dotted form is what the paper uses.
impl fmt::Debug for SplId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Iterator over proper ancestors, nearest first. See [`SplId::ancestors`].
pub struct Ancestors<'a> {
    divs: &'a [u32],
    /// Length of the *current* label; 0 terminates. The next item is the
    /// parent of `divs[..end]`.
    end: usize,
}

impl Iterator for Ancestors<'_> {
    type Item = SplId;

    fn next(&mut self) -> Option<SplId> {
        if self.end <= 1 {
            return None;
        }
        let mut end = self.end - 1;
        while end > 1 && self.divs[end - 1].is_multiple_of(2) {
            end -= 1;
        }
        self.end = end;
        Some(SplId {
            divs: self.divs[..end].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> SplId {
        SplId::parse(s).unwrap()
    }

    #[test]
    fn root_properties() {
        let r = SplId::root();
        assert!(r.is_root());
        assert_eq!(r.level(), 0);
        assert_eq!(r.parent(), None);
        assert_eq!(r.to_string(), "1");
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["1", "1.3", "1.3.4.3", "1.5.3.3.11.3.1"] {
            assert_eq!(id(s).to_string(), s);
        }
    }

    #[test]
    fn invalid_labels_rejected() {
        assert_eq!(SplId::from_divisions(&[]), Err(SplIdError::Empty));
        assert_eq!(SplId::from_divisions(&[3]), Err(SplIdError::BadRoot(3)));
        assert_eq!(
            SplId::from_divisions(&[1, 4]),
            Err(SplIdError::TrailingEven(4))
        );
        assert_eq!(
            SplId::from_divisions(&[1, 0, 3]),
            Err(SplIdError::ZeroDivision)
        );
    }

    #[test]
    fn level_counts_odd_divisions_only() {
        // Paper example: d3 = 1.3.4.3 sits on level 3 counting from 1, i.e.
        // level 2 with the root at level 0 — same as d1 = 1.3.3.
        assert_eq!(id("1.3.3").level(), 2);
        assert_eq!(id("1.3.4.3").level(), 2);
        assert_eq!(id("1.3.4.4.5").level(), 2);
        assert_eq!(id("1.3").level(), 1);
    }

    #[test]
    fn parent_skips_even_connectors() {
        assert_eq!(id("1.3.3").parent().unwrap(), id("1.3"));
        assert_eq!(id("1.3.4.3").parent().unwrap(), id("1.3"));
        assert_eq!(id("1.3.4.4.5").parent().unwrap(), id("1.3"));
        assert_eq!(id("1.3").parent().unwrap(), SplId::root());
    }

    #[test]
    fn ancestors_walk_to_root() {
        let n = id("1.5.3.3.11.3.1");
        let path: Vec<String> = n.ancestors().map(|a| a.to_string()).collect();
        assert_eq!(path, ["1.5.3.3.11.3", "1.5.3.3.11", "1.5.3.3", "1.5.3", "1.5", "1"]);
        // With an overflow connector in the middle:
        let n = id("1.3.4.3.5");
        let path: Vec<String> = n.ancestors().map(|a| a.to_string()).collect();
        assert_eq!(path, ["1.3.4.3", "1.3", "1"]);
    }

    #[test]
    fn ancestor_at_level_matches_ancestors() {
        let n = id("1.5.3.3.11.3.1");
        assert_eq!(n.level(), 6);
        assert_eq!(n.ancestor_at_level(0).unwrap(), SplId::root());
        assert_eq!(n.ancestor_at_level(2).unwrap(), id("1.5.3"));
        assert_eq!(n.ancestor_at_level(6).unwrap(), n);
        assert_eq!(n.ancestor_at_level(7), None);
        // Overflow connectors do not create levels:
        let m = id("1.3.4.3");
        assert_eq!(m.ancestor_at_level(1).unwrap(), id("1.3"));
        assert_eq!(m.ancestor_at_level(2).unwrap(), m);
    }

    #[test]
    fn document_order_from_paper_example() {
        // d1 = 1.3.3 < d3 = 1.3.4.3 < d2 = 1.3.5 (paper §3.2).
        let d1 = id("1.3.3");
        let d2 = id("1.3.5");
        let d3 = id("1.3.4.3");
        assert!(d1 < d3 && d3 < d2);
        // Ancestors precede descendants.
        assert!(id("1.3") < d1);
    }

    #[test]
    fn relationship_classification() {
        let a = id("1.3");
        let b = id("1.3.4.3");
        assert_eq!(a.relationship(&b), Relationship::Ancestor);
        assert_eq!(b.relationship(&a), Relationship::Descendant);
        assert_eq!(a.relationship(&a), Relationship::SelfNode);
        assert_eq!(id("1.3.3").relationship(&id("1.3.5")), Relationship::Preceding);
        assert_eq!(id("1.3.5").relationship(&id("1.3.3")), Relationship::Following);
    }

    #[test]
    fn sibling_and_parent_predicates() {
        assert!(id("1.3").is_parent_of(&id("1.3.4.3")));
        assert!(!id("1.3").is_parent_of(&id("1.3.3.5")));
        assert!(id("1.3.3").is_sibling_of(&id("1.3.4.3")));
        assert!(!id("1.3.3").is_sibling_of(&id("1.3.3")));
    }

    #[test]
    fn attribute_labels() {
        let person = id("1.3.3");
        let aroot = person.reserved_child();
        assert_eq!(aroot, id("1.3.3.1"));
        assert!(aroot.is_attribute_related());
        assert!(!person.is_attribute_related());
        assert_eq!(aroot.level(), 3);
        assert_eq!(aroot.parent().unwrap(), person);
    }

    #[test]
    fn common_ancestor_basics() {
        assert_eq!(id("1.3.3").common_ancestor(&id("1.3.5")), id("1.3"));
        assert_eq!(id("1.3.3").common_ancestor(&id("1.5.3")), SplId::root());
        assert_eq!(id("1.3").common_ancestor(&id("1.3.4.3")), id("1.3"));
        assert_eq!(
            id("1.3.4.3").common_ancestor(&id("1.3.4.5")),
            id("1.3"),
            "shared even connector is not a node"
        );
    }
}
