//! Order-preserving, prefix-free byte encoding of SPLIDs.
//!
//! The paper reports Huffman-style division codes consuming 5–10 bytes per
//! label at tree depths up to 38, dropping to 2–3 bytes with B*-tree prefix
//! compression. We use the same design space: each division is emitted with
//! a length-prefixed binary code chosen so that
//!
//! 1. **bytewise `memcmp` of two encoded labels equals document order** —
//!    the B*-tree can treat keys as opaque byte strings, and
//! 2. **no encoded label is a zero-padding collision of another** — every
//!    division code contains at least one `1` bit, so appending a division
//!    always produces a strictly greater byte string.
//!
//! Code ranges (payload stores `value - range_base`):
//!
//! | prefix | payload bits | division values |
//! |--------|--------------|------------------|
//! | `0`    | 3 (value itself, 1..=7) | 1–7 |
//! | `10`   | 6  | 8–71 |
//! | `110`  | 12 | 72–4167 |
//! | `1110` | 20 | 4168–1,052,743 |
//! | `1111` | 32 | 1,052,744–u32::MAX |
//!
//! Typical divisions (3–71) therefore cost 4–8 bits, matching the paper's
//! "2–3 bytes in the average" once prefix compression is applied upstream.

use crate::SplId;

/// Error decoding an encoded SPLID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of input bits in the middle of a division code.
    Truncated,
    /// Decoded a division sequence violating the label invariants.
    Invalid(crate::SplIdError),
    /// Range-1 payload `000` — division value 0 is never encoded.
    ZeroPayload,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "encoded label truncated"),
            DecodeError::Invalid(e) => write!(f, "decoded divisions invalid: {e}"),
            DecodeError::ZeroPayload => write!(f, "zero payload in range-1 code"),
        }
    }
}

impl std::error::Error for DecodeError {}

const R1_MAX: u32 = 7;
const R2_BASE: u32 = 8;
const R2_MAX: u32 = R2_BASE + (1 << 6) - 1; // 71
const R3_BASE: u32 = R2_MAX + 1; // 72
const R3_MAX: u32 = R3_BASE + (1 << 12) - 1; // 4167
const R4_BASE: u32 = R3_MAX + 1; // 4168
const R4_MAX: u32 = R4_BASE + (1 << 20) - 1; // 1_052_743
const R5_BASE: u32 = R4_MAX + 1; // 1_052_744

struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    cur: u8,
    used: u8,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter { out, cur: 0, used: 0 }
    }

    /// Pushes the low `n` bits of `v`, most significant first.
    fn push(&mut self, v: u64, n: u8) {
        for i in (0..n).rev() {
            let bit = ((v >> i) & 1) as u8;
            self.cur = (self.cur << 1) | bit;
            self.used += 1;
            if self.used == 8 {
                self.out.push(self.cur);
                self.cur = 0;
                self.used = 0;
            }
        }
    }

    fn finish(self) {
        if self.used > 0 {
            self.out.push(self.cur << (8 - self.used));
        }
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    fn read(&mut self, n: u8) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            let byte = *self.data.get(self.pos / 8)?;
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Some(v)
    }

    /// Remaining bits, all of which must be zero padding.
    fn only_zero_padding_left(&self) -> bool {
        let mut pos = self.pos;
        while pos < self.data.len() * 8 {
            let byte = self.data[pos / 8];
            if (byte >> (7 - (pos % 8))) & 1 != 0 {
                return false;
            }
            pos += 1;
        }
        true
    }

    /// True when fewer than 4 unread bits remain (nothing but padding fits).
    fn at_padding(&self) -> bool {
        self.data.len() * 8 - self.pos < 4 || self.only_zero_padding_left()
    }
}

fn push_division(w: &mut BitWriter<'_>, d: u32) {
    debug_assert!(d >= 1);
    if d <= R1_MAX {
        w.push(0, 1);
        w.push(d as u64, 3);
    } else if d <= R2_MAX {
        w.push(0b10, 2);
        w.push((d - R2_BASE) as u64, 6);
    } else if d <= R3_MAX {
        w.push(0b110, 3);
        w.push((d - R3_BASE) as u64, 12);
    } else if d <= R4_MAX {
        w.push(0b1110, 4);
        w.push((d - R4_BASE) as u64, 20);
    } else {
        w.push(0b1111, 4);
        w.push((d - R5_BASE) as u64, 32);
    }
}

/// Encodes a label, appending to `buf`. Returns the number of bytes written.
pub fn encode_into(id: &SplId, buf: &mut Vec<u8>) -> usize {
    let start = buf.len();
    let mut w = BitWriter::new(buf);
    for &d in id.divisions() {
        push_division(&mut w, d);
    }
    w.finish();
    buf.len() - start
}

/// Encodes a label into a fresh byte vector.
pub fn encode(id: &SplId) -> Vec<u8> {
    let mut buf = Vec::with_capacity(id.len() + 2);
    encode_into(id, &mut buf);
    buf
}

/// Encodes an arbitrary division sequence — used to build *range bounds*
/// that are not themselves valid labels (e.g. a label with its final
/// division incremented).
pub fn encode_divisions(divs: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(divs.len() + 2);
    let mut w = BitWriter::new(&mut buf);
    for &d in divs {
        push_division(&mut w, d);
    }
    w.finish();
    buf
}

/// Length of the longest common byte prefix of two encoded labels (or any
/// two byte strings).
///
/// Because the encoding is order-preserving and prefix-free, comparing and
/// front-coding encoded labels stays purely bytewise — storage layers can
/// strip `common_prefix_len` bytes from consecutive document-order keys
/// without decoding a single division. Consecutive SPLIDs share everything
/// but the tail division, which is what makes the paper's §3.2 "2–3 bytes
/// per stored SPLID" reachable.
pub fn common_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Exclusive upper bound (in encoded-byte order) for the subtree rooted at
/// `id`: every proper descendant `d` of `id` satisfies
/// `encode(id) < encode(d) < subtree_upper_bound(id)`, and every following
/// non-descendant encodes `>= subtree_upper_bound(id)`.
///
/// This is what makes subtree operations (reads, deletions, the *-2PL
/// group's IDX scans) single B*-tree range scans.
pub fn subtree_upper_bound(id: &SplId) -> Vec<u8> {
    let mut divs = id.divisions().to_vec();
    let last = divs.last_mut().expect("labels are non-empty");
    *last = last
        .checked_add(1) // odd -> even; still a valid division value for a bound
        .expect("division u32::MAX is unreachable via LabelAllocator");
    encode_divisions(&divs)
}

/// Decodes an encoded label produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<SplId, DecodeError> {
    let mut r = BitReader::new(bytes);
    let mut divs = Vec::new();
    loop {
        if r.at_padding() {
            break;
        }
        let d = read_division(&mut r)?;
        divs.push(d);
    }
    SplId::from_divisions(&divs).map_err(DecodeError::Invalid)
}

fn read_division(r: &mut BitReader<'_>) -> Result<u32, DecodeError> {
    let b0 = r.read(1).ok_or(DecodeError::Truncated)?;
    if b0 == 0 {
        let v = r.read(3).ok_or(DecodeError::Truncated)? as u32;
        if v == 0 {
            return Err(DecodeError::ZeroPayload);
        }
        return Ok(v);
    }
    let b1 = r.read(1).ok_or(DecodeError::Truncated)?;
    if b1 == 0 {
        let v = r.read(6).ok_or(DecodeError::Truncated)? as u32;
        return Ok(R2_BASE + v);
    }
    let b2 = r.read(1).ok_or(DecodeError::Truncated)?;
    if b2 == 0 {
        let v = r.read(12).ok_or(DecodeError::Truncated)? as u32;
        return Ok(R3_BASE + v);
    }
    let b3 = r.read(1).ok_or(DecodeError::Truncated)?;
    if b3 == 0 {
        let v = r.read(20).ok_or(DecodeError::Truncated)? as u32;
        return Ok(R4_BASE + v);
    }
    let v = r.read(32).ok_or(DecodeError::Truncated)? as u32;
    Ok(R5_BASE.wrapping_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> SplId {
        SplId::parse(s).unwrap()
    }

    #[test]
    fn round_trip_simple() {
        for s in [
            "1",
            "1.3",
            "1.3.4.3",
            "1.5.3.3.11.3.1",
            "1.7.71.72.4167.4169",
            "1.1052743.1052745",
        ] {
            let l = id(s);
            assert_eq!(decode(&encode(&l)).unwrap(), l, "label {s}");
        }
    }

    #[test]
    fn round_trip_large_divisions() {
        let l = SplId::from_divisions(&[1, u32::MAX, 3, (u32::MAX - 2) | 1]).unwrap();
        assert_eq!(decode(&encode(&l)).unwrap(), l);
    }

    #[test]
    fn bytewise_order_equals_document_order() {
        let labels = [
            "1",
            "1.3",
            "1.3.3",
            "1.3.4.3",
            "1.3.4.4.5",
            "1.3.5",
            "1.3.71",
            "1.3.73",
            "1.3.4201",
            "1.5",
            "1.5.3.3.11.3.1",
            "1.1052801",
        ];
        let mut by_label: Vec<SplId> = labels.iter().map(|s| id(s)).collect();
        by_label.sort();
        let mut by_bytes = by_label.clone();
        by_bytes.sort_by_key(encode);
        assert_eq!(by_label, by_bytes);
    }

    #[test]
    fn ancestor_encoding_is_byte_prefix_compatible() {
        // An ancestor's encoding must compare strictly less than the
        // descendant's — even when the descendant's first extra division is
        // the minimum value 1.
        let a = id("1.3.3");
        let b = a.reserved_child(); // 1.3.3.1
        assert!(encode(&a) < encode(&b));
    }

    #[test]
    fn typical_sizes_match_paper_claims() {
        // Level-6 node from Figure 5: 1.5.3.3.11.3.1 — 7 divisions, each
        // <= 11 → 4-8 bits each → at most 7 bytes, within the paper's
        // "5 to 10 bytes for tree depths up to 38".
        let l = id("1.5.3.3.11.3.1");
        assert!(encode(&l).len() <= 7, "got {}", encode(&l).len());
        // Small labels are tiny.
        assert!(encode(&id("1.3")).len() <= 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[0xFF, 0xFF]).is_err()); // truncated range-5 code
        assert!(decode(&[]).is_err()); // empty → no divisions
    }

    #[test]
    fn subtree_bound_brackets_descendants_only() {
        let book = id("1.5.3.3");
        let bound = subtree_upper_bound(&book);
        let lo = encode(&book);
        // Descendants (from Figure 5) fall inside the bracket.
        for d in ["1.5.3.3.1", "1.5.3.3.5.3", "1.5.3.3.11.3.1"] {
            let e = encode(&id(d));
            assert!(lo < e && e < bound, "{d} should be in the subtree range");
        }
        // Following non-descendants fall outside.
        for f in ["1.5.3.5", "1.5.4.3", "1.5.5", "1.7"] {
            let e = encode(&id(f));
            assert!(e >= bound, "{f} should be past the subtree range");
        }
        // Preceding nodes and the root fall before.
        for p in ["1", "1.5.3", "1.5", "1.3.7"] {
            let e = encode(&id(p));
            assert!(e <= lo, "{p} should precede the subtree range");
        }
    }

    #[test]
    fn encode_into_appends() {
        let mut buf = vec![0xAB];
        let n = encode_into(&id("1.3"), &mut buf);
        assert_eq!(buf[0], 0xAB);
        assert_eq!(buf.len(), 1 + n);
    }
}
