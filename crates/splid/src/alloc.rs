//! Label allocation: producing new SPLIDs for inserted nodes without ever
//! relabeling existing ones.
//!
//! The paper (§3.2): upon initial storage only odd division values are
//! assigned with gaps of `dist` (`dist+1`, `2*dist+1`, …); later insertions
//! first consume the gaps and then resort to the even-division *overflow
//! mechanism* (`1.3.3`, `1.3.5` → insert before `1.3.5` yields `1.3.4.3`).
//! A sibling tail relative to the parent label therefore always has the
//! shape `even* odd` — any number of even connectors followed by exactly
//! one odd division — which keeps the level computable by counting odd
//! divisions.

use crate::label::SplId;

/// Errors from label allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// `between` requires at least one bound.
    NoBounds,
    /// The two bounds are not siblings (different parents).
    NotSiblings,
    /// Division values would exceed `u32::MAX` (practically unreachable).
    LabelSpaceExhausted,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::NoBounds => write!(f, "between() needs at least one sibling bound"),
            AllocError::NotSiblings => write!(f, "bounds must share the same parent"),
            AllocError::LabelSpaceExhausted => write!(f, "division value space exhausted"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocates sibling labels with a configurable gap parameter.
///
/// `dist` governs the initial gap between consecutive sibling divisions
/// (must be even, ≥ 2). The paper: "the minimum value dist=2 should be
/// applied to almost static XML documents whereas larger dist values avoid
/// resorting too frequently to overflow values."
#[derive(Debug, Clone, Copy)]
pub struct LabelAllocator {
    dist: u32,
}

impl LabelAllocator {
    /// Creates an allocator; `dist` is rounded up to the next even value
    /// and clamped to at least 2.
    pub fn new(dist: u32) -> Self {
        let dist = dist.max(2);
        LabelAllocator {
            dist: dist + (dist % 2),
        }
    }

    /// The configured gap parameter.
    pub fn dist(&self) -> u32 {
        self.dist
    }

    /// Label for the first child of a node with no existing children:
    /// `parent.(dist+1)`.
    pub fn first_child(&self, parent: &SplId) -> SplId {
        parent.child_with_tail(&[self.dist + 1])
    }

    /// Label for a new sibling immediately after `node` (no right
    /// neighbour).
    pub fn next_sibling(&self, node: &SplId) -> Result<SplId, AllocError> {
        self.between(Some(node), None)
    }

    /// Label for a new sibling immediately before `node` (no left
    /// neighbour).
    pub fn prev_sibling(&self, node: &SplId) -> Result<SplId, AllocError> {
        self.between(None, Some(node))
    }

    /// Label strictly between two siblings (either bound may be absent,
    /// but not both). The result is a sibling of the bounds: same parent,
    /// same level, ordered strictly between them — and no existing label
    /// is touched.
    pub fn between(
        &self,
        left: Option<&SplId>,
        right: Option<&SplId>,
    ) -> Result<SplId, AllocError> {
        let parent = match (left, right) {
            (Some(l), Some(r)) => {
                let p = l.parent().ok_or(AllocError::NotSiblings)?;
                if r.parent().as_ref() != Some(&p) {
                    return Err(AllocError::NotSiblings);
                }
                p
            }
            (Some(l), None) => l.parent().ok_or(AllocError::NotSiblings)?,
            (None, Some(r)) => r.parent().ok_or(AllocError::NotSiblings)?,
            (None, None) => return Err(AllocError::NoBounds),
        };
        let plen = parent.divisions().len();
        let ltail = left.map(|l| &l.divisions()[plen..]).unwrap_or(&[]);
        let rtail = right.map(|r| &r.divisions()[plen..]).unwrap_or(&[]);
        let tail = self.between_tails(ltail, rtail)?;
        Ok(parent.child_with_tail(&tail))
    }

    /// Core recursion on sibling tails (shape `even* odd`). Produces a tail
    /// strictly between `l` and `r` in lexicographic division order; an
    /// empty slice is an open bound.
    fn between_tails(&self, l: &[u32], r: &[u32]) -> Result<Vec<u32>, AllocError> {
        match (l.first().copied(), r.first().copied()) {
            (None, None) => Ok(vec![self.dist + 1]),
            (Some(a), Some(b)) if a == b => {
                // Shared first division (an even connector region): descend.
                let mut tail = self.between_tails(&l[1..], &r[1..])?;
                tail.insert(0, a);
                Ok(tail)
            }
            (None, Some(b)) => {
                // Insert before the first sibling. Odd candidates live in
                // (1, b) — division 1 is reserved for attribute regions.
                if b > 3 {
                    let o = if b > self.dist + 2 {
                        self.dist + 1
                    } else {
                        largest_odd_below(b)
                    };
                    Ok(vec![o])
                } else if b == 3 {
                    // No odd ≥ 3 below 3: open an overflow region at 2.
                    Ok(vec![2, self.dist + 1])
                } else {
                    // b == 2: descend into the overflow region.
                    debug_assert!(!r[1..].is_empty(), "tails end in an odd division");
                    let mut tail = self.between_tails(&[], &r[1..])?;
                    tail.insert(0, b);
                    Ok(tail)
                }
            }
            (Some(a), None) => {
                // Append after the last sibling.
                let o = if a % 2 == 1 {
                    a.checked_add(self.dist)
                        .or_else(|| a.checked_add(2))
                        .ok_or(AllocError::LabelSpaceExhausted)?
                } else {
                    a + 1 // a even → a+1 odd, and a < u32::MAX for even a
                };
                Ok(vec![o])
            }
            (Some(a), Some(b)) => {
                debug_assert!(a < b, "left bound must precede right bound");
                let so = smallest_odd_above(a);
                if so < b {
                    // An odd division fits strictly between: prefer the
                    // middle to keep future gaps balanced.
                    Ok(vec![odd_near_middle(a, b)])
                } else if a + 1 < b {
                    // Only the even value a+1 fits: open an overflow region.
                    Ok(vec![a + 1, self.dist + 1])
                } else if a % 2 == 0 {
                    // b == a+1 with a even: descend into l's overflow region.
                    let mut tail = self.between_tails(&l[1..], &[])?;
                    tail.insert(0, a);
                    Ok(tail)
                } else {
                    // b == a+1 with a odd (so b even): descend into r's
                    // overflow region.
                    debug_assert!(!r[1..].is_empty(), "tails end in an odd division");
                    let mut tail = self.between_tails(&[], &r[1..])?;
                    tail.insert(0, b);
                    Ok(tail)
                }
            }
        }
    }
}

impl Default for LabelAllocator {
    /// The paper's recommended general-purpose configuration: a moderate
    /// gap (`dist = 16`) trading label size against overflow frequency.
    fn default() -> Self {
        LabelAllocator::new(16)
    }
}

fn largest_odd_below(b: u32) -> u32 {
    debug_assert!(b > 3);
    if b.is_multiple_of(2) {
        b - 1
    } else {
        b - 2
    }
}

fn smallest_odd_above(a: u32) -> u32 {
    if a.is_multiple_of(2) {
        a + 1
    } else {
        a + 2
    }
}

fn odd_near_middle(a: u32, b: u32) -> u32 {
    let mid = a + (b - a) / 2;
    let m = if mid % 2 == 1 { mid } else { mid + 1 };
    let m = if m >= b { m - 2 } else { m };
    debug_assert!(a < m && m < b && m % 2 == 1);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> SplId {
        SplId::parse(s).unwrap()
    }

    #[test]
    fn paper_overflow_example() {
        // d1 = 1.3.3, d2 = 1.3.5: a node inserted before d2 must land
        // between them via the overflow mechanism — the paper's d3 is
        // 1.3.4.3; dist=2 reproduces it exactly.
        let alloc = LabelAllocator::new(2);
        let d1 = id("1.3.3");
        let d2 = id("1.3.5");
        let d3 = alloc.between(Some(&d1), Some(&d2)).unwrap();
        assert_eq!(d3, id("1.3.4.3"));
        assert_eq!(d3.level(), d1.level());
        assert_eq!(d3.parent().unwrap(), id("1.3"));
    }

    #[test]
    fn initial_children_use_gapped_odds() {
        let alloc = LabelAllocator::new(16);
        let p = id("1.3");
        let c1 = alloc.first_child(&p);
        assert_eq!(c1, id("1.3.17")); // dist+1
        let c2 = alloc.next_sibling(&c1).unwrap();
        assert_eq!(c2, id("1.3.33")); // 2*dist+1
    }

    #[test]
    fn dist_is_normalized() {
        assert_eq!(LabelAllocator::new(0).dist(), 2);
        assert_eq!(LabelAllocator::new(3).dist(), 4);
        assert_eq!(LabelAllocator::new(16).dist(), 16);
    }

    #[test]
    fn insert_before_first_child() {
        let alloc = LabelAllocator::new(2);
        let c = id("1.3.3");
        let before = alloc.prev_sibling(&c).unwrap();
        assert!(before < c);
        assert_eq!(before.parent().unwrap(), id("1.3"));
        assert_eq!(before.level(), c.level());
        // And again, repeatedly.
        let mut right = before;
        for _ in 0..50 {
            let nb = alloc.prev_sibling(&right).unwrap();
            assert!(nb < right);
            assert_eq!(nb.level(), right.level());
            assert_eq!(nb.parent().unwrap(), id("1.3"));
            right = nb;
        }
    }

    #[test]
    fn repeated_insertion_at_same_point_never_relabels() {
        let alloc = LabelAllocator::new(2);
        let l = id("1.3.3");
        let r = id("1.3.5");
        let mut left = l.clone();
        for _ in 0..200 {
            let m = alloc.between(Some(&left), Some(&r)).unwrap();
            assert!(left < m && m < r, "{left} < {m} < {r}");
            assert_eq!(m.level(), l.level());
            assert_eq!(m.parent().unwrap(), id("1.3"));
            left = m;
        }
    }

    #[test]
    fn alternating_insertions_converge_without_error() {
        let alloc = LabelAllocator::new(4);
        let mut left = id("1.5");
        let mut right = alloc.next_sibling(&left).unwrap();
        for i in 0..100 {
            let m = alloc.between(Some(&left), Some(&right)).unwrap();
            assert!(left < m && m < right);
            assert_eq!(m.level(), 1);
            if i % 2 == 0 {
                left = m;
            } else {
                right = m;
            }
        }
    }

    #[test]
    fn not_siblings_detected() {
        let alloc = LabelAllocator::default();
        assert_eq!(
            alloc.between(Some(&id("1.3.3")), Some(&id("1.5.3"))),
            Err(AllocError::NotSiblings)
        );
        assert_eq!(alloc.between(None, None), Err(AllocError::NoBounds));
        assert_eq!(
            alloc.next_sibling(&SplId::root()),
            Err(AllocError::NotSiblings),
            "the root has no siblings"
        );
    }

    #[test]
    fn append_after_overflow_label() {
        let alloc = LabelAllocator::new(2);
        // Appending after 1.3.4.3 (an overflow label) stays a sibling.
        let l = id("1.3.4.3");
        let n = alloc.next_sibling(&l).unwrap();
        assert!(l < n);
        assert_eq!(n.parent().unwrap(), id("1.3"));
        assert_eq!(n.level(), 2);
    }

    #[test]
    fn between_adjacent_minimal_odds() {
        let alloc = LabelAllocator::new(2);
        // 3 and 5 leave no odd in between → overflow 4.x.
        let m = alloc.between(Some(&id("1.3")), Some(&id("1.5"))).unwrap();
        assert_eq!(m, id("1.4.3"));
        // before 1.3 → 2.x region (no odd in (1,3)).
        let b = alloc.prev_sibling(&id("1.3")).unwrap();
        assert_eq!(b, id("1.2.3"));
    }
}
