//! # xtc-splid — Stable Path Labeling Identifiers
//!
//! Prefix-based (Dewey-order) node labels for XML trees, as described in
//! Section 3.2 of *Contest of XML Lock Protocols* (VLDB 2006) and the
//! companion labeling study (Härder et al., DKE 2006). SPLIDs refine the
//! ORDPATH proposal and have the properties that make fine-grained XML
//! locking feasible:
//!
//! * **Immutability** — inserting a node anywhere never relabels existing
//!   nodes (an even-division *overflow mechanism* creates room between any
//!   two consecutive labels).
//! * **Ancestor derivation without document access** — the label of every
//!   ancestor is a computable prefix of a node's label, so intention locks
//!   on the whole ancestor path can be requested from the label alone.
//! * **Document order** — comparing two labels orders the underlying nodes
//!   in document order; the byte encoding is order-preserving, so a B*-tree
//!   keyed on encoded SPLIDs stores the document in document order.
//!
//! ## Label structure
//!
//! A label is a sequence of *divisions* (`u32`), e.g. `1.3.4.3`. Odd
//! division values indicate a level transition; even values are overflow
//! connectors that do not add a level. The root is always `1`. The division
//! value `1` at levels below the root is reserved for attribute roots and
//! string nodes (where sibling order does not matter; see the taDOM storage
//! model in `xtc-node`).
//!
//! ```
//! use xtc_splid::{SplId, LabelAllocator};
//!
//! let root = SplId::root();
//! let alloc = LabelAllocator::new(2);
//! let a = alloc.first_child(&root);              // 1.3
//! let b = alloc.next_sibling(&a).unwrap();       // 1.5
//! let between = alloc.between(Some(&a), Some(&b)).unwrap();
//! assert!(a < between && between < b);
//! assert_eq!(between.parent().unwrap(), root);   // still a child of the root
//! assert_eq!(between.level(), 1);                // still on level 1
//! ```

#![warn(missing_docs)]

mod alloc;
mod codec;
mod label;

pub use alloc::{AllocError, LabelAllocator};
pub use codec::{
    common_prefix_len, decode, encode, encode_divisions, encode_into, subtree_upper_bound,
    DecodeError,
};
pub use label::{Relationship, SplId, SplIdError, ATTRIBUTE_DIVISION};
