//! # xtc-repl — WAL shipping, read replicas, and failover promotion
//!
//! The stepping stone from one process to a read-scaled deployment
//! (ROADMAP item 4): a **primary** engine keeps writing as before, and N
//! **replica** engines continuously redo its durable log, each serving
//! committed-snapshot reads at its own applied LSN.
//!
//! ## Shipping
//!
//! The unit of shipping is the durable prefix of the primary's WAL:
//! [`Wal::records_since`] hands the shipper every record in
//! `(cursor, durable_lsn]`, decoded at record-aligned segment boundaries.
//! Nothing buffered (unsynced) ever leaves the primary, so a replica can
//! never get ahead of what a crash of the primary would preserve — the
//! invariant that makes failover lossless for acknowledged commits.
//!
//! ## Applying
//!
//! Each replica runs a [`RedoApplier`] (`xtc-core::recovery`): redo
//! operations buffer per transaction and materialise only at that
//! transaction's `Commit` record, so the replica store only ever holds
//! states at commit boundaries — losers are simply never applied, and no
//! undo pass exists on the replica. Readers synchronise with the apply
//! loop through the per-replica apply latch ([`ReplicaShared`]): the
//! applier holds it for write while materialising a commit, a reader
//! holds it for read across its transaction.
//!
//! Apply work is charged to the replica engine's virtual clock as
//! [`CostKind::ReplApply`] (a configured per-record cost), which makes
//! **replication lag deterministic**: `lag_us = (durable_lsn −
//! applied_lsn) × apply_cost_us`, independent of host speed.
//!
//! ## Fault model
//!
//! Two failpoint sites evaluate in the *replica's* engine scope, so a
//! chaos harness can poison one replica while its neighbours keep
//! serving: `repl.ship` (per shipping round; transient faults retry with
//! backoff, a permanent fault poisons the replica) and `repl.apply` (per
//! record; same discipline). A poisoned replica is excluded from read
//! routing ([`Catalog::route_read`]) until a promotion rebuilds it.
//!
//! ## Promotion
//!
//! [`ReplGroup::promote`] runs the failover protocol after a primary
//! crash: **fence** the old log ([`Wal::crash`], idempotent — the
//! durable prefix stays readable), run **full recovery** over it
//! (analysis, redo, *and undo* — the promoted engine must roll losers
//! back, unlike a serving replica which never applied them), swap the
//! recovered engine in as the new primary, and **re-bootstrap** every
//! replica from the new log's clean post-recovery checkpoint. Every
//! commit acknowledged by the old primary was durable in the fenced
//! prefix, so none is lost.
//!
//! [`Wal::records_since`]: xtc_wal::Wal::records_since
//! [`Wal::crash`]: xtc_wal::Wal::crash
//! [`RedoApplier`]: xtc_core::RedoApplier
//! [`CostKind::ReplApply`]: xtc_obs::CostKind
//! [`Catalog::route_read`]: xtc_core::Catalog::route_read

#![warn(missing_docs)]

use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use xtc_core::{
    recover_from, Catalog, RecoveryReport, RedoApplier, ReplicaShared, XtcConfig, XtcDb, XtcError,
};
use xtc_wal::{Lsn, WalError, WalRecord};

/// In-site retry budget for transient injected ship/apply faults.
const REPL_IO_ATTEMPTS: u32 = 4;
/// Base backoff between transient-fault retries (grows exponentially).
const REPL_IO_BACKOFF_BASE: Duration = Duration::from_micros(50);

/// Configuration of a replication group.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Deterministic virtual-time cost charged per applied record
    /// ([`xtc_obs::CostKind::ReplApply`] on the replica's clock); also
    /// the per-record unit of the lag metric.
    pub apply_cost_us: u64,
    /// Maximum records shipped to one replica per pump round (0 =
    /// unbounded). Small batches make staleness observable in tests.
    pub ship_batch: usize,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            apply_cost_us: 2,
            ship_batch: 0,
        }
    }
}

/// One read replica: a WAL-less engine plus its redo cursor and the
/// routing state shared with the catalog.
pub struct Replica {
    db: Arc<XtcDb>,
    shared: Arc<ReplicaShared>,
    applier: Mutex<RedoApplier>,
    apply_cost_us: u64,
}

impl Replica {
    fn new(template: &XtcConfig, apply_cost_us: u64) -> Result<Self, XtcError> {
        // Replicas redo the primary's log; they keep no log of their own
        // and take no part in admission (reads are routed, not gated).
        let mut cfg = template.clone();
        cfg.wal = None;
        cfg.max_in_flight = None;
        Ok(Replica {
            db: Arc::new(XtcDb::try_new(cfg)?),
            shared: Arc::new(ReplicaShared::new()),
            applier: Mutex::new(RedoApplier::new()),
            apply_cost_us,
        })
    }

    /// The replica engine (serve read transactions against it while
    /// holding [`ReplicaShared::read_latch`]).
    pub fn db(&self) -> &Arc<XtcDb> {
        &self.db
    }

    /// The routing state shared with the catalog.
    pub fn shared(&self) -> &Arc<ReplicaShared> {
        &self.shared
    }

    /// Highest primary LSN applied so far.
    pub fn applied_lsn(&self) -> Lsn {
        self.shared.applied_lsn()
    }

    /// Deterministic replication lag, in virtual microseconds.
    pub fn lag_us(&self) -> u64 {
        self.shared.lag_us()
    }

    /// `false` once a permanent ship/apply fault poisoned this replica.
    pub fn is_healthy(&self) -> bool {
        self.shared.is_healthy()
    }

    /// Applies one shipped batch. Returns records applied before any
    /// permanent fault; on such a fault the replica is poisoned (readers
    /// are routed elsewhere) rather than erroring — its neighbours and
    /// the primary are unaffected.
    fn apply_batch(&self, records: &[WalRecord], primary_durable: Lsn) -> Result<usize, XtcError> {
        let scope = self.db.failpoint_scope();
        let mut applied = 0usize;
        let mut applier = self.applier.lock().unwrap();
        for rec in records {
            // Fault site `repl.apply`, in the *replica's* scope: models
            // the apply path hitting bad memory/storage on this replica.
            match xtc_failpoint::eval_io_in(
                scope,
                "repl.apply",
                REPL_IO_ATTEMPTS,
                REPL_IO_BACKOFF_BASE,
            ) {
                xtc_failpoint::IoFault::Ok => {}
                xtc_failpoint::IoFault::Transient { retries } => {
                    charge_transient_backoff(self.db.obs(), retries);
                }
                xtc_failpoint::IoFault::Permanent => {
                    self.shared.set_healthy(false);
                    break;
                }
            }
            // The latch is held per record, not per batch, so readers
            // interleave with apply progress; commit application is the
            // only store-mutating step and stays atomic under it.
            self.shared
                .with_apply_latch(|| applier.apply(&self.db, rec))?;
            self.db
                .obs()
                .charge(xtc_obs::CostKind::ReplApply, self.apply_cost_us);
            applied += 1;
        }
        let applied_lsn = applier.applied_lsn();
        drop(applier);
        let lag_records = primary_durable.saturating_sub(applied_lsn);
        self.shared
            .publish(applied_lsn, lag_records * self.apply_cost_us);
        Ok(applied)
    }
}

fn charge_transient_backoff(obs: &xtc_obs::Obs, retries: u32) {
    if retries > 0 {
        let slept =
            REPL_IO_BACKOFF_BASE.as_micros() as u64 * ((1u64 << retries.min(16)) - 1);
        obs.charge(xtc_obs::CostKind::RetryBackoff, slept);
    }
}

/// What one [`ReplGroup::pump`] round did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Records applied across all replicas this round.
    pub applied: usize,
    /// Replicas skipped because they are poisoned.
    pub poisoned: usize,
    /// `true` when every healthy replica reached the primary's durable
    /// LSN as of the start of the round.
    pub caught_up: bool,
}

/// What a [`ReplGroup::promote`] failover did.
#[derive(Debug, Clone)]
pub struct PromotionReport {
    /// Durable LSN of the fenced old log — the acknowledged prefix the
    /// new primary is guaranteed to contain.
    pub fenced_lsn: Lsn,
    /// The recovery pass over the fenced log (winners, losers, redo and
    /// undo work).
    pub recovery: RecoveryReport,
    /// Replicas rebuilt and re-attached onto the new log.
    pub replicas_rebuilt: usize,
}

/// A replication group for one catalog document: the primary stays in
/// the [`Catalog`] under the document's name; the group owns the replica
/// engines and keeps the catalog's routing state current.
pub struct ReplGroup {
    catalog: Arc<Catalog>,
    doc: String,
    /// Engine template for replicas and the promotion target (usually
    /// the primary's config; WAL and admission fields are overridden).
    template: XtcConfig,
    config: ReplConfig,
    replicas: RwLock<Vec<Arc<Replica>>>,
}

impl ReplGroup {
    /// A group over `catalog`'s document `doc`, which must exist and
    /// have a WAL (there is nothing to ship otherwise). `template` is
    /// the engine configuration replicas are built from.
    pub fn new(
        catalog: Arc<Catalog>,
        doc: impl Into<String>,
        template: XtcConfig,
        config: ReplConfig,
    ) -> Result<Self, XtcError> {
        let doc = doc.into();
        let primary = catalog.open(&doc)?;
        if primary.wal().is_none() {
            return Err(XtcError::Wal(WalError::BadPayload(
                "replication requires the primary to have a WAL",
            )));
        }
        Ok(ReplGroup {
            catalog,
            doc,
            template,
            config,
            replicas: RwLock::new(Vec::new()),
        })
    }

    /// The document this group replicates.
    pub fn doc(&self) -> &str {
        &self.doc
    }

    /// The current primary engine.
    pub fn primary(&self) -> Result<Arc<XtcDb>, XtcError> {
        self.catalog.open(&self.doc)
    }

    /// Snapshot of the replica handles (attach order).
    pub fn replicas(&self) -> Vec<Arc<Replica>> {
        self.replicas.read().unwrap().clone()
    }

    /// Builds a fresh replica, attaches it to the catalog's routing
    /// table, and returns its handle. It starts at LSN 0 and catches up
    /// on subsequent [`pump`](ReplGroup::pump) rounds (the first record
    /// it consumes is typically the primary's clean bootstrap
    /// checkpoint).
    pub fn add_replica(&self) -> Result<Arc<Replica>, XtcError> {
        let replica = Arc::new(Replica::new(&self.template, self.config.apply_cost_us)?);
        self.catalog
            .attach_replica(&self.doc, replica.db.clone(), replica.shared.clone())?;
        self.replicas.write().unwrap().push(replica.clone());
        Ok(replica)
    }

    /// One shipping round: for each healthy replica, read the primary's
    /// durable records past the replica's cursor (fault site `repl.ship`
    /// in the replica's scope) and apply them. Safe to call from a
    /// dedicated shipper thread while writers run on the primary.
    pub fn pump(&self) -> Result<PumpReport, XtcError> {
        let primary = self.primary()?;
        let wal = primary
            .wal()
            .ok_or(XtcError::Wal(WalError::BadPayload("primary lost its WAL")))?;
        let durable = wal.durable_lsn();
        let mut report = PumpReport {
            caught_up: true,
            ..PumpReport::default()
        };
        for replica in self.replicas() {
            if !replica.is_healthy() {
                report.poisoned += 1;
                continue;
            }
            let since = replica.applied_lsn();
            if since >= durable {
                replica.shared.publish(since, 0);
                continue;
            }
            report.caught_up = false;
            // Fault site `repl.ship`, in the replica's scope: models the
            // transfer leg to this replica. Transient faults retry with
            // backoff in-site; a permanent fault poisons the replica.
            match xtc_failpoint::eval_io_in(
                replica.db.failpoint_scope(),
                "repl.ship",
                REPL_IO_ATTEMPTS,
                REPL_IO_BACKOFF_BASE,
            ) {
                xtc_failpoint::IoFault::Ok => {}
                xtc_failpoint::IoFault::Transient { retries } => {
                    charge_transient_backoff(replica.db.obs(), retries);
                }
                xtc_failpoint::IoFault::Permanent => {
                    replica.shared.set_healthy(false);
                    report.poisoned += 1;
                    continue;
                }
            }
            let mut records = wal.records_since(since)?;
            if self.config.ship_batch > 0 && records.len() > self.config.ship_batch {
                records.truncate(self.config.ship_batch);
            }
            report.applied += replica.apply_batch(&records, durable)?;
        }
        Ok(report)
    }

    /// Pumps until every healthy replica has applied the primary's
    /// durable prefix (bounded by progress: a round that applies nothing
    /// and reports nothing outstanding terminates the loop).
    pub fn catch_up(&self) -> Result<(), XtcError> {
        loop {
            let report = self.pump()?;
            if report.caught_up || report.applied == 0 {
                return Ok(());
            }
        }
    }

    /// Fails over after a primary crash: fences the old log, recovers a
    /// new primary from its durable prefix (full recovery — analysis,
    /// redo, undo of losers), swaps it into the catalog, and rebuilds
    /// every replica from the new log's clean post-recovery checkpoint.
    ///
    /// Works whether the old primary is already crashed (the expected
    /// case) or still alive — fencing is exactly [`xtc_wal::Wal::crash`],
    /// which is idempotent and freezes further writes either way, so a
    /// deposed primary can never split-brain past its fenced prefix.
    pub fn promote(&self) -> Result<PromotionReport, XtcError> {
        let old = self.primary()?;
        let old_wal = old
            .wal()
            .ok_or(XtcError::Wal(WalError::BadPayload("primary lost its WAL")))?;
        // 1. Fence: freeze the old log. Its durable prefix — everything
        //    any client ever got an acknowledgement for — stays readable.
        old_wal.crash();
        let fenced_lsn = old_wal.durable_lsn();

        // 2. Recover the new primary from the fenced prefix. Unlike the
        //    replicas' continuous redo, this is full recovery *with
        //    undo*: in-flight losers' effects must be rolled back before
        //    the engine accepts writes. The new epoch gets a fresh WAL
        //    (and `recover_from` checkpoints the recovered state into
        //    it, which is what rebuilt replicas bootstrap from).
        let mut cfg = self.template.clone();
        if cfg.wal.is_none() {
            cfg.wal = Some(xtc_wal::WalConfig::default());
        }
        cfg.max_in_flight = None;
        let (new_db, recovery) = recover_from(old_wal, cfg)?;
        let new_db = Arc::new(new_db);

        // 3. Swap the catalog's primary. Routing flips atomically: reads
        //    may still hit old replicas' committed snapshots until the
        //    rebuild below, writes go to the new primary immediately.
        self.catalog.promote(&self.doc, new_db)?;

        // 4. Rebuild the replica fleet against the new log. A replica's
        //    committed snapshot equals the recovered state in content,
        //    but its cursor is meaningless against the new epoch's LSNs,
        //    so each is replaced wholesale (which also heals poisoned
        //    ones). Old engines die with their Arcs.
        let count = {
            let mut replicas = self.replicas.write().unwrap();
            let count = replicas.len();
            for replica in replicas.drain(..) {
                xtc_failpoint::clear_scope(replica.db.failpoint_scope());
            }
            count
        };
        for _ in 0..count {
            self.add_replica()?;
        }
        self.catch_up()?;
        Ok(PromotionReport {
            fenced_lsn,
            recovery,
            replicas_rebuilt: count,
        })
    }
}

impl std::fmt::Debug for ReplGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplGroup")
            .field("doc", &self.doc)
            .field("replicas", &self.replicas.read().unwrap().len())
            .field("config", &self.config)
            .finish()
    }
}
