//! Replication behaviour without fault injection: committed-snapshot
//! reads, abort invisibility, deterministic lag, and failover promotion.

use std::sync::Arc;

use xtc_core::{Catalog, CatalogConfig, DocRole, DocSpec, InsertPos, XtcConfig, XtcDb};
use xtc_repl::{ReplConfig, ReplGroup};
use xtc_tamix::chaos::document_digest;

const DOC: &str = "d";

fn wal_config() -> XtcConfig {
    XtcConfig {
        wal: Some(xtc_core::wal::WalConfig::default()),
        ..XtcConfig::default()
    }
}

fn catalog_with_doc() -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new(CatalogConfig {
        defaults: wal_config(),
        ..CatalogConfig::default()
    }));
    catalog
        .create_doc(
            DocSpec::named(DOC).with_xml(r#"<doc><item id="seed">original</item></doc>"#),
        )
        .unwrap();
    catalog
}

fn group(catalog: &Arc<Catalog>, config: ReplConfig) -> ReplGroup {
    ReplGroup::new(catalog.clone(), DOC, wal_config(), config).unwrap()
}

/// Commits one transaction inserting `<m{i}>` under the root.
fn commit_marker(db: &XtcDb, i: usize) {
    let txn = db.begin();
    let root = txn.root().unwrap().unwrap();
    txn.insert_element(&root, InsertPos::LastChild, &format!("m{i}"))
        .unwrap();
    txn.commit().unwrap();
}

#[test]
fn replicas_serve_committed_snapshots_and_catch_up() {
    let catalog = catalog_with_doc();
    let g = group(&catalog, ReplConfig::default());
    g.add_replica().unwrap();
    g.add_replica().unwrap();
    assert_eq!(catalog.replica_count(DOC), 2);

    // Bootstrap: the replicas load the primary's clean checkpoint.
    g.catch_up().unwrap();
    let primary = g.primary().unwrap();
    for replica in g.replicas() {
        assert_eq!(document_digest(replica.db()), document_digest(&primary));
    }

    // New committed work ships incrementally.
    for i in 0..10 {
        commit_marker(&primary, i);
    }
    g.catch_up().unwrap();
    let durable = primary.wal().unwrap().durable_lsn();
    for replica in g.replicas() {
        assert_eq!(replica.applied_lsn(), durable);
        assert_eq!(replica.lag_us(), 0);
        assert_eq!(document_digest(replica.db()), document_digest(&primary));
        // The replica really serves reads: a read transaction under the
        // apply latch sees the shipped markers.
        let _latch = replica.shared().read_latch();
        let txn = replica.db().begin();
        assert_eq!(txn.elements_named("m9").unwrap().len(), 1);
        txn.commit().unwrap();
    }

    // Reads route to a replica, writes to the primary.
    let route = catalog.route_read(DOC).unwrap();
    assert_eq!(route.role, DocRole::Replica);
    assert!(Arc::ptr_eq(&catalog.route_write(DOC).unwrap(), &primary));
}

#[test]
fn aborted_transactions_never_reach_replicas() {
    let catalog = catalog_with_doc();
    let g = group(&catalog, ReplConfig::default());
    let replica = g.add_replica().unwrap();
    g.catch_up().unwrap();

    let primary = g.primary().unwrap();
    commit_marker(&primary, 0);
    // An aborted insert: the primary logs redo + CLRs for it, but the
    // replica must never materialise any of that work.
    let txn = primary.begin();
    let root = txn.root().unwrap().unwrap();
    txn.insert_element(&root, InsertPos::LastChild, "loser").unwrap();
    txn.abort();
    commit_marker(&primary, 1);

    g.catch_up().unwrap();
    assert_eq!(document_digest(replica.db()), document_digest(&primary));
    let txn = replica.db().begin();
    assert!(txn.elements_named("loser").unwrap().is_empty());
    assert_eq!(txn.elements_named("m1").unwrap().len(), 1);
    txn.commit().unwrap();
}

#[test]
fn lag_is_deterministic_and_routing_prefers_the_freshest_replica() {
    let apply_cost_us = 7;
    let catalog = catalog_with_doc();
    // One-record ship batches make staleness observable.
    let g = group(&catalog, ReplConfig { apply_cost_us, ship_batch: 1 });
    let fresh = g.add_replica().unwrap();
    let stale = g.add_replica().unwrap();
    g.catch_up().unwrap();

    let primary = g.primary().unwrap();
    let vt_before = fresh.db().obs().vt().repl_apply_us;
    for i in 0..8 {
        commit_marker(&primary, i);
    }
    let durable = primary.wal().unwrap().durable_lsn();

    // One pump round: each replica advances by exactly one record.
    let report = g.pump().unwrap();
    assert_eq!(report.applied, 2);
    for replica in [&fresh, &stale] {
        let behind = durable - replica.applied_lsn();
        assert!(behind > 0, "replica should still be catching up");
        assert_eq!(replica.lag_us(), behind * apply_cost_us);
    }
    assert_eq!(
        fresh.db().obs().vt().repl_apply_us - vt_before,
        apply_cost_us,
        "one applied record charges exactly the configured cost"
    );

    // Hand-advance one replica; routing must pick the less-lagged one.
    let records = primary.wal().unwrap().records_since(fresh.applied_lsn()).unwrap();
    assert!(!records.is_empty());
    // (apply via the public pump path: temporarily poison the stale one)
    stale.shared().set_healthy(false);
    g.catch_up().unwrap();
    stale.shared().set_healthy(true);
    assert!(fresh.lag_us() < stale.lag_us());
    let route = catalog.route_read(DOC).unwrap();
    assert_eq!(route.role, DocRole::Replica);
    assert_eq!(
        route.shared.as_ref().unwrap().applied_lsn(),
        fresh.applied_lsn()
    );

    // A poisoned-only fleet falls back to the primary.
    fresh.shared().set_healthy(false);
    stale.shared().set_healthy(false);
    assert_eq!(catalog.route_read(DOC).unwrap().role, DocRole::Primary);
}

#[test]
fn promotion_preserves_every_acknowledged_commit() {
    let catalog = catalog_with_doc();
    let g = group(&catalog, ReplConfig::default());
    g.add_replica().unwrap();
    g.add_replica().unwrap();
    g.catch_up().unwrap();

    let old_primary = g.primary().unwrap();
    for i in 0..12 {
        commit_marker(&old_primary, i);
    }
    // An in-flight transaction the crash will orphan: logged redo work
    // but no durable commit — it must be undone by promotion recovery.
    let orphan = old_primary.begin();
    let root = orphan.root().unwrap().unwrap();
    orphan
        .insert_element(&root, InsertPos::LastChild, "orphan")
        .unwrap();

    // Crash the primary mid-flight, then fail over.
    old_primary.wal().unwrap().crash();
    assert!(orphan.commit().is_err());
    let report = g.promote().unwrap();
    assert!(report.fenced_lsn > 0);
    assert_eq!(report.replicas_rebuilt, 2);
    assert_eq!(catalog.replica_count(DOC), 2);

    // Every acknowledged commit survived; the orphan did not.
    let new_primary = g.primary().unwrap();
    assert!(!Arc::ptr_eq(&new_primary, &old_primary));
    let txn = new_primary.begin();
    for i in 0..12 {
        assert_eq!(
            txn.elements_named(&format!("m{i}")).unwrap().len(),
            1,
            "acknowledged commit m{i} lost by promotion"
        );
    }
    assert!(txn.elements_named("orphan").unwrap().is_empty());
    txn.commit().unwrap();

    // The group is fully operational on the new epoch: writes log to the
    // new WAL and ship to the rebuilt replicas.
    commit_marker(&new_primary, 100);
    g.catch_up().unwrap();
    for replica in g.replicas() {
        assert!(replica.is_healthy());
        assert_eq!(document_digest(replica.db()), document_digest(&new_primary));
        let txn = replica.db().begin();
        assert_eq!(txn.elements_named("m100").unwrap().len(), 1);
        txn.commit().unwrap();
    }
}
