//! Stale-read semantics, swept across all eleven lock protocols: a
//! replica at `applied_lsn < durable_lsn` always serves a *consistent
//! committed snapshot* — its digest equals the primary's state at some
//! commit boundary in log order, never a torn in-between. Shipping one
//! record per pump round makes every intermediate applier state
//! observable, so the sweep proves the invariant at the finest possible
//! granularity.

use std::collections::HashSet;
use std::sync::Arc;

use xtc_core::{Catalog, CatalogConfig, DocSpec, InsertPos, XtcConfig, XtcDb};
use xtc_repl::{ReplConfig, ReplGroup};
use xtc_tamix::chaos::document_digest;

const DOC: &str = "d";
const TXNS: usize = 24;

/// SplitMix-style generator: the seeded mix must not depend on the rand
/// stub's behaviour, so every protocol replays the identical op stream.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One seeded writer transaction: inserts a marker element, sometimes
/// decorates it, sometimes deletes an older marker, sometimes aborts the
/// whole thing. Returns `true` if the transaction committed.
fn seeded_txn(db: &XtcDb, i: usize, rng: &mut u64) -> bool {
    let txn = db.begin();
    let root = txn.root().unwrap().unwrap();
    let marker = txn
        .insert_element(&root, InsertPos::LastChild, &format!("p{i}"))
        .unwrap();
    if next(rng).is_multiple_of(3) {
        txn.set_attribute(&marker, "k", &format!("v{}", next(rng) % 100))
            .unwrap();
    }
    if next(rng).is_multiple_of(4) {
        txn.insert_text(&marker, InsertPos::FirstChild, "payload")
            .unwrap();
    }
    if next(rng).is_multiple_of(5) {
        if let Some(old) = txn
            .elements_named(&format!("p{}", i.saturating_sub(3)))
            .unwrap()
            .first()
            .cloned()
        {
            txn.delete_subtree(&old).unwrap();
        }
    }
    if next(rng).is_multiple_of(6) {
        if let Some(victim) = txn
            .elements_named(&format!("p{}", i.saturating_sub(1)))
            .unwrap()
            .first()
            .cloned()
        {
            txn.rename(&victim, &format!("r{i}")).unwrap();
        }
    }
    if next(rng).is_multiple_of(7) {
        // Aborted work must never become visible on any replica, so its
        // pre-abort state is deliberately *not* a legal prefix digest.
        txn.abort();
        false
    } else {
        txn.commit().unwrap();
        true
    }
}

#[test]
fn replicas_only_ever_serve_commit_boundary_prefixes() {
    for protocol in xtc_protocols::ALL_PROTOCOLS {
        let template = XtcConfig {
            protocol: protocol.into(),
            wal: Some(xtc_core::wal::WalConfig::default()),
            ..XtcConfig::default()
        };
        let catalog = Arc::new(Catalog::new(CatalogConfig {
            defaults: template.clone(),
            ..CatalogConfig::default()
        }));
        let primary = catalog
            .create_doc(DocSpec::named(DOC).with_xml("<doc><seed id=\"s1\">base</seed></doc>"))
            .unwrap();

        // Run the seeded mix first, recording the digest after every
        // commit: these (plus the bootstrap state) are the only states a
        // replica is ever allowed to expose.
        let mut legal = HashSet::new();
        legal.insert(document_digest(&primary));
        let mut rng = 0xD1CE ^ protocol.len() as u64;
        let mut commits = 0usize;
        for i in 0..TXNS {
            if seeded_txn(&primary, i, &mut rng) {
                commits += 1;
                legal.insert(document_digest(&primary));
            }
        }
        assert!(commits >= TXNS / 2, "[{protocol}] seeded mix barely commits");

        // Now replicate the whole log one record at a time, checking the
        // replica's digest after every single applied record.
        let g = ReplGroup::new(
            catalog.clone(),
            DOC,
            template,
            ReplConfig {
                apply_cost_us: 1,
                ship_batch: 1,
            },
        )
        .unwrap();
        let replica = g.add_replica().unwrap();
        let durable = primary.wal().unwrap().durable_lsn();
        let mut observed = HashSet::new();
        loop {
            let report = g.pump().unwrap();
            let digest = {
                let _latch = replica.shared().read_latch();
                document_digest(replica.db())
            };
            assert!(
                legal.contains(&digest),
                "[{protocol}] replica at applied_lsn {} (durable {durable}) serves a \
                 state that is no commit-boundary prefix of the primary's history",
                replica.applied_lsn(),
            );
            observed.insert(digest);
            if report.caught_up {
                break;
            }
        }
        assert_eq!(replica.applied_lsn(), durable, "[{protocol}]");
        assert_eq!(
            document_digest(replica.db()),
            document_digest(&primary),
            "[{protocol}] caught-up replica must converge on the primary's state"
        );
        assert!(
            observed.len() > 2,
            "[{protocol}] the record-at-a-time sweep should expose multiple \
             distinct intermediate snapshots, not jump straight to the tail"
        );
    }
}
