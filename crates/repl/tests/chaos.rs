//! Chaos cell for the replication fault model: the `repl.ship` and
//! `repl.apply` sites evaluate in the *replica's* engine scope, so a
//! transient fault costs one replica some backoff and a permanent fault
//! poisons that replica only — neighbours and the primary never notice.
//! Only compiled with the `failpoints` feature
//! (`cargo test -p xtc-repl --features failpoints --test chaos`).

#![cfg(feature = "failpoints")]

use std::sync::{Arc, Mutex};

use xtc_core::{Catalog, CatalogConfig, DocRole, DocSpec, InsertPos, XtcConfig, XtcDb};
use xtc_failpoint::FailAction;
use xtc_repl::{ReplConfig, ReplGroup};
use xtc_tamix::chaos::document_digest;

/// The failpoint registry is process-global; tests arming it must not
/// overlap (`cargo test` runs `#[test]` functions on multiple threads).
static FP_LOCK: Mutex<()> = Mutex::new(());

const DOC: &str = "d";

fn wal_config() -> XtcConfig {
    XtcConfig {
        wal: Some(xtc_core::wal::WalConfig::default()),
        ..XtcConfig::default()
    }
}

fn catalog_with_doc() -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new(CatalogConfig {
        defaults: wal_config(),
        ..CatalogConfig::default()
    }));
    catalog
        .create_doc(DocSpec::named(DOC).with_xml("<doc><seed>s</seed></doc>"))
        .unwrap();
    catalog
}

fn commit_marker(db: &XtcDb, i: usize) {
    let txn = db.begin();
    let root = txn.root().unwrap().unwrap();
    txn.insert_element(&root, InsertPos::LastChild, &format!("m{i}"))
        .unwrap();
    txn.commit().unwrap();
}

#[test]
fn transient_ship_fault_retries_with_backoff_and_replication_completes() {
    let _guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xtc_failpoint::clear();
    xtc_failpoint::set_seed(0xF00D);

    let catalog = catalog_with_doc();
    let g = ReplGroup::new(catalog.clone(), DOC, wal_config(), ReplConfig::default()).unwrap();
    let faulty = g.add_replica().unwrap();
    let clean = g.add_replica().unwrap();
    g.catch_up().unwrap();

    // A transient transfer fault on one replica's ship leg: fires twice
    // (within the in-site retry budget), then dries up.
    let faulty_scope = faulty.db().failpoint_scope();
    xtc_failpoint::configure_in(faulty_scope, "repl.ship", 1.0, FailAction::Error, Some(2));

    let primary = g.primary().unwrap();
    for i in 0..5 {
        commit_marker(&primary, i);
    }
    let backoff_before = faulty.db().obs().vt().backoff_us;
    g.catch_up().unwrap();

    // The fault dried up in-site: both hits landed on the faulty
    // replica, nothing fired on its neighbour, and everyone caught up.
    assert_eq!(xtc_failpoint::hits_in(faulty_scope, "repl.ship"), 2);
    assert_eq!(
        xtc_failpoint::hits_in(clean.db().failpoint_scope(), "repl.ship"),
        0
    );
    for replica in [&faulty, &clean] {
        assert!(replica.is_healthy());
        assert_eq!(replica.lag_us(), 0);
        assert_eq!(document_digest(replica.db()), document_digest(&primary));
    }
    // Two in-site retries charged deterministic backoff to the faulty
    // replica's clock: 50µs + 100µs.
    assert_eq!(faulty.db().obs().vt().backoff_us - backoff_before, 150);
    assert_eq!(clean.db().obs().vt().backoff_us, 0);

    xtc_failpoint::clear();
}

#[test]
fn permanent_apply_fault_poisons_only_that_replica() {
    let _guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xtc_failpoint::clear();

    let catalog = catalog_with_doc();
    let g = ReplGroup::new(catalog.clone(), DOC, wal_config(), ReplConfig::default()).unwrap();
    let doomed = g.add_replica().unwrap();
    let survivor = g.add_replica().unwrap();
    g.catch_up().unwrap();
    let doomed_digest = document_digest(doomed.db());

    // A dead apply path on one replica: every attempt in the budget
    // fails, so the first shipped record permanently poisons it.
    xtc_failpoint::configure_in(
        doomed.db().failpoint_scope(),
        "repl.apply",
        1.0,
        FailAction::Error,
        None,
    );

    let primary = g.primary().unwrap();
    for i in 0..6 {
        commit_marker(&primary, i);
    }
    g.catch_up().unwrap();

    // The poison is contained: the doomed replica froze at its last
    // committed snapshot, while its neighbour caught up and the primary
    // kept committing throughout.
    assert!(!doomed.is_healthy());
    assert_eq!(document_digest(doomed.db()), doomed_digest);
    assert!(survivor.is_healthy());
    assert_eq!(survivor.lag_us(), 0);
    assert_eq!(document_digest(survivor.db()), document_digest(&primary));

    // Read routing avoids the poisoned replica.
    let route = catalog.route_read(DOC).unwrap();
    assert_eq!(route.role, DocRole::Replica);
    assert_eq!(
        route.shared.as_ref().unwrap().applied_lsn(),
        survivor.applied_lsn()
    );

    // Further pumps skip it without touching its dead apply path again.
    let hits = xtc_failpoint::hits_in(doomed.db().failpoint_scope(), "repl.apply");
    commit_marker(&primary, 99);
    let report = g.pump().unwrap();
    assert_eq!(report.poisoned, 1);
    assert_eq!(
        xtc_failpoint::hits_in(doomed.db().failpoint_scope(), "repl.apply"),
        hits
    );

    // Promotion rebuilds the fleet and thereby heals the poison: the
    // replacement replica is a fresh engine with an unarmed scope.
    primary.wal().unwrap().crash();
    let promo = g.promote().unwrap();
    assert_eq!(promo.replicas_rebuilt, 2);
    let new_primary = g.primary().unwrap();
    for replica in g.replicas() {
        assert!(replica.is_healthy());
        assert_eq!(document_digest(replica.db()), document_digest(&new_primary));
    }

    xtc_failpoint::clear();
}
