//! Property tests: the stack-based structural join agrees with the naive
//! quadratic reference on arbitrary label populations.

use proptest::prelude::*;
use xtc_query::join;
use xtc_splid::{LabelAllocator, SplId};

/// Random population of document-ordered labels (tree shaped).
fn arb_labels(max: usize) -> impl Strategy<Value = Vec<SplId>> {
    prop::collection::vec((0u8..3, 0u8..4), 0..max).prop_map(|steps| {
        let alloc = LabelAllocator::new(2);
        let mut frontier = vec![SplId::root()];
        let mut all = vec![SplId::root()];
        for (op, _salt) in steps {
            let cur = frontier.last().unwrap().clone();
            let next = match op {
                0 => alloc.first_child(&cur),
                1 => match alloc.next_sibling(&cur) {
                    Ok(s) => s,
                    Err(_) => alloc.first_child(&cur),
                },
                _ => {
                    if frontier.len() > 1 {
                        frontier.pop();
                        continue;
                    }
                    alloc.first_child(&cur)
                }
            };
            all.push(next.clone());
            frontier.push(next);
        }
        all.sort();
        all.dedup();
        all
    })
}

fn naive_join(a: &[SplId], d: &[SplId]) -> Vec<(SplId, SplId)> {
    let mut out = Vec::new();
    for desc in d {
        for anc in a {
            if anc.is_ancestor_of(desc) {
                out.push((anc.clone(), desc.clone()));
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn stack_join_equals_naive(pop in arb_labels(60), split in any::<u64>()) {
        // Partition the population pseudo-randomly into ancestor and
        // descendant candidate sets (they may overlap).
        let mut ancestors = Vec::new();
        let mut descendants = Vec::new();
        for (i, l) in pop.iter().enumerate() {
            if (split >> (i % 64)) & 1 == 0 {
                ancestors.push(l.clone());
            }
            if (split.rotate_left(17) >> (i % 64)) & 1 == 0 {
                descendants.push(l.clone());
            }
        }
        let mut got = join::ancestor_descendant(&ancestors, &descendants);
        got.sort();
        prop_assert_eq!(got, naive_join(&ancestors, &descendants));
    }

    #[test]
    fn contained_in_equals_naive(pop in arb_labels(50), split in any::<u64>()) {
        let roots: Vec<SplId> = pop.iter().enumerate()
            .filter(|(i, _)| (split >> (i % 64)) & 1 == 0)
            .map(|(_, l)| l.clone()).collect();
        let nodes = pop.clone();
        let got = join::contained_in(&roots, &nodes);
        let want: Vec<SplId> = nodes.iter()
            .filter(|n| roots.iter().any(|r| r.is_ancestor_of(n) || r == *n))
            .cloned().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_intersect_are_set_ops(pop in arb_labels(40), split in any::<u64>()) {
        use std::collections::BTreeSet;
        let a: Vec<SplId> = pop.iter().enumerate()
            .filter(|(i, _)| (split >> (i % 64)) & 1 == 0)
            .map(|(_, l)| l.clone()).collect();
        let b: Vec<SplId> = pop.iter().enumerate()
            .filter(|(i, _)| (split >> ((i + 13) % 64)) & 1 == 0)
            .map(|(_, l)| l.clone()).collect();
        let sa: BTreeSet<_> = a.iter().cloned().collect();
        let sb: BTreeSet<_> = b.iter().cloned().collect();
        let u: Vec<SplId> = sa.union(&sb).cloned().collect();
        let i: Vec<SplId> = sa.intersection(&sb).cloned().collect();
        prop_assert_eq!(join::union(&a, &b), u);
        prop_assert_eq!(join::intersect(&a, &b), i);
    }
}
