//! # xtc-query — declarative access over the navigational model
//!
//! The paper's conclusions (§6) motivate exactly this layer: "Queries
//! specified by declarative languages are frequently processed via
//! indexes which will require a large number of direct jumps. On the
//! other hand, SPLIDs allow structural joins and set-theoretic operations
//! such that they become more useful than TIDs in relational DBMSs."
//!
//! Two pieces:
//!
//! * [`PathExpr`] — a compact XPath-like path language (`child` and
//!   `descendant` axes, name and wildcard tests, attribute and position
//!   predicates, attribute selection) evaluated **transactionally**: every
//!   navigation step, level read, index jump, and subtree scan goes
//!   through the active lock protocol, so declarative readers are
//!   isolated exactly like navigational ones (§1's requirement that
//!   declarative requests map onto the navigational access model).
//! * [`join`] — stack-based **structural joins** over SPLID streams
//!   (ancestor–descendant and parent–child matching in one merge pass)
//!   plus document-order set operations, the §6 payoff of prefix-based
//!   labels.
//!
//! ```
//! use xtc_core::{XtcConfig, XtcDb};
//! use xtc_query::PathExpr;
//!
//! let db = XtcDb::new(XtcConfig::default());
//! db.load_xml(r#"<bib><book id="b1"><title>XML</title></book>
//!                <book id="b2"><title>Locks</title></book></bib>"#).unwrap();
//! let txn = db.begin();
//! let titles = PathExpr::parse("//book/title").unwrap()
//!     .eval(&txn).unwrap();
//! assert_eq!(titles.len(), 2);
//! txn.commit().unwrap();
//! ```

#![warn(missing_docs)]

mod eval;
pub mod join;
mod parse;

pub use eval::QueryValue;
pub use parse::{Axis, NodeTest, ParseError, PathExpr, Predicate, Step};
