//! Transactional evaluation of path expressions.
//!
//! Every document access is performed through the [`Transaction`] API, so
//! the active lock protocol isolates declarative readers exactly like
//! navigational ones:
//!
//! * child steps read the level (`getChildNodes` → level locks),
//! * descendant steps with a name test use the **element index** — the
//!   "large number of direct jumps" of §6, each protected as a jump
//!   (intention paths / IDR, depending on the protocol),
//! * attribute predicates and selections read via the attribute-root
//!   level locks.

use crate::parse::{Axis, NodeTest, PathExpr, Predicate};
use xtc_core::{SplId, Transaction, XtcError};

/// Result of evaluating a path with a trailing attribute selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryValue {
    /// Element results (no `/@attr` suffix).
    Nodes(Vec<SplId>),
    /// Attribute string values, one entry per matched element that has
    /// the attribute.
    Strings(Vec<String>),
}

impl QueryValue {
    /// The node results; empty for attribute selections.
    pub fn nodes(self) -> Vec<SplId> {
        match self {
            QueryValue::Nodes(n) => n,
            QueryValue::Strings(_) => Vec::new(),
        }
    }

    /// The string results; empty for node results.
    pub fn strings(self) -> Vec<String> {
        match self {
            QueryValue::Strings(s) => s,
            QueryValue::Nodes(_) => Vec::new(),
        }
    }
}

impl PathExpr {
    /// Evaluates the path against the document root, returning matching
    /// elements in document order (deduplicated).
    pub fn eval(&self, txn: &Transaction<'_>) -> Result<Vec<SplId>, XtcError> {
        let Some(root) = txn.root()? else {
            return Ok(Vec::new());
        };
        // The first step matches against a virtual context *above* the
        // root: `/bib` tests the root element itself.
        let mut context: Vec<SplId> = vec![root];
        for (i, step) in self.steps.iter().enumerate() {
            let mut next = Vec::new();
            for cx in &context {
                let candidates: Vec<SplId> = if i == 0 {
                    // Virtual document node: the child axis yields the
                    // root element; the descendant axis yields everything.
                    match step.axis {
                        Axis::Child => vec![cx.clone()],
                        Axis::Descendant => descendant_candidates(txn, cx, &step.test, true)?,
                    }
                } else {
                    match step.axis {
                        Axis::Child => txn.element_children(cx)?,
                        Axis::Descendant => {
                            descendant_candidates(txn, cx, &step.test, false)?
                        }
                    }
                };
                let mut position = 0usize;
                for cand in candidates {
                    if !test_matches(txn, &cand, &step.test)? {
                        continue;
                    }
                    position += 1;
                    if predicates_match(txn, &cand, &step.predicates, position)? {
                        next.push(cand);
                    }
                }
            }
            next.sort();
            next.dedup();
            context = next;
            if context.is_empty() {
                break;
            }
        }
        Ok(context)
    }

    /// Evaluates the full expression including a trailing `/@attr`.
    pub fn eval_values(&self, txn: &Transaction<'_>) -> Result<QueryValue, XtcError> {
        let nodes = self.eval(txn)?;
        match &self.attribute {
            None => Ok(QueryValue::Nodes(nodes)),
            Some(attr) => {
                let mut out = Vec::new();
                for n in nodes {
                    if let Some(v) = txn.attribute(&n, attr)? {
                        out.push(v);
                    }
                }
                Ok(QueryValue::Strings(out))
            }
        }
    }
}

/// Candidates for a descendant step: named tests go through the element
/// index (direct jumps, §6); wildcards scan the subtree.
fn descendant_candidates(
    txn: &Transaction<'_>,
    cx: &SplId,
    test: &NodeTest,
    include_self_region: bool,
) -> Result<Vec<SplId>, XtcError> {
    match test {
        NodeTest::Name(name) => {
            let all = txn.elements_named(name)?;
            Ok(all
                .into_iter()
                .filter(|n| {
                    cx.is_ancestor_of(n) || (include_self_region && n == cx)
                })
                .collect())
        }
        NodeTest::Any => {
            let nodes = txn.subtree(cx)?;
            Ok(nodes
                .into_iter()
                .filter(|(n, data)| {
                    matches!(data, xtc_core::NodeData::Element { .. })
                        && (include_self_region || n != cx)
                })
                .map(|(n, _)| n)
                .collect())
        }
    }
}

fn test_matches(
    txn: &Transaction<'_>,
    node: &SplId,
    test: &NodeTest,
) -> Result<bool, XtcError> {
    match test {
        NodeTest::Any => Ok(true),
        NodeTest::Name(name) => Ok(txn.name(node)?.as_deref() == Some(name.as_str())),
    }
}

fn predicates_match(
    txn: &Transaction<'_>,
    node: &SplId,
    predicates: &[Predicate],
    position: usize,
) -> Result<bool, XtcError> {
    for p in predicates {
        let ok = match p {
            Predicate::AttrEquals(name, value) => {
                txn.attribute(node, name)?.as_deref() == Some(value.as_str())
            }
            Predicate::Position(n) => *n == position,
        };
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtc_core::{XtcConfig, XtcDb};

    fn db() -> XtcDb {
        let db = XtcDb::new(XtcConfig::default());
        db.load_xml(
            r#"<bib><topics>
                 <topic id="t0"><book id="b0" year="2004"><title>A</title></book>
                                <book id="b1" year="2006"><title>B</title></book></topic>
                 <topic id="t1"><book id="b2" year="2006"><title>C</title></book></topic>
               </topics></bib>"#,
        )
        .unwrap();
        db
    }

    fn eval(db: &XtcDb, path: &str) -> Vec<String> {
        let txn = db.begin();
        let expr = PathExpr::parse(path).unwrap();
        let out = match expr.eval_values(&txn).unwrap() {
            QueryValue::Nodes(nodes) => nodes
                .iter()
                .map(|n| {
                    let name = txn.name(n).unwrap().unwrap();
                    let text = txn.element_text(n).unwrap();
                    if text.is_empty() {
                        name
                    } else {
                        format!("{name}:{text}")
                    }
                })
                .collect(),
            QueryValue::Strings(s) => s,
        };
        txn.commit().unwrap();
        out
    }

    #[test]
    fn absolute_child_paths() {
        let db = db();
        assert_eq!(eval(&db, "/bib"), ["bib"]);
        assert_eq!(eval(&db, "/bib/topics/topic"), ["topic", "topic"]);
        assert_eq!(
            eval(&db, "/bib/topics/topic/book/title"),
            ["title:A", "title:B", "title:C"]
        );
        assert_eq!(eval(&db, "/wrong"), Vec::<String>::new());
        assert_eq!(eval(&db, "/bib/book"), Vec::<String>::new());
    }

    #[test]
    fn descendant_axis_uses_index() {
        let db = db();
        assert_eq!(eval(&db, "//title"), ["title:A", "title:B", "title:C"]);
        assert_eq!(eval(&db, "//topic//title"), ["title:A", "title:B", "title:C"]);
        assert_eq!(eval(&db, "/bib//book/title"), ["title:A", "title:B", "title:C"]);
    }

    #[test]
    fn predicates() {
        let db = db();
        assert_eq!(
            eval(&db, "//topic[@id='t0']/book/title"),
            ["title:A", "title:B"]
        );
        assert_eq!(eval(&db, "//book[@year='2006']/title"), ["title:B", "title:C"]);
        assert_eq!(eval(&db, "/bib/topics/topic[2]/book/title"), ["title:C"]);
        assert_eq!(eval(&db, "//topic[@id='t0']/book[2]/title"), ["title:B"]);
        assert_eq!(
            eval(&db, "//book[@year='2006'][@id='b2']/title"),
            ["title:C"]
        );
    }

    #[test]
    fn wildcard_and_attribute_selection() {
        let db = db();
        assert_eq!(eval(&db, "/bib/*/topic"), ["topic", "topic"]);
        assert_eq!(eval(&db, "//book/@year"), ["2004", "2006", "2006"]);
        assert_eq!(eval(&db, "//topic/@id"), ["t0", "t1"]);
    }

    #[test]
    fn results_are_document_ordered_and_deduplicated() {
        let db = db();
        // `//*//title` reaches each title through several ancestors.
        assert_eq!(eval(&db, "//*//title"), ["title:A", "title:B", "title:C"]);
    }

    #[test]
    fn queries_take_locks() {
        let db = db();
        let txn = db.begin();
        let _ = PathExpr::parse("//book/title").unwrap().eval(&txn).unwrap();
        assert!(txn.held_locks() > 0, "declarative readers must lock");
        txn.commit().unwrap();
        assert_eq!(db.lock_table().granted_count(), 0);
    }
}
