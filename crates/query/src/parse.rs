//! The path-expression language and its parser.
//!
//! Grammar (a pragmatic XPath subset — the operations TaMix-style
//! applications issue):
//!
//! ```text
//! path      := ('/' | '//') step (('/' | '//') step)* ('/@' name)?
//! step      := nodetest predicate*
//! nodetest  := name | '*'
//! predicate := '[' '@' name '=' '\'' value '\'' ']'
//!            | '[' number ']'                       (1-based position)
//! ```
//!
//! Examples: `/bib/topics/topic[@id='t3']/book[2]/title`,
//! `//book/@year`, `//topic/book//lend[@person='p7']`.

use std::fmt;

/// Navigation axis of one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Direct children (`/`).
    Child,
    /// All descendants (`//`).
    Descendant,
}

/// Element-name test of one step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A specific element name.
    Name(String),
    /// Any element (`*`).
    Any,
}

/// A step predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// `[@name='value']`.
    AttrEquals(String, String),
    /// `[n]` — 1-based position among the step's matches per context node.
    Position(usize),
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// The axis this step navigates.
    pub axis: Axis,
    /// The name test.
    pub test: NodeTest,
    /// Conjunction of predicates.
    pub predicates: Vec<Predicate>,
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathExpr {
    /// The location steps, outermost first.
    pub steps: Vec<Step>,
    /// Trailing `/@name` attribute selection, if any.
    pub attribute: Option<String>,
}

/// Path parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What was expected.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl PathExpr {
    /// Parses a path expression.
    pub fn parse(input: &str) -> Result<PathExpr, ParseError> {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
        .parse()
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            f.write_str(match s.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
            })?;
            match &s.test {
                NodeTest::Name(n) => f.write_str(n)?,
                NodeTest::Any => f.write_str("*")?,
            }
            for p in &s.predicates {
                match p {
                    Predicate::AttrEquals(n, v) => write!(f, "[@{n}='{v}']")?,
                    Predicate::Position(i) => write!(f, "[{i}]")?,
                }
            }
        }
        if let Some(a) = &self.attribute {
            write!(f, "/@{a}")?;
        }
        Ok(())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse(mut self) -> Result<PathExpr, ParseError> {
        let mut steps = Vec::new();
        let mut attribute = None;
        if self.peek() != Some(b'/') {
            return Err(self.err("paths start with '/' or '//'"));
        }
        while self.peek() == Some(b'/') {
            self.pos += 1;
            let axis = if self.eat(b'/') {
                Axis::Descendant
            } else {
                Axis::Child
            };
            if self.eat(b'@') {
                attribute = Some(self.name()?);
                if axis == Axis::Descendant {
                    return Err(self.err("'//@' is not supported"));
                }
                break;
            }
            let test = if self.eat(b'*') {
                NodeTest::Any
            } else {
                NodeTest::Name(self.name()?)
            };
            let mut predicates = Vec::new();
            while self.eat(b'[') {
                predicates.push(self.predicate()?);
            }
            steps.push(Step {
                axis,
                test,
                predicates,
            });
        }
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing input"));
        }
        if steps.is_empty() {
            return Err(self.err("empty path"));
        }
        Ok(PathExpr { steps, attribute })
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let p = if self.eat(b'@') {
            let name = self.name()?;
            if !self.eat(b'=') {
                return Err(self.err("expected '=' in attribute predicate"));
            }
            if !self.eat(b'\'') {
                return Err(self.err("expected quoted value"));
            }
            let start = self.pos;
            while self.peek().map(|c| c != b'\'').unwrap_or(false) {
                self.pos += 1;
            }
            let value = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            if !self.eat(b'\'') {
                return Err(self.err("unterminated value"));
            }
            Predicate::AttrEquals(name, value)
        } else {
            let start = self.pos;
            while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(self.err("expected '@name=...' or a position number"));
            }
            let n: usize = std::str::from_utf8(&self.bytes[start..self.pos])
                .unwrap()
                .parse()
                .map_err(|_| self.err("bad position"))?;
            if n == 0 {
                return Err(self.err("positions are 1-based"));
            }
            Predicate::Position(n)
        };
        if !self.eat(b']') {
            return Err(self.err("expected ']'"));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_child_path() {
        let p = PathExpr::parse("/bib/topics/topic").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert!(p.steps.iter().all(|s| s.axis == Axis::Child));
        assert_eq!(p.steps[2].test, NodeTest::Name("topic".into()));
        assert_eq!(p.attribute, None);
    }

    #[test]
    fn parses_descendant_axis_and_predicates() {
        let p = PathExpr::parse("//topic[@id='t3']/book[2]//lend[@person='p7']").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
        assert_eq!(
            p.steps[0].predicates,
            vec![Predicate::AttrEquals("id".into(), "t3".into())]
        );
        assert_eq!(p.steps[1].predicates, vec![Predicate::Position(2)]);
        assert_eq!(p.steps[2].axis, Axis::Descendant);
    }

    #[test]
    fn parses_attribute_selection_and_wildcard() {
        let p = PathExpr::parse("/bib/*/topic/@id").unwrap();
        assert_eq!(p.steps[1].test, NodeTest::Any);
        assert_eq!(p.attribute.as_deref(), Some("id"));
    }

    #[test]
    fn rejects_malformed_paths() {
        for bad in [
            "", "bib", "/", "/bib/", "/bib[", "/bib[@]", "/bib[@a=b]", "/bib[0]",
            "/bib/@id/x", "//@id",
        ] {
            assert!(PathExpr::parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
