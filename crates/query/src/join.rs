//! Structural joins and set operations over SPLID streams (§6: "SPLIDs
//! allow structural joins and set-theoretic operations such that they
//! become more useful than TIDs in relational DBMSs").
//!
//! The stack-based merge is the classical structural-join algorithm
//! (Al-Khalifa et al., ICDE 2002 — the paper's reference [1]) specialized
//! to SPLIDs: because an ancestor's label is a prefix of its descendants'
//! labels and document order is label order, one synchronized pass over
//! two document-ordered streams produces all ancestor–descendant pairs in
//! `O(|A| + |D| + |output|)`.

use xtc_splid::SplId;

/// All `(ancestor, descendant)` pairs with `a` a proper ancestor of `d`.
///
/// Inputs must be in document order (deduplicated); the output is ordered
/// by descendant. This is the *stack-tree* join: ancestors whose subtree
/// region has been passed are popped and never revisited.
pub fn ancestor_descendant(ancestors: &[SplId], descendants: &[SplId]) -> Vec<(SplId, SplId)> {
    debug_assert!(ancestors.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(descendants.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    let mut stack: Vec<&SplId> = Vec::new();
    let mut ai = 0;
    for d in descendants {
        // Push every ancestor that starts before `d` in document order.
        while ai < ancestors.len() && ancestors[ai] < *d {
            // Pop stack entries whose subtree region ended before this
            // ancestor begins (they cannot cover anything later either).
            while let Some(top) = stack.last() {
                if top.is_ancestor_of(&ancestors[ai]) {
                    break;
                }
                stack.pop();
            }
            stack.push(&ancestors[ai]);
            ai += 1;
        }
        // Pop entries that do not cover `d`.
        while let Some(top) = stack.last() {
            if top.is_ancestor_of(d) {
                break;
            }
            stack.pop();
        }
        // Every remaining stack entry is an ancestor of `d` (the stack is
        // a chain: each entry is an ancestor of the one above it).
        for a in &stack {
            out.push(((*a).clone(), d.clone()));
        }
    }
    out
}

/// All `(parent, child)` pairs — the ancestor–descendant join restricted
/// to distance 1 (computed directly from the labels).
pub fn parent_child(parents: &[SplId], children: &[SplId]) -> Vec<(SplId, SplId)> {
    ancestor_descendant(parents, children)
        .into_iter()
        .filter(|(p, c)| p.is_parent_of(c))
        .collect()
}

/// The descendants (from `nodes`) that fall inside any subtree rooted in
/// `roots` — a semi-join, e.g. "all `lend` elements inside topic t3".
pub fn contained_in(roots: &[SplId], nodes: &[SplId]) -> Vec<SplId> {
    debug_assert!(roots.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(nodes.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    let mut ri = 0;
    let mut current: Option<&SplId> = None;
    for n in nodes {
        while ri < roots.len() && roots[ri] <= *n {
            current = Some(&roots[ri]);
            ri += 1;
        }
        // The covering root, if any, is the last root starting before n
        // that is also its ancestor — roots are disjoint-or-nested; for
        // nested roots any cover suffices for the semi-join.
        if let Some(r) = current {
            if r.is_ancestor_of(n) || r == n {
                out.push(n.clone());
                continue;
            }
        }
        // Walk back for a nested-roots cover (rare; keeps correctness
        // when one root contains another).
        if roots[..ri].iter().rev().any(|r| r.is_ancestor_of(n)) {
            out.push(n.clone());
        }
    }
    out
}

/// Document-order union of two ordered, deduplicated streams.
pub fn union(a: &[SplId], b: &[SplId]) -> Vec<SplId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) if x == y => {
                out.push(x.clone());
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => {
                out.push(x.clone());
                i += 1;
            }
            (Some(_), Some(y)) => {
                out.push(y.clone());
                j += 1;
            }
            (Some(x), None) => {
                out.push(x.clone());
                i += 1;
            }
            (None, Some(y)) => {
                out.push(y.clone());
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

/// Document-order intersection of two ordered, deduplicated streams.
pub fn intersect(a: &[SplId], b: &[SplId]) -> Vec<SplId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtc_splid::SplId;

    fn ids(labels: &[&str]) -> Vec<SplId> {
        let mut v: Vec<SplId> = labels.iter().map(|s| SplId::parse(s).unwrap()).collect();
        v.sort();
        v
    }

    /// Reference implementation: nested loops.
    fn naive(a: &[SplId], d: &[SplId]) -> Vec<(SplId, SplId)> {
        let mut out = Vec::new();
        for desc in d {
            for anc in a {
                if anc.is_ancestor_of(desc) {
                    out.push((anc.clone(), desc.clone()));
                }
            }
        }
        out
    }

    #[test]
    fn stack_join_matches_naive() {
        let ancestors = ids(&["1.3", "1.3.3", "1.5", "1.5.3.3", "1.7"]);
        let descendants = ids(&[
            "1.3.3.3", "1.3.3.5.3", "1.3.5", "1.5.3.3.7", "1.5.5", "1.9",
        ]);
        let mut got = ancestor_descendant(&ancestors, &descendants);
        let mut want = naive(&ancestors, &descendants);
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn nested_ancestors_all_reported() {
        // 1.3 and 1.3.3 both cover 1.3.3.5.
        let got = ancestor_descendant(&ids(&["1.3", "1.3.3"]), &ids(&["1.3.3.5"]));
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn parent_child_filters_distance() {
        let got = parent_child(&ids(&["1.3", "1.3.3"]), &ids(&["1.3.3.5", "1.3.5"]));
        assert_eq!(
            got,
            vec![
                (SplId::parse("1.3.3").unwrap(), SplId::parse("1.3.3.5").unwrap()),
                (SplId::parse("1.3").unwrap(), SplId::parse("1.3.5").unwrap()),
            ]
        );
    }

    #[test]
    fn contained_in_semi_join() {
        let roots = ids(&["1.3", "1.7"]);
        let nodes = ids(&["1.3.3", "1.5.3", "1.7.9.3", "1.9"]);
        assert_eq!(contained_in(&roots, &nodes), ids(&["1.3.3", "1.7.9.3"]));
    }

    #[test]
    fn set_operations() {
        let a = ids(&["1.3", "1.5", "1.7"]);
        let b = ids(&["1.5", "1.9"]);
        assert_eq!(union(&a, &b), ids(&["1.3", "1.5", "1.7", "1.9"]));
        assert_eq!(intersect(&a, &b), ids(&["1.5"]));
        assert_eq!(intersect(&a, &[]), Vec::<SplId>::new());
        assert_eq!(union(&[], &b), b);
    }
}
