//! Trace exporter: runs a seeded sequential transaction mix with the
//! observability layer enabled and writes one structured trace per
//! protocol — per-transaction timelines, lock/IO/WAL latency histograms,
//! and the full event list.
//!
//! ```text
//! trace [--protocols a,b,c] [--txns N] [--seed N] [--bib tiny|scaled|paper]
//!       [--read-latency-us N] [--events N] [--out DIR]
//! ```
//!
//! Writes `DIR/trace_<protocol>.json` (default `results/`). The run is
//! single-threaded, so with a fixed seed the event sequence is
//! deterministic up to measured wait fields (which are zero without
//! contention) — the golden-trace test relies on the same property.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;
use xtc_core::{IsolationLevel, XtcConfig, XtcDb};
use xtc_obs::ObsConfig;
use xtc_tamix::txns::{run_txn, Pacing};
use xtc_tamix::{bib, BibConfig, TxnKind};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

/// The sequential mix: cycles through every transaction type so the
/// trace shows reads, updates, deletions, and their WAL records.
const MIX: [TxnKind; 5] = [
    TxnKind::QueryBook,
    TxnKind::Chapter,
    TxnKind::LendAndReturn,
    TxnKind::RenameTopic,
    TxnKind::DelBook,
];

fn main() {
    let mut protocols: Vec<String> = vec!["taDOM3+".to_string(), "Node2PL".to_string()];
    let mut txns: usize = 25;
    let mut seed: u64 = 42;
    let mut bib_cfg = BibConfig::tiny();
    let mut read_latency_us: u64 = 10;
    let mut events: usize = 262_144;
    let mut out_dir = "results".to_string();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--protocols" => {
                protocols = val("list").split(',').map(|s| s.to_string()).collect();
                if protocols.iter().any(|p| p == "all") {
                    protocols = xtc_protocols::ALL_PROTOCOLS
                        .iter()
                        .map(|p| p.to_string())
                        .collect();
                }
            }
            "--txns" => txns = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--seed" => seed = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--bib" => {
                bib_cfg = match val("size").as_str() {
                    "tiny" => BibConfig::tiny(),
                    "scaled" => BibConfig::scaled(),
                    "paper" => BibConfig::paper(),
                    other => die(&format!("unknown bib size {other}")),
                }
            }
            "--read-latency-us" => {
                read_latency_us = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--events" => events = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--out" => out_dir = val("path"),
            "--help" | "-h" => {
                eprintln!(
                    "options: --protocols a,b,c|all --txns N --seed N \
                     --bib tiny|scaled|paper --read-latency-us N --events N --out DIR"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| die(&format!("mkdir {out_dir}: {e}")));
    for proto in &protocols {
        if xtc_protocols::build(proto).is_none() {
            die(&format!("unknown protocol {proto}"));
        }
        let db = XtcDb::new(XtcConfig {
            protocol: proto.clone(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 4,
            obs: Some(ObsConfig {
                trace_events: events,
            }),
            // In-memory WAL so the trace shows append/flush/commit events
            // and the wal_flush histogram is populated.
            wal: Some(xtc_core::wal::WalConfig::default()),
            store: xtc_node::DocStoreConfig {
                read_latency: Duration::from_micros(read_latency_us),
                ..xtc_node::DocStoreConfig::default()
            },
            ..XtcConfig::default()
        });
        bib::generate_into(&db, &bib_cfg);
        let pacing = Pacing {
            wait_after_operation: Duration::ZERO,
            ..Pacing::default()
        };
        let mut committed = 0u64;
        let mut aborted = 0u64;
        for i in 0..txns {
            let kind = MIX[i % MIX.len()];
            let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64 * 7919));
            match run_txn(&db, kind, &bib_cfg, &mut rng, pacing) {
                Ok(_) => committed += 1,
                Err(_) => aborted += 1,
            }
        }
        let obs = db.obs();
        let json = obs.export_json(&format!("trace {proto} seed={seed} txns={txns}"));
        let path = format!("{out_dir}/trace_{}.json", proto.replace('+', "plus"));
        std::fs::write(&path, json).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        let vt = obs.vt();
        println!(
            "trace: {proto}: {committed} committed, {aborted} aborted, \
             {} events ({} dropped), vt page_read={}us think={}us lock_wait={}us \
             wal_flush={}us -> {path}",
            obs.recorded_events(),
            obs.dropped_events(),
            vt.page_read_us,
            vt.think_us,
            vt.lock_wait_us,
            vt.wal_flush_us
        );
    }
}
