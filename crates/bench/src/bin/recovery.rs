//! WAL throughput and crash-recovery micro-benchmark.
//!
//! Two tables:
//!
//! * **log throughput** — committers hammering disjoint subtrees, swept
//!   over the group-commit window and the committer count, for both the
//!   in-memory and the file-backed (segmented) log. Reports commits/s,
//!   log records/s, and the average records per forced flush — the
//!   group-commit batching factor the window buys.
//! * **recovery time vs log length** — a single writer commits N
//!   transactions, the engine crashes, and the wall-clock cost of the
//!   ARIES-lite replay (analysis + redo + undo) is measured against the
//!   durable log size.
//!
//! ```text
//! recovery [--windows-us 0,100,1000] [--threads 1,4,16]
//!          [--commits N] [--txns 500,2000,8000] [--json PATH]
//! ```
//!
//! `--json` writes one machine-readable report (committed under
//! `results/recovery.json` to track the trajectory).

use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_core::wal::{WalConfig, WalStorage};
use xtc_core::{recover_from, RetryPolicy, XtcConfig, XtcDb};

struct ThroughputCell {
    backend: &'static str,
    window_us: u64,
    threads: usize,
    commits: u64,
    commits_per_s: f64,
    records_per_s: f64,
    avg_batch: f64,
    flushes: u64,
}

struct RecoveryCell {
    committed: u64,
    log_records: usize,
    log_bytes: u64,
    recover_ms: f64,
    redo_applied: usize,
}

const DOC: &str = r#"<bib><shelf id="s0"/></bib>"#;

fn wal_db(storage: WalStorage, window_us: u64) -> Arc<XtcDb> {
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        wal: Some(WalConfig {
            storage,
            group_commit_window: Duration::from_micros(window_us),
        }),
        ..XtcConfig::default()
    }));
    db.load_xml(DOC).unwrap();
    db
}

/// One container element per committer thread: writers on disjoint
/// subtrees only share compatible intention locks, so their commits can
/// actually overlap inside one flush window.
fn make_containers(db: &XtcDb, threads: usize) {
    for w in 0..threads {
        let t = db.begin();
        let shelf = t.element_by_id("s0").unwrap().unwrap();
        let c = t
            .insert_element(&shelf, xtc_core::InsertPos::LastChild, "container")
            .unwrap();
        t.set_attribute(&c, "id", &format!("c{w}")).unwrap();
        t.commit().unwrap();
    }
}

fn throughput_cell(
    backend: &'static str,
    storage: WalStorage,
    window_us: u64,
    threads: usize,
    total_commits: u64,
) -> ThroughputCell {
    let db = wal_db(storage, window_us);
    make_containers(&db, threads);
    let base = db.wal().unwrap().stats();
    let per_thread = total_commits / threads as u64;

    let started = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                let policy = RetryPolicy::default();
                for i in 0..per_thread {
                    let (res, _) = db.run_retrying(&policy, |t| {
                        let c = t.element_by_id(&format!("c{w}"))?.unwrap();
                        t.insert_element(&c, xtc_core::InsertPos::LastChild, &format!("n{i}"))
                            .map(|_| ())
                    });
                    res.unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();

    let stats = db.wal().unwrap().stats();
    let commits = per_thread * threads as u64;
    let records = stats.synced_records - base.synced_records;
    let flushes = stats.flushes - base.flushes;
    ThroughputCell {
        backend,
        window_us,
        threads,
        commits,
        commits_per_s: commits as f64 / elapsed,
        records_per_s: records as f64 / elapsed,
        avg_batch: records as f64 / flushes.max(1) as f64,
        flushes,
    }
}

fn recovery_cell(committed: u64) -> RecoveryCell {
    let db = wal_db(WalStorage::Memory, 0);
    make_containers(&db, 1);
    for i in 0..committed {
        let t = db.begin();
        let c = t.element_by_id("c0").unwrap().unwrap();
        t.insert_element(&c, xtc_core::InsertPos::LastChild, &format!("n{i}"))
            .unwrap();
        t.commit().unwrap();
    }
    let wal = db.wal().unwrap().clone();
    wal.crash();
    drop(db);

    let stats = wal.stats();
    let started = Instant::now();
    let (rec, report) = recover_from(&wal, XtcConfig::default()).unwrap();
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        rec.store().elements_named("n0").len() + rec.store().elements_named("container").len(),
        2,
        "recovery lost committed work"
    );
    RecoveryCell {
        committed,
        log_records: report.scanned,
        log_bytes: stats.synced_bytes,
        recover_ms,
        redo_applied: report.redo_applied,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

fn main() {
    let mut windows_us: Vec<u64> = vec![0, 100, 1000];
    let mut threads: Vec<usize> = vec![1, 4, 16];
    let mut total_commits: u64 = 192;
    let mut txns: Vec<u64> = vec![500, 2000, 8000];
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--windows-us" => {
                windows_us = val("list")
                    .split(',')
                    .map(|d| d.parse().unwrap_or_else(|_| die("bad window")))
                    .collect();
            }
            "--threads" => {
                threads = val("list")
                    .split(',')
                    .map(|d| d.parse().unwrap_or_else(|_| die("bad thread count")))
                    .collect();
            }
            "--commits" => {
                total_commits = val("number").parse().unwrap_or_else(|_| die("bad number"));
            }
            "--txns" => {
                txns = val("list")
                    .split(',')
                    .map(|d| d.parse().unwrap_or_else(|_| die("bad txn count")))
                    .collect();
            }
            "--json" => json_path = Some(val("path")),
            "--help" | "-h" => {
                eprintln!(
                    "options: --windows-us a,b,c --threads a,b,c --commits N \
                     --txns a,b,c --json PATH"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }

    let file_dir = std::env::temp_dir().join(format!("xtc-recovery-bench-{}", std::process::id()));
    let mut cells = Vec::new();
    for &window_us in &windows_us {
        for &t in &threads {
            cells.push(throughput_cell(
                "memory",
                WalStorage::Memory,
                window_us,
                t,
                total_commits,
            ));
            let dir = file_dir.join(format!("w{window_us}t{t}"));
            cells.push(throughput_cell(
                "file",
                WalStorage::Directory {
                    path: dir,
                    segment_bytes: 1 << 20,
                },
                window_us,
                t,
                total_commits,
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&file_dir);

    println!("\n== WAL log throughput (group-commit sweep, taDOM3+, disjoint writers) ==");
    println!(
        "{:>8} {:>10} {:>8} {:>9} {:>11} {:>11} {:>9} {:>8}",
        "backend", "window µs", "threads", "commits", "commits/s", "records/s", "avg batch", "flushes"
    );
    for c in &cells {
        println!(
            "{:>8} {:>10} {:>8} {:>9} {:>11.0} {:>11.0} {:>9.2} {:>8}",
            c.backend, c.window_us, c.threads, c.commits, c.commits_per_s, c.records_per_s,
            c.avg_batch, c.flushes
        );
    }

    let curve: Vec<RecoveryCell> = txns.iter().map(|&n| recovery_cell(n)).collect();
    println!("\n== recovery time vs log length (memory backend, single writer) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "committed", "log records", "log bytes", "redo ops", "recover ms"
    );
    for c in &curve {
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12.2}",
            c.committed, c.log_records, c.log_bytes, c.redo_applied, c.recover_ms
        );
    }

    if let Some(path) = &json_path {
        let throughput = cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"backend\": \"{}\", \"window_us\": {}, \"threads\": {}, \
                     \"commits\": {}, \"commits_per_s\": {:.1}, \"records_per_s\": {:.1}, \
                     \"avg_batch\": {:.3}, \"flushes\": {}}}",
                    c.backend, c.window_us, c.threads, c.commits, c.commits_per_s,
                    c.records_per_s, c.avg_batch, c.flushes
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let recovery = curve
            .iter()
            .map(|c| {
                format!(
                    "    {{\"committed\": {}, \"log_records\": {}, \"log_bytes\": {}, \
                     \"redo_applied\": {}, \"recover_ms\": {:.3}}}",
                    c.committed, c.log_records, c.log_bytes, c.redo_applied, c.recover_ms
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let body = format!(
            "{{\n  \"benchmark\": \"recovery\",\n  \"throughput\": [\n{throughput}\n  ],\n  \"recovery\": [\n{recovery}\n  ]\n}}\n"
        );
        std::fs::write(path, body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("\nwrote {path}");
    }
}
