//! Replication benchmark: the read-scaling story and the failover drill.
//!
//! **Read scaling** runs one primary under a sustained write storm while
//! a fleet of CLUSTER2-style long readers issues `TAqueryBook`
//! transactions, sweeping the replica count over `--fleets` (default
//! 0,1,2,4). The document is deliberately small (`--hot-books`) and the
//! writers *pace* — they hold exclusive book locks across their think
//! time, the paper's CLUSTER mechanism — so on a replica-less deployment
//! every reader spends most of its life blocked behind a sleeping
//! writer. With replicas the readers spread round-robin over
//! committed-snapshot engines and never wait on a writer at all: the
//! throughput gain is contention removed, not cores added (the gate
//! holds on a single-core host). A shipper thread pumps the WAL
//! continuously and records the worst deterministic lag it ever
//! published.
//!
//! **Promotion drill** commits an acknowledged-marker ledger against a
//! replicated document, crashes the primary mid-storm, promotes, and
//! verifies that every acknowledged commit survived and the resumed
//! workload progresses on the new primary.
//!
//! ```text
//! repl [--fleets 0,1,2,4] [--readers N] [--writers N] [--reads N]
//!      [--ops N] [--hot-books N] [--apply-cost-us N] [--write-pause-us N]
//!      [--lag-bound-us N] [--protocol NAME] [--seed N] [--json PATH]
//!      [--bench-json PATH] [--check]
//! ```
//!
//! `--check` gates: read throughput with the largest fleet must beat the
//! replica-less baseline, every sweep cell must keep its worst observed
//! lag under `--lag-bound-us` and drain to zero, and the drill must lose
//! no acknowledged commit while the promoted primary keeps committing.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use xtc_core::{Catalog, CatalogConfig, DocSpec, InsertPos, RetryPolicy, XtcConfig, XtcDb};
use xtc_repl::{ReplConfig, ReplGroup};
use xtc_tamix::txns::{run_txn_body, Pacing, TxnKind};
use xtc_tamix::{build_bib_catalog, chaos::document_digest, doc_name, BibConfig};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base: Duration::from_micros(200),
        ..RetryPolicy::default()
    }
}

/// One cell of the read-scaling sweep.
struct ScaleCell {
    replicas: usize,
    reads: usize,
    read_failed: usize,
    wall_s: f64,
    reads_per_sec: f64,
    read_vt: [u64; 2], // p50, p95
    read_attempts: u64,
    writer_commits: usize,
    max_lag_us: u64,
    final_lag_us: u64,
}

/// Runs one primary × `replicas` cell: a write storm on the primary, a
/// continuous shipper, and `readers` threads doing `reads` long reader
/// transactions each, round-robin over the replica fleet (the primary
/// when there is none).
#[allow(clippy::too_many_arguments)]
fn run_scale_cell(
    replicas: usize,
    readers: usize,
    writers: usize,
    reads: usize,
    ops_per_read: usize,
    apply_cost_us: u64,
    write_pause_us: u64,
    protocol: &str,
    seed: u64,
    bib: &BibConfig,
) -> ScaleCell {
    let template = XtcConfig {
        protocol: protocol.to_string(),
        lock_timeout: Duration::from_secs(10),
        wal: Some(xtc_core::wal::WalConfig::default()),
        ..XtcConfig::default()
    };
    let catalog = Arc::new(
        build_bib_catalog(
            CatalogConfig {
                defaults: template.clone(),
                ..CatalogConfig::default()
            },
            1,
            bib,
        )
        .unwrap_or_else(|e| die(&format!("building catalog: {e}"))),
    );
    let doc = doc_name(0);
    let group = Arc::new(
        ReplGroup::new(
            catalog.clone(),
            doc.clone(),
            template,
            // Bounded ship batches so a catching-up replica publishes
            // its intermediate lag instead of draining invisibly.
            ReplConfig {
                apply_cost_us,
                ship_batch: 64,
            },
        )
        .unwrap_or_else(|e| die(&format!("building group: {e}"))),
    );
    for _ in 0..replicas {
        group.add_replica().unwrap_or_else(|e| die(&format!("add replica: {e}")));
    }
    group.catch_up().unwrap_or_else(|e| die(&format!("bootstrap catch-up: {e}")));
    let primary = group.primary().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let max_lag = Arc::new(AtomicU64::new(0));
    let writer_commits = Arc::new(AtomicUsize::new(0));

    // The shipper: pump continuously, tracking the worst published lag.
    let shipper = {
        let group = group.clone();
        let stop = stop.clone();
        let max_lag = max_lag.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                group.pump().unwrap_or_else(|e| die(&format!("pump: {e}")));
                for r in group.replicas() {
                    max_lag.fetch_max(r.lag_us(), Ordering::Relaxed);
                }
                // A shipping interval, not a spin: lag stays bounded
                // without the shipper competing with readers for a core.
                std::thread::sleep(Duration::from_micros(1000));
            }
        })
    };

    // The write storm: every writer type until the readers finish their
    // quota. The pacing is the load-bearing knob: each writer *holds its
    // exclusive locks across the think time* (the paper's CLUSTER
    // mechanism), so on a replica-less deployment the readers stall
    // behind it — exactly the contention replicas exist to remove.
    let writer_handles: Vec<_> = (0..writers)
        .map(|w| {
            let primary = primary.clone();
            let stop = stop.clone();
            let commits = writer_commits.clone();
            let bib = bib.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ 0xB0 ^ (w as u64) << 17);
                let retry = retry_policy();
                let pacing = Pacing {
                    wait_after_operation: Duration::from_micros(write_pause_us),
                    ..Pacing::default()
                };
                // No DelBook: the hot set is tiny by design, and the
                // storm must not eat the population out from under the
                // readers.
                let writer_kinds = [
                    TxnKind::LendAndReturn,
                    TxnKind::Chapter,
                    TxnKind::RenameTopic,
                    TxnKind::LendAndReturn,
                ];
                while !stop.load(Ordering::Acquire) {
                    let kind = writer_kinds[rng.random_range(0..writer_kinds.len())];
                    let (result, _) = primary
                        .run_retrying(&retry, |txn| run_txn_body(txn, kind, &bib, &mut rng, pacing));
                    if result.is_ok() {
                        commits.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // The readers: long transactions (several QueryBook bodies each),
    // spread round-robin over the replica fleet.
    let fleet = group.replicas();
    let started = Instant::now();
    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let primary = primary.clone();
            let fleet = fleet.clone();
            let bib = bib.clone();
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EAD ^ (r as u64) << 23);
                let retry = retry_policy();
                let pacing = Pacing {
                    wait_after_operation: Duration::ZERO,
                    ..Pacing::default()
                };
                let replica = (!fleet.is_empty()).then(|| fleet[r % fleet.len()].clone());
                let mut vt = Vec::with_capacity(reads);
                let mut attempts = 0u64;
                let mut failed = 0usize;
                for _ in 0..reads {
                    let db: &XtcDb = replica.as_ref().map_or(&primary, |rep| rep.db());
                    // Replica reads hold the apply latch, exactly like a
                    // routed server session.
                    let latch = replica.as_ref().map(|rep| rep.shared().read_latch());
                    let (result, stats) = db.run_retrying(&retry, |txn| {
                        for _ in 0..ops_per_read {
                            run_txn_body(txn, TxnKind::QueryBook, &bib, &mut rng, pacing)?;
                        }
                        Ok(())
                    });
                    drop(latch);
                    attempts += stats.attempts as u64;
                    match result {
                        Ok(()) => vt.push(stats.vt_elapsed_us),
                        Err(_) => failed += 1,
                    }
                }
                (vt, attempts, failed)
            })
        })
        .collect();

    let mut vt: Vec<u64> = Vec::new();
    let mut read_attempts = 0u64;
    let mut read_failed = 0usize;
    for h in reader_handles {
        let (v, a, f) = h.join().unwrap_or_else(|_| die("reader panicked"));
        vt.extend(v);
        read_attempts += a;
        read_failed += f;
    }
    let wall = started.elapsed();
    stop.store(true, Ordering::Release);
    for h in writer_handles {
        h.join().unwrap_or_else(|_| die("writer panicked"));
    }
    shipper.join().unwrap_or_else(|_| die("shipper panicked"));
    group.catch_up().unwrap_or_else(|e| die(&format!("final catch-up: {e}")));
    let final_lag_us = group.replicas().iter().map(|r| r.lag_us()).max().unwrap_or(0);

    vt.sort_unstable();
    ScaleCell {
        replicas,
        reads: vt.len(),
        read_failed,
        wall_s: wall.as_secs_f64(),
        reads_per_sec: vt.len() as f64 / wall.as_secs_f64().max(1e-9),
        read_vt: [percentile(&vt, 50.0), percentile(&vt, 95.0)],
        read_attempts,
        writer_commits: writer_commits.load(Ordering::Relaxed),
        max_lag_us: max_lag.load(Ordering::Relaxed),
        final_lag_us,
    }
}

/// Outcome of the promotion drill.
struct DrillReport {
    acknowledged: usize,
    lost: usize,
    fenced_lsn: u64,
    recovery_winners: usize,
    recovery_losers: usize,
    replicas_rebuilt: usize,
    post_promotion_commits: usize,
    replica_digest_match: bool,
}

/// Commits an acknowledged-marker ledger until the primary is crashed
/// under it, then promotes and audits the survivors.
fn run_promotion_drill(protocol: &str, crash_after: usize, resume_commits: usize) -> DrillReport {
    let template = XtcConfig {
        protocol: protocol.to_string(),
        lock_timeout: Duration::from_secs(10),
        wal: Some(xtc_core::wal::WalConfig::default()),
        ..XtcConfig::default()
    };
    let catalog = Arc::new(Catalog::new(CatalogConfig {
        defaults: template.clone(),
        ..CatalogConfig::default()
    }));
    catalog
        .create_doc(DocSpec::named("drill").with_xml("<doc><seed>s</seed></doc>"))
        .unwrap_or_else(|e| die(&format!("creating drill doc: {e}")));
    let group = Arc::new(
        ReplGroup::new(catalog.clone(), "drill", template, ReplConfig::default())
            .unwrap_or_else(|e| die(&format!("building drill group: {e}"))),
    );
    group.add_replica().unwrap();
    group.add_replica().unwrap();
    group.catch_up().unwrap();
    let primary = group.primary().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let acks = Arc::new(AtomicUsize::new(0));

    // Shipper keeps the replicas applying right up to the crash.
    let shipper = {
        let group = group.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                group.pump().unwrap_or_else(|e| die(&format!("drill pump: {e}")));
                std::thread::yield_now();
            }
        })
    };

    // The ledger writer: marker `w{i}` is *acknowledged* exactly when its
    // commit returns Ok. The loop ends at the first post-crash error.
    let writer = {
        let primary = primary.clone();
        let acks = acks.clone();
        std::thread::spawn(move || {
            for i in 0.. {
                let txn = primary.begin();
                let committed = txn
                    .root()
                    .and_then(|root| {
                        let root = root.expect("drill doc lost its root");
                        txn.insert_element(&root, InsertPos::LastChild, &format!("w{i}"))
                            .map(|_| ())
                    })
                    .is_ok()
                    && txn.commit().is_ok();
                if !committed {
                    return; // the crash landed; nothing after is acknowledged
                }
                acks.fetch_add(1, Ordering::Release);
            }
        })
    };

    // Crash the primary mid-storm, once enough commits are acknowledged.
    while acks.load(Ordering::Acquire) < crash_after {
        std::thread::yield_now();
    }
    primary.wal().unwrap().crash();
    writer.join().unwrap_or_else(|_| die("drill writer panicked"));
    stop.store(true, Ordering::Release);
    shipper.join().unwrap_or_else(|_| die("drill shipper panicked"));
    let acknowledged = acks.load(Ordering::Acquire);

    let report = group
        .promote()
        .unwrap_or_else(|e| die(&format!("promotion: {e}")));
    let new_primary = group.primary().unwrap();

    // Audit: every acknowledged marker must exist on the new primary.
    let mut lost = 0usize;
    {
        let txn = new_primary.begin();
        for i in 0..acknowledged {
            if txn
                .elements_named(&format!("w{i}"))
                .unwrap_or_else(|e| die(&format!("audit read: {e}")))
                .is_empty()
            {
                lost += 1;
            }
        }
        txn.commit().unwrap_or_else(|e| die(&format!("audit commit: {e}")));
    }

    // The resumed workload: the new epoch keeps committing and shipping.
    let mut post_promotion_commits = 0usize;
    for i in 0..resume_commits {
        let txn = new_primary.begin();
        let root = txn.root().unwrap().unwrap();
        txn.insert_element(&root, InsertPos::LastChild, &format!("r{i}"))
            .unwrap_or_else(|e| die(&format!("resume insert: {e}")));
        if txn.commit().is_ok() {
            post_promotion_commits += 1;
        }
    }
    group.catch_up().unwrap_or_else(|e| die(&format!("resume catch-up: {e}")));
    let replica_digest_match = group
        .replicas()
        .iter()
        .all(|r| document_digest(r.db()) == document_digest(&new_primary));

    DrillReport {
        acknowledged,
        lost,
        fenced_lsn: report.fenced_lsn,
        recovery_winners: report.recovery.winners.len(),
        recovery_losers: report.recovery.losers.len(),
        replicas_rebuilt: report.replicas_rebuilt,
        post_promotion_commits,
        replica_digest_match,
    }
}

fn main() {
    let mut fleets: Vec<usize> = vec![0, 1, 2, 4];
    let mut readers: usize = 4;
    let mut writers: usize = 2;
    let mut reads: usize = 60;
    let mut ops_per_read: usize = 6;
    let mut hot_books: usize = 4;
    let mut apply_cost_us: u64 = 2;
    let mut write_pause_us: u64 = 2000;
    let mut lag_bound_us: u64 = 100_000;
    let mut protocol = "taDOM3+".to_string();
    let mut seed: u64 = 0x9E91;
    let mut json_path = "results/repl.json".to_string();
    let mut bench_json_path = "BENCH_repl.json".to_string();
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--fleets" => {
                fleets = val("list")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| die("bad fleet list")))
                    .collect()
            }
            "--readers" => readers = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--writers" => writers = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--reads" => reads = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--ops" => ops_per_read = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--hot-books" => {
                hot_books = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--apply-cost-us" => {
                apply_cost_us = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--write-pause-us" => {
                write_pause_us = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--lag-bound-us" => {
                lag_bound_us = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--protocol" => protocol = val("name"),
            "--seed" => seed = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--json" => json_path = val("path"),
            "--bench-json" => bench_json_path = val("path"),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: --fleets L --readers N --writers N --reads N --ops N \
                     --hot-books N --apply-cost-us N --write-pause-us N \
                     --lag-bound-us N --protocol NAME --seed N --json PATH \
                     --bench-json PATH --check"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }
    if fleets.is_empty() || readers == 0 || writers == 0 || reads == 0 || ops_per_read == 0 {
        die("--fleets, --readers, --writers, --reads, --ops must all be positive");
    }

    // A deliberately tiny hot set: every reader keeps landing on a book
    // some paced writer is holding, which is the contention the sweep
    // exists to remove.
    let bib = BibConfig {
        books: hot_books,
        ..BibConfig::tiny()
    };
    eprintln!(
        "repl: fleets {fleets:?}, {readers} readers × {reads} long reads \
         (× {ops_per_read} queries over {hot_books} books), {writers}-writer \
         storm pausing {write_pause_us}us, {protocol}"
    );

    let cells: Vec<ScaleCell> = fleets
        .iter()
        .map(|&replicas| {
            let cell = run_scale_cell(
                replicas,
                readers,
                writers,
                reads,
                ops_per_read,
                apply_cost_us,
                write_pause_us,
                &protocol,
                seed,
                &bib,
            );
            eprintln!(
                "  {replicas} replicas: {:.0} reads/s (vt p95 {}us), \
                 {} writer commits, max lag {}us",
                cell.reads_per_sec, cell.read_vt[1], cell.writer_commits, cell.max_lag_us
            );
            cell
        })
        .collect();

    eprintln!("repl: promotion drill");
    let drill = run_promotion_drill(&protocol, 25, 25);

    println!("\n== repl: read scaling under a {writers}-writer storm ({protocol}) ==");
    println!(
        "{:>9} {:>7} {:>7} {:>10} {:>10} {:>10} {:>9} {:>11} {:>11}",
        "replicas", "reads", "failed", "reads/s", "vt p50", "vt p95", "attempts", "max lag us", "final lag"
    );
    for c in &cells {
        println!(
            "{:>9} {:>7} {:>7} {:>10.1} {:>10} {:>10} {:>9} {:>11} {:>11}",
            c.replicas,
            c.reads,
            c.read_failed,
            c.reads_per_sec,
            c.read_vt[0],
            c.read_vt[1],
            c.read_attempts,
            c.max_lag_us,
            c.final_lag_us,
        );
    }
    println!(
        "promotion drill: {} acknowledged, {} lost, fenced lsn {}, \
         recovery {}W/{}L, {} replicas rebuilt, {} resumed commits, digests match: {}",
        drill.acknowledged,
        drill.lost,
        drill.fenced_lsn,
        drill.recovery_winners,
        drill.recovery_losers,
        drill.replicas_rebuilt,
        drill.post_promotion_commits,
        drill.replica_digest_match,
    );

    let cells_json = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"replicas\": {}, \"reads\": {}, \"read_failed\": {}, \
                 \"wall_s\": {:.3}, \"reads_per_sec\": {:.1}, \"read_vt_p50_us\": {}, \
                 \"read_vt_p95_us\": {}, \"read_attempts\": {}, \"writer_commits\": {}, \
                 \"max_lag_us\": {}, \"final_lag_us\": {}}}",
                c.replicas,
                c.reads,
                c.read_failed,
                c.wall_s,
                c.reads_per_sec,
                c.read_vt[0],
                c.read_vt[1],
                c.read_attempts,
                c.writer_commits,
                c.max_lag_us,
                c.final_lag_us,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let body = format!(
        "{{\n  \"benchmark\": \"repl\",\n  \"summary\": {{\"protocol\": \"{protocol}\", \
         \"readers\": {readers}, \"writers\": {writers}, \"reads_per_reader\": {reads}, \
         \"ops_per_read\": {ops_per_read}, \"apply_cost_us\": {apply_cost_us}, \
         \"write_pause_us\": {write_pause_us}, \"lag_bound_us\": {lag_bound_us}, \
         \"seed\": {seed}}},\n  \
         \"read_scaling\": [\n{cells_json}\n  ],\n  \
         \"promotion\": {{\"acknowledged\": {}, \"lost\": {}, \"fenced_lsn\": {}, \
         \"recovery_winners\": {}, \"recovery_losers\": {}, \"replicas_rebuilt\": {}, \
         \"post_promotion_commits\": {}, \"replica_digest_match\": {}}}\n}}\n",
        drill.acknowledged,
        drill.lost,
        drill.fenced_lsn,
        drill.recovery_winners,
        drill.recovery_losers,
        drill.replicas_rebuilt,
        drill.post_promotion_commits,
        drill.replica_digest_match,
    );
    for path in [&json_path, &bench_json_path] {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(path, &body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote {path}");
    }

    if check {
        let mut bad = Vec::new();
        let baseline = &cells[0];
        let largest = cells.iter().max_by_key(|c| c.replicas).unwrap();
        if baseline.replicas != 0 {
            bad.push("the sweep must include the replica-less baseline".to_string());
        } else if largest.replicas > 0 && largest.reads_per_sec <= baseline.reads_per_sec {
            bad.push(format!(
                "no read scaling: {} replicas served {:.1} reads/s vs {:.1} with none",
                largest.replicas, largest.reads_per_sec, baseline.reads_per_sec
            ));
        }
        for c in &cells {
            if c.max_lag_us > lag_bound_us {
                bad.push(format!(
                    "{} replicas: worst lag {}us exceeds the {}us bound",
                    c.replicas, c.max_lag_us, lag_bound_us
                ));
            }
            if c.final_lag_us != 0 {
                bad.push(format!(
                    "{} replicas: {}us lag left after the final catch-up",
                    c.replicas, c.final_lag_us
                ));
            }
            // Replica reads never contend with the storm, so they must
            // all succeed; the replica-less baseline is allowed to shed
            // reads under contention (that is its point).
            if c.replicas > 0 && c.read_failed > 0 {
                bad.push(format!(
                    "{} replicas: {} reader transactions exhausted retries",
                    c.replicas, c.read_failed
                ));
            }
        }
        if drill.lost > 0 {
            bad.push(format!(
                "promotion lost {} of {} acknowledged commits",
                drill.lost, drill.acknowledged
            ));
        }
        if drill.post_promotion_commits == 0 {
            bad.push("the resumed workload made no progress after promotion".to_string());
        }
        if !drill.replica_digest_match {
            bad.push("rebuilt replicas diverged from the promoted primary".to_string());
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("repl check failed: {b}");
            }
            std::process::exit(1);
        }
        println!("repl check passed");
    }
}
