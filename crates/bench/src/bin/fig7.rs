//! Figure 7 — CLUSTER1 under taDOM3+: influence of the isolation level.
//!
//! Left panel: transaction throughput vs lock depth 0–7 for isolation
//! levels none / uncommitted / committed / repeatable. Right panel:
//! deadlocks. The expected shape (paper §5.1): low throughput at depth 0
//! (document locks) and 1, a steep rise once conversion deadlocks drop
//! from depth 2, saturation afterwards; weaker isolation levels above
//! stronger ones.

use xtc_bench::{avg_committed, avg_deadlocks, print_table, CommonArgs};
use xtc_core::IsolationLevel;
use xtc_tamix::run_cluster1;

fn main() {
    let args = CommonArgs::parse();
    let xs: Vec<String> = args.depths.iter().map(|d| d.to_string()).collect();
    let mut throughput: Vec<(String, Vec<f64>)> = Vec::new();
    let mut deadlocks: Vec<(String, Vec<f64>)> = Vec::new();

    for iso in IsolationLevel::ALL {
        let mut th = Vec::new();
        let mut dl = Vec::new();
        for &depth in &args.depths {
            let reports: Vec<_> = (0..args.runs)
                .map(|run| {
                    let mut p = args.cluster1("taDOM3+", iso, depth);
                    p.seed = args.seed + run as u64;
                    run_cluster1(&p, &args.bib)
                })
                .collect();
            th.push(avg_committed(&reports));
            dl.push(avg_deadlocks(&reports));
            let hit_rate =
                reports.iter().map(|r| r.cache_hit_rate()).sum::<f64>() / reports.len() as f64;
            let timeouts: u64 = reports.iter().map(|r| r.timeout_aborts()).sum();
            eprintln!(
                "fig7: taDOM3+ iso={} depth={depth}: committed={:.0} deadlocks={:.0} \
                 timeouts={timeouts} cache-hit={:.1}%{}",
                iso.name(),
                th.last().unwrap(),
                dl.last().unwrap(),
                hit_rate * 100.0,
                match reports.first().and_then(|r| r.txn_deadline_us) {
                    Some(us) => format!(" deadline={us}µs"),
                    None => String::new(),
                }
            );
        }
        throughput.push((iso.name().to_uppercase(), th));
        deadlocks.push((iso.name().to_uppercase(), dl));
    }

    print_table(
        "Figure 7 (left): CLUSTER1 under taDOM3+ — transaction throughput (committed txns/run)",
        "lock depth",
        &xs,
        &throughput,
    );
    print_table(
        "Figure 7 (right): CLUSTER1 under taDOM3+ — deadlocks",
        "lock depth",
        &xs,
        &deadlocks,
    );
}
