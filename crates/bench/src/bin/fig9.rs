//! Figure 9 — synopsis of all depth-capable protocols on CLUSTER1 at
//! isolation level repeatable: throughput (left) and deadlocks (right)
//! vs lock depth 0–7.
//!
//! Expected shape (§5.2): "clear gaps separating the various protocol
//! groups (*-2PL, MGL*, taDOM*) … as compared to the *-2PL group, we
//! obtain in the average ~50% and ~100% throughput gain for the MGL*
//! group and taDOM* group" with fewer deadlocks, particularly at lower
//! depths.

use xtc_bench::{avg_committed, avg_deadlocks, print_table, CommonArgs};
use xtc_core::IsolationLevel;
use xtc_tamix::run_cluster1;

fn main() {
    let args = CommonArgs::parse();
    // Node2PLa represents the *-2PL group (§2.2); the MGL* and taDOM*
    // groups appear in full, followed by the versioned contestants
    // (snapshot reads; depth applies to their taDOM3+ write side).
    let protocols = [
        "Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+", "taDOM3", "taDOM3+", "taMVCC",
        "taOCC",
    ];
    let xs: Vec<String> = args.depths.iter().map(|d| d.to_string()).collect();
    let mut throughput: Vec<(String, Vec<f64>)> = Vec::new();
    let mut deadlocks: Vec<(String, Vec<f64>)> = Vec::new();

    for proto in protocols {
        let mut th = Vec::new();
        let mut dl = Vec::new();
        for &depth in &args.depths {
            let reports: Vec<_> = (0..args.runs)
                .map(|run| {
                    let mut p = args.cluster1(proto, IsolationLevel::Repeatable, depth);
                    p.seed = args.seed + run as u64;
                    run_cluster1(&p, &args.bib)
                })
                .collect();
            th.push(avg_committed(&reports));
            dl.push(avg_deadlocks(&reports));
            let hit_rate =
                reports.iter().map(|r| r.cache_hit_rate()).sum::<f64>() / reports.len() as f64;
            let timeouts: u64 = reports.iter().map(|r| r.timeout_aborts()).sum();
            eprintln!(
                "fig9: {proto} depth={depth}: committed={:.0} deadlocks={:.0} \
                 timeouts={timeouts} cache-hit={:.1}%{}",
                th.last().unwrap(),
                dl.last().unwrap(),
                hit_rate * 100.0,
                match reports.first().and_then(|r| r.txn_deadline_us) {
                    Some(us) => format!(" deadline={us}µs"),
                    None => String::new(),
                }
            );
        }
        throughput.push((proto.to_string(), th));
        deadlocks.push((proto.to_string(), dl));
    }

    print_table(
        "Figure 9 (left): all protocols on CLUSTER1 — transaction throughput (committed txns/run)",
        "lock depth",
        &xs,
        &throughput,
    );
    print_table(
        "Figure 9 (right): all protocols on CLUSTER1 — deadlocks",
        "lock depth",
        &xs,
        &deadlocks,
    );
}
