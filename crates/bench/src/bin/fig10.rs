//! Figure 10 — CLUSTER1 transaction throughput separated by transaction
//! type: (a) TAqueryBook, (b) TAchapter, (c) TAlendAndReturn,
//! (d) TArenameTopic, vs lock depth 0–7 at isolation level repeatable.
//!
//! Expected shapes (§5.2): readers dominate throughput at depths 0–1
//! without aborting; Node2PLa "begins to react a level deeper" (parent
//! locking) and "fails almost completely with TArenameTopic"; the MGL*
//! group holds the middle but cannot separate name from content on
//! renames; taDOM2/taDOM3 (and IRIX/URIX) degrade beyond depth 4 on
//! (b)/(c) where the conversion-optimized + variants do not.

use xtc_bench::{print_table, CommonArgs};
use xtc_core::IsolationLevel;
use xtc_tamix::{run_cluster1, RunReport, TxnKind};

fn main() {
    let args = CommonArgs::parse();
    // The versioned contestants close the field: their readers take no
    // locks, their writers map through taDOM3+.
    let protocols = [
        "Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+", "taDOM3", "taDOM3+", "taMVCC",
        "taOCC",
    ];
    let xs: Vec<String> = args.depths.iter().map(|d| d.to_string()).collect();

    // One sweep produces all four panels.
    let mut per_proto: Vec<(String, Vec<RunReport>)> = Vec::new();
    for proto in protocols {
        let mut reports = Vec::new();
        for &depth in &args.depths {
            let runs: Vec<_> = (0..args.runs)
                .map(|run| {
                    let mut p = args.cluster1(proto, IsolationLevel::Repeatable, depth);
                    p.seed = args.seed + run as u64;
                    run_cluster1(&p, &args.bib)
                })
                .collect();
            eprintln!(
                "fig10: {proto} depth={depth}: committed={:.0}",
                runs.iter().map(|r| r.committed() as f64).sum::<f64>() / runs.len() as f64
            );
            // Keep the first run; per-type averaging happens below.
            reports.extend(runs);
        }
        per_proto.push((proto.to_string(), reports));
    }

    for (panel, kind) in [
        ("a", TxnKind::QueryBook),
        ("b", TxnKind::Chapter),
        ("c", TxnKind::LendAndReturn),
        ("d", TxnKind::RenameTopic),
    ] {
        let series: Vec<(String, Vec<f64>)> = per_proto
            .iter()
            .map(|(name, reports)| {
                let per_depth: Vec<f64> = args
                    .depths
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let chunk =
                            &reports[i * args.runs as usize..(i + 1) * args.runs as usize];
                        chunk.iter().map(|r| r.committed_of(kind) as f64).sum::<f64>()
                            / chunk.len() as f64
                    })
                    .collect();
                (name.clone(), per_depth)
            })
            .collect();
        print_table(
            &format!(
                "Figure 10{panel}: CLUSTER1 throughput of {} (committed txns/run)",
                kind.name()
            ),
            "lock depth",
            &xs,
            &series,
        );
    }
}
