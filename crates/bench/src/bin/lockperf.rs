//! Lock-manager fast-path benchmark: cache on vs. off.
//!
//! Two tables:
//!
//! * **micro** — a single transaction re-reads one deep node in a tight
//!   loop. Every read re-acquires the intention-lock path up to the lock
//!   depth, so with the per-transaction cache enabled almost every
//!   request is a hit; with the cache disabled each pays the shard
//!   round trip. Reports raw lock requests per second per protocol ×
//!   depth × cache arm.
//! * **tamix** — a short CLUSTER1 mix per protocol × depth × cache arm:
//!   committed transactions, throughput, and the cache hit rate under
//!   real contention.
//!
//! ```text
//! lockperf [--duration-ms N] [--depths a,b,c] [--protocols a,b,c]
//!          [--micro-iters N] [--bib tiny|scaled|paper] [--seed N]
//!          [--json PATH] [--bench-json PATH] [--check]
//! ```
//!
//! `--json` (default `results/lockperf.json`) and `--bench-json`
//! (default `BENCH_lockperf.json`) write the machine-readable report;
//! `--check` exits nonzero unless every cache-enabled arm shows a
//! nonzero cache hit rate.

use std::time::{Duration, Instant};
use xtc_core::{IsolationLevel, XtcConfig, XtcDb};
use xtc_tamix::{run_cluster1, BibConfig, TamixParams};

struct MicroCell {
    protocol: String,
    depth: u32,
    cache: bool,
    iters: u64,
    requests: u64,
    cache_hits: u64,
    locks_per_sec: f64,
}

struct TamixCell {
    protocol: String,
    depth: u32,
    cache: bool,
    committed: u64,
    throughput_per_5min: f64,
    lock_requests: u64,
    table_requests: u64,
    cache_hits: u64,
    deadlocks: u64,
}

fn hit_rate(hits: u64, requests: u64) -> f64 {
    if requests == 0 {
        0.0
    } else {
        hits as f64 / requests as f64
    }
}

/// A deep nested document so intention-lock paths are long: the target
/// node sits at level 8, its read at depth d re-locks min(d, 8) + 1
/// names per operation.
const DEEP_DOC: &str = "<l1><l2><l3><l4><l5><l6><l7 id=\"deep\">x</l7></l6></l5></l4></l3></l2></l1>";

fn micro_cell(protocol: &str, depth: u32, cache: bool, iters: u64) -> MicroCell {
    let db = XtcDb::new(XtcConfig {
        protocol: protocol.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: depth,
        lock_cache: cache,
        ..XtcConfig::default()
    });
    db.load_xml(DEEP_DOC).unwrap();
    let txn = db.begin();
    let deep = txn
        .element_by_id("deep")
        .unwrap()
        .expect("deep node exists");
    // Warm up: first read takes every lock through the table.
    txn.node(&deep).unwrap();
    let base_requests = db.lock_table().requests();
    let base_hits = db.lock_table().cache_hits();
    let started = Instant::now();
    for _ in 0..iters {
        txn.node(&deep).unwrap();
    }
    let elapsed = started.elapsed().as_secs_f64();
    txn.commit().unwrap();
    let requests = db.lock_table().requests() - base_requests;
    MicroCell {
        protocol: protocol.to_string(),
        depth,
        cache,
        iters,
        requests,
        cache_hits: db.lock_table().cache_hits() - base_hits,
        locks_per_sec: requests as f64 / elapsed,
    }
}

fn tamix_cell(
    protocol: &str,
    depth: u32,
    cache: bool,
    duration: Duration,
    seed: u64,
    bib: &BibConfig,
) -> TamixCell {
    let mut params = TamixParams::cluster1(protocol, IsolationLevel::Repeatable, depth);
    params.duration = duration;
    params.seed = seed;
    params.lock_cache = cache;
    let report = run_cluster1(&params, bib);
    TamixCell {
        protocol: protocol.to_string(),
        depth,
        cache,
        committed: report.committed(),
        throughput_per_5min: report.throughput_per_5min(),
        lock_requests: report.lock_requests,
        table_requests: report.table_requests,
        cache_hits: report.cache_hits,
        deadlocks: report.deadlocks,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

fn main() {
    let mut duration = Duration::from_millis(1500);
    let mut depths: Vec<u32> = vec![1, 4, 7];
    let mut protocols: Vec<String> = xtc_protocols::ALL_PROTOCOLS
        .iter()
        .map(|p| p.to_string())
        .collect();
    let mut micro_iters: u64 = 3000;
    let mut bib = BibConfig::tiny();
    let mut seed: u64 = 42;
    let mut json_path = "results/lockperf.json".to_string();
    let mut bench_json_path = "BENCH_lockperf.json".to_string();
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--duration-ms" => {
                duration =
                    Duration::from_millis(val("number").parse().unwrap_or_else(|_| die("bad number")))
            }
            "--depths" => {
                depths = val("list")
                    .split(',')
                    .map(|d| d.parse().unwrap_or_else(|_| die("bad depth")))
                    .collect()
            }
            "--protocols" => protocols = val("list").split(',').map(|s| s.to_string()).collect(),
            "--micro-iters" => {
                micro_iters = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--bib" => {
                bib = match val("size").as_str() {
                    "tiny" => BibConfig::tiny(),
                    "scaled" => BibConfig::scaled(),
                    "paper" => BibConfig::paper(),
                    other => die(&format!("unknown bib size {other}")),
                }
            }
            "--seed" => seed = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--json" => json_path = val("path"),
            "--bench-json" => bench_json_path = val("path"),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: --duration-ms N --depths a,b,c --protocols a,b,c \
                     --micro-iters N --bib tiny|scaled|paper --seed N \
                     --json PATH --bench-json PATH --check"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }

    // Depth-insensitive protocols produce identical cells at every depth;
    // run them once at the first depth.
    let cell_depths = |proto: &str| -> Vec<u32> {
        let supports = xtc_protocols::build(proto)
            .unwrap_or_else(|| die(&format!("unknown protocol {proto}")))
            .protocol
            .supports_lock_depth();
        if supports {
            depths.clone()
        } else {
            depths.iter().take(1).copied().collect()
        }
    };

    let mut micro = Vec::new();
    for proto in &protocols {
        for depth in cell_depths(proto) {
            for cache in [false, true] {
                let cell = micro_cell(proto, depth, cache, micro_iters);
                eprintln!(
                    "lockperf micro: {proto} depth={depth} cache={cache}: \
                     {:.0} locks/s hit-rate={:.1}%",
                    cell.locks_per_sec,
                    hit_rate(cell.cache_hits, cell.requests) * 100.0
                );
                micro.push(cell);
            }
        }
    }

    let mut tamix = Vec::new();
    for proto in &protocols {
        for depth in cell_depths(proto) {
            for cache in [false, true] {
                let cell = tamix_cell(proto, depth, cache, duration, seed, &bib);
                eprintln!(
                    "lockperf tamix: {proto} depth={depth} cache={cache}: \
                     committed={} requests={} hit-rate={:.1}%",
                    cell.committed,
                    cell.lock_requests,
                    hit_rate(cell.cache_hits, cell.lock_requests) * 100.0
                );
                tamix.push(cell);
            }
        }
    }

    // Headline: average cached/uncached locks/sec ratio over micro pairs,
    // and the average TaMix hit rate of the cache-enabled arms.
    let mut speedups = Vec::new();
    for on in micro.iter().filter(|c| c.cache) {
        if let Some(off) = micro
            .iter()
            .find(|c| !c.cache && c.protocol == on.protocol && c.depth == on.depth)
        {
            if off.locks_per_sec > 0.0 {
                speedups.push(on.locks_per_sec / off.locks_per_sec);
            }
        }
    }
    let micro_speedup = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let on_cells: Vec<&TamixCell> = tamix.iter().filter(|c| c.cache).collect();
    let tamix_hit_rate = on_cells
        .iter()
        .map(|c| hit_rate(c.cache_hits, c.lock_requests))
        .sum::<f64>()
        / on_cells.len().max(1) as f64;

    println!("\n== lockperf micro: single-txn deep re-read (locks/sec) ==");
    println!(
        "{:>10} {:>6} {:>6} {:>12} {:>12} {:>10}",
        "protocol", "depth", "cache", "locks/s", "requests", "hit rate"
    );
    for c in &micro {
        println!(
            "{:>10} {:>6} {:>6} {:>12.0} {:>12} {:>9.1}%",
            c.protocol,
            c.depth,
            if c.cache { "on" } else { "off" },
            c.locks_per_sec,
            c.requests,
            hit_rate(c.cache_hits, c.requests) * 100.0
        );
    }
    println!("\n== lockperf tamix: CLUSTER1, repeatable ==");
    println!(
        "{:>10} {:>6} {:>6} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "protocol", "depth", "cache", "committed", "tput/5min", "requests", "table reqs", "hit rate"
    );
    for c in &tamix {
        println!(
            "{:>10} {:>6} {:>6} {:>10} {:>10.0} {:>12} {:>12} {:>9.1}%",
            c.protocol,
            c.depth,
            if c.cache { "on" } else { "off" },
            c.committed,
            c.throughput_per_5min,
            c.lock_requests,
            c.table_requests,
            hit_rate(c.cache_hits, c.lock_requests) * 100.0
        );
    }
    println!(
        "\nmicro speedup (cache on / off, avg over {} pairs): {:.2}x",
        speedups.len(),
        micro_speedup
    );
    println!("tamix cache hit rate (cache-on arms, avg): {:.1}%", tamix_hit_rate * 100.0);

    let micro_json = micro
        .iter()
        .map(|c| {
            format!(
                "    {{\"protocol\": \"{}\", \"depth\": {}, \"cache\": {}, \"iters\": {}, \
                 \"requests\": {}, \"cache_hits\": {}, \"locks_per_sec\": {:.1}, \
                 \"hit_rate\": {:.4}}}",
                c.protocol,
                c.depth,
                c.cache,
                c.iters,
                c.requests,
                c.cache_hits,
                c.locks_per_sec,
                hit_rate(c.cache_hits, c.requests)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let tamix_json = tamix
        .iter()
        .map(|c| {
            format!(
                "    {{\"protocol\": \"{}\", \"depth\": {}, \"cache\": {}, \"committed\": {}, \
                 \"throughput_per_5min\": {:.1}, \"lock_requests\": {}, \"table_requests\": {}, \
                 \"cache_hits\": {}, \"hit_rate\": {:.4}, \"deadlocks\": {}}}",
                c.protocol,
                c.depth,
                c.cache,
                c.committed,
                c.throughput_per_5min,
                c.lock_requests,
                c.table_requests,
                c.cache_hits,
                hit_rate(c.cache_hits, c.lock_requests),
                c.deadlocks
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let body = format!(
        "{{\n  \"benchmark\": \"lockperf\",\n  \"summary\": {{\"micro_speedup\": {micro_speedup:.3}, \
         \"tamix_cache_hit_rate\": {tamix_hit_rate:.4}}},\n  \"micro\": [\n{micro_json}\n  ],\n  \
         \"tamix\": [\n{tamix_json}\n  ]\n}}\n"
    );
    for path in [&json_path, &bench_json_path] {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(path, &body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote {path}");
    }

    if check {
        let mut bad = Vec::new();
        for c in micro.iter().filter(|c| c.cache && c.cache_hits == 0) {
            bad.push(format!("micro {} depth={} has zero cache hits", c.protocol, c.depth));
        }
        for c in tamix.iter().filter(|c| c.cache && c.cache_hits == 0) {
            bad.push(format!("tamix {} depth={} has zero cache hits", c.protocol, c.depth));
        }
        for c in tamix.iter().filter(|c| !c.cache && c.cache_hits != 0) {
            bad.push(format!(
                "tamix {} depth={} reports cache hits with the cache off",
                c.protocol, c.depth
            ));
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("lockperf check failed: {b}");
            }
            std::process::exit(1);
        }
        println!("lockperf check passed: nonzero hit rate on every cache-enabled arm");
    }
}
