//! Figure 8 — CLUSTER1 under the *-2PL group (Node2PL, NO2PL, OO2PL):
//! transaction throughput (left) and deadlocks (right), total and
//! separated by transaction type.
//!
//! Expected shape (§5.2): OO2PL > NO2PL > Node2PL in throughput —
//! "Node2PL locks the entire level of the context node for any IUD
//! operation, whereas NO2PL and OO2PL only lock its neighborhood" —
//! while OO2PL also produces the most aborts.

use xtc_bench::{print_table, CommonArgs};
use xtc_core::IsolationLevel;
use xtc_tamix::{run_cluster1, TxnKind};

fn main() {
    let args = CommonArgs::parse();
    let protocols = ["Node2PL", "NO2PL", "OO2PL"];
    let rows: Vec<String> = std::iter::once("CLUSTER1".to_string())
        .chain(
            [
                TxnKind::Chapter,
                TxnKind::LendAndReturn,
                TxnKind::QueryBook,
                TxnKind::RenameTopic,
            ]
            .iter()
            .map(|k| k.name().to_string()),
        )
        .collect();

    let mut committed: Vec<(String, Vec<f64>)> = Vec::new();
    let mut aborted: Vec<(String, Vec<f64>)> = Vec::new();
    for proto in protocols {
        let reports: Vec<_> = (0..args.runs)
            .map(|run| {
                // The plain *-2PL protocols ignore lock depth.
                let mut p = args.cluster1(proto, IsolationLevel::Repeatable, 7);
                p.seed = args.seed + run as u64;
                run_cluster1(&p, &args.bib)
            })
            .collect();
        let n = reports.len() as f64;
        let kinds = [
            TxnKind::Chapter,
            TxnKind::LendAndReturn,
            TxnKind::QueryBook,
            TxnKind::RenameTopic,
        ];
        let mut th = vec![reports.iter().map(|r| r.committed() as f64).sum::<f64>() / n];
        let mut ab = vec![reports.iter().map(|r| r.aborted() as f64).sum::<f64>() / n];
        for k in kinds {
            th.push(reports.iter().map(|r| r.committed_of(k) as f64).sum::<f64>() / n);
            ab.push(
                reports
                    .iter()
                    .map(|r| {
                        r.per_type
                            .get(k.name())
                            .map(|s| s.aborted() as f64)
                            .unwrap_or(0.0)
                    })
                    .sum::<f64>()
                    / n,
            );
        }
        eprintln!("fig8: {proto}: committed={:.0} aborted={:.0}", th[0], ab[0]);
        committed.push((proto.to_string(), th));
        aborted.push((proto.to_string(), ab));
    }

    print_table(
        "Figure 8 (left): *-2PL group on CLUSTER1 — transaction throughput (committed txns/run)",
        "series",
        &rows,
        &committed,
    );
    print_table(
        "Figure 8 (right): *-2PL group on CLUSTER1 — aborted transactions (deadlocks)",
        "series",
        &rows,
        &aborted,
    );
}
