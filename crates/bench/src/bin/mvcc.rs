//! CLUSTER2 long-reader contest — the versioned contestants vs the
//! pessimistic field.
//!
//! One report reader walks the whole bib document navigationally and
//! then stays pinned (transaction open) while chapter-update writers
//! run for a fixed window. Every pessimistic protocol serializes the
//! writers behind the reader's read locks (their update steps time out
//! and retry until the window closes); `taMVCC` and `taOCC` serve the
//! reader from versioned snapshots without any read locks, so writers
//! commit freely while the reader's view stays stable.
//!
//! ```text
//! mvcc [--bib tiny|scaled|paper] [--duration-ms N] [--writers N]
//!      [--protocols a,b,c] [--json PATH] [--check]
//! ```
//!
//! `--json` writes one machine-readable report (committed under
//! `results/BENCH_mvcc.json` to track the trajectory); `--check` is the
//! CI regression gate: taMVCC writer throughput must be at least twice
//! the best pessimistic protocol's, and the reader must be charged zero
//! lock-wait virtual time under both versioned contestants.

use std::time::Duration;
use xtc_protocols::{EXTENDED_PROTOCOLS, MVCC_PROTOCOLS};
use xtc_tamix::{run_long_reader, BibConfig, LongReaderParams, LongReaderReport};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

fn json_cell(r: &LongReaderReport) -> String {
    format!(
        "    {{\"protocol\": \"{}\", \"writer_commits\": {}, \"writer_aborts\": {}, \
         \"reader_reads\": {}, \"reader_lock_wait_us\": {}, \"reader_consistent\": {}, \
         \"elapsed_ms\": {}, \"lock_wait_us_total\": {}}}",
        r.protocol,
        r.writer_commits,
        r.writer_aborts,
        r.reader_reads,
        r.reader_lock_wait_us,
        r.reader_consistent,
        r.elapsed.as_millis(),
        r.vt.lock_wait_us,
    )
}

fn main() {
    let mut bib_cfg = BibConfig::tiny();
    let mut bib_name = "tiny".to_string();
    let mut duration = Duration::from_millis(400);
    let mut writers = 2usize;
    let mut protocols: Vec<String> = EXTENDED_PROTOCOLS.iter().map(|p| p.to_string()).collect();
    let mut json_path: Option<String> = None;
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--bib" => {
                bib_name = val("size");
                bib_cfg = match bib_name.as_str() {
                    "tiny" => BibConfig::tiny(),
                    "scaled" => BibConfig::scaled(),
                    "paper" => BibConfig::paper(),
                    other => die(&format!("unknown bib size {other}")),
                };
            }
            "--duration-ms" => {
                duration = Duration::from_millis(
                    val("number").parse().unwrap_or_else(|_| die("bad number")),
                )
            }
            "--writers" => {
                writers = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--protocols" => {
                protocols = val("list").split(',').map(|p| p.to_string()).collect()
            }
            "--json" => json_path = Some(val("path")),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: --bib tiny|scaled|paper --duration-ms N --writers N \
                     --protocols a,b,c --json PATH --check"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }

    println!(
        "\n== CLUSTER2 long reader ({bib_name} bib, {writers} writers, {}ms window) ==",
        duration.as_millis()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>12} {:>16} {:>11}",
        "protocol", "commits", "aborts", "reader reads", "reader wait [µs]", "consistent"
    );
    let mut cells = Vec::new();
    for proto in &protocols {
        let mut params = LongReaderParams::quick(proto);
        params.duration = duration;
        params.writers = writers;
        params.bib = bib_cfg.clone();
        let rep = run_long_reader(&params);
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>16} {:>11}",
            rep.protocol,
            rep.writer_commits,
            rep.writer_aborts,
            rep.reader_reads,
            rep.reader_lock_wait_us,
            rep.reader_consistent
        );
        cells.push(rep);
    }

    if let Some(path) = &json_path {
        let body = format!(
            "{{\n  \"benchmark\": \"mvcc_long_reader\",\n  \"bib\": \"{bib_name}\",\n  \
             \"duration_ms\": {},\n  \"writers\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            duration.as_millis(),
            writers,
            cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n")
        );
        std::fs::write(path, body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("\nwrote {path}");
    }

    if check {
        let mut failures = Vec::new();
        let best_pessimistic = cells
            .iter()
            .filter(|c| !MVCC_PROTOCOLS.contains(&c.protocol.as_str()))
            .map(|c| c.writer_commits)
            .max()
            .unwrap_or(0);
        for name in MVCC_PROTOCOLS {
            let Some(cell) = cells.iter().find(|c| c.protocol == name) else {
                failures.push(format!("{name} missing from the sweep"));
                continue;
            };
            if cell.reader_lock_wait_us != 0 {
                failures.push(format!(
                    "{name}: reader charged {}µs lock wait, snapshot reads must wait 0",
                    cell.reader_lock_wait_us
                ));
            }
            if !cell.reader_consistent {
                failures.push(format!("{name}: reader snapshot was not stable"));
            }
            if cell.writer_commits == 0 {
                failures.push(format!("{name}: no writer committed behind the reader"));
            }
        }
        if let Some(mvcc) = cells.iter().find(|c| c.protocol == "taMVCC") {
            if mvcc.writer_commits < 2 * best_pessimistic.max(1) {
                failures.push(format!(
                    "taMVCC writer throughput {} below 2x best pessimistic {}",
                    mvcc.writer_commits, best_pessimistic
                ));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        println!(
            "check ok: versioned readers waited 0µs; taMVCC committed {}x the best \
             pessimistic writer count",
            cells
                .iter()
                .find(|c| c.protocol == "taMVCC")
                .map(|c| c.writer_commits / best_pessimistic.max(1))
                .unwrap_or(0)
        );
    }
}
