//! Disk-backed buffer pool sweep: scan-resistant LRU-2 vs. plain clean-LRU
//! eviction across resident-budget fractions, under TaMix plus an
//! append-flood adversary.
//!
//! Each cell builds one engine (optionally file-backed; the background
//! flusher always runs so freshly dirtied pages become clean eviction
//! candidates), loads a wide bib document plus a cold archive region,
//! then runs a thinned TaMix mix concurrently with a *polluter* thread
//! that bulk-appends archive entries as fast as the engine accepts them
//! — a flood of single-touch pages, the access pattern buffer managers
//! hate. Under plain LRU the flood pushes the transactions' warm book
//! pages (re-referenced every ~100 ms) to the cold end and evicts them
//! before their next use; LRU-2 sees the flood's pages have no second
//! uncorrelated reference (backward K-distance ∞) and sheds them first,
//! keeping the warm set resident. Buffer misses charge a simulated
//! fault-in latency, so the hit-rate gap becomes a throughput gap.
//!
//! Hits and misses are counted at *fix* grain: repeated node-level
//! touches of one page within `--burst-ticks` LRU-clock ticks are one
//! logical reference (the pool's correlated-reference window, widened
//! here to transaction scale), under both policies.
//!
//! ```text
//! storage [--fractions 1.0,0.5,0.25,0.1] [--duration-ms N] [--seed N]
//!         [--miss-us N] [--file-backed] [--json PATH]
//!         [--bench-json PATH] [--check]
//! ```
//!
//! `--check` gates (the ISSUE 9 acceptance bars): at the 25% budget
//! fraction LRU-2 must hold a hit rate at least 10 points above
//! clean-LRU and at least 1.2× its throughput, and with filters on a
//! batch of absent index probes must cost zero page reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xtc_core::{IsolationLevel, XtcConfig, XtcDb};
use xtc_node::EvictPolicy;
use xtc_tamix::{bib, run_cluster1_on, BibConfig, PoolReport, TamixParams};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

/// One sweep cell: policy × budget fraction.
struct Cell {
    policy: &'static str,
    fraction: f64,
    budget_pages: usize,
    committed: u64,
    throughput: f64,
    hit_rate: f64,
    pool: PoolReport,
    polluter_entries: u64,
}

fn policy_name(p: &EvictPolicy) -> &'static str {
    match p {
        EvictPolicy::CleanLru => "clean-lru",
        EvictPolicy::Lru2 { .. } => "lru-2",
    }
}

/// Base TaMix parameters for every cell: the CLUSTER1 mix thinned to a
/// handful of slots with light pacing. The point is a *warm* working
/// set — pages each transaction slot returns to every few tens of
/// milliseconds, slowly enough that a scan-flooded pool has already
/// turned over in between. (At full CLUSTER1 concurrency every page is
/// re-touched so fast that no eviction policy can tell hot from cold.)
fn base_params(seed: u64, duration: Duration, miss: Duration) -> TamixParams {
    let mut p = TamixParams::cluster1("taDOM3+", IsolationLevel::Repeatable, 4);
    p.clients = 1;
    p.mix = vec![
        (xtc_tamix::TxnKind::QueryBook, 2),
        (xtc_tamix::TxnKind::Chapter, 1),
        (xtc_tamix::TxnKind::LendAndReturn, 2),
    ];
    p.duration = duration;
    p.wait_after_commit = Duration::from_millis(2);
    p.wait_after_operation = Duration::from_micros(200);
    p.initial_wait_max = Duration::from_millis(2);
    p.seed = seed;
    p.store.miss_latency = miss;
    p
}

/// A bib document wider than [`BibConfig::scaled`]: ~100 pages of book
/// content, so the transactions' warm band is substantial relative to
/// the budget fractions (each book page is re-referenced every ~100 ms
/// — slow enough for the flood to evict it under plain LRU, fast enough
/// that LRU-2's history ranks it warmer than anything single-touch).
fn wide_bib() -> BibConfig {
    BibConfig {
        persons: 200,
        authors: 40,
        topics: 20,
        books: 600,
        chapters: (3, 5),
        lends: (4, 5),
        seed: 42,
    }
}

/// Cold `<archive>` entries appended under the root before the run:
/// pages the transactions never touch. They size the 100% reference so
/// the 25% budget still covers the warm band — the transactional
/// working set is a quarter-ish of the initial document.
const BALLAST_ENTRIES: usize = 3500;

/// Appends `entries` padded archive entries in one transaction under a
/// fresh `<archive>` element (padding keeps each entry heavy, so the
/// region spans real pages). Used for the initial ballast and by the
/// polluter thread during the run. Errors are returned, not unwrapped —
/// the polluter tolerates aborts under load.
fn append_archive(db: &XtcDb, batch: usize, tag: u64) -> Result<(), xtc_core::XtcError> {
    let filler = "x".repeat(900);
    let t = db.begin();
    let root = t.root()?.ok_or(xtc_core::XtcError::Busy)?;
    let archive = t.insert_element(&root, xtc_core::InsertPos::LastChild, "archive")?;
    for i in 0..batch {
        let e = t.insert_element(&archive, xtc_core::InsertPos::LastChild, "entry")?;
        t.insert_text(
            &e,
            xtc_core::InsertPos::LastChild,
            &format!("{tag}-{i}-{filler}"),
        )?;
    }
    t.commit()
}

/// Grows the initial cold archive region, in batches to keep any one
/// transaction's lock and undo footprint reasonable.
fn grow_ballast(db: &XtcDb) {
    let mut grown = 0;
    while grown < BALLAST_ENTRIES {
        let batch = 200.min(BALLAST_ENTRIES - grown);
        append_archive(db, batch, grown as u64).expect("grow ballast");
        grown += batch;
    }
}

/// Measures the document's full footprint (live pages across the three
/// trees, bib + ballast) with an unbounded pool — the 100% reference
/// the budget fractions scale from.
fn measure_live_pages(bib_cfg: &BibConfig) -> usize {
    let db = XtcDb::new(XtcConfig::default());
    bib::generate_into(&db, bib_cfg);
    grow_ballast(&db);
    db.store().pool_stats().live
}

fn run_cell(
    policy: EvictPolicy,
    fraction: f64,
    budget_pages: usize,
    params: &TamixParams,
    bib_cfg: &BibConfig,
    file_backed: bool,
) -> Cell {
    let mut params = params.clone();
    params.store.max_resident_pages = Some(budget_pages);
    params.store.evict_policy = policy;
    let fb_dir = file_backed.then(|| {
        std::env::temp_dir().join(format!(
            "xtc-storage-bench-{}-{}-{fraction}",
            std::process::id(),
            policy_name(&policy)
        ))
    });
    let mut config = XtcConfig {
        protocol: params.protocol.clone(),
        isolation: params.isolation,
        lock_depth: params.lock_depth,
        lock_timeout: params.lock_timeout,
        store: params.store.clone(),
        // Every cell runs the background flusher: the polluter keeps
        // dirtying fresh pages, and without write-back neither policy
        // would have clean victims to choose between.
        writeback_interval: Some(Duration::from_millis(2)),
        ..XtcConfig::default()
    };
    if let Some(dir) = &fb_dir {
        config.store.backend_dir = Some(dir.clone());
    }
    let db = Arc::new(XtcDb::new(config));
    bib::generate_into(&db, bib_cfg);
    grow_ballast(&db);

    // The polluter: bulk-append archive entries for the whole run, as
    // fast as the engine accepts them. Fresh allocations pay no fault
    // latency, so unlike a reading scan the flood's eviction pressure is
    // not throttled by the very miss cost it inflicts. Its pages are
    // written once and never referenced again: hist2 stays zero, which
    // is exactly the page class LRU-2 sheds first.
    let stop = Arc::new(AtomicBool::new(false));
    let polluter = {
        let db = db.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut entries = 0u64;
            let mut batch_no = 0u64;
            while !stop.load(Ordering::Acquire) {
                if append_archive(&db, 100, 0xB000_0000 | batch_no).is_ok() {
                    entries += 100;
                }
                batch_no += 1;
            }
            entries
        })
    };
    let report = run_cluster1_on(&db, &params, bib_cfg);
    stop.store(true, Ordering::Release);
    let polluter_entries = polluter.join().expect("polluter panicked");
    let cell = Cell {
        policy: policy_name(&policy),
        fraction,
        budget_pages,
        committed: report.committed(),
        throughput: report.throughput_per_5min(),
        hit_rate: report.pool.hit_rate(),
        pool: report.pool.clone(),
        polluter_entries,
    };
    drop(db);
    if let Some(dir) = &fb_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    cell
}

/// Filter acceptance probe: with filters on (the default), a batch of
/// absent element/ID lookups — against an *interned* name, so the probe
/// reaches the filter rather than dying at the vocabulary — must cost
/// zero page reads. Returns (probes, negatives, page_reads).
fn absent_probe_cost(bib_cfg: &BibConfig) -> (u64, u64, u64) {
    let db = XtcDb::new(XtcConfig::default());
    bib::generate_into(&db, bib_cfg);
    // Intern "phantom" without leaving an element carrying it.
    let t = db.begin();
    let topic = t.element_by_id("t0").expect("read t0").expect("t0 exists");
    let e = t
        .insert_element(&topic, xtc_core::InsertPos::LastChild, "phantom")
        .expect("insert");
    t.rename(&e, "phantom2").expect("rename");
    t.commit().expect("commit");

    let store = db.store();
    let probes0 = store.pool_stats().filter_probes;
    let negatives0 = store.pool_stats().filter_negatives;
    let reads0 = store.stats().page_reads();
    for i in 0..64 {
        assert!(store.elements_named("phantom").is_empty());
        assert!(store.element_by_id(&format!("no-such-id-{i}")).is_none());
    }
    let ps = store.pool_stats();
    (
        ps.filter_probes - probes0,
        ps.filter_negatives - negatives0,
        store.stats().page_reads() - reads0,
    )
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\"policy\": \"{}\", \"fraction\": {}, \"budget_pages\": {}, \
         \"committed\": {}, \"throughput_per_5min\": {:.1}, \"hit_rate\": {:.4}, \
         \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"evict_blocked\": {}, \
         \"flushes\": {}, \"forced_writebacks\": {}, \"ghost_hits\": {}, \
         \"polluter_entries\": {}}}",
        c.policy,
        c.fraction,
        c.budget_pages,
        c.committed,
        c.throughput,
        c.hit_rate,
        c.pool.hits,
        c.pool.misses,
        c.pool.evictions,
        c.pool.evict_blocked,
        c.pool.flushes,
        c.pool.forced_writebacks,
        c.pool.ghost_hits,
        c.polluter_entries,
    )
}

fn main() {
    let mut fractions = vec![1.0f64, 0.5, 0.25, 0.1];
    let mut duration = Duration::from_millis(1500);
    let mut seed: u64 = 0x5709_4A6E;
    let mut miss = Duration::from_micros(1000);
    // Transaction-scale correlated-reference window (LRU-clock ticks):
    // node-grain re-reads by one transaction collapse into a single
    // logical reference for both the hit/miss counters and LRU-2's
    // history, per the LRU-2 correlated-reference period.
    let mut burst_ticks: u64 = 2048;
    let mut file_backed = false;
    let mut json_path = "results/storage.json".to_string();
    let mut bench_json_path = "BENCH_storage.json".to_string();
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--fractions" => {
                fractions = val("list")
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| die("bad fraction")))
                    .collect()
            }
            "--duration-ms" => {
                duration = Duration::from_millis(
                    val("number").parse().unwrap_or_else(|_| die("bad number")),
                )
            }
            "--seed" => seed = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--miss-us" => {
                miss = Duration::from_micros(
                    val("number").parse().unwrap_or_else(|_| die("bad number")),
                )
            }
            "--burst-ticks" => {
                burst_ticks = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--file-backed" => file_backed = true,
            "--json" => json_path = val("path"),
            "--bench-json" => bench_json_path = val("path"),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: --fractions 1.0,0.5,0.25,0.1 --duration-ms N --seed N \
                     --miss-us N --burst-ticks N --file-backed --json PATH \
                     --bench-json PATH --check"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }

    let bib_cfg = wide_bib();
    let live = measure_live_pages(&bib_cfg);
    let mut params = base_params(seed, duration, miss);
    params.store.burst_ticks = burst_ticks;
    eprintln!(
        "storage: working set {live} live pages; sweeping fractions {fractions:?} \
         (miss latency {} µs{})",
        miss.as_micros(),
        if file_backed { ", file-backed" } else { "" }
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &fraction in &fractions {
        let budget = (((live as f64) * fraction).round() as usize).max(2);
        for policy in [
            EvictPolicy::CleanLru,
            EvictPolicy::Lru2 {
                correlated_ticks: burst_ticks,
            },
        ] {
            let c = run_cell(policy, fraction, budget, &params, &bib_cfg, file_backed);
            eprintln!(
                "storage: {:>9} @ {:>4.0}% ({:>4} pages): hit rate {:>5.1}% \
                 throughput {:>7.1}/5min ({} committed, {} evictions, {} ghost hits, \
                 {} hits / {} misses)",
                c.policy,
                fraction * 100.0,
                c.budget_pages,
                c.hit_rate * 100.0,
                c.throughput,
                c.committed,
                c.pool.evictions,
                c.pool.ghost_hits,
                c.pool.hits,
                c.pool.misses,
            );
            cells.push(c);
        }
    }

    let (probes, negatives, probe_reads) = absent_probe_cost(&bib_cfg);
    eprintln!(
        "storage: absent-probe batch: {probes} probes, {negatives} filter negatives, \
         {probe_reads} page reads"
    );

    println!("\n== storage: eviction policy × resident budget, TaMix + append flood ==");
    println!(
        "{:>10} {:>6} {:>7} {:>9} {:>12} {:>10} {:>10}",
        "policy", "budget", "pages", "hit rate", "thpt/5min", "evictions", "ghost hits"
    );
    for c in &cells {
        println!(
            "{:>10} {:>5.0}% {:>7} {:>8.1}% {:>12.1} {:>10} {:>10}",
            c.policy,
            c.fraction * 100.0,
            c.budget_pages,
            c.hit_rate * 100.0,
            c.throughput,
            c.pool.evictions,
            c.pool.ghost_hits,
        );
    }

    let cell_rows = cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n");
    let body = format!(
        "{{\n  \"benchmark\": \"storage\",\n  \"summary\": {{\"live_pages\": {live}, \
         \"miss_us\": {}, \"duration_ms\": {}, \"file_backed\": {file_backed}, \
         \"filter_probes\": {probes}, \"filter_negatives\": {negatives}, \
         \"absent_probe_page_reads\": {probe_reads}}},\n  \"cells\": [\n{cell_rows}\n  ]\n}}\n",
        miss.as_micros(),
        duration.as_millis(),
    );
    for path in [&json_path, &bench_json_path] {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(path, &body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote {path}");
    }

    if check {
        let mut bad = Vec::new();
        let at = |policy: &str, fraction: f64| {
            cells
                .iter()
                .find(|c| c.policy == policy && (c.fraction - fraction).abs() < 1e-9)
        };
        match (at("lru-2", 0.25), at("clean-lru", 0.25)) {
            (Some(lru2), Some(lru)) => {
                if lru2.hit_rate < lru.hit_rate + 0.10 {
                    bad.push(format!(
                        "at 25% budget LRU-2 hit rate {:.1}% is not ≥ 10 points above \
                         clean-LRU's {:.1}%",
                        lru2.hit_rate * 100.0,
                        lru.hit_rate * 100.0
                    ));
                }
                if lru2.throughput < 1.2 * lru.throughput {
                    bad.push(format!(
                        "at 25% budget LRU-2 throughput {:.1} is not ≥ 1.2× \
                         clean-LRU's {:.1}",
                        lru2.throughput, lru.throughput
                    ));
                }
                if lru2.pool.ghost_hits == 0 {
                    bad.push("LRU-2 ghost list never recalled a page at 25% budget".into());
                }
            }
            _ => bad.push("check needs the 0.25 fraction in the sweep".to_string()),
        }
        if probe_reads != 0 {
            bad.push(format!(
                "absent index probes read {probe_reads} pages with filters on (want 0)"
            ));
        }
        if negatives == 0 {
            bad.push("absent-probe batch produced no filter negatives".to_string());
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("storage check failed: {b}");
            }
            std::process::exit(1);
        }
        println!(
            "storage check passed: LRU-2 beats clean-LRU at the 25% budget and \
             filtered absent probes cost zero page reads"
        );
    }
}
