//! Figure 11 — CLUSTER2: execution time of a single TAdelBook (isolation
//! level repeatable, single-user) under all eleven protocols.
//!
//! Expected shape (§5.3): "the *-2PL group roughly consumes for the
//! deletion twice as much time than all other protocols" — before
//! removing a subtree, Node2PL/NO2PL/OO2PL must search the entire
//! subtree for ID-attribute owners and IDX-lock them, paying node-manager
//! page accesses; every intention-lock protocol (including Node2PLa)
//! deletes with a handful of path locks.
//!
//! The versioned contestants (taMVCC, taOCC) ride along at the end of
//! the field: single-user deletion exercises their taDOM3+ write path,
//! so they land with the taDOM group.

use xtc_bench::CommonArgs;
use xtc_protocols::EXTENDED_PROTOCOLS;
use xtc_tamix::run_cluster2;

fn main() {
    let args = CommonArgs::parse();
    println!("\n== Figure 11: CLUSTER2 — TAdelBook execution under all protocols ==");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "protocol", "time [µs]", "lock requests", "page reads"
    );
    let reps = args.runs.max(3);
    for proto in EXTENDED_PROTOCOLS {
        let rep = run_cluster2(proto, &args.bib, reps);
        println!(
            "{:>10} {:>14} {:>14} {:>14}",
            rep.protocol,
            rep.duration.as_micros(),
            rep.lock_requests,
            rep.page_reads
        );
    }
    println!(
        "\n(The paper's absolute times are disk-bound; page reads are the\n\
         hardware-independent proxy — see EXPERIMENTS.md.)"
    );
}
