//! Many-clients server benchmark: a catalog of bib documents behind the
//! TCP front-end, driven by a fleet of concurrent sessions whose
//! document choice is Zipf-skewed — the server-consolidation story the
//! single-document clusters can't tell. Reports per-transaction-type
//! tail latency (p50/p95/p99) on both clocks: wall microseconds and the
//! engine's virtual-time attribution from each `run` reply.
//!
//! ```text
//! server [--docs N] [--sessions N] [--workers N] [--requests N]
//!        [--zipf S] [--max-in-flight N] [--protocol NAME] [--seed N]
//!        [--json PATH] [--bench-json PATH] [--check]
//! ```
//!
//! `--check` gates: every configured session must be connected
//! concurrently (the ≥1000-sessions claim), commit rate ≥ 99%, every
//! mix type must appear, and the Zipf skew must be visible (the hottest
//! document serves more sessions than the coldest).

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use xtc_core::{AdmissionPolicy, CatalogConfig, DocStoreConfig, XtcConfig};
use xtc_server::{Client, ServerConfig, XtcServer};
use xtc_tamix::{build_bib_catalog, doc_name, sample_kind, BibConfig, TxnKind, Zipf};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

/// One completed request, as measured at the client.
struct Sample {
    kind: TxnKind,
    wall_us: u64,
    vt_us: u64,
    attempts: u32,
}

/// Sorted-percentile helper (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct KindRow {
    kind: TxnKind,
    count: usize,
    attempts: u64,
    wall: [u64; 3],
    vt: [u64; 3],
}

fn kind_rows(samples: &[Sample]) -> Vec<KindRow> {
    let mut rows = Vec::new();
    for kind in TxnKind::ALL {
        let mut wall: Vec<u64> = Vec::new();
        let mut vt: Vec<u64> = Vec::new();
        let mut attempts = 0u64;
        for s in samples.iter().filter(|s| s.kind == kind) {
            wall.push(s.wall_us);
            vt.push(s.vt_us);
            attempts += s.attempts as u64;
        }
        if wall.is_empty() {
            continue;
        }
        wall.sort_unstable();
        vt.sort_unstable();
        rows.push(KindRow {
            kind,
            count: wall.len(),
            attempts,
            wall: [
                percentile(&wall, 50.0),
                percentile(&wall, 95.0),
                percentile(&wall, 99.0),
            ],
            vt: [
                percentile(&vt, 50.0),
                percentile(&vt, 95.0),
                percentile(&vt, 99.0),
            ],
        });
    }
    rows
}

fn main() {
    let mut docs: usize = 16;
    let mut sessions: usize = 1024;
    let mut workers: usize = 16;
    let mut requests: usize = 3;
    let mut zipf_s: f64 = 1.0;
    let mut max_in_flight: usize = 64;
    let mut protocol = "taDOM3+".to_string();
    let mut seed: u64 = 0x5E55_10B5;
    let mut json_path = "results/server.json".to_string();
    let mut bench_json_path = "BENCH_server.json".to_string();
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--docs" => docs = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--sessions" => sessions = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--workers" => workers = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--requests" => requests = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--zipf" => zipf_s = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--max-in-flight" => {
                max_in_flight = val("number").parse().unwrap_or_else(|_| die("bad number"))
            }
            "--protocol" => protocol = val("name"),
            "--seed" => seed = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--json" => json_path = val("path"),
            "--bench-json" => bench_json_path = val("path"),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: --docs N --sessions N --workers N --requests N \
                     --zipf S --max-in-flight N --protocol NAME --seed N \
                     --json PATH --bench-json PATH --check"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }
    if docs == 0 || sessions == 0 || workers == 0 || requests == 0 {
        die("--docs, --sessions, --workers, --requests must all be positive");
    }
    workers = workers.min(sessions);

    eprintln!(
        "server: {docs} docs, {sessions} sessions over {workers} workers, \
         {requests} requests/session, zipf {zipf_s}, gate {max_in_flight}, {protocol}"
    );

    let bib = BibConfig::tiny();
    let catalog = build_bib_catalog(
        CatalogConfig {
            defaults: XtcConfig {
                protocol: protocol.clone(),
                lock_timeout: Duration::from_secs(10),
                // Simulated disk: page reads charge virtual time, so the
                // vt percentiles below measure more than lock waits.
                store: DocStoreConfig {
                    read_latency: Duration::from_micros(2),
                    ..DocStoreConfig::default()
                },
                ..XtcConfig::default()
            },
            max_in_flight: Some(max_in_flight),
            admission: AdmissionPolicy::Queue,
            pool_budget_pages: Some(docs * 96),
            pool_partitions: docs,
        },
        docs,
        &bib,
    )
    .unwrap_or_else(|e| die(&format!("building catalog: {e}")));

    let mut server = XtcServer::serve(
        Arc::new(catalog),
        ServerConfig {
            bib: bib.clone(),
            seed,
            ..ServerConfig::default()
        },
    )
    .unwrap_or_else(|e| die(&format!("starting server: {e}")));
    let addr: SocketAddr = server.addr();

    // Session → document assignment is the Zipf draw: popular documents
    // serve many sessions, the tail serves few.
    let zipf = Zipf::new(docs, zipf_s);
    let mut assign_rng = SmallRng::seed_from_u64(seed);
    let doc_of: Vec<usize> = (0..sessions).map(|_| zipf.sample(&mut assign_rng)).collect();
    let mut sessions_per_doc = vec![0usize; docs];
    for &d in &doc_of {
        sessions_per_doc[d] += 1;
    }

    // Phase 1: connect the whole fleet (all sessions concurrently
    // live), rendezvous, measure the plateau, then issue requests.
    let all_connected = Arc::new(Barrier::new(workers + 1));
    let started = Instant::now();
    let worker_handles: Vec<_> = (0..workers)
        .map(|w| {
            let doc_of: Vec<usize> = doc_of
                .iter()
                .copied()
                .enumerate()
                .filter(|(s, _)| s % workers == w)
                .map(|(_, d)| d)
                .collect();
            let all_connected = all_connected.clone();
            std::thread::spawn(move || {
                let mut conns: Vec<Client> = doc_of
                    .iter()
                    .map(|&d| {
                        let mut c = Client::connect(addr)
                            .unwrap_or_else(|e| die(&format!("worker {w}: connect: {e}")));
                        if !c.open(&doc_name(d)).unwrap_or(false) {
                            die(&format!("worker {w}: open {} refused", doc_name(d)));
                        }
                        c
                    })
                    .collect();
                all_connected.wait();
                let mut kind_rng = SmallRng::seed_from_u64(0xD0C5 ^ (w as u64) << 20);
                let mut samples: Vec<Sample> = Vec::new();
                let mut failed = 0usize;
                // Round-robin over this worker's sessions so every
                // connection interleaves with the whole fleet.
                for _round in 0..requests {
                    for c in conns.iter_mut() {
                        let kind = sample_kind(&mut kind_rng);
                        let begun = Instant::now();
                        match c.run(kind.name()) {
                            Ok(Ok(reply)) => samples.push(Sample {
                                kind,
                                // Client-observed wall time: queueing at
                                // the gate + execution + protocol.
                                wall_us: begun.elapsed().as_micros() as u64,
                                vt_us: reply.vt_us,
                                attempts: reply.attempts,
                            }),
                            Ok(Err(_)) => failed += 1,
                            Err(e) => die(&format!("worker {w}: transport: {e}")),
                        }
                    }
                }
                for c in conns {
                    let _ = c.quit();
                }
                (samples, failed)
            })
        })
        .collect();

    all_connected.wait();
    // Every session is connected right now: the concurrency plateau.
    let peak_sessions = server.stats().active_sessions.load(Ordering::Relaxed);
    let mut samples: Vec<Sample> = Vec::new();
    let mut failed = 0usize;
    for h in worker_handles {
        let (s, f) = h.join().unwrap_or_else(|_| die("worker panicked"));
        samples.extend(s);
        failed += f;
    }
    let wall_total = started.elapsed();
    let committed = samples.len();
    let in_flight_after = server.catalog().admitted_in_flight();
    server.shutdown();

    let rows = kind_rows(&samples);
    let total_requests = committed + failed;
    let commit_rate = if total_requests == 0 {
        0.0
    } else {
        committed as f64 / total_requests as f64
    };

    println!("\n== server: {sessions} Zipf-skewed sessions over {docs} documents ==");
    println!(
        "peak concurrent sessions {peak_sessions}, {committed} committed / {failed} failed \
         in {:.2}s, gate {max_in_flight} ({in_flight_after} in flight after drain)",
        wall_total.as_secs_f64()
    );
    println!(
        "{:>16} {:>7} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "type", "count", "attempts", "wall p50", "wall p95", "wall p99", "vt p50", "vt p95", "vt p99"
    );
    for r in &rows {
        println!(
            "{:>16} {:>7} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            r.kind.name(),
            r.count,
            r.attempts,
            r.wall[0],
            r.wall[1],
            r.wall[2],
            r.vt[0],
            r.vt[1],
            r.vt[2],
        );
    }
    let hottest = sessions_per_doc.iter().copied().max().unwrap_or(0);
    let coldest = sessions_per_doc.iter().copied().min().unwrap_or(0);
    println!("document popularity: hottest {hottest} sessions, coldest {coldest} sessions");

    let kind_json = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kind\": \"{}\", \"count\": {}, \"attempts\": {}, \
                 \"wall_p50_us\": {}, \"wall_p95_us\": {}, \"wall_p99_us\": {}, \
                 \"vt_p50_us\": {}, \"vt_p95_us\": {}, \"vt_p99_us\": {}}}",
                r.kind.name(),
                r.count,
                r.attempts,
                r.wall[0],
                r.wall[1],
                r.wall[2],
                r.vt[0],
                r.vt[1],
                r.vt[2],
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let popularity = sessions_per_doc
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let body = format!(
        "{{\n  \"benchmark\": \"server\",\n  \"summary\": {{\"docs\": {docs}, \
         \"sessions\": {sessions}, \"peak_sessions\": {peak_sessions}, \
         \"workers\": {workers}, \"requests_per_session\": {requests}, \
         \"zipf_exponent\": {zipf_s}, \"max_in_flight\": {max_in_flight}, \
         \"protocol\": \"{protocol}\", \"committed\": {committed}, \
         \"failed\": {failed}, \"commit_rate\": {commit_rate:.4}, \
         \"wall_s\": {:.3}}},\n  \"sessions_per_doc\": [{popularity}],\n  \
         \"kinds\": [\n{kind_json}\n  ]\n}}\n",
        wall_total.as_secs_f64(),
    );
    for path in [&json_path, &bench_json_path] {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(path, &body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote {path}");
    }

    if check {
        let mut bad = Vec::new();
        if (peak_sessions as usize) < sessions {
            bad.push(format!(
                "only {peak_sessions} of {sessions} sessions were concurrently connected"
            ));
        }
        if commit_rate < 0.99 {
            bad.push(format!(
                "commit rate {commit_rate:.4} below 0.99 ({failed} failures)"
            ));
        }
        if rows.len() < 4 {
            bad.push(format!("only {} of 4 mix types appeared", rows.len()));
        }
        if rows.iter().any(|r| r.vt[2] == 0) {
            bad.push("a type reported zero virtual time at p99".to_string());
        }
        if zipf_s > 0.0 && docs > 1 && hottest <= coldest {
            bad.push(format!(
                "no visible Zipf skew: hottest doc {hottest} <= coldest {coldest}"
            ));
        }
        if in_flight_after != 0 {
            bad.push(format!(
                "{in_flight_after} admission slots still held after the fleet drained"
            ));
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("server check failed: {b}");
            }
            std::process::exit(1);
        }
        println!("server check passed");
    }
}
