//! Chaos-at-scale sweep: crash–recover–resume under load for every
//! protocol in the contest × every fault site.
//!
//! Each cell plays one [`xtc_tamix::chaos`] scenario: a CLUSTER1 storm
//! plus fate-ledgered marker writers against a WAL-backed database, a
//! kill failpoint armed at one site, a crash, an ARIES-lite recovery
//! timed on the virtual clock, contract verification (no acknowledged
//! commit lost, no clean failure leaked, invariants and indexes
//! intact), and a resumed workload on the recovered engine.
//!
//! ```text
//! chaos [--protocols a,b,c] [--sites a,b,c] [--duration-ms N]
//!       [--resume-ms N] [--seed N] [--bound-ms N]
//!       [--json PATH] [--bench-json PATH] [--check]
//! ```
//!
//! `--check` gates: every cell must pass its contract, and every
//! recovery must finish within `--bound-ms` of virtual time. Requires
//! the `failpoints` feature for faults to actually fire; without it the
//! sweep still runs (fallback end-of-phase crashes only) and says so.

use std::time::Duration;
use xtc_tamix::chaos::{run_crash_recover_resume, ChaosParams, ChaosReport};

/// Default kill sites: one per engine layer (commit record, group-commit
/// fsync, appending the record, page-read I/O, eviction write-back, and
/// a mid-split structural crash).
const DEFAULT_SITES: [&str; 6] = [
    "wal.commit",
    "wal.fsync",
    "wal.append_io",
    "store.page_read_io",
    "pool.evict_write",
    "btree.split",
];

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

fn cell_json(r: &ChaosReport) -> String {
    let violations = r
        .violations
        .iter()
        .map(|v| format!("\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "    {{\"protocol\": \"{}\", \"site\": \"{}\", \"passed\": {}, \
         \"crashed_mid_run\": {}, \"torn_tail\": {}, \"recovery_us\": {}, \
         \"recovery_wall_ms\": {:.3}, \"scanned\": {}, \"markers\": {}, \
         \"acknowledged\": {}, \"in_doubt\": {}, \"pre_committed\": {}, \
         \"post_committed\": {}, \"pre_timeout_aborts\": {}, \
         \"post_timeout_aborts\": {}, \"violations\": [{violations}]}}",
        r.protocol,
        r.kill_site,
        r.passed(),
        r.crashed_mid_run,
        r.torn_tail,
        r.recovery_us,
        r.recovery_wall.as_secs_f64() * 1e3,
        r.scanned,
        r.markers,
        r.acknowledged,
        r.in_doubt,
        r.pre.committed(),
        r.post.committed(),
        r.pre.timeout_aborts(),
        r.post.timeout_aborts(),
    )
}

fn main() {
    let mut protocols: Vec<String> = xtc_protocols::ALL_PROTOCOLS
        .iter()
        .map(|p| p.to_string())
        .collect();
    let mut sites: Vec<String> = DEFAULT_SITES.iter().map(|s| s.to_string()).collect();
    let mut duration = Duration::from_millis(500);
    let mut resume = Duration::from_millis(400);
    let mut seed: u64 = 0xC4A0_5EED;
    let mut bound = Duration::from_millis(2000);
    let mut json_path = "results/chaos.json".to_string();
    let mut bench_json_path = "BENCH_chaos.json".to_string();
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--protocols" => protocols = val("list").split(',').map(|s| s.to_string()).collect(),
            "--sites" => sites = val("list").split(',').map(|s| s.to_string()).collect(),
            "--duration-ms" => {
                duration = Duration::from_millis(
                    val("number").parse().unwrap_or_else(|_| die("bad number")),
                )
            }
            "--resume-ms" => {
                resume = Duration::from_millis(
                    val("number").parse().unwrap_or_else(|_| die("bad number")),
                )
            }
            "--seed" => seed = val("number").parse().unwrap_or_else(|_| die("bad number")),
            "--bound-ms" => {
                bound = Duration::from_millis(
                    val("number").parse().unwrap_or_else(|_| die("bad number")),
                )
            }
            "--json" => json_path = val("path"),
            "--bench-json" => bench_json_path = val("path"),
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!(
                    "options: --protocols a,b,c --sites a,b,c --duration-ms N \
                     --resume-ms N --seed N --bound-ms N --json PATH \
                     --bench-json PATH --check"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }

    let faults_live = cfg!(feature = "failpoints");
    if !faults_live {
        eprintln!(
            "chaos: built without the `failpoints` feature — kill sites are \
             no-ops, every crash is the end-of-phase fallback"
        );
    }

    let mut cells: Vec<ChaosReport> = Vec::new();
    for proto in &protocols {
        for (s, site) in sites.iter().enumerate() {
            let mut params = ChaosParams::quick(proto, site, seed ^ ((s as u64) << 17));
            params.tamix.duration = duration;
            params.resume_duration = resume;
            // The write-back kill site is only meaningful when write-backs
            // are real: give those cells a disk-backed pool under a tight
            // residency budget with the background flusher running.
            let fb_dir = (site == "pool.evict_write").then(|| {
                std::env::temp_dir().join(format!("xtc-chaos-{}-{proto}-{s}", std::process::id()))
            });
            if let Some(dir) = &fb_dir {
                params.tamix.store.backend_dir = Some(dir.clone());
                params.tamix.store.max_resident_pages = Some(8);
                params.tamix.writeback_interval = Some(Duration::from_millis(2));
            }
            let r = run_crash_recover_resume(&params);
            if let Some(dir) = &fb_dir {
                let _ = std::fs::remove_dir_all(dir);
            }
            eprintln!(
                "chaos: {proto}/{site}: {} mid-run={} recovery={}us ({} records) \
                 pre={} post={}",
                if r.passed() { "ok" } else { "VIOLATED" },
                r.crashed_mid_run,
                r.recovery_us,
                r.scanned,
                r.pre.committed(),
                r.post.committed(),
            );
            cells.push(r);
        }
    }

    let passed = cells.iter().filter(|c| c.passed()).count();
    let mid_run = cells.iter().filter(|c| c.crashed_mid_run).count();
    let max_recovery_us = cells.iter().map(|c| c.recovery_us).max().unwrap_or(0);

    println!("\n== chaos: crash–recover–resume, CLUSTER1 under faults ==");
    println!(
        "{:>10} {:>20} {:>6} {:>8} {:>12} {:>8} {:>8} {:>9}",
        "protocol", "site", "ok", "mid-run", "recovery µs", "pre", "post", "in-doubt"
    );
    for c in &cells {
        println!(
            "{:>10} {:>20} {:>6} {:>8} {:>12} {:>8} {:>8} {:>9}",
            c.protocol,
            c.kill_site,
            if c.passed() { "yes" } else { "NO" },
            if c.crashed_mid_run { "yes" } else { "no" },
            c.recovery_us,
            c.pre.committed(),
            c.post.committed(),
            c.in_doubt,
        );
    }
    println!(
        "\n{passed}/{} cells passed, {mid_run} crashed mid-run, \
         max recovery {max_recovery_us} µs (bound {} µs)",
        cells.len(),
        bound.as_micros()
    );

    let cell_rows = cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n");
    let body = format!(
        "{{\n  \"benchmark\": \"chaos\",\n  \"summary\": {{\"cells\": {}, \
         \"passed\": {passed}, \"mid_run_crashes\": {mid_run}, \
         \"max_recovery_us\": {max_recovery_us}, \"bound_us\": {}, \
         \"faults_live\": {faults_live}}},\n  \"cells\": [\n{cell_rows}\n  ]\n}}\n",
        cells.len(),
        bound.as_micros(),
    );
    for path in [&json_path, &bench_json_path] {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(path, &body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote {path}");
    }

    if check {
        let mut bad = Vec::new();
        for c in cells.iter().filter(|c| !c.passed()) {
            bad.push(format!(
                "{}/{} violated the contract: {:?}",
                c.protocol, c.kill_site, c.violations
            ));
        }
        for c in cells.iter().filter(|c| c.recovery_us > bound.as_micros() as u64) {
            bad.push(format!(
                "{}/{} recovery took {} µs (bound {} µs)",
                c.protocol,
                c.kill_site,
                c.recovery_us,
                bound.as_micros()
            ));
        }
        if faults_live && mid_run == 0 {
            bad.push("no cell crashed mid-run; the kill sites never fired".to_string());
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("chaos check failed: {b}");
            }
            std::process::exit(1);
        }
        println!("chaos check passed: contract held and recovery stayed within bound");
    }
}
