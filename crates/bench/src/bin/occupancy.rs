//! Key-compression / storage-occupancy micro-benchmark (§3.1–§3.2).
//!
//! Builds the bib document in document order at several SPLID `dist`
//! settings and reports, per setting, the B*-tree occupancy and the
//! physically stored key bytes per SPLID — the paper's "storing a SPLID
//! only consumed 2–3 bytes in the average" claim under the front-coded
//! leaf format. Optionally replays the update workload of
//! `tests/storage_occupancy.rs` to show compression surviving churn.
//!
//! ```text
//! occupancy [--bib tiny|scaled|paper] [--dists 2,4,16] [--updates]
//!           [--json PATH] [--check-max-bytes-per-key F]
//! ```
//!
//! `--json` writes one machine-readable report (committed under
//! `results/occupancy.json` to track the trajectory); the check flag
//! exits non-zero when the *first* configured dist exceeds the budget —
//! the CI regression gate.

use xtc_node::{DocStore, DocStoreConfig, InsertPos};
use xtc_tamix::bib;
use xtc_tamix::BibConfig;

struct Cell {
    dist: u32,
    phase: &'static str,
    nodes: usize,
    occupancy: f64,
    bytes_per_key: f64,
    logical_bytes_per_key: f64,
    stored: usize,
    logical: usize,
    leaf_pages: usize,
}

fn measure(store: &DocStore, dist: u32, phase: &'static str) -> Cell {
    let rep = store.occupancy();
    let nodes = store.node_count();
    Cell {
        dist,
        phase,
        nodes,
        occupancy: rep.occupancy(),
        bytes_per_key: rep.stored_bytes_per_key(nodes),
        logical_bytes_per_key: rep.key_bytes_logical as f64 / nodes.max(1) as f64,
        stored: rep.key_bytes_stored,
        logical: rep.key_bytes_logical,
        leaf_pages: rep.leaf_pages,
    }
}

/// The update mix of `tests/storage_occupancy.rs`: delete a third of the
/// books, re-insert lends, rename topics.
fn churn(store: &DocStore, cfg: &BibConfig) {
    for b in (0..cfg.books).step_by(3) {
        let book = store.element_by_id(&format!("b{b}")).unwrap();
        store.delete_subtree(&book).unwrap();
    }
    for b in (1..cfg.books).step_by(3) {
        let book = store.element_by_id(&format!("b{b}")).unwrap();
        let history = store.element_children(&book).pop().unwrap();
        for i in 0..5 {
            let lend = store
                .insert_element(&history, InsertPos::LastChild, "lend")
                .unwrap();
            store
                .set_attribute(&lend, "person", &format!("p{i}"))
                .unwrap();
        }
    }
    for t in 0..cfg.topics {
        let topic = store.element_by_id(&format!("t{t}")).unwrap();
        store.rename_element(&topic, "subject").unwrap();
    }
}

fn json_cell(c: &Cell) -> String {
    format!(
        "    {{\"dist\": {}, \"phase\": \"{}\", \"nodes\": {}, \"occupancy\": {:.4}, \
         \"stored_bytes_per_key\": {:.3}, \"logical_bytes_per_key\": {:.3}, \
         \"key_bytes_stored\": {}, \"key_bytes_logical\": {}, \"leaf_pages\": {}}}",
        c.dist,
        c.phase,
        c.nodes,
        c.occupancy,
        c.bytes_per_key,
        c.logical_bytes_per_key,
        c.stored,
        c.logical,
        c.leaf_pages
    )
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

fn main() {
    let mut bib_cfg = BibConfig::scaled();
    let mut bib_name = "scaled".to_string();
    let mut dists: Vec<u32> = vec![2, 4, 16];
    let mut updates = false;
    let mut json_path: Option<String> = None;
    let mut check_max: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
        };
        match a.as_str() {
            "--bib" => {
                bib_name = val("size");
                bib_cfg = match bib_name.as_str() {
                    "tiny" => BibConfig::tiny(),
                    "scaled" => BibConfig::scaled(),
                    "paper" => BibConfig::paper(),
                    other => die(&format!("unknown bib size {other}")),
                };
            }
            "--dists" => {
                dists = val("list")
                    .split(',')
                    .map(|d| d.parse().unwrap_or_else(|_| die("bad dist")))
                    .collect();
            }
            "--updates" => updates = true,
            "--json" => json_path = Some(val("path")),
            "--check-max-bytes-per-key" => {
                check_max = Some(val("number").parse().unwrap_or_else(|_| die("bad number")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "options: --bib tiny|scaled|paper --dists a,b,c --updates \
                     --json PATH --check-max-bytes-per-key F"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown option {other}")),
        }
    }
    if dists.is_empty() {
        die("--dists must name at least one dist");
    }

    let mut cells = Vec::new();
    for &dist in &dists {
        let store = DocStore::new(DocStoreConfig {
            dist,
            ..DocStoreConfig::default()
        });
        bib::generate(&store, &bib_cfg);
        cells.push(measure(&store, dist, "build"));
        if updates {
            churn(&store, &bib_cfg);
            cells.push(measure(&store, dist, "updates"));
        }
    }

    println!(
        "\n== storage occupancy / stored bytes per SPLID ({bib_name} bib, front-coded leaves) =="
    );
    println!(
        "{:>6} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "dist", "phase", "nodes", "occupancy", "B/key", "logical B/key", "saving"
    );
    for c in &cells {
        println!(
            "{:>6} {:>8} {:>8} {:>10.3} {:>10.2} {:>12.2} {:>9.1}%",
            c.dist,
            c.phase,
            c.nodes,
            c.occupancy,
            c.bytes_per_key,
            c.logical_bytes_per_key,
            100.0 * (1.0 - c.stored as f64 / c.logical.max(1) as f64)
        );
    }

    if let Some(path) = &json_path {
        let body = format!(
            "{{\n  \"benchmark\": \"occupancy\",\n  \"bib\": \"{bib_name}\",\n  \"cells\": [\n{}\n  ]\n}}\n",
            cells.iter().map(json_cell).collect::<Vec<_>>().join(",\n")
        );
        std::fs::write(path, body).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("\nwrote {path}");
    }

    if let Some(max) = check_max {
        let gate = &cells[0];
        if gate.bytes_per_key > max {
            eprintln!(
                "REGRESSION: dist={} stores {:.2} bytes/key, budget {:.2}",
                gate.dist, gate.bytes_per_key, max
            );
            std::process::exit(1);
        }
        println!(
            "check ok: dist={} stores {:.2} bytes/key <= {:.2}",
            gate.dist, gate.bytes_per_key, max
        );
    }
}
