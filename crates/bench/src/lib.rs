//! # xtc-bench — shared harness for the figure-regeneration binaries
//!
//! One binary per figure of the paper's evaluation section:
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig7`  | Fig. 7 — taDOM3+ under the four isolation levels: throughput and deadlocks vs lock depth |
//! | `fig8`  | Fig. 8 — the *-2PL group: throughput and deadlocks, total and per transaction type |
//! | `fig9`  | Fig. 9 — synopsis of all depth-capable protocols vs lock depth |
//! | `fig10` | Fig. 10 — per-transaction-type throughput (four panels) |
//! | `fig11` | Fig. 11 — CLUSTER2: TAdelBook execution time under all eleven protocols |
//!
//! Every binary accepts `--duration-ms N`, `--runs N`, `--seed N`,
//! `--depths a,b,c`, `--scale F` (multiplies all think/run times),
//! `--paper-scale` (full-size document and paper think times), and
//! `--bib tiny|scaled|paper`.

use std::time::Duration;
use xtc_tamix::{BibConfig, RunReport, TamixParams};

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Run duration per cell (before `scale`).
    pub duration: Duration,
    /// Repetitions per cell, averaged (the paper used 4).
    pub runs: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Lock depths to sweep.
    pub depths: Vec<u32>,
    /// Time multiplier applied to all wall-clock parameters.
    pub scale: f64,
    /// Document size.
    pub bib: BibConfig,
    /// Per-transaction virtual-time deadline budget (`--deadline-ms`);
    /// `None` leaves deadlines off, matching the paper's setting.
    pub txn_deadline: Option<Duration>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            duration: Duration::from_millis(1500),
            runs: 1,
            seed: 42,
            depths: (0..=7).collect(),
            scale: 1.0,
            bib: BibConfig::scaled(),
            txn_deadline: None,
        }
    }
}

impl CommonArgs {
    /// Parses `std::env::args()`; exits with usage on errors.
    pub fn parse() -> CommonArgs {
        let mut out = CommonArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            let mut val = |what: &str| {
                args.next()
                    .unwrap_or_else(|| die(&format!("{a} needs a {what}")))
            };
            match a.as_str() {
                "--duration-ms" => {
                    out.duration = Duration::from_millis(
                        val("number").parse().unwrap_or_else(|_| die("bad number")),
                    )
                }
                "--runs" => out.runs = val("number").parse().unwrap_or_else(|_| die("bad number")),
                "--seed" => out.seed = val("number").parse().unwrap_or_else(|_| die("bad number")),
                "--scale" => out.scale = val("factor").parse().unwrap_or_else(|_| die("bad factor")),
                "--depths" => {
                    out.depths = val("list")
                        .split(',')
                        .map(|d| d.parse().unwrap_or_else(|_| die("bad depth")))
                        .collect()
                }
                "--deadline-ms" => {
                    out.txn_deadline = Some(Duration::from_millis(
                        val("number").parse().unwrap_or_else(|_| die("bad number")),
                    ))
                }
                "--bib" => {
                    out.bib = match val("size").as_str() {
                        "tiny" => BibConfig::tiny(),
                        "scaled" => BibConfig::scaled(),
                        "paper" => BibConfig::paper(),
                        other => die(&format!("unknown bib size {other}")),
                    }
                }
                "--paper-scale" => {
                    // The paper's original setting: 5-minute runs, 2500 ms
                    // waitAfterCommit, 100 ms waitAfterOperation, full doc.
                    out.scale = 50.0;
                    out.duration = Duration::from_millis(6000); // ×50 = 5 min
                    out.runs = 4;
                    out.bib = BibConfig::paper();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --duration-ms N --runs N --seed N --depths a,b,c \
                         --scale F --bib tiny|scaled|paper --deadline-ms N --paper-scale"
                    );
                    std::process::exit(0);
                }
                other => die(&format!("unknown option {other}")),
            }
        }
        out
    }

    /// CLUSTER1 parameters for one cell of a sweep.
    pub fn cluster1(&self, protocol: &str, isolation: xtc_core::IsolationLevel, depth: u32) -> TamixParams {
        let mut p = TamixParams::cluster1(protocol, isolation, depth);
        p.duration = self.duration;
        p.seed = self.seed;
        p.txn_deadline = self.txn_deadline;
        p.scale_time(self.scale)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2)
}

/// Averages the committed counts of repeated runs into a throughput
/// figure normalized to the run duration (committed transactions per
/// run, like the paper's per-5-minute counts).
pub fn avg_committed(reports: &[RunReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.committed() as f64).sum::<f64>() / reports.len() as f64
}

/// Averages deadlock counts.
pub fn avg_deadlocks(reports: &[RunReport]) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(|r| r.deadlocks as f64).sum::<f64>() / reports.len() as f64
}

/// Prints an aligned series table: one row per x value, one column per
/// series — the textual form of one plot panel.
pub fn print_table(title: &str, x_label: &str, xs: &[String], series: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{x_label:>12}");
    for (name, _) in series {
        print!(" {name:>14}");
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>12}");
        for (_, ys) in series {
            match ys.get(i) {
                Some(y) => print!(" {y:>14.1}"),
                None => print!(" {:>14}", "-"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let a = CommonArgs::default();
        assert_eq!(a.depths, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let p = a.cluster1("taDOM3+", xtc_core::IsolationLevel::Repeatable, 3);
        assert_eq!(p.lock_depth, 3);
        assert_eq!(p.total_slots(), 72, "the paper's 72 active transactions");
    }
}
