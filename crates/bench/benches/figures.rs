//! `cargo bench` entry point that regenerates *scaled-down* versions of
//! every figure of the paper's evaluation (Figures 7–11) in one go.
//!
//! For properly sized sweeps use the dedicated binaries:
//! `cargo run -p xtc-bench --release --bin fig7` … `fig11` (see
//! EXPERIMENTS.md). This harness keeps each cell short so the complete
//! set finishes in a few minutes and appears in `bench_output.txt`.

use std::time::Duration;
use xtc_bench::{print_table, CommonArgs};
use xtc_core::IsolationLevel;
use xtc_protocols::ALL_PROTOCOLS;
use xtc_tamix::{run_cluster1, run_cluster2, BibConfig, TxnKind};

fn quick_args() -> CommonArgs {
    CommonArgs {
        duration: Duration::from_millis(700),
        runs: 1,
        seed: 42,
        depths: vec![0, 1, 2, 3, 4, 5, 6, 7],
        scale: 1.0,
        bib: BibConfig::scaled(),
        txn_deadline: None,
    }
}

fn sweep(args: &CommonArgs, proto: &str, iso: IsolationLevel) -> (Vec<f64>, Vec<f64>) {
    let mut th = Vec::new();
    let mut dl = Vec::new();
    for &depth in &args.depths {
        let r = run_cluster1(&args.cluster1(proto, iso, depth), &args.bib);
        eprintln!(
            "figures: {proto} iso={} depth={depth}: committed={} deadlocks={}",
            iso.name(),
            r.committed(),
            r.deadlocks
        );
        th.push(r.committed() as f64);
        dl.push(r.deadlocks as f64);
    }
    (th, dl)
}

fn main() {
    let args = quick_args();
    let xs: Vec<String> = args.depths.iter().map(|d| d.to_string()).collect();

    // ---- Figure 7: taDOM3+ under the four isolation levels ----
    let mut th7 = Vec::new();
    let mut dl7 = Vec::new();
    for iso in IsolationLevel::ALL {
        let (th, dl) = sweep(&args, "taDOM3+", iso);
        th7.push((iso.name().to_uppercase(), th));
        dl7.push((iso.name().to_uppercase(), dl));
    }
    print_table("Figure 7 (left): taDOM3+ throughput", "lock depth", &xs, &th7);
    print_table("Figure 7 (right): taDOM3+ deadlocks", "lock depth", &xs, &dl7);

    // ---- Figure 8: the *-2PL group ----
    let mut th8 = Vec::new();
    let mut ab8 = Vec::new();
    let rows8: Vec<String> = std::iter::once("CLUSTER1".into())
        .chain(
            [TxnKind::Chapter, TxnKind::LendAndReturn, TxnKind::QueryBook, TxnKind::RenameTopic]
                .iter()
                .map(|k| k.name().to_string()),
        )
        .collect();
    for proto in ["Node2PL", "NO2PL", "OO2PL"] {
        let r = run_cluster1(
            &args.cluster1(proto, IsolationLevel::Repeatable, 7),
            &args.bib,
        );
        eprintln!("figures: {proto}: committed={}", r.committed());
        let kinds = [TxnKind::Chapter, TxnKind::LendAndReturn, TxnKind::QueryBook, TxnKind::RenameTopic];
        let mut th = vec![r.committed() as f64];
        let mut ab = vec![r.aborted() as f64];
        for k in kinds {
            th.push(r.committed_of(k) as f64);
            ab.push(r.per_type.get(k.name()).map(|s| s.aborted() as f64).unwrap_or(0.0));
        }
        th8.push((proto.to_string(), th));
        ab8.push((proto.to_string(), ab));
    }
    print_table("Figure 8 (left): *-2PL throughput", "series", &rows8, &th8);
    print_table("Figure 8 (right): *-2PL aborts", "series", &rows8, &ab8);

    // ---- Figures 9 + 10: all depth-capable protocols ----
    let protos9 = [
        "Node2PLa", "IRX", "IRIX", "URIX", "taDOM2", "taDOM2+", "taDOM3", "taDOM3+",
    ];
    let mut reports = Vec::new();
    for proto in protos9 {
        let per_depth: Vec<_> = args
            .depths
            .iter()
            .map(|&d| {
                let r = run_cluster1(&args.cluster1(proto, IsolationLevel::Repeatable, d), &args.bib);
                eprintln!(
                    "figures: {proto} depth={d}: committed={} deadlocks={}",
                    r.committed(),
                    r.deadlocks
                );
                r
            })
            .collect();
        reports.push((proto, per_depth));
    }
    let th9: Vec<(String, Vec<f64>)> = reports
        .iter()
        .map(|(p, rs)| (p.to_string(), rs.iter().map(|r| r.committed() as f64).collect()))
        .collect();
    let dl9: Vec<(String, Vec<f64>)> = reports
        .iter()
        .map(|(p, rs)| (p.to_string(), rs.iter().map(|r| r.deadlocks as f64).collect()))
        .collect();
    print_table("Figure 9 (left): all protocols, throughput", "lock depth", &xs, &th9);
    print_table("Figure 9 (right): all protocols, deadlocks", "lock depth", &xs, &dl9);

    for (panel, kind) in [
        ("a", TxnKind::QueryBook),
        ("b", TxnKind::Chapter),
        ("c", TxnKind::LendAndReturn),
        ("d", TxnKind::RenameTopic),
    ] {
        let series: Vec<(String, Vec<f64>)> = reports
            .iter()
            .map(|(p, rs)| {
                (
                    p.to_string(),
                    rs.iter().map(|r| r.committed_of(kind) as f64).collect(),
                )
            })
            .collect();
        print_table(
            &format!("Figure 10{panel}: {} throughput", kind.name()),
            "lock depth",
            &xs,
            &series,
        );
    }

    // ---- Figure 11: CLUSTER2 ----
    println!("\n== Figure 11: CLUSTER2 — single TAdelBook ==");
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "protocol", "time [µs]", "lock requests", "page reads"
    );
    for proto in ALL_PROTOCOLS {
        let rep = run_cluster2(proto, &args.bib, 2);
        println!(
            "{:>10} {:>12} {:>14} {:>12}",
            rep.protocol,
            rep.duration.as_micros(),
            rep.lock_requests,
            rep.page_reads
        );
    }
}
