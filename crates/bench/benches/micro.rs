//! Criterion micro-benchmarks for the performance-critical primitives the
//! paper's architecture leans on (§3): SPLID operations (the "paramount"
//! cost factor of lock-protocol overhead), B*-tree operations, lock-table
//! throughput, and mode-matrix lookups — plus ablations for the design
//! choices called out in DESIGN.md §6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;
use xtc_lock::{LockClass, LockName, LockTable, LockTarget, TxnRegistry};
use xtc_splid::{decode, encode, LabelAllocator, SplId};
use xtc_storage::{BTree, BTreeConfig, StorageStats};

/// A deep label comparable to the paper's depth-38 measurements.
fn deep_label(depth: usize) -> SplId {
    let alloc = LabelAllocator::new(16);
    let mut cur = SplId::root();
    for _ in 0..depth {
        cur = alloc.first_child(&cur);
    }
    cur
}

fn bench_splid(c: &mut Criterion) {
    let mut g = c.benchmark_group("splid");
    for depth in [4usize, 12, 38] {
        let label = deep_label(depth);
        let encoded = encode(&label);
        g.bench_with_input(BenchmarkId::new("encode", depth), &label, |b, l| {
            b.iter(|| encode(black_box(l)))
        });
        g.bench_with_input(BenchmarkId::new("decode", depth), &encoded, |b, e| {
            b.iter(|| decode(black_box(e)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("ancestors", depth), &label, |b, l| {
            b.iter(|| black_box(l).ancestors().count())
        });
        let other = LabelAllocator::new(16).next_sibling(&label).unwrap();
        g.bench_with_input(BenchmarkId::new("compare", depth), &(label.clone(), other), |b, (a, o)| {
            b.iter(|| black_box(a).cmp(black_box(o)))
        });
    }
    // Encoded size report (the §3.2 claim: 5–10 bytes up to depth 38).
    let l = deep_label(38);
    assert!(encode(&l).len() <= 48);
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.bench_function("insert_sequential_10k", |b| {
        b.iter(|| {
            let t = BTree::with_config(BTreeConfig::default(), StorageStats::default());
            for i in 0u32..10_000 {
                t.insert(format!("key-{i:08}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            t.len()
        })
    });
    let t = BTree::new();
    for i in 0u32..100_000 {
        t.insert(format!("key-{i:08}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    g.bench_function("get_hit_100k", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 100_000;
            t.get(format!("key-{i:08}").as_bytes())
        })
    });
    g.bench_function("range_scan_100", |b| {
        b.iter(|| t.scan_range(b"key-00050000", b"key-00050100").len())
    });
    g.finish();
}

fn bench_lock_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("lock_table");
    let handle = xtc_protocols::build("taDOM3+").unwrap();
    let registry = Arc::new(TxnRegistry::new());
    let table = LockTable::new(handle.families.clone(), registry.clone(), Duration::from_secs(5));
    let nodes: Vec<LockName> = (0..64)
        .map(|i| LockName {
            family: 0,
            target: LockTarget::Node(
                SplId::from_divisions(&[1, 3, 2 * i + 3]).unwrap(),
            ),
        })
        .collect();
    let nr = handle.families[0].mode_named("NR").unwrap();
    g.bench_function("acquire_release_64_nr", |b| {
        b.iter(|| {
            let txn = registry.begin();
            for n in &nodes {
                table.lock(txn, n, nr, LockClass::Long, false).unwrap();
            }
            table.release_all(txn);
            registry.finish(txn);
        })
    });
    let ir = handle.families[0].mode_named("IR").unwrap();
    let sx = handle.families[0].mode_named("SX").unwrap();
    g.bench_function("convert_ir_to_sx", |b| {
        b.iter(|| {
            let txn = registry.begin();
            table.lock(txn, &nodes[0], ir, LockClass::Long, false).unwrap();
            table.lock(txn, &nodes[0], sx, LockClass::Long, false).unwrap();
            table.release_all(txn);
            registry.finish(txn);
        })
    });
    g.finish();
}

fn bench_mode_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("mode_tables");
    g.bench_function("generate_tadom3_plus", |b| {
        b.iter(|| xtc_protocols::build("taDOM3+").unwrap().families[0].len())
    });
    let t = xtc_protocols::build("taDOM3+").unwrap();
    let table = &t.families[0];
    let n = table.len() as u8;
    g.bench_function("compat_lookup_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..n {
                for j in 0..n {
                    acc += u32::from(table.compatible(black_box(i), black_box(j)));
                }
            }
            acc
        })
    });
    g.finish();
}

/// Ablation: the taDOM level lock (LR) vs the MGL per-child fan-out for a
/// getChildNodes of width `w` — lock requests are the cost driver.
fn bench_ablation_level_lock(c: &mut Criterion) {
    use xtc_core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};
    let mut g = c.benchmark_group("ablation_level_lock");
    for width in [8usize, 64] {
        for proto in ["taDOM3+", "URIX"] {
            let db = XtcDb::new(XtcConfig {
                protocol: proto.into(),
                isolation: IsolationLevel::Repeatable,
                lock_depth: 7,
                ..XtcConfig::default()
            });
            let root = db.store().create_root("r").unwrap();
            for _ in 0..width {
                db.store()
                    .insert_element(&root, InsertPos::LastChild, "c")
                    .unwrap();
            }
            g.bench_function(BenchmarkId::new(proto, width), |b| {
                b.iter(|| {
                    let t = db.begin();
                    let kids = t.children(&root).unwrap();
                    t.commit().unwrap();
                    kids.len()
                })
            });
        }
    }
    g.finish();
}

/// Ablation: conversion cost taDOM2 (annex child locks) vs taDOM2+
/// (exact combination mode) — hold LR, then write one child.
fn bench_ablation_conversion(c: &mut Criterion) {
    use xtc_core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};
    let mut g = c.benchmark_group("ablation_conversion");
    for proto in ["taDOM2", "taDOM2+"] {
        let db = XtcDb::new(XtcConfig {
            protocol: proto.into(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 7,
            ..XtcConfig::default()
        });
        let root = db.store().create_root("r").unwrap();
        let mut first = None;
        for _ in 0..32 {
            let e = db
                .store()
                .insert_element(&root, InsertPos::LastChild, "c")
                .unwrap();
            first.get_or_insert(e);
        }
        let target = first.unwrap();
        g.bench_function(BenchmarkId::new(proto, 32), |b| {
            b.iter(|| {
                let t = db.begin();
                let _ = t.children(&root).unwrap(); // LR on root
                t.rename(&target, "d").unwrap(); // forces LR→CX-ish conversion
                t.commit().unwrap();
            })
        });
    }
    g.finish();
}

/// Structural join vs the naive nested loop (§6's SPLID payoff).
fn bench_structural_join(c: &mut Criterion) {
    use xtc_query::join;
    let mut g = c.benchmark_group("structural_join");
    let alloc = LabelAllocator::new(2);
    // 200 ancestors, each with 40 descendants.
    let mut ancestors = Vec::new();
    let mut descendants = Vec::new();
    let root = SplId::root();
    let mut a = alloc.first_child(&root);
    for _ in 0..200 {
        ancestors.push(a.clone());
        let mut d = alloc.first_child(&a);
        for _ in 0..40 {
            descendants.push(d.clone());
            d = alloc.next_sibling(&d).unwrap();
        }
        a = alloc.next_sibling(&a).unwrap();
    }
    descendants.sort();
    g.bench_function("stack_join_200x8000", |b| {
        b.iter(|| join::ancestor_descendant(black_box(&ancestors), black_box(&descendants)).len())
    });
    g.bench_function("naive_join_200x8000", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for d in &descendants {
                for a in &ancestors {
                    if a.is_ancestor_of(d) {
                        n += 1;
                    }
                }
            }
            n
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500)).sample_size(20);
    targets = bench_splid, bench_btree, bench_lock_table, bench_mode_tables,
              bench_ablation_level_lock, bench_ablation_conversion,
              bench_structural_join
);
criterion_main!(benches);
