//! The database handle: storage + lock table + protocol, and transaction
//! creation.

use crate::admission::AdmissionGate;
use crate::error::XtcError;
use crate::mvcc::VersionStore;
use crate::recovery;
use crate::retry::{RetryPolicy, RetryStats};
use crate::txn::Transaction;
use crate::view::StoreView;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_obs::CostKind;
use xtc_lock::{IsolationLevel, LockTable, Protocol, TxnRegistry, VictimPolicy};
use xtc_node::{DocStore, DocStoreConfig};
use xtc_splid::SplId;
use xtc_wal::{Lsn, RecordBody, TxnId, Wal, WalConfig};

/// What the admission gate does with a transaction arriving while the
/// engine is already at [`XtcConfig::max_in_flight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Wait for a slot, bounded by [`XtcConfig::lock_timeout`]; a wait
    /// that times out fails with [`XtcError::AdmissionRejected`].
    #[default]
    Queue,
    /// Fail immediately with [`XtcError::AdmissionRejected`] — the
    /// caller's retry/backoff loop is the queue.
    Reject,
}

/// Configuration of an [`XtcDb`].
#[derive(Debug, Clone)]
pub struct XtcConfig {
    /// Lock protocol name (one of `xtc_protocols::ALL_PROTOCOLS`).
    pub protocol: String,
    /// Default isolation level for new transactions.
    pub isolation: IsolationLevel,
    /// Default lock depth (ignored by protocols without depth support).
    pub lock_depth: u32,
    /// Lock-wait timeout (safety valve; counted as an abort).
    pub lock_timeout: Duration,
    /// Deadlock victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Lock escalation threshold: when a transaction's held-lock count
    /// reaches this value, its subsequent requests use
    /// [`escalated_depth`](XtcConfig::escalated_depth) as the effective
    /// lock depth (coarser subtree locks). `None` disables escalation.
    pub escalation_threshold: Option<usize>,
    /// Effective lock depth after escalation (only depths *shallower*
    /// than the transaction's own depth take effect).
    pub escalated_depth: u32,
    /// Per-transaction lock cache: serve requests already covered by a
    /// held mode without touching the shared lock table. On by default;
    /// disable only to measure the uncached baseline (`lockperf`) or to
    /// cross-check equivalence.
    pub lock_cache: bool,
    /// Storage configuration.
    pub store: DocStoreConfig,
    /// Write-ahead log configuration. `None` (the default) keeps the
    /// pre-WAL behaviour: a volatile database with in-memory undo only.
    /// `Some` turns on ARIES-lite durability: transactions log their work
    /// ahead of page writes, commit forces the log (group commit), and
    /// [`recovery::recover_from`] can rebuild the database after a crash.
    pub wal: Option<WalConfig>,
    /// Per-transaction *virtual-time* deadline budget. Every transaction
    /// continuously charges its simulated costs (page reads, lock waits,
    /// WAL flushes, think time) to a per-transaction frame on the
    /// engine's virtual clock; when the charged total exceeds this
    /// budget, the next lock acquisition, logged mutation, or commit
    /// fails with [`XtcError::DeadlineExceeded`] and the transaction
    /// must abort. Deterministic — the budget is measured in simulated
    /// microseconds, not wall-clock. `None` (the default) disables it.
    pub txn_deadline: Option<Duration>,
    /// Admission control: the maximum number of concurrently admitted
    /// transactions started through [`XtcDb::try_begin`]. Excess
    /// arrivals are queued or rejected per
    /// [`admission`](XtcConfig::admission). `None` (the default)
    /// disables the gate. [`XtcDb::begin`] bypasses it (infallible API).
    pub max_in_flight: Option<usize>,
    /// Policy at the admission gate when `max_in_flight` is reached.
    pub admission: AdmissionPolicy,
    /// Structured tracing configuration. `None` (the default) keeps only
    /// the always-on virtual clock (per-run simulated-time counters, a
    /// few relaxed atomic adds). `Some` additionally records lock, page,
    /// WAL, and transaction events into a lock-free ring buffer with
    /// latency histograms — exportable via [`XtcDb::obs`] as JSON.
    pub obs: Option<xtc_obs::ObsConfig>,
    /// Background writeback cadence. `Some(interval)` spawns a flusher
    /// thread that, every `interval`, publishes the WAL's durable LSN to
    /// the storage layer and writes back every dirty page the durable
    /// prefix covers (`page_lsn <= durable_lsn` — the WAL rule). This
    /// keeps the pool's clean-victim supply ahead of eviction pressure so
    /// the synchronous forced-writeback fallback stays rare, and shrinks
    /// checkpoint stalls (most pages are already clean). `None` (the
    /// default) flushes only at checkpoints.
    pub writeback_interval: Option<Duration>,
}

impl Default for XtcConfig {
    fn default() -> Self {
        XtcConfig {
            protocol: "taDOM3+".to_string(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 4,
            lock_timeout: Duration::from_secs(10),
            victim_policy: VictimPolicy::Youngest,
            escalation_threshold: None,
            escalated_depth: 1,
            lock_cache: true,
            store: DocStoreConfig::default(),
            wal: None,
            txn_deadline: None,
            max_in_flight: None,
            admission: AdmissionPolicy::default(),
            obs: None,
            writeback_interval: None,
        }
    }
}

/// The background flusher: owns the stop flag and join handle; dropping
/// it (with the [`XtcDb`]) signals the thread and waits for it to exit,
/// so no flush races the engine's teardown.
struct WritebackThread {
    stop: Arc<std::sync::atomic::AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl WritebackThread {
    fn spawn(interval: Duration, store: Arc<DocStore>, wal: Option<Arc<Wal>>) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = stop.clone();
        // Sleep in short slices so teardown never waits a full interval.
        let slice = interval.min(Duration::from_millis(5)).max(Duration::from_micros(50));
        let join = std::thread::Builder::new()
            .name("xtc-writeback".into())
            .spawn(move || loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if thread_stop.load(Ordering::Acquire) {
                        return;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                }
                // Without a WAL there is no WAL rule: every dirty page is
                // immediately flushable.
                let durable = wal.as_ref().map(|w| w.durable_lsn()).unwrap_or(u64::MAX);
                store.stats().set_durable_lsn(durable);
                store.flush_all(durable);
            })
            .expect("spawn xtc-writeback");
        WritebackThread {
            stop,
            join: Some(join),
        }
    }
}

impl Drop for WritebackThread {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Release);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The database's logging state: the log itself, the mutex serializing
/// append-and-mutate sequences (so page LSN stamps match the records that
/// cover them), and the active-transaction table checkpoints record.
pub(crate) struct WalHandle {
    pub(crate) wal: Arc<Wal>,
    /// Held across every (append undo, stamp LSN, mutate, append redo)
    /// sequence — the WAL protocol's critical section. Page latches live
    /// below it; the lock-protocol tables above it; no cycles.
    pub(crate) log_mutex: Mutex<()>,
    /// Transactions with a Begin record and no Commit/Abort yet.
    pub(crate) active: Mutex<HashSet<TxnId>>,
}

impl WalHandle {
    fn open(
        config: WalConfig,
        obs: xtc_obs::Obs,
        scope: xtc_failpoint::ScopeId,
    ) -> Result<Self, XtcError> {
        Ok(WalHandle {
            wal: Arc::new(Wal::open_scoped(config, obs, scope)?),
            log_mutex: Mutex::new(()),
            active: Mutex::new(HashSet::new()),
        })
    }
}

/// An embedded XTC database: one XML document, one lock protocol.
pub struct XtcDb {
    store: Arc<DocStore>,
    view: Arc<StoreView>,
    registry: Arc<TxnRegistry>,
    table: Arc<LockTable>,
    protocol: Arc<dyn Protocol>,
    isolation: IsolationLevel,
    lock_depth: u32,
    escalation_threshold: Option<usize>,
    escalated_depth: u32,
    lock_timeout: Duration,
    txn_deadline: Option<Duration>,
    gate: Option<Arc<AdmissionGate>>,
    wal: Option<WalHandle>,
    /// Version chains for snapshot reads — present only when the
    /// configured protocol reads from versions (taMVCC/taOCC).
    versions: Option<Arc<VersionStore>>,
    /// Background flusher ([`XtcConfig::writeback_interval`]); never
    /// read, held so dropping the engine stops and joins the thread.
    #[allow(dead_code)]
    writeback: Option<WritebackThread>,
    obs: xtc_obs::Obs,
    /// This engine's failpoint scope: every fault site in the engine's
    /// stack (lock table, storage, WAL, commit, recovery) evaluates in
    /// it, so chaos can target one document of a catalog.
    failpoint_scope: xtc_failpoint::ScopeId,
}

impl XtcDb {
    /// Opens an empty database with the given configuration.
    ///
    /// # Panics
    /// On an unknown protocol name (use [`XtcDb::try_new`] to handle it).
    pub fn new(config: XtcConfig) -> Self {
        Self::try_new(config).expect("unknown protocol")
    }

    /// Opens an empty database; fails on unknown protocol names.
    pub fn try_new(config: XtcConfig) -> Result<Self, XtcError> {
        let gate = config
            .max_in_flight
            .map(|limit| Arc::new(AdmissionGate::new(limit, config.admission)));
        Self::try_new_gated(config, gate)
    }

    /// Opens an empty database admitting transactions through the given
    /// shared gate (a catalog-wide throttle: hand clones of one
    /// `Arc<AdmissionGate>` to several engines). `None` disables
    /// admission control; `XtcConfig::max_in_flight` is ignored in
    /// favor of the explicit gate.
    pub fn try_new_gated(
        config: XtcConfig,
        gate: Option<Arc<AdmissionGate>>,
    ) -> Result<Self, XtcError> {
        let handle = xtc_protocols::build(&config.protocol)
            .ok_or_else(|| XtcError::UnknownProtocol(config.protocol.clone()))?;
        // One observability handle for the whole engine: the storage
        // pool, the lock table, the WAL, and the transaction layer all
        // charge the same virtual clock and (when configured) the same
        // trace, so per-run accounting is consistent across layers.
        let obs = xtc_obs::Obs::with_config(config.obs.as_ref());
        // One failpoint scope per engine, for the same reason: chaos
        // arming this engine's scope faults this document only. Sites
        // armed in the GLOBAL scope keep firing everywhere.
        let failpoint_scope = xtc_failpoint::next_scope();
        let mut store_config = config.store.clone();
        store_config.obs = obs.clone();
        store_config.failpoint_scope = failpoint_scope;
        let store = Arc::new(DocStore::new(store_config));
        let wal = match config.wal.clone() {
            Some(wal_config) => Some(WalHandle::open(wal_config, obs.clone(), failpoint_scope)?),
            None => None,
        };
        let writeback = config.writeback_interval.map(|interval| {
            WritebackThread::spawn(
                interval,
                store.clone(),
                wal.as_ref().map(|h| h.wal.clone()),
            )
        });
        let versions = handle
            .protocol
            .versioned_reads()
            .then(|| Arc::new(VersionStore::new()));
        let registry = Arc::new(TxnRegistry::new());
        let table = Arc::new(
            LockTable::new(
                handle.families.clone(),
                registry.clone(),
                config.lock_timeout,
            )
            .with_victim_policy(config.victim_policy)
            .with_lock_cache(config.lock_cache)
            .with_obs(obs.clone())
            .with_failpoint_scope(failpoint_scope),
        );
        Ok(XtcDb {
            view: Arc::new(StoreView(store.clone())),
            store,
            registry,
            table,
            protocol: handle.protocol,
            isolation: config.isolation,
            lock_depth: config.lock_depth,
            escalation_threshold: config.escalation_threshold,
            escalated_depth: config.escalated_depth,
            lock_timeout: config.lock_timeout,
            txn_deadline: config.txn_deadline,
            gate,
            wal,
            versions,
            writeback,
            obs,
            failpoint_scope,
        })
    }

    /// The version store, when the configured protocol reads from
    /// versioned snapshots (taMVCC/taOCC); `None` for the pessimistic
    /// contestants.
    pub fn versions(&self) -> Option<&Arc<VersionStore>> {
        self.versions.as_ref()
    }

    /// The underlying node manager — **unlocked** access, intended for
    /// bulk document loading before concurrent transactions start and for
    /// read-only inspection in tests and reports.
    pub fn store(&self) -> &Arc<DocStore> {
        &self.store
    }

    /// Parses an XML document into the (empty) store, unlocked.
    ///
    /// With a WAL configured, a fuzzy checkpoint is taken afterwards so
    /// the bulk load does not have to be logged record-by-record. A
    /// checkpoint failure is swallowed here (the parse itself succeeded
    /// and `XmlError` cannot carry it); call [`XtcDb::checkpoint`]
    /// explicitly when the error matters.
    pub fn load_xml(&self, xml: &str) -> Result<SplId, xtc_node::XmlError> {
        let root = xtc_node::parse_into(&self.store, xml)?;
        let _ = self.checkpoint();
        Ok(root)
    }

    /// The write-ahead log, when one is configured.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref().map(|h| &h.wal)
    }

    pub(crate) fn wal_handle(&self) -> Option<&WalHandle> {
        self.wal.as_ref()
    }

    /// Takes a fuzzy checkpoint: logs the set of active transactions plus
    /// a full snapshot of the document, forces the log, and flushes every
    /// dirty page the durable log now covers. Recovery replays redo only
    /// from the last checkpoint, so periodic checkpoints bound recovery
    /// time. Returns the checkpoint's LSN, or `None` without a WAL.
    ///
    /// "Fuzzy" here means concurrent transactions may keep running: their
    /// in-flight work is captured by the active-transaction list and by
    /// the redo/undo records around the checkpoint, not by the snapshot.
    pub fn checkpoint(&self) -> Result<Option<Lsn>, XtcError> {
        let Some(handle) = &self.wal else {
            return Ok(None);
        };
        let _log = handle.log_mutex.lock();
        let mut active: Vec<TxnId> = handle.active.lock().iter().copied().collect();
        active.sort_unstable();
        let snapshot = self
            .store
            .all_nodes()
            .into_iter()
            .map(|(id, data)| {
                (
                    xtc_splid::encode(&id),
                    recovery::data_to_payload(self.store.vocab(), &data),
                )
            })
            .collect();
        let lsn = handle
            .wal
            .append(&RecordBody::Checkpoint { active, snapshot })?;
        handle.wal.sync_all()?;
        // Publish durability before flushing so eviction's forced
        // writeback also sees the fresh WAL-safe horizon.
        let durable = handle.wal.durable_lsn();
        self.store.stats().set_durable_lsn(durable);
        self.store.flush_all(durable);
        Ok(Some(lsn))
    }

    /// Begins a transaction at the database defaults, bypassing the
    /// admission gate (the historical infallible API). Workloads that
    /// want overload shedding use [`XtcDb::try_begin`].
    pub fn begin(&self) -> Transaction<'_> {
        self.begin_with(self.isolation, self.lock_depth)
    }

    /// Begins a transaction with an explicit isolation level and lock
    /// depth, bypassing the admission gate.
    pub fn begin_with(&self, isolation: IsolationLevel, lock_depth: u32) -> Transaction<'_> {
        let handle = self.registry.begin_handle();
        self.obs.txn_begin(handle.id());
        Transaction::new(self, handle, isolation, lock_depth, false)
    }

    /// Begins a transaction at the database defaults, going through the
    /// admission gate when one is configured
    /// ([`XtcConfig::max_in_flight`]): at capacity, the call queues
    /// (bounded by [`XtcConfig::lock_timeout`]) or fails with
    /// [`XtcError::AdmissionRejected`] per [`XtcConfig::admission`].
    pub fn try_begin(&self) -> Result<Transaction<'_>, XtcError> {
        self.try_begin_with(self.isolation, self.lock_depth)
    }

    /// Begins a transaction with explicit isolation and lock depth,
    /// going through the admission gate when one is configured.
    pub fn try_begin_with(
        &self,
        isolation: IsolationLevel,
        lock_depth: u32,
    ) -> Result<Transaction<'_>, XtcError> {
        let admitted = match &self.gate {
            Some(gate) => {
                gate.admit(self.lock_timeout)?;
                true
            }
            None => false,
        };
        let handle = self.registry.begin_handle();
        self.obs.txn_begin(handle.id());
        Ok(Transaction::new(self, handle, isolation, lock_depth, admitted))
    }

    /// Returns an admission slot (called by the transaction teardown of
    /// admitted transactions).
    pub(crate) fn admission_release(&self) {
        if let Some(gate) = &self.gate {
            gate.release();
        }
    }

    /// Transactions currently holding an admission slot (0 without a
    /// gate) — diagnostics for overload experiments. With a shared gate
    /// this counts admissions across every engine on the gate.
    pub fn admitted_in_flight(&self) -> usize {
        self.gate.as_ref().map(|g| g.in_flight()).unwrap_or(0)
    }

    /// The admission gate, when one is configured — shareable with other
    /// engines via [`XtcDb::try_new_gated`].
    pub fn admission_gate(&self) -> Option<&Arc<AdmissionGate>> {
        self.gate.as_ref()
    }

    /// This engine's failpoint scope: arm sites here
    /// (`xtc_failpoint::configure_in`) to fault this document without
    /// touching other engines in the process.
    pub fn failpoint_scope(&self) -> xtc_failpoint::ScopeId {
        self.failpoint_scope
    }

    /// The per-transaction virtual-time deadline budget, when configured.
    pub fn txn_deadline(&self) -> Option<Duration> {
        self.txn_deadline
    }

    /// The engine's observability handle: the always-on virtual clock
    /// (simulated-time counters) and, when `XtcConfig::obs` was set, the
    /// event trace and latency histograms.
    pub fn obs(&self) -> &xtc_obs::Obs {
        &self.obs
    }

    /// The active lock protocol.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.protocol
    }

    /// The shared lock table (deadlock statistics, request counts).
    pub fn lock_table(&self) -> &Arc<LockTable> {
        &self.table
    }

    /// The transaction registry.
    pub fn registry(&self) -> &Arc<TxnRegistry> {
        &self.registry
    }

    /// The protocol-facing document view.
    pub(crate) fn view(&self) -> &Arc<StoreView> {
        &self.view
    }

    /// Default lock depth.
    pub fn lock_depth(&self) -> u32 {
        self.lock_depth
    }

    /// Default isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Held-lock count at which transactions escalate to coarser locks
    /// (`None` = escalation disabled).
    pub fn escalation_threshold(&self) -> Option<usize> {
        self.escalation_threshold
    }

    /// Effective lock depth after escalation.
    pub fn escalated_depth(&self) -> u32 {
        self.escalated_depth
    }

    /// Runs a transaction closure under the retry policy: begins a fresh
    /// transaction per attempt, commits on `Ok`, aborts on `Err`, and
    /// retries [retryable](XtcError::is_retryable) failures (deadlock
    /// victim, lock timeout, plan races, injected faults) after a
    /// jittered exponential backoff, until the policy's attempt or
    /// deadline budget runs out.
    ///
    /// The closure must be restartable: it sees a brand-new transaction
    /// each attempt, and any side effects outside the transaction (its
    /// captured state) survive aborted attempts.
    ///
    /// Attempts go through the admission gate ([`XtcDb::try_begin`]);
    /// an [`XtcError::AdmissionRejected`] counts as a retryable abort.
    /// Each attempt's charged virtual time plus every backoff pause
    /// accumulates into [`RetryStats::vt_elapsed_us`], and the loop
    /// stops retrying once [`RetryPolicy::max_elapsed_us`] would be
    /// exceeded — the cross-attempt face of the per-attempt
    /// [`XtcConfig::txn_deadline`].
    pub fn run_retrying<T>(
        &self,
        policy: &RetryPolicy,
        mut body: impl FnMut(&Transaction<'_>) -> Result<T, XtcError>,
    ) -> (Result<T, XtcError>, RetryStats) {
        let started = Instant::now();
        let mut stats = RetryStats::default();
        loop {
            stats.attempts += 1;
            let (result, salt) = match self.try_begin() {
                Ok(txn) => {
                    let salt = txn.id();
                    let result = match body(&txn) {
                        Ok(v) => txn.commit().map(|()| v),
                        Err(e) => {
                            txn.abort();
                            Err(e)
                        }
                    };
                    // Commit and abort both pop the transaction's frame;
                    // pick its totals up here and charge them against
                    // the cross-attempt virtual-time budget.
                    if let Some((_, vt)) = self.obs.take_last_txn_vt() {
                        stats.vt_elapsed_us =
                            stats.vt_elapsed_us.saturating_add(vt.total_us());
                    }
                    (result, salt)
                }
                // Rejected at the gate: no transaction, no id — salt the
                // jitter with the attempt counter instead.
                Err(e) => (Err(e), stats.attempts as u64),
            };
            match result {
                Ok(v) => {
                    stats.committed_after_retry = stats.attempts > 1;
                    return (Ok(v), stats);
                }
                Err(e) if e.is_retryable() && stats.attempts < policy.max_attempts.max(1) => {
                    stats.count_abort(&e);
                    let delay = policy.delay(stats.attempts - 1, salt);
                    let delay_us = delay.as_micros() as u64;
                    if let Some(budget) = policy.deadline {
                        if started.elapsed() + delay >= budget {
                            return (Err(e), stats);
                        }
                    }
                    if let Some(budget_us) = policy.max_elapsed_us {
                        if stats.vt_elapsed_us.saturating_add(delay_us) >= budget_us {
                            return (Err(e), stats);
                        }
                    }
                    std::thread::sleep(delay);
                    self.obs.charge(CostKind::RetryBackoff, delay_us);
                    stats.vt_elapsed_us = stats.vt_elapsed_us.saturating_add(delay_us);
                    stats.backoff_total += delay;
                }
                Err(e) => return (Err(e), stats),
            }
        }
    }
}
