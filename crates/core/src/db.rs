//! The database handle: storage + lock table + protocol, and transaction
//! creation.

use crate::error::XtcError;
use crate::retry::{RetryPolicy, RetryStats};
use crate::txn::Transaction;
use crate::view::StoreView;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xtc_lock::{IsolationLevel, LockTable, Protocol, TxnRegistry, VictimPolicy};
use xtc_node::{DocStore, DocStoreConfig};
use xtc_splid::SplId;

/// Configuration of an [`XtcDb`].
#[derive(Debug, Clone)]
pub struct XtcConfig {
    /// Lock protocol name (one of `xtc_protocols::ALL_PROTOCOLS`).
    pub protocol: String,
    /// Default isolation level for new transactions.
    pub isolation: IsolationLevel,
    /// Default lock depth (ignored by protocols without depth support).
    pub lock_depth: u32,
    /// Lock-wait timeout (safety valve; counted as an abort).
    pub lock_timeout: Duration,
    /// Deadlock victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Lock escalation threshold: when a transaction's held-lock count
    /// reaches this value, its subsequent requests use
    /// [`escalated_depth`](XtcConfig::escalated_depth) as the effective
    /// lock depth (coarser subtree locks). `None` disables escalation.
    pub escalation_threshold: Option<usize>,
    /// Effective lock depth after escalation (only depths *shallower*
    /// than the transaction's own depth take effect).
    pub escalated_depth: u32,
    /// Storage configuration.
    pub store: DocStoreConfig,
}

impl Default for XtcConfig {
    fn default() -> Self {
        XtcConfig {
            protocol: "taDOM3+".to_string(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 4,
            lock_timeout: Duration::from_secs(10),
            victim_policy: VictimPolicy::Youngest,
            escalation_threshold: None,
            escalated_depth: 1,
            store: DocStoreConfig::default(),
        }
    }
}

/// An embedded XTC database: one XML document, one lock protocol.
pub struct XtcDb {
    store: Arc<DocStore>,
    view: Arc<StoreView>,
    registry: Arc<TxnRegistry>,
    table: Arc<LockTable>,
    protocol: Arc<dyn Protocol>,
    isolation: IsolationLevel,
    lock_depth: u32,
    escalation_threshold: Option<usize>,
    escalated_depth: u32,
}

impl XtcDb {
    /// Opens an empty database with the given configuration.
    ///
    /// # Panics
    /// On an unknown protocol name (use [`XtcDb::try_new`] to handle it).
    pub fn new(config: XtcConfig) -> Self {
        Self::try_new(config).expect("unknown protocol")
    }

    /// Opens an empty database; fails on unknown protocol names.
    pub fn try_new(config: XtcConfig) -> Result<Self, XtcError> {
        let handle = xtc_protocols::build(&config.protocol)
            .ok_or_else(|| XtcError::UnknownProtocol(config.protocol.clone()))?;
        let store = Arc::new(DocStore::new(config.store.clone()));
        let registry = Arc::new(TxnRegistry::new());
        let table = Arc::new(
            LockTable::new(
                handle.families.clone(),
                registry.clone(),
                config.lock_timeout,
            )
            .with_victim_policy(config.victim_policy),
        );
        Ok(XtcDb {
            view: Arc::new(StoreView(store.clone())),
            store,
            registry,
            table,
            protocol: handle.protocol,
            isolation: config.isolation,
            lock_depth: config.lock_depth,
            escalation_threshold: config.escalation_threshold,
            escalated_depth: config.escalated_depth,
        })
    }

    /// The underlying node manager — **unlocked** access, intended for
    /// bulk document loading before concurrent transactions start and for
    /// read-only inspection in tests and reports.
    pub fn store(&self) -> &Arc<DocStore> {
        &self.store
    }

    /// Parses an XML document into the (empty) store, unlocked.
    pub fn load_xml(&self, xml: &str) -> Result<SplId, xtc_node::XmlError> {
        xtc_node::parse_into(&self.store, xml)
    }

    /// Begins a transaction at the database defaults.
    pub fn begin(&self) -> Transaction<'_> {
        self.begin_with(self.isolation, self.lock_depth)
    }

    /// Begins a transaction with an explicit isolation level and lock
    /// depth.
    pub fn begin_with(&self, isolation: IsolationLevel, lock_depth: u32) -> Transaction<'_> {
        let id = self.registry.begin();
        Transaction::new(self, id, isolation, lock_depth)
    }

    /// The active lock protocol.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.protocol
    }

    /// The shared lock table (deadlock statistics, request counts).
    pub fn lock_table(&self) -> &Arc<LockTable> {
        &self.table
    }

    /// The transaction registry.
    pub fn registry(&self) -> &Arc<TxnRegistry> {
        &self.registry
    }

    /// The protocol-facing document view.
    pub(crate) fn view(&self) -> &Arc<StoreView> {
        &self.view
    }

    /// Default lock depth.
    pub fn lock_depth(&self) -> u32 {
        self.lock_depth
    }

    /// Default isolation level.
    pub fn isolation(&self) -> IsolationLevel {
        self.isolation
    }

    /// Held-lock count at which transactions escalate to coarser locks
    /// (`None` = escalation disabled).
    pub fn escalation_threshold(&self) -> Option<usize> {
        self.escalation_threshold
    }

    /// Effective lock depth after escalation.
    pub fn escalated_depth(&self) -> u32 {
        self.escalated_depth
    }

    /// Runs a transaction closure under the retry policy: begins a fresh
    /// transaction per attempt, commits on `Ok`, aborts on `Err`, and
    /// retries [retryable](XtcError::is_retryable) failures (deadlock
    /// victim, lock timeout, plan races, injected faults) after a
    /// jittered exponential backoff, until the policy's attempt or
    /// deadline budget runs out.
    ///
    /// The closure must be restartable: it sees a brand-new transaction
    /// each attempt, and any side effects outside the transaction (its
    /// captured state) survive aborted attempts.
    pub fn run_retrying<T>(
        &self,
        policy: &RetryPolicy,
        mut body: impl FnMut(&Transaction<'_>) -> Result<T, XtcError>,
    ) -> (Result<T, XtcError>, RetryStats) {
        let started = Instant::now();
        let mut stats = RetryStats::default();
        loop {
            stats.attempts += 1;
            let txn = self.begin();
            let salt = txn.id();
            let result = match body(&txn) {
                Ok(v) => txn.commit().map(|()| v),
                Err(e) => {
                    txn.abort();
                    Err(e)
                }
            };
            match result {
                Ok(v) => {
                    stats.committed_after_retry = stats.attempts > 1;
                    return (Ok(v), stats);
                }
                Err(e) if e.is_retryable() && stats.attempts < policy.max_attempts.max(1) => {
                    stats.count_abort(&e);
                    let delay = policy.delay(stats.attempts - 1, salt);
                    if let Some(budget) = policy.deadline {
                        if started.elapsed() + delay >= budget {
                            return (Err(e), stats);
                        }
                    }
                    std::thread::sleep(delay);
                    stats.backoff_total += delay;
                }
                Err(e) => return (Err(e), stats),
            }
        }
    }
}
