//! Transaction retry with exponential backoff: the fault-tolerance layer
//! over the lock protocols' abort-heavy concurrency control.
//!
//! Every protocol in the contest resolves deadlocks by aborting a victim,
//! and the paper's TaMix clients simply restart aborted transactions. This
//! module makes that restart loop a first-class, configurable primitive:
//! [`RetryPolicy`] bounds the attempts (count, per-wait backoff envelope,
//! total deadline) and [`XtcDb::run_retrying`](crate::XtcDb::run_retrying)
//! re-executes a transaction closure until it commits or the budget is
//! exhausted, reporting what happened in [`RetryStats`].
//!
//! Backoff: attempt `n` sleeps a uniformly jittered duration drawn from
//! `[base, envelope(n)]` where `envelope(n) = min(cap, base·multiplier^n)`.
//! The envelope is monotonically non-decreasing and never exceeds `cap`;
//! jitter decorrelates transactions that aborted each other so they do
//! not re-collide in lockstep. The jitter stream is seeded — a fixed
//! `(seed, salt)` reproduces the exact same delays.

use crate::error::XtcError;
use std::time::Duration;

/// Bounds and shape of the retry loop.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (1 = no retries). Must be at least 1.
    pub max_attempts: u32,
    /// Smallest backoff before any retry.
    pub base: Duration,
    /// Largest backoff before any retry (envelope ceiling).
    pub cap: Duration,
    /// Envelope growth factor per attempt (≥ 1.0 for exponential
    /// backoff; 1.0 degenerates to constant-with-jitter).
    pub multiplier: f64,
    /// Total wall-clock budget across all attempts and backoffs. When
    /// exceeded, the last abort error is returned instead of retrying.
    pub deadline: Option<Duration>,
    /// Total *virtual-time* budget (microseconds) across all attempts
    /// and backoffs, measured on the engine's virtual clock: each
    /// attempt's charged per-transaction time plus every backoff pause.
    /// Keeps a retried transaction with a `txn_deadline` from spending,
    /// across attempts, more than the caller's end-to-end budget. When
    /// exceeded, the last abort error is returned instead of retrying.
    pub max_elapsed_us: Option<u64>,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(64),
            multiplier: 2.0,
            deadline: None,
            max_elapsed_us: None,
            seed: 0,
        }
    }
}

/// SplitMix64 step — the jitter stream's generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// Convenience constructor with the given attempt bound and default
    /// backoff shape.
    pub fn with_max_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff ceiling before retry number `attempt`
    /// (0-based): `min(cap, base·multiplier^attempt)`, monotonically
    /// non-decreasing in `attempt`.
    pub fn envelope(&self, attempt: u32) -> Duration {
        let grown = self.base.as_secs_f64() * self.multiplier.max(1.0).powi(attempt as i32);
        // f64 overflow saturates to the cap.
        if !grown.is_finite() || grown >= self.cap.as_secs_f64() {
            self.cap.max(self.base)
        } else {
            Duration::from_secs_f64(grown).max(self.base)
        }
    }

    /// The jittered delay before retry number `attempt` (0-based):
    /// uniform in `[base, envelope(attempt)]`, drawn deterministically
    /// from `(seed, salt, attempt)`. `salt` decorrelates concurrent
    /// retry loops sharing one policy (callers pass the transaction id).
    pub fn delay(&self, attempt: u32, salt: u64) -> Duration {
        let lo = self.base.min(self.cap);
        let hi = self.envelope(attempt);
        if hi <= lo {
            return lo;
        }
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
            .wrapping_add((attempt as u64) << 32);
        let r = (splitmix64(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        lo + Duration::from_secs_f64((hi - lo).as_secs_f64() * r)
    }
}

/// What one [`XtcDb::run_retrying`](crate::XtcDb::run_retrying) call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts made (1 = first try succeeded or failed terminally).
    pub attempts: u32,
    /// Aborts classified as deadlock (victim of either detector path).
    pub deadlock_aborts: u32,
    /// Aborts classified as lock-wait timeout.
    pub timeout_aborts: u32,
    /// Other retryable aborts (plan races, injected faults).
    pub other_retryable_aborts: u32,
    /// Total time slept in backoff.
    pub backoff_total: Duration,
    /// Virtual microseconds the whole loop consumed: per-attempt charged
    /// transaction time plus backoff pauses (the quantity
    /// [`RetryPolicy::max_elapsed_us`] bounds).
    pub vt_elapsed_us: u64,
    /// `true` when the run committed on attempt 2 or later.
    pub committed_after_retry: bool,
}

impl RetryStats {
    /// All retryable aborts the loop absorbed.
    pub fn retried(&self) -> u32 {
        self.deadlock_aborts + self.timeout_aborts + self.other_retryable_aborts
    }

    /// Folds another run's stats into this accumulator.
    pub fn merge(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.deadlock_aborts += other.deadlock_aborts;
        self.timeout_aborts += other.timeout_aborts;
        self.other_retryable_aborts += other.other_retryable_aborts;
        self.backoff_total += other.backoff_total;
        self.vt_elapsed_us = self.vt_elapsed_us.saturating_add(other.vt_elapsed_us);
        self.committed_after_retry |= other.committed_after_retry;
    }

    /// Classifies one retryable abort.
    pub(crate) fn count_abort(&mut self, err: &XtcError) {
        use xtc_lock::LockError;
        match err {
            e if e.is_deadlock() => self.deadlock_aborts += 1,
            XtcError::Lock(LockError::Timeout) | XtcError::DeadlineExceeded { .. } => {
                self.timeout_aborts += 1
            }
            _ => self.other_retryable_aborts += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_monotone_and_capped() {
        let p = RetryPolicy::default();
        let mut prev = Duration::ZERO;
        for attempt in 0..40 {
            let e = p.envelope(attempt);
            assert!(e >= prev, "envelope must not shrink");
            assert!(e <= p.cap.max(p.base), "envelope must respect the cap");
            prev = e;
        }
        assert_eq!(p.envelope(39), p.cap, "envelope saturates at the cap");
    }

    #[test]
    fn delay_is_deterministic_per_seed_and_salt() {
        let p = RetryPolicy {
            seed: 99,
            ..RetryPolicy::default()
        };
        assert_eq!(p.delay(3, 7), p.delay(3, 7));
        // Different salts decorrelate (overwhelmingly likely to differ).
        assert_ne!(p.delay(3, 7), p.delay(3, 8));
    }
}
