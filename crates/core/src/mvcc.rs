//! Multi-version storage for the versioned contest entries (taMVCC and
//! taOCC, protocols #12/#13).
//!
//! The pessimistic contestants serialize long readers against writers:
//! a CLUSTER2 reader holding shared locks over the whole document blocks
//! every update until it commits. The versioned protocols break that
//! coupling with *snapshot reads*: a transaction registers a snapshot
//! stamp at begin, reads resolve against the [`VersionStore`] at that
//! stamp without touching the lock table, and writers (which still take
//! the delegated taDOM3+ exclusive locks) publish *pre-images* here so
//! concurrent snapshots can reconstruct the state they began under.
//!
//! Design:
//!
//! - **Version chains** are keyed by SPLID. Each entry stores the
//!   pre-image of one logged mutation (the same logical undo record the
//!   WAL carries), a stamp (pending transaction id, or the commit stamp
//!   once the writer commits), and — when a WAL is configured — the
//!   commit LSN, which keys recovery's chain rebuild.
//! - **Visibility**: an entry is visible to `(snapshot, txn)` iff it is
//!   the transaction's own pending write or committed with
//!   `stamp <= snapshot`. An *invisible* entry means the mutation
//!   happened after the snapshot, so its pre-image is the state the
//!   snapshot must see. When several invisible entries affect the same
//!   facet of a node, the oldest one (smallest global push sequence)
//!   wins — writers of one item are serialized by their exclusive
//!   locks, so push order is modification order.
//! - **First-updater-wins**: pushing a write fails with
//!   [`XtcError::ValidationFailed`] when a conflicting entry is already
//!   committed past the writer's snapshot (or pending for another
//!   transaction) — snapshot-isolation write-write conflict detection.
//! - **Watermark GC**: snapshots are refcounted; entries committed at or
//!   below the oldest active snapshot are visible to every current and
//!   future reader, so their pre-images are pruned.
//!
//! The optimistic protocol (taOCC) additionally records a read set
//! ([`ReadKey`]) and validates it at commit: any conflicting entry that
//! appeared after the snapshot aborts the transaction (retryable — the
//! contention manager is the seeded-backoff [`crate::RetryPolicy`]).

use crate::error::XtcError;
use crate::recovery;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet};
use xtc_node::{DocStore, NodeData};
use xtc_splid::SplId;
use xtc_storage::Vocabulary;
use xtc_wal::{Lsn, TxnId, UndoOp};

/// One tracked read of an optimistic transaction, at the granularity the
/// meta-lock interface distinguishes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReadKey {
    /// A single node was read (content, name, record, navigation target).
    Node(SplId),
    /// A node's direct child list was read (`getChildNodes`).
    Level(SplId),
    /// A whole subtree was read (`getFragmentNodes`-style).
    Tree(SplId),
}

/// Stamp of one version entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stamp {
    /// The writer is still running.
    Pending(TxnId),
    /// The writer committed at this stamp (monotonic commit clock; after
    /// recovery, the commit LSN).
    Committed(u64),
}

/// The pre-image one mutation displaced.
#[derive(Debug, Clone)]
enum Pre {
    /// A content update: the text/attribute value before the write (the
    /// entry is keyed at the content-bearing Text/Attribute node).
    Content(String),
    /// A rename: the element name before the write.
    Name(String),
    /// A subtree insert: the subtree did not exist before the write (the
    /// entry is keyed at the inserted root).
    Inserted,
    /// A subtree delete: the captured nodes existed before the write.
    Deleted(Vec<(SplId, NodeData)>),
}

/// One version-chain entry.
#[derive(Debug, Clone)]
struct Entry {
    /// Global push order — modification order for any single item,
    /// because same-item writers hold exclusive locks.
    seq: u64,
    stamp: Stamp,
    /// Commit LSN of the writer, when a WAL is configured. Keys the
    /// recovery rebuild.
    lsn: Option<Lsn>,
    pre: Pre,
}

impl Entry {
    /// Visible entries describe history the snapshot already includes;
    /// invisible entries carry the pre-image the snapshot must see.
    fn visible(&self, snapshot: u64, me: TxnId) -> bool {
        match self.stamp {
            Stamp::Pending(t) => t == me,
            Stamp::Committed(c) => c <= snapshot,
        }
    }

    /// A write that violates first-updater-wins / OCC validation against
    /// `(snapshot, me)`.
    fn conflicts(&self, snapshot: u64, me: TxnId) -> bool {
        match self.stamp {
            Stamp::Pending(t) => t != me,
            Stamp::Committed(c) => c > snapshot,
        }
    }
}

#[derive(Default)]
struct Inner {
    /// Version chains, keyed by the mutated node (content/rename), the
    /// inserted root, or the deleted root.
    chains: HashMap<SplId, Vec<Entry>>,
    /// Active snapshot stamps with refcounts; the smallest key is the GC
    /// watermark.
    snapshots: BTreeMap<u64, usize>,
    /// Commit clock: the stamp of the most recent committed writer.
    clock: u64,
    /// Global push sequence.
    next_seq: u64,
    /// Entries pruned by watermark GC (stat).
    pruned: u64,
    /// Entries reconstructed by recovery (stat).
    rebuilt: u64,
}

impl Inner {
    fn watermark(&self) -> u64 {
        self.snapshots.keys().next().copied().unwrap_or(self.clock)
    }

    fn prune(&mut self) {
        let watermark = self.watermark();
        let mut pruned = 0u64;
        self.chains.retain(|_, entries| {
            entries.retain(|e| {
                let keep = match e.stamp {
                    Stamp::Pending(_) => true,
                    Stamp::Committed(c) => c > watermark,
                };
                if !keep {
                    pruned += 1;
                }
                keep
            });
            !entries.is_empty()
        });
        self.pruned += pruned;
    }

    fn push(&mut self, stamp: Stamp, lsn: Option<Lsn>, key: SplId, pre: Pre) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.chains.entry(key).or_default().push(Entry {
            seq,
            stamp,
            lsn,
            pre,
        });
    }
}

/// Counters of a [`VersionStore`], for reports and test assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionStats {
    /// Nodes with at least one live version entry.
    pub chains: usize,
    /// Live version entries across all chains.
    pub entries: usize,
    /// Entries removed by watermark GC so far.
    pub pruned: u64,
    /// Entries reconstructed by crash recovery.
    pub rebuilt: u64,
    /// Current commit-clock value.
    pub clock: u64,
    /// Current GC watermark (oldest active snapshot, or the clock).
    pub watermark: u64,
    /// Distinct snapshot stamps currently registered.
    pub active_snapshots: usize,
}

/// The version store one versioned-protocol engine carries. See the
/// module docs for the design.
#[derive(Default)]
pub struct VersionStore {
    inner: Mutex<Inner>,
}

/// Converts one logical undo record into its version-chain form,
/// re-interning captured names into the engine's vocabulary.
fn entry_from_undo(vocab: &Vocabulary, op: &UndoOp) -> Option<(SplId, Pre)> {
    match op {
        UndoOp::Content { node, old } => {
            Some((xtc_splid::decode(node).ok()?, Pre::Content(old.clone())))
        }
        UndoOp::Rename { node, old } => {
            Some((xtc_splid::decode(node).ok()?, Pre::Name(old.clone())))
        }
        // The undo of an insert is a delete: the operation inserted here.
        UndoOp::Delete { root } => Some((xtc_splid::decode(root).ok()?, Pre::Inserted)),
        // The undo of a delete restores the capture: these nodes existed.
        UndoOp::Restore { nodes } => {
            let decoded: Vec<(SplId, NodeData)> = nodes
                .iter()
                .filter_map(|(enc, payload)| {
                    xtc_splid::decode(enc)
                        .ok()
                        .map(|id| (id, recovery::payload_to_data(vocab, payload)))
                })
                .collect();
            let root = decoded.first()?.0.clone();
            Some((root, Pre::Deleted(decoded)))
        }
    }
}

impl VersionStore {
    /// An empty version store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a snapshot at the current commit clock. The stamp and
    /// the clock are read under one lock, so a concurrent committer is
    /// either entirely visible or entirely invisible to the snapshot.
    pub fn register_snapshot(&self) -> u64 {
        let mut inner = self.inner.lock();
        let stamp = inner.clock;
        *inner.snapshots.entry(stamp).or_insert(0) += 1;
        stamp
    }

    /// Releases one registration of `snapshot` and prunes entries the
    /// advanced watermark no longer needs.
    pub fn release_snapshot(&self, snapshot: u64) {
        let mut inner = self.inner.lock();
        if let Some(count) = inner.snapshots.get_mut(&snapshot) {
            *count -= 1;
            if *count == 0 {
                inner.snapshots.remove(&snapshot);
            }
        }
        inner.prune();
    }

    /// Publishes the pre-image of one logged mutation as a pending entry,
    /// enforcing first-updater-wins: a conflicting entry committed past
    /// the writer's snapshot (or pending for another transaction) fails
    /// the write with [`XtcError::ValidationFailed`] before the store is
    /// touched.
    pub(crate) fn push_write(
        &self,
        me: TxnId,
        snapshot: u64,
        vocab: &Vocabulary,
        op: &UndoOp,
    ) -> Result<(), XtcError> {
        let Some((key, pre)) = entry_from_undo(vocab, op) else {
            return Ok(());
        };
        let mut inner = self.inner.lock();
        match &pre {
            Pre::Content(_) | Pre::Name(_) => {
                if let Some(entries) = inner.chains.get(&key) {
                    if entries.iter().any(|e| e.conflicts(snapshot, me)) {
                        return Err(XtcError::ValidationFailed);
                    }
                }
            }
            Pre::Deleted(_) => {
                // Deleting a subtree conflicts with any post-snapshot
                // write inside it.
                let doomed = |k: &SplId| key == *k || key.is_ancestor_of(k);
                if inner.chains.iter().any(|(k, entries)| {
                    doomed(k) && entries.iter().any(|e| e.conflicts(snapshot, me))
                }) {
                    return Err(XtcError::ValidationFailed);
                }
            }
            // Inserts create fresh labels; snapshot isolation admits them
            // without a check (phantoms are the OCC read-set's job).
            Pre::Inserted => {}
        }
        inner.push(Stamp::Pending(me), None, key, pre);
        Ok(())
    }

    /// Stamps all of `me`'s pending entries committed at the next clock
    /// tick, carrying the commit LSN for recovery.
    pub(crate) fn commit(&self, me: TxnId, lsn: Option<Lsn>) {
        let mut inner = self.inner.lock();
        let stamp = inner.clock + 1;
        let mut stamped = false;
        for entries in inner.chains.values_mut() {
            for e in entries.iter_mut() {
                if e.stamp == Stamp::Pending(me) {
                    e.stamp = Stamp::Committed(stamp);
                    e.lsn = lsn;
                    stamped = true;
                }
            }
        }
        if stamped {
            inner.clock = stamp;
        }
        inner.prune();
    }

    /// Discards all of `me`'s pending entries (the store mutations have
    /// been rolled back by the undo replay; the pre-images no longer
    /// describe anything).
    pub(crate) fn abort(&self, me: TxnId) {
        let mut inner = self.inner.lock();
        for entries in inner.chains.values_mut() {
            entries.retain(|e| e.stamp != Stamp::Pending(me));
        }
        inner.chains.retain(|_, entries| !entries.is_empty());
    }

    /// Validates an optimistic transaction's read set at commit: counts
    /// conflicting entries (committed past the snapshot, or pending for
    /// another transaction) that affect any tracked read. A non-zero
    /// count means the transaction must abort.
    pub(crate) fn validate(&self, me: TxnId, snapshot: u64, reads: &HashSet<ReadKey>) -> u64 {
        let inner = self.inner.lock();
        let mut conflicts = 0u64;
        for (key, entries) in &inner.chains {
            for e in entries.iter().filter(|e| e.conflicts(snapshot, me)) {
                if reads.iter().any(|r| entry_affects_read(key, e, r)) {
                    conflicts += 1;
                }
            }
        }
        conflicts
    }

    /// Rebuilds committed chains from recovered winner records: each
    /// `(commit LSN, undo record)` pair becomes an entry committed at a
    /// stamp equal to its commit LSN, then the watermark (no snapshots
    /// survive a crash) prunes everything — the chains recover *to the
    /// committed watermark*, and the clock continues from the highest
    /// commit LSN so post-recovery stamps stay monotonic.
    pub(crate) fn rebuild_committed(&self, vocab: &Vocabulary, winners: &[(Lsn, UndoOp)]) {
        let mut inner = self.inner.lock();
        for (commit_lsn, op) in winners {
            if let Some((key, pre)) = entry_from_undo(vocab, op) {
                inner.push(Stamp::Committed(*commit_lsn), Some(*commit_lsn), key, pre);
                inner.rebuilt += 1;
                inner.clock = inner.clock.max(*commit_lsn);
            }
        }
        inner.prune();
    }

    /// Current counters.
    pub fn stats(&self) -> VersionStats {
        let inner = self.inner.lock();
        VersionStats {
            chains: inner.chains.len(),
            entries: inner.chains.values().map(Vec::len).sum(),
            pruned: inner.pruned,
            rebuilt: inner.rebuilt,
            clock: inner.clock,
            watermark: inner.watermark(),
            active_snapshots: inner.snapshots.len(),
        }
    }

    // ---- snapshot reads -------------------------------------------------

    /// Whether `n` existed at the snapshot.
    pub(crate) fn exists_at(&self, store: &DocStore, n: &SplId, snapshot: u64, me: TxnId) -> bool {
        let inner = self.inner.lock();
        exists_at(&inner, store, n, snapshot, me)
    }

    /// Node record of `n` at the snapshot.
    pub(crate) fn data_at(
        &self,
        store: &DocStore,
        n: &SplId,
        snapshot: u64,
        me: TxnId,
    ) -> Option<NodeData> {
        let inner = self.inner.lock();
        data_at(&inner, store, n, snapshot, me)
    }

    /// Element/attribute name of `n` at the snapshot.
    pub(crate) fn name_at(
        &self,
        store: &DocStore,
        n: &SplId,
        snapshot: u64,
        me: TxnId,
    ) -> Option<String> {
        let inner = self.inner.lock();
        name_at(&inner, store, n, snapshot, me)
    }

    /// Text/attribute content of `n` at the snapshot.
    pub(crate) fn text_at(
        &self,
        store: &DocStore,
        n: &SplId,
        snapshot: u64,
        me: TxnId,
    ) -> Option<String> {
        let inner = self.inner.lock();
        text_at(&inner, store, n, snapshot, me)
    }

    /// Direct children of `n` at the snapshot, in document order.
    pub(crate) fn children_at(
        &self,
        store: &DocStore,
        n: &SplId,
        snapshot: u64,
        me: TxnId,
    ) -> Vec<SplId> {
        let inner = self.inner.lock();
        children_at(&inner, store, n, snapshot, me)
    }

    /// The whole subtree under `n` (inclusive) at the snapshot, in
    /// document order.
    pub(crate) fn subtree_at(
        &self,
        store: &DocStore,
        n: &SplId,
        snapshot: u64,
        me: TxnId,
    ) -> Vec<(SplId, NodeData)> {
        let inner = self.inner.lock();
        let mut out = Vec::new();
        collect_subtree(&inner, store, n, snapshot, me, &mut out);
        out
    }
}

/// Whether one conflicting entry invalidates one tracked read.
fn entry_affects_read(key: &SplId, e: &Entry, read: &ReadKey) -> bool {
    match read {
        ReadKey::Node(n) => match &e.pre {
            Pre::Content(_) => key == n || *n == key.reserved_child(),
            Pre::Name(_) => key == n,
            Pre::Inserted => key == n || key.is_ancestor_of(n),
            Pre::Deleted(nodes) => nodes.iter().any(|(m, _)| m == n),
        },
        // A child list changes only through structural writes at or
        // around the level.
        ReadKey::Level(n) => match &e.pre {
            Pre::Content(_) | Pre::Name(_) => false,
            Pre::Inserted => key.parent().as_ref() == Some(n) || key == n || key.is_ancestor_of(n),
            Pre::Deleted(nodes) => nodes
                .iter()
                .any(|(m, _)| m.parent().as_ref() == Some(n) || m == n),
        },
        ReadKey::Tree(n) => {
            let inside = key == n || n.is_ancestor_of(key) || key.is_ancestor_of(n);
            match &e.pre {
                Pre::Deleted(nodes) => {
                    inside || nodes.iter().any(|(m, _)| m == n || n.is_ancestor_of(m))
                }
                _ => inside,
            }
        }
    }
}

/// One invisible fact about a node: the aspect of the pre-state an
/// invisible (post-snapshot) write displaced.
enum Fact<'a> {
    /// The node did not exist (it was inserted after the snapshot).
    Absent,
    /// The node existed with this captured record (deleted after the
    /// snapshot).
    Present(&'a NodeData),
    /// Its content was this (overwritten after the snapshot).
    Content(&'a str),
    /// Its name was this (renamed after the snapshot).
    Name(&'a str),
}

/// Collects the invisible facts affecting node `n`, walking the chains of
/// `n` and all its ancestors (structural writes at an ancestor swallow or
/// resurrect the whole region).
fn facts_for<'a>(
    inner: &'a Inner,
    n: &SplId,
    snapshot: u64,
    me: TxnId,
) -> Vec<(u64, Fact<'a>)> {
    let mut facts = Vec::new();
    let mut scan = |key: &SplId| {
        let Some(entries) = inner.chains.get(key) else {
            return;
        };
        for e in entries.iter().filter(|e| !e.visible(snapshot, me)) {
            match &e.pre {
                Pre::Inserted => facts.push((e.seq, Fact::Absent)),
                Pre::Deleted(nodes) => {
                    if let Some((_, data)) = nodes.iter().find(|(m, _)| m == n) {
                        facts.push((e.seq, Fact::Present(data)));
                    }
                }
                Pre::Content(old) => {
                    // A content entry is keyed at the Text/Attribute node;
                    // the displaced value lives in its reserved String
                    // child.
                    if key == n || *n == key.reserved_child() {
                        facts.push((e.seq, Fact::Content(old)));
                    }
                }
                Pre::Name(old) => {
                    if key == n {
                        facts.push((e.seq, Fact::Name(old)));
                    }
                }
            }
        }
    };
    scan(n);
    for a in n.ancestors() {
        scan(&a);
    }
    facts
}

/// The oldest (first-pushed) fact among the relevant ones — the state at
/// the snapshot, because pushes of one item happen in modification order
/// and the oldest post-snapshot write displaced the snapshot's state.
fn oldest<'a>(
    facts: Vec<(u64, Fact<'a>)>,
    relevant: impl Fn(&Fact<'a>) -> bool,
) -> Option<Fact<'a>> {
    facts
        .into_iter()
        .filter(|(_, f)| relevant(f))
        .min_by_key(|(seq, _)| *seq)
        .map(|(_, f)| f)
}

fn exists_at(inner: &Inner, store: &DocStore, n: &SplId, snapshot: u64, me: TxnId) -> bool {
    match oldest(facts_for(inner, n, snapshot, me), |f| {
        matches!(f, Fact::Absent | Fact::Present(_))
    }) {
        Some(Fact::Absent) => false,
        Some(Fact::Present(_)) => true,
        _ => store.exists(n),
    }
}

fn data_at(
    inner: &Inner,
    store: &DocStore,
    n: &SplId,
    snapshot: u64,
    me: TxnId,
) -> Option<NodeData> {
    match oldest(facts_for(inner, n, snapshot, me), |_| true) {
        Some(Fact::Absent) => None,
        Some(Fact::Present(data)) => Some(data.clone()),
        Some(Fact::Content(old)) => {
            // Only the String child's record carries the value.
            if n.parent().map(|p| *n == p.reserved_child()).unwrap_or(false) {
                Some(NodeData::String {
                    value: old.as_bytes().to_vec(),
                })
            } else {
                store.get(n)
            }
        }
        Some(Fact::Name(old)) => Some(NodeData::Element {
            name: store.vocab().intern(old),
        }),
        None => store.get(n),
    }
}

fn name_at(
    inner: &Inner,
    store: &DocStore,
    n: &SplId,
    snapshot: u64,
    me: TxnId,
) -> Option<String> {
    match oldest(facts_for(inner, n, snapshot, me), |f| {
        matches!(f, Fact::Absent | Fact::Present(_) | Fact::Name(_))
    }) {
        Some(Fact::Absent) => None,
        Some(Fact::Name(old)) => Some(old.to_string()),
        Some(Fact::Present(data)) => match data {
            NodeData::Element { name } | NodeData::Attribute { name } => {
                store.vocab().resolve(*name)
            }
            _ => None,
        },
        _ => store.name_of(n),
    }
}

fn text_at(
    inner: &Inner,
    store: &DocStore,
    n: &SplId,
    snapshot: u64,
    me: TxnId,
) -> Option<String> {
    // The value lives in the reserved String child; content entries keyed
    // at `n` surface through its facts (see `facts_for`).
    let s = n.reserved_child();
    match oldest(facts_for(inner, &s, snapshot, me), |f| {
        matches!(f, Fact::Absent | Fact::Present(_) | Fact::Content(_))
    }) {
        Some(Fact::Absent) => None,
        Some(Fact::Content(old)) => Some(old.to_string()),
        Some(Fact::Present(NodeData::String { value })) => {
            Some(String::from_utf8_lossy(value).into_owned())
        }
        Some(Fact::Present(_)) => None,
        _ => store.text_of(n),
    }
}

fn children_at(
    inner: &Inner,
    store: &DocStore,
    n: &SplId,
    snapshot: u64,
    me: TxnId,
) -> Vec<SplId> {
    let mut kids: Vec<SplId> = store
        .children(n)
        .into_iter()
        .filter(|c| exists_at(inner, store, c, snapshot, me))
        .collect();
    // Resurrect children that invisible (post-snapshot) deletes removed:
    // their captures carry the pre-images.
    for entries in inner.chains.values() {
        for e in entries.iter().filter(|e| !e.visible(snapshot, me)) {
            if let Pre::Deleted(nodes) = &e.pre {
                for (m, _) in nodes {
                    if m.parent().as_ref() == Some(n)
                        && !kids.contains(m)
                        && exists_at(inner, store, m, snapshot, me)
                    {
                        kids.push(m.clone());
                    }
                }
            }
        }
    }
    kids.sort();
    kids.dedup();
    kids
}

fn collect_subtree(
    inner: &Inner,
    store: &DocStore,
    n: &SplId,
    snapshot: u64,
    me: TxnId,
    out: &mut Vec<(SplId, NodeData)>,
) {
    if !exists_at(inner, store, n, snapshot, me) {
        return;
    }
    if let Some(data) = data_at(inner, store, n, snapshot, me) {
        out.push((n.clone(), data));
    }
    for c in children_at(inner, store, n, snapshot, me) {
        collect_subtree(inner, store, &c, snapshot, me, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DocStore {
        DocStore::new(xtc_node::DocStoreConfig::default())
    }

    fn content_undo(n: &SplId, old: &str) -> UndoOp {
        UndoOp::Content {
            node: xtc_splid::encode(n),
            old: old.to_string(),
        }
    }

    #[test]
    fn snapshot_sees_pre_image_until_release() {
        let s = store();
        let root = s
            .insert_raw(&[(SplId::root(), NodeData::Element { name: s.vocab().intern("r") })])
            .map(|_| SplId::root())
            .unwrap();
        let text = s.insert_text(&root, xtc_node::InsertPos::LastChild, "old").unwrap();

        let v = VersionStore::new();
        let snap = v.register_snapshot();
        // Writer txn 7 updates the text after the snapshot.
        v.push_write(7, snap, s.vocab(), &content_undo(&text, "old")).unwrap();
        s.update_content(&text, "new").unwrap();

        // Pending for another txn: reader still sees the pre-image.
        assert_eq!(v.text_at(&s, &text, snap, 1), Some("old".into()));
        // The writer itself sees its own pending write.
        assert_eq!(v.text_at(&s, &text, snap, 7), Some("new".into()));

        v.commit(7, None);
        // Committed past the snapshot: still the pre-image.
        assert_eq!(v.text_at(&s, &text, snap, 1), Some("old".into()));
        // A fresh snapshot sees the new value.
        let snap2 = v.register_snapshot();
        assert_eq!(v.text_at(&s, &text, snap2, 1), Some("new".into()));

        // Releasing the old snapshot advances the watermark and GCs.
        assert_eq!(v.stats().entries, 1);
        v.release_snapshot(snap);
        v.release_snapshot(snap2);
        assert_eq!(v.stats().entries, 0);
        assert_eq!(v.stats().pruned, 1);
    }

    #[test]
    fn first_updater_wins_on_content() {
        let s = store();
        let n = SplId::root();
        let v = VersionStore::new();
        let snap_old = v.register_snapshot();
        let snap_new;
        {
            let w1 = v.register_snapshot();
            v.push_write(1, w1, s.vocab(), &content_undo(&n, "a")).unwrap();
            v.commit(1, None);
            v.release_snapshot(w1);
            snap_new = v.register_snapshot();
        }
        // Writer with the stale snapshot loses.
        assert_eq!(
            v.push_write(2, snap_old, s.vocab(), &content_undo(&n, "b")),
            Err(XtcError::ValidationFailed)
        );
        // Writer with a fresh snapshot wins.
        v.push_write(3, snap_new, s.vocab(), &content_undo(&n, "b")).unwrap();
        v.release_snapshot(snap_old);
        v.release_snapshot(snap_new);
    }

    #[test]
    fn insert_then_delete_after_snapshot_stays_absent() {
        let s = store();
        let root = SplId::root();
        s.insert_raw(&[(root.clone(), NodeData::Element { name: s.vocab().intern("r") })])
            .unwrap();
        let v = VersionStore::new();
        let snap = v.register_snapshot();
        // txn 5 inserts an element, commits; txn 6 deletes it, commits.
        let inserted = s.insert_element(&root, xtc_node::InsertPos::LastChild, "x").unwrap();
        v.push_write(
            5,
            snap,
            s.vocab(),
            &UndoOp::Delete { root: xtc_splid::encode(&inserted) },
        )
        .unwrap();
        v.commit(5, None);
        let capture = vec![(
            xtc_splid::encode(&inserted),
            recovery::data_to_payload(s.vocab(), &s.get(&inserted).unwrap()),
        )];
        let w = v.register_snapshot();
        v.push_write(6, w, s.vocab(), &UndoOp::Restore { nodes: capture }).unwrap();
        s.delete_subtree(&inserted).unwrap();
        v.commit(6, None);
        v.release_snapshot(w);

        // At the old snapshot the node never existed: the *oldest*
        // invisible fact (the insert) wins over the delete's capture.
        assert!(!v.exists_at(&s, &inserted, snap, 1));
        assert!(!v.children_at(&s, &root, snap, 1).contains(&inserted));
        v.release_snapshot(snap);
    }

    #[test]
    fn occ_validation_flags_read_write_conflicts() {
        let s = store();
        let n = SplId::root();
        let child = n.reserved_child(); // any child label works here
        let v = VersionStore::new();
        let snap = v.register_snapshot();
        let w = v.register_snapshot();
        v.push_write(9, w, s.vocab(), &content_undo(&child, "a")).unwrap();
        v.commit(9, None);
        v.release_snapshot(w);

        let mut reads = HashSet::new();
        reads.insert(ReadKey::Node(child.clone()));
        assert_eq!(v.validate(1, snap, &reads), 1, "direct node read conflicts");

        let mut tree = HashSet::new();
        tree.insert(ReadKey::Tree(n.clone()));
        assert_eq!(v.validate(1, snap, &tree), 1, "tree read covers the child");

        // A later snapshot already includes the write: no conflict.
        let snap2 = v.register_snapshot();
        assert_eq!(v.validate(1, snap2, &reads), 0);
        v.release_snapshot(snap);
        v.release_snapshot(snap2);
    }

    #[test]
    fn rebuild_prunes_to_the_committed_watermark() {
        let s = store();
        let n = SplId::root();
        let v = VersionStore::new();
        v.rebuild_committed(
            s.vocab(),
            &[(42, content_undo(&n, "x")), (17, content_undo(&n, "y"))],
        );
        let st = v.stats();
        assert_eq!(st.rebuilt, 2);
        assert_eq!(st.entries, 0, "no snapshots survive a crash: chains prune empty");
        assert_eq!(st.clock, 42, "clock continues from the highest commit LSN");
    }
}
