//! Errors of the transaction layer.

use std::fmt;
use xtc_lock::LockError;
use xtc_node::NodeError;
use xtc_wal::WalError;

/// Transaction-layer errors. Lock errors (deadlock victim, timeout) mean
/// the transaction must be aborted and may be retried; node errors are
/// logical failures of the operation itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XtcError {
    /// The lock manager refused the request; abort the transaction.
    Lock(LockError),
    /// The node manager rejected the operation.
    Node(NodeError),
    /// The operation raced concurrent structure changes too often
    /// (plan/lock/verify loop exhausted); abort and retry.
    Busy,
    /// The transaction has already been committed or aborted.
    Finished,
    /// The named lock protocol does not exist.
    UnknownProtocol(String),
    /// A failpoint injected this failure (chaos testing only; never
    /// produced in production builds). The transaction was rolled back.
    Injected,
    /// The write-ahead log refused the operation — most often because it
    /// is crashed (deliberately, by a chaos test). Not retryable on the
    /// same database: the engine must be recovered first.
    Wal(WalError),
}

impl XtcError {
    /// `true` when the transaction should be aborted and is worth
    /// retrying (deadlock victim, timeout, plan races, injected faults).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            XtcError::Lock(_) | XtcError::Busy | XtcError::Injected
        )
    }

    /// `true` when caused by a deadlock (victim abort).
    pub fn is_deadlock(&self) -> bool {
        matches!(self, XtcError::Lock(e) if e.is_deadlock())
    }
}

impl fmt::Display for XtcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtcError::Lock(e) => write!(f, "lock error: {e}"),
            XtcError::Node(e) => write!(f, "node error: {e}"),
            XtcError::Busy => write!(f, "operation raced concurrent structure changes"),
            XtcError::Finished => write!(f, "transaction already finished"),
            XtcError::UnknownProtocol(p) => write!(f, "unknown lock protocol {p:?}"),
            XtcError::Injected => write!(f, "failpoint-injected commit failure"),
            XtcError::Wal(e) => write!(f, "write-ahead log error: {e}"),
        }
    }
}

impl std::error::Error for XtcError {}

impl From<LockError> for XtcError {
    fn from(e: LockError) -> Self {
        XtcError::Lock(e)
    }
}

impl From<NodeError> for XtcError {
    fn from(e: NodeError) -> Self {
        XtcError::Node(e)
    }
}

impl From<WalError> for XtcError {
    fn from(e: WalError) -> Self {
        XtcError::Wal(e)
    }
}
