//! Errors of the transaction layer.

use std::fmt;
use xtc_lock::LockError;
use xtc_node::NodeError;
use xtc_wal::WalError;

/// Transaction-layer errors. Lock errors (deadlock victim, timeout) mean
/// the transaction must be aborted and may be retried; node errors are
/// logical failures of the operation itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XtcError {
    /// The lock manager refused the request; abort the transaction.
    Lock(LockError),
    /// The node manager rejected the operation.
    Node(NodeError),
    /// The operation raced concurrent structure changes too often
    /// (plan/lock/verify loop exhausted); abort and retry.
    Busy,
    /// The transaction has already been committed or aborted.
    Finished,
    /// The named lock protocol does not exist.
    UnknownProtocol(String),
    /// A failpoint injected this failure (chaos testing only; never
    /// produced in production builds). The transaction was rolled back.
    Injected,
    /// The write-ahead log refused the operation — most often because it
    /// is crashed (deliberately, by a chaos test). Not retryable on the
    /// same database: the engine must be recovered first.
    Wal(WalError),
    /// The transaction exhausted its virtual-time deadline budget
    /// (`XtcConfig::txn_deadline`). The transaction was rolled back;
    /// retrying (with backoff) may succeed under less contention.
    DeadlineExceeded {
        /// Virtual microseconds the transaction had charged when the
        /// budget check tripped.
        elapsed_us: u64,
        /// The configured budget, in virtual microseconds.
        budget_us: u64,
    },
    /// The admission gate refused to start the transaction: the engine
    /// is at `max_in_flight` and the policy rejected (or the queue wait
    /// timed out). Retryable — load may drain.
    AdmissionRejected,
    /// The engine is poisoned: a permanent storage-level I/O fault was
    /// injected or encountered, and the store can no longer be trusted.
    /// Not retryable on the same database — recover or discard it.
    Poisoned,
    /// Initial document content failed to parse (catalog bulk load).
    Xml(String),
    /// Commit-time validation failed under a versioned/optimistic
    /// protocol: another transaction committed a conflicting write after
    /// this transaction's snapshot (first-updater-wins), or an
    /// optimistic read-set entry was invalidated. The transaction was
    /// rolled back; retryable — a fresh attempt sees a newer snapshot.
    ValidationFailed,
    /// The catalog has no document under the requested name.
    UnknownDoc(String),
    /// The catalog already hosts a document under the requested name.
    DocExists(String),
}

impl XtcError {
    /// `true` when the transaction should be aborted and is worth
    /// retrying (deadlock victim, timeout, plan races, injected faults).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            XtcError::Lock(_)
                | XtcError::Busy
                | XtcError::Injected
                | XtcError::DeadlineExceeded { .. }
                | XtcError::AdmissionRejected
                | XtcError::ValidationFailed
        )
    }

    /// `true` when caused by an exhausted deadline budget or a lock-wait
    /// timeout — the two faces of "ran out of time".
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            XtcError::DeadlineExceeded { .. } | XtcError::Lock(LockError::Timeout)
        )
    }

    /// `true` when caused by a deadlock (victim abort).
    pub fn is_deadlock(&self) -> bool {
        matches!(self, XtcError::Lock(e) if e.is_deadlock())
    }
}

impl fmt::Display for XtcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XtcError::Lock(e) => write!(f, "lock error: {e}"),
            XtcError::Node(e) => write!(f, "node error: {e}"),
            XtcError::Busy => write!(f, "operation raced concurrent structure changes"),
            XtcError::Finished => write!(f, "transaction already finished"),
            XtcError::UnknownProtocol(p) => write!(f, "unknown lock protocol {p:?}"),
            XtcError::Injected => write!(f, "failpoint-injected commit failure"),
            XtcError::Wal(e) => write!(f, "write-ahead log error: {e}"),
            XtcError::DeadlineExceeded {
                elapsed_us,
                budget_us,
            } => write!(
                f,
                "transaction deadline exceeded ({elapsed_us}us charged of {budget_us}us budget)"
            ),
            XtcError::AdmissionRejected => {
                write!(f, "admission control rejected the transaction (overload)")
            }
            XtcError::Poisoned => {
                write!(f, "engine poisoned by a permanent storage I/O failure")
            }
            XtcError::ValidationFailed => {
                write!(f, "commit-time validation failed (conflicting concurrent write)")
            }
            XtcError::Xml(e) => write!(f, "xml parse error: {e}"),
            XtcError::UnknownDoc(name) => write!(f, "no document named {name:?} in the catalog"),
            XtcError::DocExists(name) => {
                write!(f, "a document named {name:?} already exists in the catalog")
            }
        }
    }
}

impl std::error::Error for XtcError {}

impl From<LockError> for XtcError {
    fn from(e: LockError) -> Self {
        XtcError::Lock(e)
    }
}

impl From<NodeError> for XtcError {
    fn from(e: NodeError) -> Self {
        XtcError::Node(e)
    }
}

impl From<WalError> for XtcError {
    fn from(e: WalError) -> Self {
        XtcError::Wal(e)
    }
}
