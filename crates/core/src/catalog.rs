//! Multi-document catalog: N independent engines behind one front door.
//!
//! A [`Catalog`] hosts any number of named documents. Each document is a
//! full [`XtcDb`] — its own lock table, its own WAL stream, its own
//! buffer-pool partition, its own failpoint scope — so transactions on
//! different documents share *no* synchronization state except the
//! catalog-wide admission gate. That gate is the one deliberately shared
//! piece: [`CatalogConfig::max_in_flight`] bounds the number of admitted
//! transactions across **all** documents, so a hot document's overload
//! sheds load for the whole server rather than starving its neighbors of
//! CPU while they time out on their own private limits (DESIGN.md §14).
//!
//! Resource partitioning is static: [`CatalogConfig::pool_budget_pages`]
//! is split evenly over [`CatalogConfig::pool_partitions`] slots, and
//! every document opened gets one slot's worth of buffer residency
//! ([`DocStoreConfig::max_resident_pages`]). Static shares keep the
//! engines isolated — a scan-heavy document evicts its own pages, never
//! a neighbor's — at the cost of leaving idle documents' budgets unused.
//!
//! [`DocStoreConfig::max_resident_pages`]: xtc_node::DocStoreConfig

use crate::admission::AdmissionGate;
use crate::db::{AdmissionPolicy, XtcConfig, XtcDb};
use crate::error::XtcError;
use parking_lot::{RwLock, RwLockReadGuard};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The role a document engine plays in a replication group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocRole {
    /// The writable engine; source of the WAL stream.
    Primary,
    /// A read-only engine continuously redoing the primary's log.
    Replica,
}

impl DocRole {
    /// Lowercase wire name (`stats` replies, JSON reports).
    pub const fn name(self) -> &'static str {
        match self {
            DocRole::Primary => "primary",
            DocRole::Replica => "replica",
        }
    }
}

/// Routing-visible state of one read replica, shared between the
/// replication subsystem (which owns the apply loop) and the catalog
/// (which routes reads). Lives in `xtc-core` so the catalog and the
/// server can route without depending on the `xtc-repl` crate.
///
/// The **apply latch** is the snapshot-consistency device: the apply loop
/// holds it for write while materialising one committed transaction's
/// operations, and readers hold it for read across a whole read
/// transaction — so a reader never observes a half-applied commit, only
/// states at commit boundaries.
#[derive(Debug, Default)]
pub struct ReplicaShared {
    applied_lsn: AtomicU64,
    lag_us: AtomicU64,
    poisoned: AtomicBool,
    apply_latch: RwLock<()>,
}

impl ReplicaShared {
    /// Fresh state: nothing applied, zero lag, healthy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Highest primary LSN this replica has applied.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn.load(Ordering::Acquire)
    }

    /// Deterministic virtual-time replication lag, in microseconds.
    pub fn lag_us(&self) -> u64 {
        self.lag_us.load(Ordering::Acquire)
    }

    /// `false` once a permanent apply fault poisoned this replica; it is
    /// then excluded from read routing until re-bootstrapped.
    pub fn is_healthy(&self) -> bool {
        !self.poisoned.load(Ordering::Acquire)
    }

    /// Publishes progress (the apply loop calls this after each batch).
    pub fn publish(&self, applied_lsn: u64, lag_us: u64) {
        self.applied_lsn.store(applied_lsn, Ordering::Release);
        self.lag_us.store(lag_us, Ordering::Release);
    }

    /// Marks the replica poisoned (permanent apply fault) or heals it
    /// (re-bootstrap after promotion).
    pub fn set_healthy(&self, healthy: bool) {
        self.poisoned.store(!healthy, Ordering::Release);
    }

    /// Read side of the apply latch: hold this guard across a read
    /// transaction to pin the replica at a commit boundary.
    pub fn read_latch(&self) -> RwLockReadGuard<'_, ()> {
        self.apply_latch.read()
    }

    /// Write side of the apply latch, for the apply loop. Scoped as a
    /// closure so the guard type stays private to core.
    pub fn with_apply_latch<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.apply_latch.write();
        f()
    }
}

/// One replica attached to a catalog document.
#[derive(Clone)]
struct ReplicaEntry {
    db: Arc<XtcDb>,
    shared: Arc<ReplicaShared>,
}

/// Where [`Catalog::route_read`] decided a read should run.
#[derive(Clone)]
pub struct ReadRoute {
    /// The engine to read from.
    pub db: Arc<XtcDb>,
    /// Whether that engine is the primary or a replica.
    pub role: DocRole,
    /// The replica's shared state when `role` is [`DocRole::Replica`]
    /// (take its [`read_latch`](ReplicaShared::read_latch) for the
    /// duration of the read).
    pub shared: Option<Arc<ReplicaShared>>,
}

/// Configuration of a [`Catalog`].
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Template configuration for documents created without an explicit
    /// override ([`DocSpec::config`]). Its `max_in_flight`/`admission`
    /// fields are ignored — admission is catalog-wide, configured below.
    pub defaults: XtcConfig,
    /// Catalog-wide admission limit: at most this many transactions are
    /// admitted concurrently *across all documents*. `None` (the
    /// default) disables the gate.
    pub max_in_flight: Option<usize>,
    /// Policy at the catalog gate when `max_in_flight` is reached.
    pub admission: AdmissionPolicy,
    /// Total buffer-pool residency budget (pages), split evenly over
    /// [`pool_partitions`](CatalogConfig::pool_partitions) — each
    /// document gets one partition's share as its
    /// `DocStoreConfig::max_resident_pages`. `None` = unbounded pools.
    pub pool_budget_pages: Option<usize>,
    /// Number of partitions the pool budget is divided into (clamped to
    /// at least 1). Size this to the number of documents you expect to
    /// host; opening more than this many documents over-commits the
    /// budget rather than failing.
    pub pool_partitions: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            defaults: XtcConfig::default(),
            max_in_flight: None,
            admission: AdmissionPolicy::default(),
            pool_budget_pages: None,
            pool_partitions: 16,
        }
    }
}

/// A document to create in a [`Catalog`].
#[derive(Debug, Clone, Default)]
pub struct DocSpec {
    /// Catalog-unique document name (the routing key).
    pub name: String,
    /// Initial XML content, bulk-loaded (and checkpointed, when the
    /// document has a WAL) before the handle is published.
    pub xml: Option<String>,
    /// Per-document configuration override; `None` uses the catalog's
    /// [`defaults`](CatalogConfig::defaults).
    pub config: Option<XtcConfig>,
}

impl DocSpec {
    /// A spec for an empty document with the catalog's default config.
    pub fn named(name: impl Into<String>) -> Self {
        DocSpec {
            name: name.into(),
            ..DocSpec::default()
        }
    }

    /// Sets the initial XML content.
    pub fn with_xml(mut self, xml: impl Into<String>) -> Self {
        self.xml = Some(xml.into());
        self
    }

    /// Sets a per-document configuration override.
    pub fn with_config(mut self, config: XtcConfig) -> Self {
        self.config = Some(config);
        self
    }
}

/// A named collection of independent [`XtcDb`] engines sharing one
/// admission gate. The concurrent front door of the reproduction: a
/// server session opens a document by name and runs transactions against
/// it; the catalog guarantees nothing but the gate is shared between
/// documents.
pub struct Catalog {
    defaults: XtcConfig,
    gate: Option<Arc<AdmissionGate>>,
    per_doc_pool_pages: Option<usize>,
    docs: RwLock<BTreeMap<String, Arc<XtcDb>>>,
    /// Read replicas per document name. Kept beside `docs` rather than
    /// inside it so every pre-replication code path (open/get/drop) keeps
    /// meaning "the primary".
    replicas: RwLock<BTreeMap<String, Vec<ReplicaEntry>>>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("docs", &self.doc_names())
            .field("gate", &self.gate)
            .field("per_doc_pool_pages", &self.per_doc_pool_pages)
            .finish()
    }
}

impl Catalog {
    /// An empty catalog.
    pub fn new(config: CatalogConfig) -> Self {
        let gate = config
            .max_in_flight
            .map(|limit| Arc::new(AdmissionGate::new(limit, config.admission)));
        let per_doc_pool_pages = config
            .pool_budget_pages
            .map(|total| (total / config.pool_partitions.max(1)).max(1));
        Catalog {
            defaults: config.defaults,
            gate,
            per_doc_pool_pages,
            docs: RwLock::new(BTreeMap::new()),
            replicas: RwLock::new(BTreeMap::new()),
        }
    }

    /// Creates a document and publishes it under its name. The engine is
    /// fully constructed — content loaded, checkpoint taken — before any
    /// other session can see it. Fails with [`XtcError::DocExists`] on a
    /// name collision (the loser's engine is discarded).
    pub fn create_doc(&self, spec: DocSpec) -> Result<Arc<XtcDb>, XtcError> {
        let mut config = spec.config.unwrap_or_else(|| self.defaults.clone());
        if let Some(pages) = self.per_doc_pool_pages {
            config.store.max_resident_pages = Some(pages);
        }
        // Admission is catalog-wide: the engine gets the shared gate (or
        // none), never a private one from its own config.
        config.max_in_flight = None;
        let db = Arc::new(XtcDb::try_new_gated(config, self.gate.clone())?);
        if let Some(xml) = &spec.xml {
            db.load_xml(xml).map_err(|e| XtcError::Xml(e.to_string()))?;
        }
        let mut docs = self.docs.write();
        if docs.contains_key(&spec.name) {
            xtc_failpoint::clear_scope(db.failpoint_scope());
            return Err(XtcError::DocExists(spec.name));
        }
        docs.insert(spec.name, db.clone());
        Ok(db)
    }

    /// The document registered under `name`, or [`XtcError::UnknownDoc`].
    pub fn open(&self, name: &str) -> Result<Arc<XtcDb>, XtcError> {
        self.get(name)
            .ok_or_else(|| XtcError::UnknownDoc(name.to_string()))
    }

    /// The document registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<XtcDb>> {
        self.docs.read().get(name).cloned()
    }

    /// Unregisters a document. Sessions holding the `Arc` keep a working
    /// engine (it is only unlisted); its failpoint scope is cleared so
    /// the process-wide registry does not accumulate dead scopes. Any
    /// attached replicas are detached with it.
    pub fn drop_doc(&self, name: &str) -> Result<(), XtcError> {
        let db = self
            .docs
            .write()
            .remove(name)
            .ok_or_else(|| XtcError::UnknownDoc(name.to_string()))?;
        xtc_failpoint::clear_scope(db.failpoint_scope());
        self.detach_replicas(name);
        Ok(())
    }

    /// Attaches a read replica to `name`'s replication group. The engine
    /// is owned by the replication subsystem; the catalog only routes to
    /// it. Fails with [`XtcError::UnknownDoc`] when no primary is
    /// registered under `name`.
    pub fn attach_replica(
        &self,
        name: &str,
        db: Arc<XtcDb>,
        shared: Arc<ReplicaShared>,
    ) -> Result<(), XtcError> {
        if !self.docs.read().contains_key(name) {
            return Err(XtcError::UnknownDoc(name.to_string()));
        }
        self.replicas
            .write()
            .entry(name.to_string())
            .or_default()
            .push(ReplicaEntry { db, shared });
        Ok(())
    }

    /// Detaches every replica of `name` (promotion rebuilds the group;
    /// dropping the primary dissolves it). Engines are not torn down —
    /// the replication subsystem owns them.
    pub fn detach_replicas(&self, name: &str) {
        self.replicas.write().remove(name);
    }

    /// Number of replicas attached to `name` (0 when unknown).
    pub fn replica_count(&self, name: &str) -> usize {
        self.replicas.read().get(name).map(Vec::len).unwrap_or(0)
    }

    /// Routing-visible `(applied_lsn, lag_us, healthy)` of each replica
    /// of `name`, in attach order — the `stats` wire reply's source.
    pub fn replica_stats(&self, name: &str) -> Vec<(u64, u64, bool)> {
        self.replicas
            .read()
            .get(name)
            .map(|entries| {
                entries
                    .iter()
                    .map(|e| (e.shared.applied_lsn(), e.shared.lag_us(), e.shared.is_healthy()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Routes a read-only transaction: the least-lagged *healthy* replica
    /// of `name` when one exists, else the primary. Writes must use
    /// [`route_write`](Catalog::route_write).
    pub fn route_read(&self, name: &str) -> Result<ReadRoute, XtcError> {
        if let Some(entries) = self.replicas.read().get(name) {
            if let Some(best) = entries
                .iter()
                .filter(|e| e.shared.is_healthy())
                .min_by_key(|e| e.shared.lag_us())
            {
                return Ok(ReadRoute {
                    db: best.db.clone(),
                    role: DocRole::Replica,
                    shared: Some(best.shared.clone()),
                });
            }
        }
        Ok(ReadRoute {
            db: self.open(name)?,
            role: DocRole::Primary,
            shared: None,
        })
    }

    /// Routes a writing transaction: always the primary.
    pub fn route_write(&self, name: &str) -> Result<Arc<XtcDb>, XtcError> {
        self.open(name)
    }

    /// Replaces `name`'s primary with `new_primary` (failover promotion).
    /// The old primary's failpoint scope is cleared and the replica group
    /// is dissolved — the replication subsystem re-attaches survivors
    /// once they are re-bootstrapped onto the new log. Returns the old
    /// primary so the caller can fence or inspect it.
    pub fn promote(
        &self,
        name: &str,
        new_primary: Arc<XtcDb>,
    ) -> Result<Arc<XtcDb>, XtcError> {
        let mut docs = self.docs.write();
        if !docs.contains_key(name) {
            return Err(XtcError::UnknownDoc(name.to_string()));
        }
        let old = docs.insert(name.to_string(), new_primary).unwrap();
        drop(docs);
        xtc_failpoint::clear_scope(old.failpoint_scope());
        self.detach_replicas(name);
        Ok(old)
    }

    /// Registered document names, sorted.
    pub fn doc_names(&self) -> Vec<String> {
        self.docs.read().keys().cloned().collect()
    }

    /// Number of registered documents.
    pub fn len(&self) -> usize {
        self.docs.read().len()
    }

    /// `true` when no documents are registered.
    pub fn is_empty(&self) -> bool {
        self.docs.read().is_empty()
    }

    /// The catalog-wide admission gate, when one is configured.
    pub fn admission_gate(&self) -> Option<&Arc<AdmissionGate>> {
        self.gate.as_ref()
    }

    /// Transactions currently admitted across all documents (0 without a
    /// gate).
    pub fn admitted_in_flight(&self) -> usize {
        self.gate.as_ref().map(|g| g.in_flight()).unwrap_or(0)
    }

    /// The buffer residency share each document gets (`None` when the
    /// catalog was configured without a pool budget).
    pub fn per_doc_pool_pages(&self) -> Option<usize> {
        self.per_doc_pool_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_doc_catalog(max_in_flight: Option<usize>, policy: AdmissionPolicy) -> Catalog {
        let catalog = Catalog::new(CatalogConfig {
            max_in_flight,
            admission: policy,
            ..CatalogConfig::default()
        });
        for name in ["a", "b"] {
            catalog
                .create_doc(DocSpec::named(name).with_xml("<doc><x id=\"n1\">v</x></doc>"))
                .unwrap();
        }
        catalog
    }

    #[test]
    fn routes_by_name_and_rejects_unknown_or_duplicate() {
        let catalog = two_doc_catalog(None, AdmissionPolicy::Reject);
        assert_eq!(catalog.doc_names(), vec!["a", "b"]);
        assert!(catalog.open("a").is_ok());
        assert!(matches!(
            catalog.open("nope"),
            Err(XtcError::UnknownDoc(n)) if n == "nope"
        ));
        assert!(matches!(
            catalog.create_doc(DocSpec::named("a")),
            Err(XtcError::DocExists(n)) if n == "a"
        ));
        catalog.drop_doc("a").unwrap();
        assert!(catalog.open("a").is_err());
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn documents_are_isolated_engines() {
        let catalog = two_doc_catalog(None, AdmissionPolicy::Reject);
        let a = catalog.open("a").unwrap();
        let b = catalog.open("b").unwrap();
        // Distinct lock tables, distinct failpoint scopes, distinct
        // virtual clocks: nothing but the gate is shared.
        assert!(!Arc::ptr_eq(a.lock_table(), b.lock_table()));
        assert_ne!(a.failpoint_scope(), b.failpoint_scope());

        // A write in one document is invisible to the other.
        let txn = a.begin();
        let x = txn.element_by_id("n1").unwrap().unwrap();
        txn.rename(&x, "renamed").unwrap();
        txn.commit().unwrap();
        let ta = a.begin();
        let tb = b.begin();
        let xa = ta.element_by_id("n1").unwrap().unwrap();
        let xb = tb.element_by_id("n1").unwrap().unwrap();
        assert_eq!(ta.name(&xa).unwrap(), Some("renamed".to_string()));
        assert_eq!(tb.name(&xb).unwrap(), Some("x".to_string()));
        ta.commit().unwrap();
        tb.commit().unwrap();
    }

    #[test]
    fn gate_throttles_across_documents() {
        let catalog = two_doc_catalog(Some(2), AdmissionPolicy::Reject);
        let a = catalog.open("a").unwrap();
        let b = catalog.open("b").unwrap();
        let t1 = a.try_begin().unwrap();
        let t2 = b.try_begin().unwrap();
        assert_eq!(catalog.admitted_in_flight(), 2);
        // Both documents are at the shared limit, whichever one asks.
        assert!(matches!(
            a.try_begin(),
            Err(XtcError::AdmissionRejected)
        ));
        assert!(matches!(
            b.try_begin(),
            Err(XtcError::AdmissionRejected)
        ));
        t1.commit().unwrap();
        // The slot freed on document "a" is claimable from document "b".
        let t3 = b.try_begin().unwrap();
        t3.commit().unwrap();
        t2.commit().unwrap();
        assert_eq!(catalog.admitted_in_flight(), 0);
    }

    #[test]
    fn pool_budget_is_partitioned_per_document() {
        let catalog = Catalog::new(CatalogConfig {
            pool_budget_pages: Some(64),
            pool_partitions: 4,
            ..CatalogConfig::default()
        });
        assert_eq!(catalog.per_doc_pool_pages(), Some(16));
        let db = catalog.create_doc(DocSpec::named("a")).unwrap();
        // The share really reaches the engine's storage layer: resident
        // pages stay bounded by it even after loading a document larger
        // than the partition.
        let mut xml = String::from("<doc>");
        for i in 0..2000 {
            xml.push_str(&format!("<item id=\"i{i}\">payload {i}</item>"));
        }
        xml.push_str("</doc>");
        db.load_xml(&xml).unwrap();
        // pool_stats aggregates the three underlying trees (document,
        // element index, ID index); each is budgeted at 16.
        let stats = db.store().pool_stats();
        assert!(
            stats.resident <= 3 * 16,
            "resident {} exceeds 3 trees x 16 pages",
            stats.resident
        );
    }
}
