//! Adapter exposing the node manager to lock protocols as a
//! [`DocView`](xtc_lock::DocView).

use std::sync::Arc;
use xtc_lock::DocView;
use xtc_node::DocStore;
use xtc_splid::SplId;

/// [`DocView`] over a shared [`DocStore`]. Every call pays real page
/// accesses — which is the point: protocol-mandated document traversals
/// (annex child locks, the *-2PL IDX scans) show up in the storage
/// statistics exactly as they did on the paper's testbed.
pub struct StoreView(pub Arc<DocStore>);

impl DocView for StoreView {
    fn children(&self, id: &SplId) -> Vec<SplId> {
        self.0.children(id)
    }

    fn subtree_id_owners(&self, id: &SplId) -> Vec<SplId> {
        self.0.subtree_id_owners(id)
    }

    fn subtree_nodes(&self, id: &SplId) -> Vec<SplId> {
        self.0.subtree_ids(id)
    }
}
