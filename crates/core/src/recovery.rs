//! ARIES-lite crash recovery.
//!
//! Rebuilds a consistent [`XtcDb`] from a write-ahead log in three passes:
//!
//! 1. **Analysis** — scan the whole log once; find the last fuzzy
//!    checkpoint, classify every transaction as *winner* (has a `Commit`
//!    record in the durable prefix) or *loser* (everything else), and
//!    collect the set of undo records already compensated by CLRs.
//! 2. **Redo** — load the checkpoint snapshot, then repeat history:
//!    re-apply every `PageRedo` after the checkpoint in log order,
//!    including compensation records written by pre-crash rollbacks.
//! 3. **Undo** — roll back the losers by applying their logical undo
//!    records in reverse LSN order, skipping any undo a CLR shows was
//!    already compensated before the crash.
//!
//! Redo and undo are **logical** (node-manager operations keyed by
//! SPLID), not physical page images: the storage layer rebuilds its own
//! pages, and the secondary indexes are maintained as a side effect of
//! each replayed operation — which is why recovery can assert
//! [`DocStore::verify_indexes`] afterwards. Element and attribute names
//! travel through the log as strings and are re-interned here, so the
//! recovered vocabulary need not assign the same surrogates.

use crate::db::{XtcConfig, XtcDb};
use crate::error::XtcError;
use std::collections::{HashMap, HashSet};
use xtc_node::{DocStore, NodeData};
use xtc_storage::Vocabulary;
use xtc_wal::{Lsn, NodePayload, RecordBody, RedoOp, TxnId, UndoOp, Wal, WalRecord};

/// Converts a node record to its log form, resolving interned names.
pub(crate) fn data_to_payload(vocab: &Vocabulary, data: &NodeData) -> NodePayload {
    let name_of = |v| vocab.resolve(v).unwrap_or_default();
    match data {
        NodeData::Element { name } => NodePayload::Element(name_of(*name)),
        NodeData::AttributeRoot => NodePayload::AttrRoot,
        NodeData::Attribute { name } => NodePayload::Attribute(name_of(*name)),
        NodeData::Text => NodePayload::Text,
        NodeData::String { value } => NodePayload::Str(value.clone()),
    }
}

/// Converts a logged payload back to a node record, interning names into
/// the (possibly fresh) vocabulary.
pub(crate) fn payload_to_data(vocab: &Vocabulary, payload: &NodePayload) -> NodeData {
    match payload {
        NodePayload::Element(name) => NodeData::Element {
            name: vocab.intern(name),
        },
        NodePayload::AttrRoot => NodeData::AttributeRoot,
        NodePayload::Attribute(name) => NodeData::Attribute {
            name: vocab.intern(name),
        },
        NodePayload::Text => NodeData::Text,
        NodePayload::Str(value) => NodeData::String {
            value: value.clone(),
        },
    }
}

fn decode_splid(bytes: &[u8]) -> Option<xtc_splid::SplId> {
    xtc_splid::decode(bytes).ok()
}

/// Applies one redo operation to the store. Tolerant of already-applied
/// state (repeating history is idempotent at this granularity): a delete
/// of a missing subtree or a content update of a missing node is a no-op.
pub(crate) fn apply_redo(store: &DocStore, op: &RedoOp) {
    match op {
        RedoOp::Insert { nodes } => {
            let decoded: Vec<_> = nodes
                .iter()
                .filter_map(|(enc, payload)| {
                    decode_splid(enc).map(|id| (id, payload_to_data(store.vocab(), payload)))
                })
                .collect();
            let _ = store.insert_raw(&decoded);
        }
        RedoOp::Delete { root } => {
            if let Some(id) = decode_splid(root) {
                let _ = store.delete_subtree(&id);
            }
        }
        RedoOp::Content { node, new } => {
            if let Some(id) = decode_splid(node) {
                let _ = store.update_content(&id, new);
            }
        }
        RedoOp::Rename { node, new } => {
            if let Some(id) = decode_splid(node) {
                let _ = store.rename_element(&id, new);
            }
        }
    }
}

/// Applies one logical undo operation to the store (same tolerance as
/// [`apply_redo`]). Shared with the live abort path in `txn.rs`.
pub(crate) fn apply_undo(store: &DocStore, op: &UndoOp) {
    apply_redo(store, &op.as_redo());
}

/// What recovery found and did — returned alongside the rebuilt database
/// so tests and operators can assert on the outcome.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Total records decoded from the durable log prefix.
    pub scanned: usize,
    /// LSN of the last fuzzy checkpoint, if any.
    pub checkpoint_lsn: Option<Lsn>,
    /// Transactions with a durable `Commit` record (their effects are
    /// guaranteed present in the recovered database).
    pub winners: Vec<TxnId>,
    /// Transactions seen in the log without a durable `Commit` (rolled
    /// back; their effects are guaranteed absent).
    pub losers: Vec<TxnId>,
    /// Redo operations re-applied (repeating history).
    pub redo_applied: usize,
    /// Undo operations applied to roll back losers.
    pub undo_applied: usize,
    /// `true` when the log ended in a torn (partially written) record —
    /// expected after a mid-flush crash; the torn tail is discarded.
    pub torn_tail: bool,
}

/// Replays a decoded log against a fresh database. Exposed separately
/// from [`recover_from`] for tests that synthesize record streams.
///
/// Failpoints `recovery.analysis` (once, before the analysis scan) and
/// `recovery.redo` (per redo record) can kill recovery itself partway
/// through — the double-crash scenario. A killed recovery returns
/// [`XtcError::Injected`]; the log is untouched (recovery never writes
/// to its source), so running recovery again from the same WAL must
/// converge to the same state.
pub fn replay(
    db: &XtcDb,
    records: &[WalRecord],
    torn_tail: bool,
) -> Result<RecoveryReport, XtcError> {
    replay_scoped(db, records, torn_tail, db.failpoint_scope())
}

/// [`replay`], with the recovery failpoint sites evaluated in an
/// explicit engine scope — [`recover_from`] passes the *crashed* log's
/// scope, so a catalog chaos harness that armed one document's scope can
/// kill that document's recovery without touching its neighbors (the
/// freshly built destination engine has a scope nobody has armed yet).
pub fn replay_scoped(
    db: &XtcDb,
    records: &[WalRecord],
    torn_tail: bool,
    scope: xtc_failpoint::ScopeId,
) -> Result<RecoveryReport, XtcError> {
    let store = db.store();
    let mut report = RecoveryReport {
        scanned: records.len(),
        torn_tail,
        ..RecoveryReport::default()
    };

    match xtc_failpoint::eval_in(scope, "recovery.analysis") {
        Some(xtc_failpoint::FailAction::Delay(d)) => std::thread::sleep(d),
        Some(xtc_failpoint::FailAction::Error) => return Err(XtcError::Injected),
        None => {}
    }

    // -- Analysis ---------------------------------------------------------
    let mut winners: HashSet<TxnId> = HashSet::new();
    let mut seen: HashSet<TxnId> = HashSet::new();
    let mut compensated: HashSet<Lsn> = HashSet::new();
    let mut checkpoint: Option<(Lsn, usize)> = None;
    for (i, rec) in records.iter().enumerate() {
        if let Some(txn) = rec.body.txn() {
            seen.insert(txn);
        }
        match &rec.body {
            RecordBody::Commit { txn } => {
                winners.insert(*txn);
            }
            RecordBody::PageRedo {
                compensates: Some(undo_lsn),
                ..
            } => {
                compensated.insert(*undo_lsn);
            }
            RecordBody::Checkpoint { active, .. } => {
                seen.extend(active.iter().copied());
                checkpoint = Some((rec.lsn, i));
            }
            _ => {}
        }
    }
    report.checkpoint_lsn = checkpoint.map(|(lsn, _)| lsn);
    report.winners = winners.iter().copied().collect();
    report.winners.sort_unstable();
    report.losers = seen.difference(&winners).copied().collect();
    report.losers.sort_unstable();

    // -- Redo: load snapshot, then repeat history after it ----------------
    let redo_from = match checkpoint {
        Some((_, idx)) => {
            if let RecordBody::Checkpoint { snapshot, .. } = &records[idx].body {
                let decoded: Vec<_> = snapshot
                    .iter()
                    .filter_map(|(enc, payload)| {
                        decode_splid(enc).map(|id| (id, payload_to_data(store.vocab(), payload)))
                    })
                    .collect();
                let _ = store.insert_raw(&decoded);
            }
            idx + 1
        }
        None => 0,
    };
    for rec in &records[redo_from..] {
        if let RecordBody::PageRedo { op, .. } = &rec.body {
            match xtc_failpoint::eval_in(scope, "recovery.redo") {
                Some(xtc_failpoint::FailAction::Delay(d)) => std::thread::sleep(d),
                Some(xtc_failpoint::FailAction::Error) => return Err(XtcError::Injected),
                None => {}
            }
            apply_redo(store, op);
            report.redo_applied += 1;
        }
    }

    // -- Undo: roll back losers in reverse LSN order ----------------------
    // Losers' undo records are collected across the *whole* log (a loser
    // may have begun before the checkpoint), minus those a pre-crash
    // rollback already compensated with CLRs.
    let mut pending: Vec<(Lsn, &UndoOp)> = Vec::new();
    for rec in records {
        if let RecordBody::NodeUndo { txn, op } = &rec.body {
            if !winners.contains(txn) && !compensated.contains(&rec.lsn) {
                pending.push((rec.lsn, op));
            }
        }
    }
    pending.sort_by_key(|(lsn, _)| std::cmp::Reverse(*lsn));
    for (_, op) in &pending {
        apply_undo(store, op);
        report.undo_applied += 1;
    }

    // -- Version chains (versioned protocols only) ------------------------
    // Rebuild the version store's committed history from the winners'
    // undo records, stamped with their Commit record's LSN so the
    // post-recovery version clock stays monotonic with the log. No
    // snapshot survives a crash, so the rebuild immediately prunes to
    // the committed watermark — the chains start empty but the clock
    // (and stats) reflect the recovered history.
    if let Some(versions) = db.versions() {
        let mut commit_lsn: std::collections::HashMap<TxnId, Lsn> = std::collections::HashMap::new();
        for rec in records {
            if let RecordBody::Commit { txn } = &rec.body {
                commit_lsn.insert(*txn, rec.lsn);
            }
        }
        let mut committed: Vec<(Lsn, UndoOp)> = Vec::new();
        for rec in records {
            if let RecordBody::NodeUndo { txn, op } = &rec.body {
                if let Some(lsn) = commit_lsn.get(txn) {
                    committed.push((*lsn, op.clone()));
                }
            }
        }
        committed.sort_by_key(|(lsn, _)| *lsn);
        versions.rebuild_committed(store.vocab(), &committed);
    }

    Ok(report)
}

/// Continuous-redo applier: the replication subsystem's incremental
/// counterpart to [`replay`]. A read replica feeds it the primary's
/// durable records in LSN order and it maintains a **committed-snapshot**
/// document: redo operations are buffered per transaction and applied
/// only when that transaction's `Commit` record arrives, in original log
/// order; an `Abort` discards the buffer. Losers therefore never touch
/// the replica store — there is no undo pass, and every state the replica
/// ever exposes equals the primary's state at some commit boundary.
///
/// Commit-order grouping is serialization-safe because the primary
/// appends a transaction's `Commit` record *before* releasing its locks:
/// any conflicting operation of a later transaction carries a higher LSN
/// than the earlier transaction's commit, so replaying whole transactions
/// at their commit points reproduces the serial history. Compensation
/// records need no special handling — only aborting transactions write
/// CLRs, and their buffers are dropped wholesale.
///
/// Checkpoints: the *bootstrap* checkpoint (a clean snapshot with an
/// empty active list, written when a document is loaded or right after a
/// promotion recovery) is applied once into the pristine replica store;
/// every later (fuzzy) checkpoint is skipped — its content is redundant
/// with the redo history the applier is already consuming.
#[derive(Debug, Default)]
pub struct RedoApplier {
    /// Redo ops buffered per in-flight transaction, in LSN order.
    pending: HashMap<TxnId, Vec<RedoOp>>,
    /// Highest LSN consumed so far.
    applied_lsn: Lsn,
    /// Committed transactions materialised into the store.
    commits_applied: u64,
    /// Redo operations materialised into the store.
    ops_applied: u64,
    /// A bootstrap checkpoint has been loaded (later ones are skipped).
    bootstrapped: bool,
}

impl RedoApplier {
    /// A fresh applier for a pristine replica store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Highest LSN consumed so far (the replica's `applied_lsn`).
    pub fn applied_lsn(&self) -> Lsn {
        self.applied_lsn
    }

    /// Committed transactions materialised so far.
    pub fn commits_applied(&self) -> u64 {
        self.commits_applied
    }

    /// Redo operations materialised so far.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Transactions currently buffered (began but not yet resolved).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Consumes one durable record. Returns the number of redo operations
    /// materialised into `db`'s store by this record (non-zero only for
    /// `Commit` records and the bootstrap checkpoint).
    ///
    /// Records must arrive in LSN order; a gap or regression is rejected
    /// so a buggy shipper cannot silently corrupt the replica.
    pub fn apply(&mut self, db: &XtcDb, rec: &WalRecord) -> Result<usize, XtcError> {
        if rec.lsn <= self.applied_lsn {
            return Err(XtcError::Wal(xtc_wal::WalError::BadPayload(
                "replica applier: record LSN not monotonically increasing",
            )));
        }
        self.applied_lsn = rec.lsn;
        let store = db.store();
        let applied = match &rec.body {
            RecordBody::Begin { .. } | RecordBody::NodeUndo { .. } => 0,
            RecordBody::PageRedo { txn, op, .. } => {
                self.pending.entry(*txn).or_default().push(op.clone());
                0
            }
            RecordBody::Commit { txn } => {
                let ops = self.pending.remove(txn).unwrap_or_default();
                let n = ops.len();
                for op in &ops {
                    apply_redo(store, op);
                }
                self.commits_applied += 1;
                self.ops_applied += n as u64;
                n
            }
            RecordBody::Abort { txn } => {
                self.pending.remove(txn);
                0
            }
            RecordBody::Checkpoint { active, snapshot } => {
                if !self.bootstrapped && active.is_empty() && self.commits_applied == 0 {
                    let decoded: Vec<_> = snapshot
                        .iter()
                        .filter_map(|(enc, payload)| {
                            decode_splid(enc)
                                .map(|id| (id, payload_to_data(store.vocab(), payload)))
                        })
                        .collect();
                    let n = decoded.len();
                    let _ = store.insert_raw(&decoded);
                    self.bootstrapped = true;
                    n
                } else {
                    0
                }
            }
        };
        Ok(applied)
    }
}

/// Rebuilds a database from the durable contents of `wal`.
///
/// The source log is typically taken from a crashed [`XtcDb`] (its
/// in-memory buffer is gone; only synced batches survive). The rebuilt
/// database uses `config` — which may itself carry a WAL for the next
/// epoch; when it does, a post-recovery checkpoint is taken so the new
/// log starts from the recovered state rather than empty.
pub fn recover_from(wal: &Wal, config: XtcConfig) -> Result<(XtcDb, RecoveryReport), XtcError> {
    let started = std::time::Instant::now();
    let (records, tail_err) = wal.read_records()?;
    let db = XtcDb::try_new(config)?;
    let report = replay_scoped(&db, &records, tail_err.is_some(), wal.scope())?;
    if db.wal().is_some() {
        db.checkpoint()?;
    }
    // Recovery downtime is part of a run's cost story: charge the pass's
    // elapsed time to the recovered engine's virtual clock so chaos
    // reports can bound it alongside the simulated workload costs.
    db.obs().charge(
        xtc_obs::CostKind::Recovery,
        started.elapsed().as_micros() as u64,
    );
    Ok((db, report))
}

/// Convenience map from transaction id to its durable fate, derived from
/// a [`RecoveryReport`] — handy for crash-matrix tests.
pub fn fates(report: &RecoveryReport) -> HashMap<TxnId, bool> {
    let mut m = HashMap::new();
    for t in &report.winners {
        m.insert(*t, true);
    }
    for t in &report.losers {
        m.insert(*t, false);
    }
    m
}
