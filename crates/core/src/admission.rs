//! Admission control: a bounded-concurrency gate in front of
//! [`XtcDb::try_begin`](crate::XtcDb::try_begin).
//!
//! The gate is a counted semaphore (mutex + condvar) so overload sheds
//! at the door instead of as lock-table thrashing. It was private to one
//! engine until the catalog landed; now it is `Arc`-shareable, so a
//! [`Catalog`](crate::Catalog) can put one gate in front of *all* its
//! documents (a catalog-wide throttle) while a standalone [`XtcDb`]
//! keeps a private one.

use crate::db::AdmissionPolicy;
use crate::error::XtcError;
use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Bounded-concurrency gate: at most `limit` transactions hold a slot at
/// once. At capacity, [`AdmissionGate::admit`] queues (bounded) or
/// rejects per the [`AdmissionPolicy`]. Shareable across engines — wrap
/// it in an `Arc` and hand clones to several [`XtcDb`](crate::XtcDb)s to
/// make it a catalog-wide throttle.
pub struct AdmissionGate {
    limit: usize,
    policy: AdmissionPolicy,
    in_flight: Mutex<usize>,
    available: Condvar,
}

impl std::fmt::Debug for AdmissionGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGate")
            .field("limit", &self.limit)
            .field("policy", &self.policy)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent transactions (a zero
    /// limit would admit nothing, ever; it is clamped to one).
    pub fn new(limit: usize, policy: AdmissionPolicy) -> Self {
        AdmissionGate {
            limit: limit.max(1),
            policy,
            in_flight: Mutex::new(0),
            available: Condvar::new(),
        }
    }

    /// The concurrency limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The at-capacity policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Transactions currently holding a slot.
    pub fn in_flight(&self) -> usize {
        *self.in_flight.lock()
    }

    /// Claims a slot, per policy. `timeout` bounds a `Queue` wait; a
    /// wait that times out fails with [`XtcError::AdmissionRejected`]
    /// (retryable).
    pub fn admit(&self, timeout: Duration) -> Result<(), XtcError> {
        let mut n = self.in_flight.lock();
        if *n < self.limit {
            *n += 1;
            return Ok(());
        }
        if self.policy == AdmissionPolicy::Reject {
            return Err(XtcError::AdmissionRejected);
        }
        let deadline = Instant::now() + timeout;
        loop {
            // Re-check the predicate before the deadline: a waiter that
            // was handed a slot right at its deadline takes it rather
            // than failing with the slot in hand.
            if *n < self.limit {
                *n += 1;
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                // A release's notify_one may have targeted this waiter
                // between its last sleep and this check; leaving without
                // claiming would swallow that wakeup and strand a free
                // slot while other waiters sleep on. Forward it — a
                // spurious notify is harmless (waiters re-check).
                self.available.notify_one();
                return Err(XtcError::AdmissionRejected);
            }
            self.available.wait_for(&mut n, deadline - now);
        }
    }

    /// Returns a slot and wakes one queued waiter.
    pub fn release(&self) {
        let mut n = self.in_flight.lock();
        *n = n.saturating_sub(1);
        self.available.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_up_to_limit_then_rejects() {
        let gate = AdmissionGate::new(2, AdmissionPolicy::Reject);
        gate.admit(Duration::ZERO).unwrap();
        gate.admit(Duration::ZERO).unwrap();
        assert!(matches!(
            gate.admit(Duration::ZERO),
            Err(XtcError::AdmissionRejected)
        ));
        gate.release();
        gate.admit(Duration::ZERO).unwrap();
        assert_eq!(gate.in_flight(), 2);
    }

    #[test]
    fn queue_wait_times_out_without_stranding_slots() {
        let gate = Arc::new(AdmissionGate::new(1, AdmissionPolicy::Queue));
        gate.admit(Duration::ZERO).unwrap();
        let g = gate.clone();
        let waiter = std::thread::spawn(move || g.admit(Duration::from_millis(50)));
        assert!(matches!(
            waiter.join().unwrap(),
            Err(XtcError::AdmissionRejected)
        ));
        gate.release();
        // The timed-out waiter left the gate consistent: the slot is
        // immediately claimable.
        gate.admit(Duration::ZERO).unwrap();
        assert_eq!(gate.in_flight(), 1);
    }

    #[test]
    fn timed_out_waiter_forwards_the_wakeup() {
        // One slot, two queued waiters with staggered deadlines. The
        // release lands near the short waiter's deadline; whichever way
        // that race resolves, the long waiter (or the short one) must
        // get the slot — it must never stay free while a waiter sleeps.
        for _ in 0..50 {
            let gate = Arc::new(AdmissionGate::new(1, AdmissionPolicy::Queue));
            gate.admit(Duration::ZERO).unwrap();
            let short = {
                let g = gate.clone();
                std::thread::spawn(move || g.admit(Duration::from_millis(10)))
            };
            let long = {
                let g = gate.clone();
                std::thread::spawn(move || {
                    let r = g.admit(Duration::from_millis(400));
                    if r.is_ok() {
                        g.release();
                    }
                    r
                })
            };
            // Release as close to the short deadline as a sleep gets us.
            std::thread::sleep(Duration::from_millis(10));
            gate.release();
            let short_r = short.join().unwrap();
            let long_r = long.join().unwrap();
            if short_r.is_ok() {
                // Short claimed the released slot and still holds it.
                assert_eq!(gate.in_flight(), 1);
            } else {
                // Short timed out: the wakeup must have reached long.
                assert!(long_r.is_ok(), "slot stranded with a sleeping waiter");
                assert_eq!(gate.in_flight(), 0);
            }
        }
    }
}
