//! # xtc-core — the XTC transaction coordinator
//!
//! The public API of the reproduction: an embedded XML DBMS combining the
//! taDOM node manager (`xtc-node`), the meta-synchronizing lock manager
//! (`xtc-lock`), and any of the eleven contested lock protocols
//! (`xtc-protocols`) into transactional DOM access with the ACID subset
//! the paper evaluates (atomicity via logical undo, isolation via the
//! chosen protocol and level; durability is out of scope — see
//! DESIGN.md).
//!
//! ```
//! use xtc_core::{XtcConfig, XtcDb};
//! use xtc_lock::IsolationLevel;
//!
//! let db = XtcDb::new(XtcConfig {
//!     protocol: "taDOM3+".into(),
//!     isolation: IsolationLevel::Repeatable,
//!     lock_depth: 4,
//!     ..XtcConfig::default()
//! });
//! db.load_xml(r#"<bib><book id="b1"><title>Locks</title></book></bib>"#)
//!     .unwrap();
//!
//! let txn = db.begin();
//! let book = txn.element_by_id("b1").unwrap().unwrap();
//! let title = txn.element_children(&book).unwrap()[0].clone();
//! assert_eq!(txn.element_text(&title).unwrap(), "Locks");
//! txn.commit().unwrap();
//! ```

#![warn(missing_docs)]

mod db;
mod error;
mod retry;
mod txn;
mod view;

pub use db::{XtcConfig, XtcDb};
pub use error::XtcError;
pub use retry::{RetryPolicy, RetryStats};
pub use txn::Transaction;
pub use view::StoreView;

pub use xtc_lock::{EdgeKind, IsolationLevel, LockError, VictimPolicy};
pub use xtc_node::{InsertPos, NodeData, NodeKind};
pub use xtc_splid::SplId;
