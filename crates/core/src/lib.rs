//! # xtc-core — the XTC transaction coordinator
//!
//! The public API of the reproduction: an embedded XML DBMS combining the
//! taDOM node manager (`xtc-node`), the meta-synchronizing lock manager
//! (`xtc-lock`), and any of the eleven contested lock protocols
//! (`xtc-protocols`) into transactional DOM access with ACID semantics:
//! atomicity via logical undo, isolation via the chosen protocol and
//! level, and — when a write-ahead log is configured
//! ([`XtcConfig::wal`]) — durability via ARIES-lite logging, group
//! commit, and crash [`recovery`] (see DESIGN.md §8).
//!
//! ```
//! use xtc_core::{XtcConfig, XtcDb};
//! use xtc_lock::IsolationLevel;
//!
//! let db = XtcDb::new(XtcConfig {
//!     protocol: "taDOM3+".into(),
//!     isolation: IsolationLevel::Repeatable,
//!     lock_depth: 4,
//!     ..XtcConfig::default()
//! });
//! db.load_xml(r#"<bib><book id="b1"><title>Locks</title></book></bib>"#)
//!     .unwrap();
//!
//! let txn = db.begin();
//! let book = txn.element_by_id("b1").unwrap().unwrap();
//! let title = txn.element_children(&book).unwrap()[0].clone();
//! assert_eq!(txn.element_text(&title).unwrap(), "Locks");
//! txn.commit().unwrap();
//! ```

#![warn(missing_docs)]

mod admission;
mod catalog;
mod db;
mod error;
mod mvcc;
pub mod recovery;
mod retry;
mod txn;
mod view;

pub use admission::AdmissionGate;
pub use catalog::{Catalog, CatalogConfig, DocRole, DocSpec, ReadRoute, ReplicaShared};
pub use db::{AdmissionPolicy, XtcConfig, XtcDb};
pub use error::XtcError;
pub use mvcc::{ReadKey, VersionStats, VersionStore};
pub use recovery::{recover_from, RecoveryReport, RedoApplier};
pub use retry::{RetryPolicy, RetryStats};
pub use txn::Transaction;
pub use view::StoreView;

pub use xtc_lock::{EdgeKind, IsolationLevel, LockError, VictimPolicy};
pub use xtc_node::{DocStoreConfig, InsertPos, NodeData, NodeKind};
pub use xtc_splid::SplId;
/// Re-export of the WAL crate so downstream users (benches, chaos tests)
/// can configure durability without a direct `xtc-wal` dependency.
pub use xtc_wal as wal;
