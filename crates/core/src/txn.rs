//! Transactions: the DOM-level API with protocol locking and logical undo.
//!
//! Every operation follows the same discipline:
//!
//! 1. *plan* — read the affected neighbourhood (unlocked),
//! 2. *lock* — hand the corresponding [`MetaOp`] to the protocol,
//! 3. *verify* — re-read; if concurrent changes invalidated the plan,
//!    loop (the extra locks are harmless over-locking),
//! 4. *apply* — perform the node-manager mutation and push an undo
//!    record,
//! 5. *end of operation* — release short locks (isolation *committed*).
//!
//! Deadlock victims abort: the undo log is replayed in reverse while the
//! transaction still holds its long locks, then everything is released.
//!
//! With a write-ahead log configured ([`crate::XtcConfig::wal`]), every
//! mutation runs through [`Transaction::apply_logged`]: the logical undo
//! record is appended *before* the store mutation, pages touched by the
//! mutation are stamped with the covering redo record's LSN, and the redo
//! record follows the mutation — so a crash at any point leaves a log
//! from which [`crate::recovery`] can reconstruct or roll back the
//! operation. Aborts write compensation records (CLRs) as they undo, and
//! commit forces the log via group commit.

use crate::db::XtcDb;
use crate::error::XtcError;
use crate::mvcc::ReadKey;
use crate::recovery;
use std::cell::{Cell, RefCell};
use std::collections::HashSet;
use std::sync::Arc;
use xtc_lock::{EdgeKind, IsolationLevel, LockCtx, MetaOp, TxnHandle, TxnId};
use xtc_node::{AttrPlan, InsertPos, NodeData};
use xtc_splid::SplId;
use xtc_wal::{Lsn, NodePayload, RecordBody, RedoOp, UndoOp, WalError};

const PLAN_RETRIES: usize = 32;

/// A running transaction. Dropping an unfinished transaction aborts it.
pub struct Transaction<'db> {
    db: &'db XtcDb,
    /// The registry handle, resolved once at begin: abort flag, held-lock
    /// bookkeeping, and the lock cache without global-mutex traffic.
    handle: Arc<TxnHandle>,
    id: TxnId,
    isolation: IsolationLevel,
    lock_depth: u32,
    /// Logical undo records in apply order, each paired with the LSN of
    /// its logged `NodeUndo` twin (`None` without a WAL) so the abort
    /// path can write matching compensation records.
    undo: RefCell<Vec<(Option<Lsn>, UndoOp)>>,
    finished: Cell<bool>,
    /// Whether a `Begin` record has been logged (lazily, on first write —
    /// read-only transactions never touch the log).
    began: Cell<bool>,
    /// Latched once the held-lock count crosses the escalation
    /// threshold, so the escalation is counted exactly once and never
    /// reverts mid-transaction.
    escalated: Cell<bool>,
    /// Whether this transaction holds an admission-gate slot
    /// (started via [`XtcDb::try_begin`] with `max_in_flight` set);
    /// released exactly once on commit/abort.
    admitted: bool,
    /// Snapshot stamp registered at begin when the protocol reads from
    /// versions (taMVCC/taOCC); reads resolve against the version store
    /// at this stamp and never touch the lock table. Released exactly
    /// once in [`Transaction::release`] (commit, abort, and drop all
    /// funnel there), which also unpins the GC watermark.
    snapshot: Option<u64>,
    /// Read set of an optimistic transaction (protocol validates at
    /// commit); unused otherwise.
    reads: RefCell<HashSet<ReadKey>>,
    /// Whether commit must validate the read set
    /// (`Protocol::validates_at_commit`).
    validates: bool,
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(
        db: &'db XtcDb,
        handle: Arc<TxnHandle>,
        isolation: IsolationLevel,
        lock_depth: u32,
        admitted: bool,
    ) -> Self {
        let snapshot = db.versions().map(|v| v.register_snapshot());
        let validates = db.protocol().validates_at_commit();
        Transaction {
            db,
            id: handle.id(),
            handle,
            isolation,
            lock_depth,
            undo: RefCell::new(Vec::new()),
            finished: Cell::new(false),
            began: Cell::new(false),
            escalated: Cell::new(false),
            admitted,
            snapshot,
            reads: RefCell::new(HashSet::new()),
            validates,
        }
    }

    /// The snapshot stamp this transaction reads at, when the protocol
    /// is versioned (`None` for the pessimistic contestants).
    pub fn snapshot(&self) -> Option<u64> {
        self.snapshot
    }

    /// The transaction's id (also its age for victim selection).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The engine's observability handle — workload drivers charge their
    /// simulated think time through it so the virtual clock sees every
    /// cost source.
    pub fn obs(&self) -> &xtc_obs::Obs {
        self.db.obs()
    }

    fn ctx(&self) -> LockCtx<'_> {
        LockCtx {
            txn: &self.handle,
            table: self.db.lock_table(),
            doc: &**self.db.view(),
            isolation: self.isolation,
            lock_depth: self.effective_lock_depth(),
        }
    }

    /// The lock depth of the next request: the transaction's own depth,
    /// or the database's escalated (shallower) depth once the held-lock
    /// count crosses the escalation threshold. Escalation is a pressure
    /// valve: beyond the threshold, coarse subtree locks stop the
    /// per-node lock count from growing without bound.
    fn effective_lock_depth(&self) -> u32 {
        if self.escalated.get() {
            return self.db.escalated_depth().min(self.lock_depth);
        }
        if let Some(threshold) = self.db.escalation_threshold() {
            if self.db.escalated_depth() < self.lock_depth
                && self.handle.held_count() >= threshold
            {
                self.escalated.set(true);
                // The effective depth just changed: cached coverage was
                // computed for deeper, finer locks, so force the next
                // requests through the shared table.
                self.handle.invalidate_cache();
                self.db.lock_table().record_escalation();
                return self.db.escalated_depth();
            }
        }
        self.lock_depth
    }

    /// Whether this transaction has escalated to coarser locks.
    pub fn escalated(&self) -> bool {
        self.escalated.get()
    }

    /// Enforces the database's per-transaction *virtual-time* deadline
    /// ([`crate::XtcConfig::txn_deadline`]): compares the time charged
    /// to this transaction's frame (page reads, lock waits, WAL
    /// flushes, think time) against the budget. Deterministic — the
    /// comparison never reads the wall clock.
    fn check_deadline(&self) -> Result<(), XtcError> {
        let Some(budget) = self.db.txn_deadline() else {
            return Ok(());
        };
        let budget_us = budget.as_micros() as u64;
        let elapsed_us = self
            .db
            .obs()
            .txn_vt(self.id)
            .map(|vt| vt.total_us())
            .unwrap_or(0);
        if elapsed_us > budget_us {
            return Err(XtcError::DeadlineExceeded {
                elapsed_us,
                budget_us,
            });
        }
        Ok(())
    }

    /// Issues one meta-lock request to the protocol.
    fn acquire(&self, op: MetaOp<'_>) -> Result<(), XtcError> {
        if self.finished.get() {
            return Err(XtcError::Finished);
        }
        if self.store().stats().is_poisoned() {
            // A permanent storage I/O fault was injected somewhere in
            // the engine: stop admitting new work into this transaction.
            // With a WAL the poisoning becomes a crash (recovery is the
            // way out); without one the database is simply dead.
            if let Some(handle) = self.db.wal_handle() {
                handle.wal.crash();
                return Err(XtcError::Wal(WalError::Crashed));
            }
            return Err(XtcError::Poisoned);
        }
        self.check_deadline()?;
        self.db
            .protocol()
            .acquire(&self.ctx(), &op)
            .map_err(XtcError::from)
    }

    /// Ends the current operation: short read locks are released under
    /// isolation level *committed*. Called implicitly by every public
    /// operation.
    fn end_operation(&self) {
        self.db.lock_table().release_end_of_operation(self.id);
    }

    fn store(&self) -> &xtc_node::DocStore {
        self.db.store()
    }

    // ---- snapshot reads -------------------------------------------------

    /// The version store and snapshot stamp, when this transaction reads
    /// from versions. Every snapshot read goes through here: it performs
    /// the same health checks as [`Transaction::acquire`] but touches no
    /// locks — the zero-lock-wait guarantee of the versioned protocols.
    fn snap(&self) -> Option<(&Arc<crate::VersionStore>, u64)> {
        match (self.db.versions(), self.snapshot) {
            (Some(v), Some(s)) => Some((v, s)),
            _ => None,
        }
    }

    fn snapshot_op(&self, stamp: u64) -> Result<(), XtcError> {
        if self.finished.get() {
            return Err(XtcError::Finished);
        }
        if self.store().stats().is_poisoned() {
            if let Some(handle) = self.db.wal_handle() {
                handle.wal.crash();
                return Err(XtcError::Wal(WalError::Crashed));
            }
            return Err(XtcError::Poisoned);
        }
        self.check_deadline()?;
        self.db
            .obs()
            .record_for(self.id, xtc_obs::EventKind::SnapshotRead { stamp });
        Ok(())
    }

    /// Adds one read to the optimistic read set (no-op unless the
    /// protocol validates at commit).
    fn track_read(&self, key: ReadKey) {
        if self.validates {
            self.reads.borrow_mut().insert(key);
        }
    }

    // ---- reads ----------------------------------------------------------

    /// Direct jump via the ID index (`getElementById`).
    ///
    /// Under isolation level serializable the probed index value itself
    /// is share-locked — present or absent — so a repeated jump can
    /// neither lose nor gain a target (footnote 1's phantom protection).
    pub fn element_by_id(&self, id_value: &str) -> Result<Option<SplId>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            // Snapshot relaxation: the index is probed at its *latest*
            // state and the hit is verified visible at the snapshot — an
            // element whose id appeared after the snapshot is filtered
            // out, but one removed after it is not found (no historic
            // index; see DESIGN.md §17).
            let found = self
                .store()
                .element_by_id(id_value)
                .filter(|n| v.exists_at(self.store(), n, s, self.id));
            if let Some(n) = &found {
                self.track_read(ReadKey::Node(n.clone()));
            }
            return Ok(found);
        }
        if self.isolation.locks_index_keys() {
            self.acquire(MetaOp::IndexKeyRead(id_value.as_bytes()))?;
        }
        for _ in 0..PLAN_RETRIES {
            let Some(found) = self.store().element_by_id(id_value) else {
                self.end_operation();
                return Ok(None);
            };
            self.acquire(MetaOp::JumpRead(&found))?;
            // Verify the jump target under lock.
            if self.store().element_by_id(id_value).as_ref() == Some(&found) {
                self.end_operation();
                return Ok(Some(found));
            }
        }
        Err(XtcError::Busy)
    }

    /// All elements with a given name via the element index, jump-locked.
    pub fn elements_named(&self, name: &str) -> Result<Vec<SplId>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            let found: Vec<SplId> = self
                .store()
                .elements_named(name)
                .into_iter()
                .filter(|e| v.name_at(self.store(), e, s, self.id).as_deref() == Some(name))
                .collect();
            for e in &found {
                self.track_read(ReadKey::Node(e.clone()));
            }
            return Ok(found);
        }
        let found = self.store().elements_named(name);
        for e in &found {
            self.acquire(MetaOp::JumpRead(e))?;
        }
        self.end_operation();
        Ok(found)
    }

    /// The document root element, if any.
    pub fn root(&self) -> Result<Option<SplId>, XtcError> {
        let root = SplId::root();
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Node(root.clone()));
            return Ok(v.exists_at(self.store(), &root, s, self.id).then_some(root));
        }
        if !self.store().exists(&root) {
            return Ok(None);
        }
        self.acquire(MetaOp::ReadNode(&root))?;
        self.end_operation();
        Ok(Some(root))
    }

    /// Reads a node's record.
    pub fn node(&self, n: &SplId) -> Result<Option<NodeData>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Node(n.clone()));
            return Ok(v.data_at(self.store(), n, s, self.id));
        }
        self.acquire(MetaOp::ReadNode(n))?;
        let data = self.store().get(n);
        self.end_operation();
        Ok(data)
    }

    /// Element/attribute name of a node.
    pub fn name(&self, n: &SplId) -> Result<Option<String>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Node(n.clone()));
            return Ok(v.name_at(self.store(), n, s, self.id));
        }
        self.acquire(MetaOp::ReadNode(n))?;
        let name = self.store().name_of(n);
        self.end_operation();
        Ok(name)
    }

    /// Concatenated text content of an element's direct text children
    /// (convenience over `children` + `text_content`).
    pub fn element_text(&self, elem: &SplId) -> Result<String, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Level(elem.clone()));
            let mut out = String::new();
            for c in v.children_at(self.store(), elem, s, self.id) {
                if matches!(v.data_at(self.store(), &c, s, self.id), Some(NodeData::Text)) {
                    self.track_read(ReadKey::Node(c.clone()));
                    if let Some(t) = v.text_at(self.store(), &c, s, self.id) {
                        out.push_str(&t);
                    }
                }
            }
            return Ok(out);
        }
        self.acquire(MetaOp::ReadLevel(elem))?;
        let mut out = String::new();
        for c in self.store().children(elem) {
            if matches!(self.store().get(&c), Some(NodeData::Text)) {
                self.acquire(MetaOp::ReadNode(&c))?;
                if let Some(t) = self.store().text_of(&c) {
                    out.push_str(&t);
                }
            }
        }
        self.end_operation();
        Ok(out)
    }

    /// Content of a text or attribute node.
    pub fn text_content(&self, n: &SplId) -> Result<Option<String>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Node(n.clone()));
            return Ok(v.text_at(self.store(), n, s, self.id));
        }
        self.acquire(MetaOp::ReadNode(n))?;
        let text = self.store().text_of(n);
        self.end_operation();
        Ok(text)
    }

    fn navigate(
        &self,
        from: &SplId,
        edge: EdgeKind,
        f: impl Fn(&xtc_node::DocStore) -> Option<SplId>,
    ) -> Result<Option<SplId>, XtcError> {
        for _ in 0..PLAN_RETRIES {
            let to = f(self.store());
            self.acquire(MetaOp::Navigate {
                from,
                to: to.as_ref(),
                edge,
            })?;
            if f(self.store()) == to {
                self.end_operation();
                return Ok(to);
            }
        }
        Err(XtcError::Busy)
    }

    /// Resolves a sibling-axis step against the version store: the
    /// snapshot-visible child list of `parent`, offset from `n`.
    fn snapshot_sibling(
        &self,
        n: &SplId,
        next: bool,
    ) -> Result<Option<SplId>, XtcError> {
        let (v, s) = self.snap().expect("caller checked");
        let Some(p) = n.parent() else { return Ok(None) };
        self.track_read(ReadKey::Level(p.clone()));
        let sibs = v.children_at(self.store(), &p, s, self.id);
        let Some(i) = sibs.iter().position(|x| x == n) else {
            return Ok(None);
        };
        Ok(if next {
            sibs.get(i + 1).cloned()
        } else if i > 0 {
            sibs.get(i - 1).cloned()
        } else {
            None
        })
    }

    /// `getFirstChild`.
    pub fn first_child(&self, n: &SplId) -> Result<Option<SplId>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Level(n.clone()));
            return Ok(v.children_at(self.store(), n, s, self.id).into_iter().next());
        }
        self.navigate(n, EdgeKind::FirstChild, |s| s.first_child(n))
    }

    /// `getLastChild`.
    pub fn last_child(&self, n: &SplId) -> Result<Option<SplId>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Level(n.clone()));
            return Ok(v.children_at(self.store(), n, s, self.id).pop());
        }
        self.navigate(n, EdgeKind::LastChild, |s| s.last_child(n))
    }

    /// `getNextSibling`.
    pub fn next_sibling(&self, n: &SplId) -> Result<Option<SplId>, XtcError> {
        if let Some((_, s)) = self.snap() {
            self.snapshot_op(s)?;
            return self.snapshot_sibling(n, true);
        }
        self.navigate(n, EdgeKind::NextSibling, |s| s.next_sibling(n))
    }

    /// `getPreviousSibling`.
    pub fn prev_sibling(&self, n: &SplId) -> Result<Option<SplId>, XtcError> {
        if let Some((_, s)) = self.snap() {
            self.snapshot_op(s)?;
            return self.snapshot_sibling(n, false);
        }
        self.navigate(n, EdgeKind::PrevSibling, |s| s.prev_sibling(n))
    }

    /// Parent node (SPLID arithmetic + read lock).
    pub fn parent(&self, n: &SplId) -> Result<Option<SplId>, XtcError> {
        match n.parent() {
            Some(p) => {
                if let Some((v, s)) = self.snap() {
                    self.snapshot_op(s)?;
                    self.track_read(ReadKey::Node(p.clone()));
                    return Ok(v.exists_at(self.store(), &p, s, self.id).then_some(p));
                }
                self.acquire(MetaOp::ReadNode(&p))?;
                let exists = self.store().exists(&p);
                self.end_operation();
                Ok(exists.then_some(p))
            }
            None => Ok(None),
        }
    }

    /// `getChildNodes` — one shared level lock under taDOM, a per-child
    /// fan-out elsewhere.
    pub fn children(&self, n: &SplId) -> Result<Vec<SplId>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Level(n.clone()));
            return Ok(v.children_at(self.store(), n, s, self.id));
        }
        self.acquire(MetaOp::ReadLevel(n))?;
        let kids = self.store().children(n);
        self.end_operation();
        Ok(kids)
    }

    /// Element children only (skips attribute roots and text nodes).
    pub fn element_children(&self, n: &SplId) -> Result<Vec<SplId>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Level(n.clone()));
            return Ok(v
                .children_at(self.store(), n, s, self.id)
                .into_iter()
                .filter(|c| {
                    matches!(
                        v.data_at(self.store(), c, s, self.id),
                        Some(NodeData::Element { .. })
                    )
                })
                .collect());
        }
        self.acquire(MetaOp::ReadLevel(n))?;
        let kids = self.store().element_children(n);
        self.end_operation();
        Ok(kids)
    }

    /// `getAttributes` — a level lock on the attribute root (the taDOM
    /// optimization of §2.3).
    pub fn attributes(&self, elem: &SplId) -> Result<Vec<(SplId, String)>, XtcError> {
        let ar = elem.reserved_child();
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Node(elem.clone()));
            self.track_read(ReadKey::Level(ar.clone()));
            let mut out = Vec::new();
            for a in v.children_at(self.store(), &ar, s, self.id) {
                if matches!(
                    v.data_at(self.store(), &a, s, self.id),
                    Some(NodeData::Attribute { .. })
                ) {
                    let name = v.name_at(self.store(), &a, s, self.id).unwrap_or_default();
                    out.push((a, name));
                }
            }
            return Ok(out);
        }
        self.acquire(MetaOp::ReadNode(elem))?;
        if self.store().exists(&ar) {
            self.acquire(MetaOp::ReadLevel(&ar))?;
        }
        let attrs = self
            .store()
            .attributes(elem)
            .into_iter()
            .map(|(a, voc)| (a, self.store().vocab().resolve(voc).unwrap_or_default()))
            .collect();
        self.end_operation();
        Ok(attrs)
    }

    /// Value of a named attribute.
    pub fn attribute(&self, elem: &SplId, name: &str) -> Result<Option<String>, XtcError> {
        let ar = elem.reserved_child();
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Node(elem.clone()));
            self.track_read(ReadKey::Level(ar.clone()));
            for a in v.children_at(self.store(), &ar, s, self.id) {
                if matches!(
                    v.data_at(self.store(), &a, s, self.id),
                    Some(NodeData::Attribute { .. })
                ) && v.name_at(self.store(), &a, s, self.id).as_deref() == Some(name)
                {
                    self.track_read(ReadKey::Node(a.clone()));
                    return Ok(v.text_at(self.store(), &a, s, self.id));
                }
            }
            return Ok(None);
        }
        self.acquire(MetaOp::ReadNode(elem))?;
        if self.store().exists(&ar) {
            self.acquire(MetaOp::ReadLevel(&ar))?;
        }
        let v = self.store().attribute_value(elem, name);
        self.end_operation();
        Ok(v)
    }

    /// Reads a whole subtree (`getFragmentNodes`-style) under one tree
    /// lock.
    pub fn subtree(&self, n: &SplId) -> Result<Vec<(SplId, NodeData)>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Tree(n.clone()));
            return Ok(v.subtree_at(self.store(), n, s, self.id));
        }
        self.acquire(MetaOp::ReadTree(n))?;
        let nodes = self.store().subtree(n);
        self.end_operation();
        Ok(nodes)
    }

    /// Reads a subtree declaring the intent to update parts of it (tree
    /// update lock — exercises the U modes). Under a versioned protocol
    /// this is a plain snapshot read: the update intent is discharged by
    /// first-updater-wins checks (and, for taOCC, commit validation) on
    /// the writes themselves.
    pub fn subtree_for_update(&self, n: &SplId) -> Result<Vec<(SplId, NodeData)>, XtcError> {
        if let Some((v, s)) = self.snap() {
            self.snapshot_op(s)?;
            self.track_read(ReadKey::Tree(n.clone()));
            return Ok(v.subtree_at(self.store(), n, s, self.id));
        }
        self.acquire(MetaOp::UpdateTree(n))?;
        let nodes = self.store().subtree(n);
        self.end_operation();
        Ok(nodes)
    }

    // ---- writes ---------------------------------------------------------

    /// Runs one mutation under the WAL protocol. Without a WAL this is
    /// just `mutate` plus an in-memory undo entry. With one, the sequence
    /// under the database's log mutex is:
    ///
    /// 1. lazily log `Begin` on the transaction's first write,
    /// 2. log the logical undo record (`NodeUndo`),
    /// 3. stamp pages the mutation will dirty with the upcoming redo
    ///    record's LSN (via the store's ambient `current_lsn`), so the
    ///    buffer pool's WAL rule (`page_lsn ≤ durable_lsn` before flush)
    ///    covers them,
    /// 4. perform the mutation,
    /// 5. log the redo record (`PageRedo`).
    ///
    /// A failpoint below the undo-log granularity (`btree.split`) cannot
    /// error out of step 4; it *poisons* the shared storage stats
    /// instead, which this function converts into a WAL crash — the
    /// mid-split-kill scenario of the chaos tests.
    fn apply_logged<T>(
        &self,
        undo: Option<UndoOp>,
        mutate: impl FnOnce() -> Result<T, XtcError>,
        redo: impl FnOnce(&T) -> RedoOp,
    ) -> Result<T, XtcError> {
        self.check_deadline()?;
        // Versioned protocols park the pre-image in the version store
        // *before* mutating, so concurrent snapshot readers keep seeing
        // the old state and first-updater-wins conflicts surface here.
        if let (Some((v, s)), Some(op)) = (self.snap(), undo.as_ref()) {
            v.push_write(self.id, s, self.store().vocab(), op)?;
        }
        let Some(handle) = self.db.wal_handle() else {
            let value = mutate()?;
            if let Some(op) = undo {
                self.undo.borrow_mut().push((None, op));
            }
            return Ok(value);
        };
        let _log = handle.log_mutex.lock();
        if handle.wal.is_crashed() {
            return Err(XtcError::Wal(WalError::Crashed));
        }
        if !self.began.get() {
            handle.wal.append(&RecordBody::Begin { txn: self.id })?;
            handle.active.lock().insert(self.id);
            self.began.set(true);
        }
        let undo_lsn = match &undo {
            Some(op) => Some(handle.wal.append(&RecordBody::NodeUndo {
                txn: self.id,
                op: op.clone(),
            })?),
            None => None,
        };
        let stats = self.store().stats();
        stats.set_current_lsn(handle.wal.next_lsn());
        let value = mutate()?;
        if stats.is_poisoned() {
            // A below-undo-granularity failpoint fired mid-mutation:
            // treat the engine as crashed. The already-logged undo record
            // lets recovery roll the half-visible operation back.
            handle.wal.crash();
            if let Some(op) = undo {
                self.undo.borrow_mut().push((undo_lsn, op));
            }
            return Err(XtcError::Wal(WalError::Crashed));
        }
        let appended = handle.wal.append(&RecordBody::PageRedo {
            txn: self.id,
            compensates: None,
            op: redo(&value),
        });
        if let Some(op) = undo {
            self.undo.borrow_mut().push((undo_lsn, op));
        }
        appended?;
        Ok(value)
    }

    /// The logged form of a node's current subtree (for insert redo and
    /// delete undo payloads).
    fn subtree_payload(&self, root: &SplId) -> Vec<(Vec<u8>, NodePayload)> {
        let store = self.store();
        store
            .subtree(root)
            .into_iter()
            .map(|(id, data)| {
                (
                    xtc_splid::encode(&id),
                    recovery::data_to_payload(store.vocab(), &data),
                )
            })
            .collect()
    }

    /// Replaces the content of a text or attribute node.
    pub fn update_text(&self, n: &SplId, content: &str) -> Result<(), XtcError> {
        self.acquire(MetaOp::WriteContent(n))?;
        let old = self.store().text_of(n);
        self.apply_logged(
            old.map(|old| UndoOp::Content {
                node: xtc_splid::encode(n),
                old,
            }),
            || {
                self.store().update_content(n, content)?;
                Ok(())
            },
            |()| RedoOp::Content {
                node: xtc_splid::encode(n),
                new: content.to_string(),
            },
        )?;
        self.end_operation();
        Ok(())
    }

    /// Renames an element (DOM level 3).
    pub fn rename(&self, n: &SplId, new_name: &str) -> Result<(), XtcError> {
        self.acquire(MetaOp::Rename(n))?;
        let old = self.store().name_of(n);
        self.apply_logged(
            old.map(|old| UndoOp::Rename {
                node: xtc_splid::encode(n),
                old,
            }),
            || {
                self.store().rename_element(n, new_name)?;
                Ok(())
            },
            |()| RedoOp::Rename {
                node: xtc_splid::encode(n),
                new: new_name.to_string(),
            },
        )?;
        self.end_operation();
        Ok(())
    }

    fn plan_and_lock_insert(
        &self,
        parent: &SplId,
        pos: &InsertPos,
    ) -> Result<SplId, XtcError> {
        self.acquire(MetaOp::ReadNode(parent))?;
        for _ in 0..PLAN_RETRIES {
            let (label, left, right) = self.store().plan_insert(parent, pos)?;
            self.acquire(MetaOp::InsertNode {
                parent,
                node: &label,
                left: left.as_ref(),
                right: right.as_ref(),
            })?;
            let (label2, ..) = self.store().plan_insert(parent, pos)?;
            if label2 == label {
                return Ok(label);
            }
        }
        Err(XtcError::Busy)
    }

    /// Inserts a new element under `parent`.
    pub fn insert_element(
        &self,
        parent: &SplId,
        pos: InsertPos,
        name: &str,
    ) -> Result<SplId, XtcError> {
        let label = self.plan_and_lock_insert(parent, &pos)?;
        let inserted = self.apply_logged(
            Some(UndoOp::Delete {
                root: xtc_splid::encode(&label),
            }),
            || {
                let inserted = self.store().insert_element(parent, pos, name)?;
                // Under isolation `none` the plan lock is a no-op, so
                // concurrent sibling inserts may legitimately shift the
                // label between plan and apply; the store's answer is
                // authoritative.
                debug_assert!(
                    inserted == label || self.isolation == IsolationLevel::None,
                    "locked insert plan diverged: planned {label}, inserted {inserted}"
                );
                Ok(inserted)
            },
            |inserted| RedoOp::Insert {
                nodes: self.subtree_payload(inserted),
            },
        )?;
        self.end_operation();
        Ok(inserted)
    }

    /// Inserts a new text node under `parent`.
    pub fn insert_text(
        &self,
        parent: &SplId,
        pos: InsertPos,
        content: &str,
    ) -> Result<SplId, XtcError> {
        let label = self.plan_and_lock_insert(parent, &pos)?;
        let inserted = self.apply_logged(
            Some(UndoOp::Delete {
                root: xtc_splid::encode(&label),
            }),
            || {
                let inserted = self.store().insert_text(parent, pos, content)?;
                debug_assert!(
                    inserted == label || self.isolation == IsolationLevel::None,
                    "locked insert plan diverged: planned {label}, inserted {inserted}"
                );
                Ok(inserted)
            },
            |inserted| RedoOp::Insert {
                nodes: self.subtree_payload(inserted),
            },
        )?;
        self.end_operation();
        Ok(inserted)
    }

    /// Sets (creating or updating) an attribute.
    pub fn set_attribute(
        &self,
        elem: &SplId,
        name: &str,
        value: &str,
    ) -> Result<(), XtcError> {
        self.acquire(MetaOp::ReadNode(elem))?;
        if name == "id" {
            // Changing ID-index content: exclusive key locks so
            // serializable jumpers (who share-lock even absent values)
            // are excluded. Old value too, when it moves.
            self.acquire(MetaOp::IndexKeyWrite(value.as_bytes()))?;
            if let Some(old) = self.store().attribute_value(elem, "id") {
                if old != value {
                    self.acquire(MetaOp::IndexKeyWrite(old.as_bytes()))?;
                }
            }
        }
        for _ in 0..PLAN_RETRIES {
            match self.store().plan_attribute(elem, name)? {
                AttrPlan::Existing(attr) => {
                    self.acquire(MetaOp::WriteContent(&attr))?;
                    // Verify the attribute still exists under lock.
                    if self.store().plan_attribute(elem, name)? != AttrPlan::Existing(attr.clone())
                    {
                        continue;
                    }
                    let old = self.store().text_of(&attr);
                    self.apply_logged(
                        old.map(|old| UndoOp::Content {
                            node: xtc_splid::encode(&attr),
                            old,
                        }),
                        || {
                            self.store().update_content(&attr, value)?;
                            Ok(())
                        },
                        |()| RedoOp::Content {
                            node: xtc_splid::encode(&attr),
                            new: value.to_string(),
                        },
                    )?;
                    self.end_operation();
                    return Ok(());
                }
                AttrPlan::New {
                    attr_root,
                    attr_root_exists,
                    label,
                    last,
                } => {
                    self.acquire(MetaOp::InsertNode {
                        parent: &attr_root,
                        node: &label,
                        left: last.as_ref(),
                        right: None,
                    })?;
                    if self.store().plan_attribute(elem, name)?
                        != (AttrPlan::New {
                            attr_root: attr_root.clone(),
                            attr_root_exists,
                            label: label.clone(),
                            last,
                        })
                    {
                        continue;
                    }
                    // Undo removes the attribute node — and the attribute
                    // root if this call created it.
                    let undo_root = if attr_root_exists {
                        label.clone()
                    } else {
                        attr_root.clone()
                    };
                    self.apply_logged(
                        Some(UndoOp::Delete {
                            root: xtc_splid::encode(&undo_root),
                        }),
                        || {
                            let (attr, _) = self.store().set_attribute(elem, name, value)?;
                            debug_assert!(
                                attr == label || self.isolation == IsolationLevel::None,
                                "locked attribute plan diverged: planned {label}, created {attr}"
                            );
                            Ok(())
                        },
                        |()| RedoOp::Insert {
                            nodes: self.subtree_payload(&undo_root),
                        },
                    )?;
                    self.end_operation();
                    return Ok(());
                }
            }
        }
        Err(XtcError::Busy)
    }

    /// Deletes the subtree rooted at `n`.
    pub fn delete_subtree(&self, n: &SplId) -> Result<(), XtcError> {
        for _ in 0..PLAN_RETRIES {
            let left = self.store().prev_sibling(n);
            let right = self.store().next_sibling(n);
            self.acquire(MetaOp::DeleteTree {
                node: n,
                left: left.as_ref(),
                right: right.as_ref(),
            })?;
            if self.store().prev_sibling(n) != left || self.store().next_sibling(n) != right {
                continue;
            }
            let nodes = self.subtree_payload(n);
            if nodes.is_empty() {
                return Err(xtc_node::NodeError::NotFound(n.clone()).into());
            }
            self.apply_logged(
                Some(UndoOp::Restore { nodes }),
                || {
                    self.store().delete_subtree(n)?;
                    Ok(())
                },
                |()| RedoOp::Delete {
                    root: xtc_splid::encode(n),
                },
            )?;
            self.end_operation();
            return Ok(());
        }
        Err(XtcError::Busy)
    }

    // ---- lifecycle --------------------------------------------------------

    /// Commits: logs and forces a `Commit` record when a WAL is
    /// configured (group commit batches concurrent committers into one
    /// sync), then releases all locks and discards the undo log.
    pub fn commit(self) -> Result<(), XtcError> {
        if self.finished.get() {
            return Err(XtcError::Finished);
        }
        // Last deadline check before any durable effect: a transaction
        // over budget rolls back instead of forcing the log.
        if let Err(e) = self.check_deadline() {
            self.abort_inner();
            return Err(e);
        }
        // Chaos-test hook: an injected commit failure must leave the
        // document as if the transaction never ran, so it rolls back
        // through the ordinary abort path (undo replay under the still
        // held long locks).
        match xtc_failpoint::eval_in(self.db.failpoint_scope(), "txn.commit") {
            Some(xtc_failpoint::FailAction::Delay(d)) => std::thread::sleep(d),
            Some(xtc_failpoint::FailAction::Error) => {
                self.abort_inner();
                return Err(XtcError::Injected);
            }
            None => {}
        }
        // Optimistic protocols validate the read set now, before any
        // durable effect: a write committed since our snapshot that
        // intersects anything we read means this transaction observed a
        // state no serial order can explain — roll back (retryable).
        if self.validates {
            if let Some((v, s)) = self.snap() {
                let conflicts = v.validate(self.id, s, &self.reads.borrow());
                if conflicts > 0 {
                    self.db
                        .obs()
                        .record_for(self.id, xtc_obs::EventKind::ValidationAbort { conflicts });
                    self.abort_inner();
                    return Err(XtcError::ValidationFailed);
                }
            }
        }
        let mut commit_lsn: Option<Lsn> = None;
        if let Some(handle) = self.db.wal_handle() {
            if self.began.get() {
                // Chaos-test hook: kill the engine at the commit point,
                // *before* the Commit record exists — a deterministic
                // loser for the recovery matrix.
                match xtc_failpoint::eval_in(self.db.failpoint_scope(), "wal.commit") {
                    Some(xtc_failpoint::FailAction::Delay(d)) => std::thread::sleep(d),
                    Some(xtc_failpoint::FailAction::Error) => {
                        handle.wal.crash();
                        self.abort_inner();
                        return Err(XtcError::Wal(WalError::Crashed));
                    }
                    None => {}
                }
                let appended = {
                    let _log = handle.log_mutex.lock();
                    handle.wal.append(&RecordBody::Commit { txn: self.id })
                };
                let lsn = match appended {
                    Ok(lsn) => lsn,
                    Err(e) => {
                        self.abort_inner();
                        return Err(e.into());
                    }
                };
                commit_lsn = Some(lsn);
                // Force the log *outside* the log mutex so concurrent
                // committers can pile into the same flush window.
                if let Err(e) = handle.wal.commit_sync(lsn) {
                    // The engine crashed mid-flush. Whether the Commit
                    // record made it to the durable prefix is unknowable
                    // here (torn tail); roll back the in-memory state and
                    // let recovery decide this transaction's fate.
                    self.abort_inner();
                    return Err(e.into());
                }
                // The group flush advanced the durable horizon; publish
                // it so the buffer pool's WAL rule (write back only
                // pages with `page_lsn <= durable_lsn`) unblocks the
                // pages this transaction dirtied.
                self.db
                    .store()
                    .stats()
                    .set_durable_lsn(handle.wal.durable_lsn());
                handle.active.lock().remove(&self.id);
            }
        }
        // Publish this transaction's versions: pending entries become
        // committed at the next version-clock tick (stamped with the
        // commit LSN's identity for recovery alignment).
        if let Some(v) = self.db.versions() {
            v.commit(self.id, commit_lsn);
        }
        self.finished.set(true);
        self.undo.borrow_mut().clear();
        self.release();
        self.db.obs().txn_end(self.id, true);
        Ok(())
    }

    /// Aborts: replays the undo log in reverse (while still holding the
    /// long locks), then releases everything.
    pub fn abort(self) {
        self.abort_inner();
    }

    fn abort_inner(&self) {
        if self.finished.replace(true) {
            return;
        }
        let undo: Vec<(Option<Lsn>, UndoOp)> = self.undo.borrow_mut().drain(..).collect();
        let store = self.store();
        // Undo application is best-effort against logical errors: under
        // isolation level `none` concurrent chaos may have invalidated
        // records.
        match self.db.wal_handle() {
            Some(handle) if self.began.get() => {
                let _log = handle.log_mutex.lock();
                if handle.wal.is_crashed() {
                    // Engine is dead: keep the in-memory state sane for
                    // transactions still draining, but the log is frozen —
                    // recovery will perform the durable rollback.
                    for (_, op) in undo.iter().rev() {
                        recovery::apply_undo(store, op);
                    }
                } else {
                    for (undo_lsn, op) in undo.iter().rev() {
                        // Each undone step is logged as a compensation
                        // record (CLR) so a crash mid-rollback replays the
                        // partial rollback (repeating history) and skips
                        // the already-compensated undo records.
                        store.stats().set_current_lsn(handle.wal.next_lsn());
                        recovery::apply_undo(store, op);
                        let _ = handle.wal.append(&RecordBody::PageRedo {
                            txn: self.id,
                            compensates: *undo_lsn,
                            op: op.as_redo(),
                        });
                    }
                    // Abort is not forced: losing it to a crash only means
                    // recovery redoes the rollback from the CLR trail.
                    let _ = handle.wal.append(&RecordBody::Abort { txn: self.id });
                }
                handle.active.lock().remove(&self.id);
            }
            _ => {
                for (_, op) in undo.iter().rev() {
                    recovery::apply_undo(store, op);
                }
            }
        }
        if let Some(v) = self.db.versions() {
            v.abort(self.id);
        }
        self.release();
        self.db.obs().txn_end(self.id, false);
    }

    fn release(&self) {
        // Unpin the snapshot first so the version-store watermark can
        // advance (and prune) the moment this transaction is done. This
        // also covers the Drop path: a read-only snapshot transaction
        // that is simply dropped must not pin version GC forever.
        if let (Some(v), Some(s)) = (self.db.versions(), self.snapshot) {
            v.release_snapshot(s);
        }
        self.db.lock_table().release_all(self.id);
        self.db.registry().finish(self.id);
        if self.admitted {
            self.db.admission_release();
        }
    }

    /// Locks currently recorded for this transaction (diagnostics).
    pub fn held_locks(&self) -> usize {
        self.handle.held_count()
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.finished.get() {
            self.abort_inner();
        }
    }
}
