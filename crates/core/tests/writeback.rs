//! Background writeback (ISSUE 9): the flusher thread configured by
//! `XtcConfig::writeback_interval` must clean dirty pages between
//! checkpoints while honoring the WAL rule — only pages whose stamp the
//! durable log prefix covers are written back.

use std::time::{Duration, Instant};
use xtc_core::wal::WalConfig;
use xtc_core::{InsertPos, XtcConfig, XtcDb};

fn wait_clean(db: &XtcDb, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let ps = db.store().pool_stats();
        if ps.dirty == 0 && ps.flushes > 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: background writeback never cleaned the pages: {ps:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn background_writeback_cleans_committed_pages_between_checkpoints() {
    let mut config = XtcConfig {
        wal: Some(WalConfig::default()),
        writeback_interval: Some(Duration::from_millis(2)),
        ..XtcConfig::default()
    };
    // File-backed pools: the flusher's write-backs are real I/O.
    config.store.backend_dir = Some(
        std::env::temp_dir().join(format!("xtc-writeback-test-{}", std::process::id())),
    );
    let dir = config.store.backend_dir.clone().unwrap();
    {
        let db = XtcDb::new(config);
        db.load_xml(r#"<bib><a id="x0">seed</a></bib>"#).unwrap();

        // Dirty a batch of pages; commit publishes the durable LSN, so
        // the flusher (not a checkpoint) must clean them.
        let t = db.begin();
        let a = t.element_by_id("x0").unwrap().unwrap();
        for i in 0..8 {
            t.insert_element(&a, InsertPos::LastChild, &format!("c{i}"))
                .unwrap();
        }
        t.commit().unwrap();
        wait_clean(&db, "wal + file backend");
        // Dropping the db joins the flusher — no flush races teardown.
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn background_writeback_without_wal_flushes_unconditionally() {
    // No WAL → no WAL rule: every dirty page is immediately flushable,
    // and load_xml (which checkpoints only under a WAL) leaves the pages
    // dirty for the flusher to find.
    let db = XtcDb::new(XtcConfig {
        writeback_interval: Some(Duration::from_millis(2)),
        ..XtcConfig::default()
    });
    db.load_xml(r#"<bib><a id="x0">seed</a></bib>"#).unwrap();
    wait_clean(&db, "volatile engine");
}
