//! Two engines in one process must be fully isolated: each has its own
//! failpoint scope, so chaos armed against one document of a
//! [`Catalog`] faults that document only — including its *recovery*,
//! which evaluates in the crashed log's scope rather than the fresh
//! destination engine's. Only compiled with the `failpoints` feature
//! (`cargo test -p xtc-core --features failpoints --test multi_engine`).

#![cfg(feature = "failpoints")]

use std::sync::Mutex;
use std::time::Duration;
use xtc_core::wal::WalConfig;
use xtc_core::{recover_from, Catalog, CatalogConfig, DocSpec, XtcConfig, XtcDb, XtcError};
use xtc_failpoint::FailAction;

/// The failpoint registry is process-global; tests arming it must not
/// overlap (`cargo test` runs `#[test]` functions on multiple threads).
static FP_LOCK: Mutex<()> = Mutex::new(());

fn wal_config() -> XtcConfig {
    XtcConfig {
        lock_timeout: Duration::from_secs(5),
        wal: Some(WalConfig::default()),
        ..XtcConfig::default()
    }
}

#[test]
fn scoped_fault_is_invisible_to_the_neighbor_document() {
    let _guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xtc_failpoint::clear();

    let catalog = Catalog::new(CatalogConfig::default());
    let a = catalog
        .create_doc(DocSpec::named("a").with_xml("<doc><x id=\"n1\">v</x></doc>"))
        .unwrap();
    let b = catalog
        .create_doc(DocSpec::named("b").with_xml("<doc><x id=\"n1\">v</x></doc>"))
        .unwrap();

    // Arm the commit kill in document a's scope only.
    xtc_failpoint::configure_in(
        a.failpoint_scope(),
        "txn.commit",
        1.0,
        FailAction::Error,
        None,
    );
    assert!(matches!(a.begin().commit(), Err(XtcError::Injected)));
    b.begin().commit().expect("neighbor engine must be unaffected");

    // The same site armed in the GLOBAL scope reaches both engines —
    // the pre-catalog behaviour, still available to whole-process chaos.
    xtc_failpoint::clear();
    xtc_failpoint::configure("txn.commit", 1.0, FailAction::Error, None);
    assert!(matches!(a.begin().commit(), Err(XtcError::Injected)));
    assert!(matches!(b.begin().commit(), Err(XtcError::Injected)));
    xtc_failpoint::clear();
}

#[test]
fn scoped_recovery_fault_kills_only_that_documents_recovery() {
    let _guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    xtc_failpoint::clear();

    // Two WAL-backed engines with some durable work each.
    let mut wals = Vec::new();
    let mut scopes = Vec::new();
    for _ in 0..2 {
        let db = XtcDb::new(wal_config());
        db.load_xml("<doc><x id=\"n1\">v</x></doc>").unwrap();
        let txn = db.begin();
        let x = txn.element_by_id("n1").unwrap().unwrap();
        txn.rename(&x, "renamed").unwrap();
        txn.commit().unwrap();
        let wal = db.wal().unwrap().clone();
        wal.crash();
        scopes.push(db.failpoint_scope());
        wals.push(wal);
    }

    // Arm the recovery kill against document a (the crashed log's
    // scope). The destination engine recover_from builds is brand new —
    // nobody armed *its* scope — so the site must evaluate in the
    // source scope for the kill to land at all.
    xtc_failpoint::configure_in(scopes[0], "recovery.analysis", 1.0, FailAction::Error, None);
    assert!(matches!(
        recover_from(&wals[0], XtcConfig::default()),
        Err(XtcError::Injected)
    ));
    // Document b's recovery is untouched by a's chaos.
    let (db_b, report_b) = recover_from(&wals[1], XtcConfig::default()).unwrap();
    assert_eq!(report_b.winners.len(), 1);
    let txn = db_b.begin();
    let x = txn.element_by_id("n1").unwrap().unwrap();
    assert_eq!(txn.name(&x).unwrap(), Some("renamed".to_string()));
    txn.commit().unwrap();

    // Disarm a's scope: the same log now recovers cleanly (a killed
    // recovery never writes to its source).
    xtc_failpoint::clear_scope(scopes[0]);
    let (_db_a, report_a) = recover_from(&wals[0], XtcConfig::default()).unwrap();
    assert_eq!(report_a.winners.len(), 1);
    xtc_failpoint::clear();
}
