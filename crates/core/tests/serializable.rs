//! Isolation level serializable: the footnote-1 extension — direct jumps
//! via `getElementById` are phantom-free because the probed index *value*
//! is locked, present or absent.

use std::time::Duration;
use xtc_core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};

fn db(protocol: &str) -> XtcDb {
    let db = XtcDb::new(XtcConfig {
        protocol: protocol.into(),
        isolation: IsolationLevel::Serializable,
        lock_depth: 6,
        lock_timeout: Duration::from_millis(300),
        ..XtcConfig::default()
    });
    db.load_xml(r#"<r><a id="a1"/><b/></r>"#).unwrap();
    db
}

/// Repeatable read allows the jump phantom; serializable does not.
#[test]
fn serializable_prevents_the_jump_phantom() {
    for proto in ["taDOM3+", "taDOM2", "URIX", "Node2PLa", "Node2PL", "OO2PL"] {
        let db = db(proto);
        // The reader probes a value that does not exist yet.
        let reader = db.begin_with(IsolationLevel::Serializable, 6);
        assert_eq!(reader.element_by_id("ghost").unwrap(), None, "{proto}");

        // A writer trying to create that very id must block.
        let writer = db.begin_with(IsolationLevel::Serializable, 6);
        let b = writer.elements_named("b").unwrap()[0].clone();
        let res = writer.set_attribute(&b, "id", "ghost");
        assert!(
            res.is_err(),
            "{proto}: creating a probed id value must block"
        );
        writer.abort();

        // The repeated probe still sees nothing.
        assert_eq!(reader.element_by_id("ghost").unwrap(), None, "{proto}");
        reader.commit().unwrap();

        // After the reader commits, the id can be created.
        let writer = db.begin_with(IsolationLevel::Serializable, 6);
        let b = writer.elements_named("b").unwrap()[0].clone();
        writer.set_attribute(&b, "id", "ghost").unwrap();
        writer.commit().unwrap();
    }
}

#[test]
fn repeatable_read_admits_the_jump_phantom() {
    let db = db("taDOM3+");
    let reader = db.begin_with(IsolationLevel::Repeatable, 6);
    assert_eq!(reader.element_by_id("ghost").unwrap(), None);

    // Under plain repeatable read the creation goes through…
    let writer = db.begin_with(IsolationLevel::Repeatable, 6);
    let b = writer.elements_named("b").unwrap()[0].clone();
    writer.set_attribute(&b, "id", "ghost").unwrap();
    writer.commit().unwrap();

    // …and the reader's repeated probe sees the phantom.
    assert!(reader.element_by_id("ghost").unwrap().is_some());
    reader.commit().unwrap();
}

/// Moving an id value locks both the old and the new key.
#[test]
fn id_value_moves_lock_both_keys() {
    let db = db("taDOM3+");
    let reader = db.begin_with(IsolationLevel::Serializable, 6);
    let a = reader.element_by_id("a1").unwrap().unwrap();
    let _ = a;

    let writer = db.begin_with(IsolationLevel::Serializable, 6);
    let a2 = writer.elements_named("a").unwrap()[0].clone();
    // Renumbering a1 -> a9 writes the old key "a1", which the reader
    // share-locked by probing it.
    let res = writer.set_attribute(&a2, "id", "a9");
    assert!(res.is_err(), "old key must be write-locked");
    writer.abort();
    reader.commit().unwrap();
}

/// Serializable transactions otherwise behave like repeatable read
/// (normal reads and writes work, commit/abort intact).
#[test]
fn serializable_everyday_operations_work() {
    let db = db("taDOM3+");
    let t = db.begin();
    let a = t.element_by_id("a1").unwrap().unwrap();
    let note = t.insert_element(&a, InsertPos::LastChild, "note").unwrap();
    t.insert_text(&note, InsertPos::LastChild, "x").unwrap();
    t.commit().unwrap();
    let t = db.begin();
    let a = t.element_by_id("a1").unwrap().unwrap();
    assert_eq!(t.element_children(&a).unwrap().len(), 1);
    t.commit().unwrap();
    assert_eq!(db.lock_table().granted_count(), 0);
}
