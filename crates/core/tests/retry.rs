//! Retry-layer tests: backoff envelope properties across many seeds, and
//! the `run_retrying` loop's behaviour against a live database.

use std::cell::Cell;
use std::time::Duration;
use xtc_core::{IsolationLevel, RetryPolicy, XtcConfig, XtcDb, XtcError};

fn db() -> XtcDb {
    XtcDb::new(XtcConfig {
        protocol: "taDOM3+".to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        ..XtcConfig::default()
    })
}

/// An instant policy: real attempt accounting, no wall-clock sleeping.
fn instant_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base: Duration::ZERO,
        cap: Duration::ZERO,
        ..RetryPolicy::default()
    }
}

// ---------------------------------------------------------------------------
// Backoff properties. Exhaustive seed loops instead of `proptest!` so the
// property holds verifiably for every sampled seed, deterministically.
// ---------------------------------------------------------------------------

#[test]
fn backoff_is_monotonically_bounded_by_cap_for_any_seed() {
    for seed in 0..200u64 {
        let p = RetryPolicy {
            seed,
            ..RetryPolicy::default()
        };
        let mut prev = Duration::ZERO;
        for attempt in 0..24 {
            let e = p.envelope(attempt);
            assert!(e >= prev, "seed {seed}: envelope shrank at {attempt}");
            assert!(e <= p.cap, "seed {seed}: envelope exceeds cap at {attempt}");
            prev = e;
        }
        assert_eq!(p.envelope(63), p.cap, "seed {seed}: envelope must saturate");
    }
}

#[test]
fn jitter_stays_within_base_and_cap_for_any_seed() {
    for seed in 0..100u64 {
        let p = RetryPolicy {
            seed,
            ..RetryPolicy::default()
        };
        for salt in 0..8u64 {
            for attempt in 0..16 {
                let d = p.delay(attempt, salt);
                assert!(
                    d >= p.base,
                    "seed {seed} salt {salt} attempt {attempt}: {d:?} below base"
                );
                assert!(
                    d <= p.cap,
                    "seed {seed} salt {salt} attempt {attempt}: {d:?} above cap"
                );
                assert!(
                    d <= p.envelope(attempt),
                    "seed {seed} salt {salt} attempt {attempt}: {d:?} above envelope"
                );
            }
        }
    }
}

#[test]
fn degenerate_policies_do_not_panic_or_escape_bounds() {
    // cap < base, multiplier < 1, zero everything: delay must stay within
    // [min(base, cap), max(base, cap)] and never panic.
    let shapes = [
        (Duration::from_millis(10), Duration::from_millis(1), 0.5),
        (Duration::ZERO, Duration::ZERO, 2.0),
        (Duration::from_millis(3), Duration::from_millis(3), 1.0),
        (Duration::from_nanos(1), Duration::from_secs(1), 1e9),
    ];
    for (base, cap, multiplier) in shapes {
        for seed in 0..20u64 {
            let p = RetryPolicy {
                base,
                cap,
                multiplier,
                seed,
                ..RetryPolicy::default()
            };
            for attempt in 0..10 {
                let d = p.delay(attempt, seed);
                assert!(d >= base.min(cap) && d <= base.max(cap), "{d:?}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// run_retrying behaviour.
// ---------------------------------------------------------------------------

#[test]
fn first_try_commit_makes_one_attempt() {
    let db = db();
    db.load_xml("<bib><topics/></bib>").unwrap();
    let (res, stats) = db.run_retrying(&instant_policy(5), |txn| {
        let root = txn.root()?.expect("document root");
        Ok(txn.name(&root)?.expect("root has a name"))
    });
    assert_eq!(res.unwrap(), "bib");
    assert_eq!(stats.attempts, 1);
    assert!(!stats.committed_after_retry);
    assert_eq!(stats.retried(), 0);
    assert_eq!(stats.backoff_total, Duration::ZERO);
}

#[test]
fn retryable_abort_is_retried_until_success() {
    let db = db();
    db.load_xml("<bib><topics/></bib>").unwrap();
    let failures_left = Cell::new(2u32);
    let (res, stats) = db.run_retrying(&instant_policy(8), |txn| {
        let root = txn.root()?.expect("document root");
        txn.name(&root)?;
        if failures_left.get() > 0 {
            failures_left.set(failures_left.get() - 1);
            return Err(XtcError::Busy);
        }
        Ok(42)
    });
    assert_eq!(res.unwrap(), 42);
    assert_eq!(stats.attempts, 3);
    assert!(stats.committed_after_retry);
    assert_eq!(stats.other_retryable_aborts, 2);
    assert_eq!(db.lock_table().granted_count(), 0, "aborts released locks");
}

#[test]
fn attempts_are_bounded_and_last_error_returned() {
    let db = db();
    db.load_xml("<bib/>").unwrap();
    let (res, stats) = db.run_retrying(&instant_policy(3), |_txn| {
        Err::<(), _>(XtcError::Busy)
    });
    assert_eq!(res.unwrap_err(), XtcError::Busy);
    assert_eq!(stats.attempts, 3);
    assert_eq!(stats.other_retryable_aborts, 2, "last abort is not retried");
}

#[test]
fn non_retryable_error_fails_immediately() {
    let db = db();
    db.load_xml("<bib/>").unwrap();
    let (res, stats) = db.run_retrying(&instant_policy(8), |_txn| {
        Err::<(), _>(XtcError::Finished)
    });
    assert_eq!(res.unwrap_err(), XtcError::Finished);
    assert_eq!(stats.attempts, 1, "non-retryable errors must not retry");
    assert_eq!(stats.retried(), 0);
}

#[test]
fn deadline_budget_stops_retrying_early() {
    let db = db();
    db.load_xml("<bib/>").unwrap();
    // Every backoff would sleep 50ms against a 1ms total budget: the loop
    // must give up before sleeping rather than blow through the deadline.
    let policy = RetryPolicy {
        max_attempts: 100,
        base: Duration::from_millis(50),
        cap: Duration::from_millis(50),
        deadline: Some(Duration::from_millis(1)),
        ..RetryPolicy::default()
    };
    let started = std::time::Instant::now();
    let (res, stats) = db.run_retrying(&policy, |_txn| Err::<(), _>(XtcError::Busy));
    assert_eq!(res.unwrap_err(), XtcError::Busy);
    assert_eq!(stats.attempts, 1);
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "deadline must stop the loop, took {:?}",
        started.elapsed()
    );
}

#[test]
fn deadlock_aborts_are_classified_as_deadlocks() {
    use xtc_core::LockError;
    let db = db();
    db.load_xml("<bib/>").unwrap();
    let first = Cell::new(true);
    let (res, stats) = db.run_retrying(&instant_policy(4), |_txn| {
        if first.get() {
            first.set(false);
            return Err(XtcError::Lock(LockError::Deadlock { conversion: false }));
        }
        Ok(())
    });
    assert!(res.is_ok());
    assert_eq!(stats.deadlock_aborts, 1);
    assert_eq!(stats.timeout_aborts, 0);
    assert!(stats.committed_after_retry);
}

#[test]
fn vt_budget_is_never_exceeded_for_any_seed() {
    // Property (exhaustive seed loop, like the backoff properties above):
    // with `max_elapsed_us` set, the loop stops before the accumulated
    // virtual time crosses the budget — for every seed, even though the
    // per-retry backoff is jittered and each attempt charges transaction
    // virtual time on top.
    let db = db();
    db.load_xml("<bib/>").unwrap();
    let budget_us = 1_000u64;
    for seed in 0..50u64 {
        let policy = RetryPolicy {
            max_attempts: 1_000,
            base: Duration::from_micros(200),
            cap: Duration::from_micros(200),
            max_elapsed_us: Some(budget_us),
            seed,
            ..RetryPolicy::default()
        };
        let (res, stats) = db.run_retrying(&policy, |_txn| Err::<(), _>(XtcError::Busy));
        assert_eq!(res.unwrap_err(), XtcError::Busy);
        assert!(
            stats.vt_elapsed_us < budget_us,
            "seed {seed}: spent {} µs of a {budget_us} µs budget",
            stats.vt_elapsed_us
        );
        assert!(
            stats.attempts < policy.max_attempts,
            "seed {seed}: the vt budget, not max_attempts, must stop the loop"
        );
        assert!(stats.attempts >= 1, "seed {seed}: at least one attempt");
    }
}

#[test]
fn vt_budget_of_zero_stops_after_one_attempt() {
    let db = db();
    db.load_xml("<bib/>").unwrap();
    let policy = RetryPolicy {
        max_attempts: 100,
        base: Duration::from_micros(100),
        cap: Duration::from_micros(100),
        max_elapsed_us: Some(0),
        ..RetryPolicy::default()
    };
    let (res, stats) = db.run_retrying(&policy, |_txn| Err::<(), _>(XtcError::Busy));
    assert_eq!(res.unwrap_err(), XtcError::Busy);
    assert_eq!(stats.attempts, 1, "zero budget means no retries");
}
