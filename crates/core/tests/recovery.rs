//! ARIES-lite recovery: commit durability, loser rollback, compensation
//! records, checkpointing, group commit, and the file-backed log.
//!
//! The crash here is the WAL's own: `Wal::crash()` freezes the log at
//! its durable prefix (everything since the last sync is gone), exactly
//! what a kill -9 between fsyncs leaves on disk. Recovery rebuilds a
//! fresh database from that prefix and the tests assert on its contents.

use std::sync::Arc;
use std::time::Duration;
use xtc_core::wal::{WalConfig, WalStorage};
use xtc_core::{recover_from, IsolationLevel, XtcConfig, XtcDb};

fn wal_db(protocol: &str) -> XtcDb {
    XtcDb::new(XtcConfig {
        protocol: protocol.into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 6,
        lock_timeout: Duration::from_secs(5),
        wal: Some(WalConfig::default()),
        ..XtcConfig::default()
    })
}

const DOC: &str = r#"<bib><a id="x0"><b id="x1">one</b></a><d id="x3"><e id="x4">two</e></d></bib>"#;

/// Serialized form of the whole document (vocabulary-independent).
fn doc_text(db: &XtcDb) -> String {
    xtc_node::serialize_subtree(db.store(), &xtc_core::SplId::root())
}

#[test]
fn committed_work_survives_crash_and_uncommitted_work_does_not() {
    let db = wal_db("taDOM3+");
    db.load_xml(DOC).unwrap();

    // Committed: a new element plus an attribute.
    let t1 = db.begin();
    let a = t1.element_by_id("x0").unwrap().unwrap();
    t1.insert_element(&a, xtc_core::InsertPos::LastChild, "durable")
        .unwrap();
    t1.set_attribute(&a, "marker", "yes").unwrap();
    let t1_id = t1.id();
    t1.commit().unwrap();

    // Uncommitted: in-flight at crash time.
    let t2 = db.begin();
    let d = t2.element_by_id("x3").unwrap().unwrap();
    t2.insert_element(&d, xtc_core::InsertPos::LastChild, "ephemeral")
        .unwrap();
    let t2_id = t2.id();
    // A later committer forces the log, making t2's Begin/undo/redo part
    // of the durable prefix — without this the crash would erase t2 from
    // history entirely (also correct, but not what this test asserts).
    // It works under x0, away from the locks t2 still holds around x3.
    let t3 = db.begin();
    let a3 = t3.element_by_id("x0").unwrap().unwrap();
    t3.insert_element(&a3, xtc_core::InsertPos::LastChild, "marker3")
        .unwrap();
    t3.commit().unwrap();

    let wal = db.wal().unwrap().clone();
    wal.crash();
    drop(t2); // the drop-abort sees a crashed log: memory-only rollback

    let (rec, report) = recover_from(&wal, XtcConfig::default()).unwrap();
    assert!(report.winners.contains(&t1_id), "committer must be a winner");
    assert!(report.losers.contains(&t2_id), "in-flight txn must be a loser");
    assert!(report.checkpoint_lsn.is_some(), "load_xml checkpoints");
    assert_eq!(
        rec.store().elements_named("durable").len(),
        1,
        "committed insert lost"
    );
    let a = rec.store().element_by_id("x0").expect("id index rebuilt");
    assert_eq!(
        rec.store().attribute_value(&a, "marker").as_deref(),
        Some("yes"),
        "committed attribute lost"
    );
    assert!(
        rec.store().elements_named("ephemeral").is_empty(),
        "loser's insert leaked into the recovered database"
    );
    assert_eq!(
        rec.store().verify_indexes(),
        Vec::<String>::new(),
        "recovered indexes disagree with the document"
    );
}

#[test]
fn aborted_transaction_stays_rolled_back_through_recovery() {
    let db = wal_db("taDOM2");
    db.load_xml(DOC).unwrap();
    let before = doc_text(&db);

    // Mutate heavily, then abort: rollback writes CLRs into the log.
    let t = db.begin();
    let a = t.element_by_id("x0").unwrap().unwrap();
    let b = t.element_by_id("x1").unwrap().unwrap();
    let e = t.element_by_id("x4").unwrap().unwrap();
    t.insert_element(&a, xtc_core::InsertPos::LastChild, "tmp")
        .unwrap();
    t.rename(&e, "renamed").unwrap();
    // `first_child` of <b> is its attribute root (it carries an id); the
    // text node is the first *Text*-kind child.
    let text = t
        .children(&b)
        .unwrap()
        .into_iter()
        .find(|c| matches!(db.store().get(c), Some(xtc_core::NodeData::Text)))
        .expect("b has a text child");
    t.update_text(&text, "rewritten").unwrap();
    t.delete_subtree(&b).unwrap();
    let loser = t.id();
    t.abort();
    assert_eq!(doc_text(&db), before, "live abort failed");

    let wal = db.wal().unwrap().clone();
    // Aborts don't force the log; sync so the undo/CLR/Abort trail is in
    // the durable prefix (otherwise the crash erases the loser entirely).
    wal.sync_all().unwrap();
    wal.crash();
    let (rec, report) = recover_from(&wal, XtcConfig::default()).unwrap();
    assert!(report.losers.contains(&loser));
    assert_eq!(
        doc_text(&rec),
        before,
        "recovery disagrees with the pre-abort document"
    );
    // The pre-crash rollback already compensated every undo record, so
    // recovery's own undo pass has nothing left to do.
    assert_eq!(report.undo_applied, 0, "CLRs were not honoured");
}

#[test]
fn crash_mid_transaction_rolls_back_via_logged_undo() {
    let db = wal_db("taDOM3+");
    db.load_xml(DOC).unwrap();
    let before = doc_text(&db);

    // The mutations are synced (a later committer forces the whole
    // buffer), but the transaction itself never commits — recovery must
    // roll it back from its logged undo records, not from memory.
    let t = db.begin();
    let a = t.element_by_id("x0").unwrap().unwrap();
    t.insert_element(&a, xtc_core::InsertPos::LastChild, "half")
        .unwrap();
    let b = t.element_by_id("x1").unwrap().unwrap();
    t.delete_subtree(&b).unwrap();

    let other = db.begin();
    let d = other.element_by_id("x3").unwrap().unwrap();
    other
        .insert_element(&d, xtc_core::InsertPos::LastChild, "bystander")
        .unwrap();
    other.commit().unwrap(); // forces the log: t's records are durable now

    let wal = db.wal().unwrap().clone();
    wal.crash();
    std::mem::forget(t); // simulate the thread dying with the txn open

    let (rec, report) = recover_from(&wal, XtcConfig::default()).unwrap();
    assert!(report.undo_applied > 0, "undo pass should have had work");
    assert!(rec.store().elements_named("half").is_empty());
    assert_eq!(rec.store().elements_named("bystander").len(), 1);
    // `before` plus the bystander: undoing the loser restored <b>.
    assert_eq!(rec.store().elements_named("b").len(), 1);
    let _ = before;
    assert_eq!(rec.store().verify_indexes(), Vec::<String>::new());
}

#[test]
fn checkpoint_bounds_redo_work() {
    let db = wal_db("taDOM3+");
    db.load_xml(DOC).unwrap();

    for i in 0..20 {
        let t = db.begin();
        let a = t.element_by_id("x0").unwrap().unwrap();
        t.insert_element(&a, xtc_core::InsertPos::LastChild, &format!("pre{i}"))
            .unwrap();
        t.commit().unwrap();
    }
    db.checkpoint().unwrap().expect("wal configured");
    for i in 0..3 {
        let t = db.begin();
        let a = t.element_by_id("x0").unwrap().unwrap();
        t.insert_element(&a, xtc_core::InsertPos::LastChild, &format!("post{i}"))
            .unwrap();
        t.commit().unwrap();
    }

    let wal = db.wal().unwrap().clone();
    wal.crash();
    let (rec, report) = recover_from(&wal, XtcConfig::default()).unwrap();
    // Redo restarts at the checkpoint: only the 3 post-checkpoint
    // transactions (one redo record each) replay, not the 20 before it.
    assert_eq!(report.redo_applied, 3, "checkpoint did not bound redo");
    for i in 0..20 {
        assert_eq!(rec.store().elements_named(&format!("pre{i}")).len(), 1);
    }
    for i in 0..3 {
        assert_eq!(rec.store().elements_named(&format!("post{i}")).len(), 1);
    }
}

#[test]
fn group_commit_batches_concurrent_committers() {
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        wal: Some(WalConfig {
            group_commit_window: Duration::from_millis(2),
            ..WalConfig::default()
        }),
        ..XtcConfig::default()
    }));
    db.load_xml(DOC).unwrap();

    const THREADS: usize = 8;
    const COMMITS: usize = 4;
    // One container per worker: writers on disjoint subtrees only share
    // compatible intention locks, so their commits genuinely overlap —
    // contended writers would serialize on locks and never batch.
    for w in 0..THREADS {
        let t = db.begin();
        let a = t.element_by_id("x0").unwrap().unwrap();
        let c = t
            .insert_element(&a, xtc_core::InsertPos::LastChild, "container")
            .unwrap();
        t.set_attribute(&c, "id", &format!("c{w}")).unwrap();
        t.commit().unwrap();
    }
    let flushes_before = db.wal().unwrap().stats().flushes;

    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let db = db.clone();
            std::thread::spawn(move || {
                let policy = xtc_core::RetryPolicy::default();
                for i in 0..COMMITS {
                    // Victim aborts are still possible (shared ancestor
                    // paths); the retry loop absorbs them.
                    let (res, _) = db.run_retrying(&policy, |t| {
                        let c = t.element_by_id(&format!("c{w}"))?.unwrap();
                        t.insert_element(&c, xtc_core::InsertPos::LastChild, &format!("w{w}i{i}"))
                            .map(|_| ())
                    });
                    res.unwrap();
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }

    let stats = db.wal().unwrap().stats();
    let commits = (THREADS * COMMITS) as u64;
    let flushes = stats.flushes - flushes_before;
    assert!(
        flushes < commits,
        "group commit never batched: {flushes} flushes for {commits} commits"
    );
    assert!(stats.max_batch >= 2, "no flush carried more than one record");

    // And the batched commits are all durable.
    let wal = db.wal().unwrap().clone();
    wal.crash();
    let (rec, _) = recover_from(&wal, XtcConfig::default()).unwrap();
    for w in 0..THREADS {
        for i in 0..COMMITS {
            assert_eq!(
                rec.store().elements_named(&format!("w{w}i{i}")).len(),
                1,
                "committed insert w{w}i{i} lost"
            );
        }
    }
}

#[test]
fn file_backed_log_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("xtc-wal-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = WalConfig {
        // Tiny segments force several rollovers even in this small test.
        storage: WalStorage::Directory {
            path: dir.clone(),
            segment_bytes: 4096,
        },
        ..WalConfig::default()
    };

    let committed: Vec<String> = {
        let db = XtcDb::new(XtcConfig {
            protocol: "taDOM3+".into(),
            wal: Some(config.clone()),
            ..XtcConfig::default()
        });
        db.load_xml(DOC).unwrap();
        (0..30)
            .map(|i| {
                let name = format!("persisted{i}");
                let t = db.begin();
                let a = t.element_by_id("x0").unwrap().unwrap();
                t.insert_element(&a, xtc_core::InsertPos::LastChild, &name)
                    .unwrap();
                t.commit().unwrap();
                name
            })
            .collect()
        // db dropped without any crash call: simulates the process dying.
    };

    let segments = std::fs::read_dir(&dir).unwrap().count();
    assert!(segments > 1, "segmented log never rolled ({segments} files)");

    // A fresh Wal over the same directory sees the synced prefix.
    let wal = xtc_core::wal::Wal::open(config).unwrap();
    let (rec, report) = recover_from(&wal, XtcConfig::default()).unwrap();
    assert_eq!(report.winners.len(), 30, "winners: {:?}", report.winners);
    for name in &committed {
        assert_eq!(
            rec.store().elements_named(name).len(),
            1,
            "{name} lost across process restart"
        );
    }
    assert_eq!(rec.store().verify_indexes(), Vec::<String>::new());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_only_transactions_never_touch_the_log() {
    let db = wal_db("URIX");
    db.load_xml(DOC).unwrap();
    let lsn_after_load = db.wal().unwrap().next_lsn();
    let t = db.begin();
    let a = t.element_by_id("x0").unwrap().unwrap();
    let _ = t.children(&a).unwrap();
    t.commit().unwrap();
    let t = db.begin();
    let _ = t.root().unwrap();
    t.abort();
    assert_eq!(
        db.wal().unwrap().next_lsn(),
        lsn_after_load,
        "read-only transactions must not log Begin/Commit"
    );
}
