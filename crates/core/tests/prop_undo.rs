//! Property test: aborting a transaction restores the exact document
//! state — content, structure, element index, and ID index — for an
//! arbitrary sequence of mutations. Runs twice: with in-memory undo
//! only, and with a write-ahead log so the abort rolls back through
//! logged `NodeUndo` records and writes compensation records.
//!
//! `seeded_log_driven_undo_restores_everything` repeats the property
//! with a fixed-seed generator so local builds (where the `proptest`
//! stub skips the generative tests) still exercise the WAL abort path.

use proptest::prelude::*;
use std::time::Duration;
use xtc_core::wal::WalConfig;
use xtc_core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};

#[derive(Debug, Clone)]
enum Op {
    InsertElement(u8, u8),
    InsertText(u8, String),
    UpdateText(u8, String),
    SetAttribute(u8, u8, String),
    Rename(u8, u8),
    DeleteSubtree(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let name = 0u8..4;
    let target = 0u8..16;
    prop::collection::vec(
        prop_oneof![
            (target.clone(), name.clone()).prop_map(|(t, n)| Op::InsertElement(t, n)),
            (target.clone(), "[a-z]{0,8}").prop_map(|(t, s)| Op::InsertText(t, s)),
            (target.clone(), "[a-z]{0,8}").prop_map(|(t, s)| Op::UpdateText(t, s)),
            (target.clone(), name.clone(), "[a-z]{1,6}")
                .prop_map(|(t, n, v)| Op::SetAttribute(t, n, v)),
            (target.clone(), name).prop_map(|(t, n)| Op::Rename(t, n)),
            target.prop_map(Op::DeleteSubtree),
        ],
        1..25,
    )
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn snapshot(db: &XtcDb) -> (String, usize, Vec<usize>, Vec<Option<String>>) {
    let root = xtc_core::SplId::root();
    let xml = xtc_node::serialize_subtree(db.store(), &root);
    let count = db.store().node_count();
    let index_counts = NAMES
        .iter()
        .map(|n| db.store().elements_named(n).len())
        .collect();
    let ids = (0..6)
        .map(|i| {
            db.store()
                .element_by_id(&format!("x{i}"))
                .map(|s| s.to_string())
        })
        .collect();
    (xml, count, index_counts, ids)
}

/// Applies `ops` in one transaction, aborts it, and asserts the document
/// came back byte-identical. With `wal` the abort is log-driven: every
/// mutation logged an undo record first, and rollback writes CLRs.
fn abort_restores_everything_case(ops: Vec<Op>, wal: bool) -> Result<(), String> {
    let db = XtcDb::new(XtcConfig {
        protocol: "taDOM3+".into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 6,
        lock_timeout: Duration::from_secs(5),
        wal: wal.then(WalConfig::default),
        ..XtcConfig::default()
    });
    db.load_xml(
        r#"<bib><a id="x0"><b id="x1">text one</b><c id="x2">two</c></a><d id="x3"><e id="x4">three</e></d></bib>"#,
    ).unwrap();
    let before = snapshot(&db);

    let txn = db.begin();
    // Collect live element targets as we go; ops address them modulo
    // length so every op hits something real.
    let mut elems: Vec<xtc_core::SplId> = db
        .store()
        .elements_named("a")
        .into_iter()
        .chain(db.store().elements_named("b"))
        .chain(db.store().elements_named("c"))
        .chain(db.store().elements_named("d"))
        .chain(db.store().elements_named("e"))
        .collect();
    elems.sort();
    for op in ops {
        if elems.is_empty() {
            break;
        }
        let pick = |t: u8| elems[t as usize % elems.len()].clone();
        // Ignore logical errors (target deleted earlier in the txn) —
        // only the final abort-equivalence matters.
        match op {
            Op::InsertElement(t, n) => {
                let target = pick(t);
                if let Ok(new) = txn.insert_element(&target, InsertPos::LastChild, NAMES[n as usize])
                {
                    elems.push(new);
                }
            }
            Op::InsertText(t, s) => {
                let _ = txn.insert_text(&pick(t), InsertPos::FirstChild, &s);
            }
            Op::UpdateText(t, s) => {
                let target = pick(t);
                if let Ok(Some(text)) = txn.first_child(&target) {
                    let _ = txn.update_text(&text, &s);
                }
            }
            Op::SetAttribute(t, n, v) => {
                let _ = txn.set_attribute(&pick(t), NAMES[n as usize], &v);
            }
            Op::Rename(t, n) => {
                let _ = txn.rename(&pick(t), NAMES[n as usize]);
            }
            Op::DeleteSubtree(t) => {
                let target = pick(t);
                if !target.is_root() && txn.delete_subtree(&target).is_ok() {
                    elems.retain(|e| !(target == *e || target.is_ancestor_of(e)));
                }
            }
        }
    }
    txn.abort();

    let after = snapshot(&db);
    if before != after {
        return Err(format!("state differs after abort:\n{before:?}\n{after:?}"));
    }
    let broken = db.store().verify_indexes();
    if !broken.is_empty() {
        return Err(format!("indexes inconsistent after abort: {broken:?}"));
    }
    if db.lock_table().granted_count() != 0 {
        return Err("locks leaked".into());
    }
    if wal {
        let w = db.wal().expect("wal configured");
        if w.is_crashed() {
            return Err("wal crashed during a clean abort".into());
        }
        // The abort must have logged its rollback: at minimum Begin +
        // one undo/CLR pair per undone op + Abort went into the log.
        if w.next_lsn() <= 1 {
            return Err("nothing was logged".into());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn abort_restores_everything(ops in arb_ops(), seed in 0u64..1000) {
        let _ = seed;
        if let Err(msg) = abort_restores_everything_case(ops, false) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn log_driven_abort_restores_everything(ops in arb_ops(), seed in 0u64..1000) {
        let _ = seed;
        if let Err(msg) = abort_restores_everything_case(ops, true) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// xorshift64* — keeps the WAL abort path covered where the `proptest`
/// stub turns the generative tests above into no-ops.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn word(&mut self, max_len: u64) -> String {
        (0..self.below(max_len))
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }
}

#[test]
fn seeded_log_driven_undo_restores_everything() {
    let mut rng = Rng(0x5EED_AB07);
    for case in 0..40 {
        let ops: Vec<Op> = (0..1 + rng.below(24))
            .map(|_| {
                let t = rng.below(16) as u8;
                let n = rng.below(4) as u8;
                match rng.below(6) {
                    0 => Op::InsertElement(t, n),
                    1 => Op::InsertText(t, rng.word(8)),
                    2 => Op::UpdateText(t, rng.word(8)),
                    3 => Op::SetAttribute(t, n, rng.word(6)),
                    4 => Op::Rename(t, n),
                    _ => Op::DeleteSubtree(t),
                }
            })
            .collect();
        abort_restores_everything_case(ops.clone(), true)
            .unwrap_or_else(|msg| panic!("case {case} ({ops:?}): {msg}"));
    }
}
