//! Property test: aborting a transaction restores the exact document
//! state — content, structure, element index, and ID index — for an
//! arbitrary sequence of mutations.

use proptest::prelude::*;
use std::time::Duration;
use xtc_core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};

#[derive(Debug, Clone)]
enum Op {
    InsertElement(u8, u8),
    InsertText(u8, String),
    UpdateText(u8, String),
    SetAttribute(u8, u8, String),
    Rename(u8, u8),
    DeleteSubtree(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let name = 0u8..4;
    let target = 0u8..16;
    prop::collection::vec(
        prop_oneof![
            (target.clone(), name.clone()).prop_map(|(t, n)| Op::InsertElement(t, n)),
            (target.clone(), "[a-z]{0,8}").prop_map(|(t, s)| Op::InsertText(t, s)),
            (target.clone(), "[a-z]{0,8}").prop_map(|(t, s)| Op::UpdateText(t, s)),
            (target.clone(), name.clone(), "[a-z]{1,6}")
                .prop_map(|(t, n, v)| Op::SetAttribute(t, n, v)),
            (target.clone(), name).prop_map(|(t, n)| Op::Rename(t, n)),
            target.prop_map(Op::DeleteSubtree),
        ],
        1..25,
    )
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn snapshot(db: &XtcDb) -> (String, usize, Vec<usize>, Vec<Option<String>>) {
    let root = xtc_core::SplId::root();
    let xml = xtc_node::serialize_subtree(db.store(), &root);
    let count = db.store().node_count();
    let index_counts = NAMES
        .iter()
        .map(|n| db.store().elements_named(n).len())
        .collect();
    let ids = (0..6)
        .map(|i| {
            db.store()
                .element_by_id(&format!("x{i}"))
                .map(|s| s.to_string())
        })
        .collect();
    (xml, count, index_counts, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn abort_restores_everything(ops in arb_ops(), seed in 0u64..1000) {
        let db = XtcDb::new(XtcConfig {
            protocol: "taDOM3+".into(),
            isolation: IsolationLevel::Repeatable,
            lock_depth: 6,
            lock_timeout: Duration::from_secs(5),
            ..XtcConfig::default()
        });
        db.load_xml(
            r#"<bib><a id="x0"><b id="x1">text one</b><c id="x2">two</c></a><d id="x3"><e id="x4">three</e></d></bib>"#,
        ).unwrap();
        let before = snapshot(&db);

        let txn = db.begin();
        // Collect live element targets as we go; ops address them modulo
        // length so every op hits something real.
        let mut elems: Vec<xtc_core::SplId> = db.store().elements_named("a")
            .into_iter()
            .chain(db.store().elements_named("b"))
            .chain(db.store().elements_named("c"))
            .chain(db.store().elements_named("d"))
            .chain(db.store().elements_named("e"))
            .collect();
        elems.sort();
        let _ = seed;
        for op in ops {
            if elems.is_empty() { break; }
            let pick = |t: u8| elems[t as usize % elems.len()].clone();
            // Ignore logical errors (target deleted earlier in the txn) —
            // only the final abort-equivalence matters.
            match op {
                Op::InsertElement(t, n) => {
                    let target = pick(t);
                    if let Ok(new) = txn.insert_element(&target, InsertPos::LastChild, NAMES[n as usize]) {
                        elems.push(new);
                    }
                }
                Op::InsertText(t, s) => {
                    let _ = txn.insert_text(&pick(t), InsertPos::FirstChild, &s);
                }
                Op::UpdateText(t, s) => {
                    let target = pick(t);
                    if let Ok(Some(text)) = txn.first_child(&target) {
                        let _ = txn.update_text(&text, &s);
                    }
                }
                Op::SetAttribute(t, n, v) => {
                    let _ = txn.set_attribute(&pick(t), NAMES[n as usize], &v);
                }
                Op::Rename(t, n) => {
                    let _ = txn.rename(&pick(t), NAMES[n as usize]);
                }
                Op::DeleteSubtree(t) => {
                    let target = pick(t);
                    if !target.is_root() && txn.delete_subtree(&target).is_ok() {
                        elems.retain(|e| !(target == *e || target.is_ancestor_of(e)));
                    }
                }
            }
        }
        txn.abort();

        let after = snapshot(&db);
        prop_assert_eq!(&before.0, &after.0, "document text differs");
        prop_assert_eq!(before.1, after.1, "node count differs");
        prop_assert_eq!(&before.2, &after.2, "element index differs");
        prop_assert_eq!(&before.3, &after.3, "id index differs");
        prop_assert_eq!(db.lock_table().granted_count(), 0);
    }
}
