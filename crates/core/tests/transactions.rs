//! Cross-protocol transaction tests: every contested protocol must give
//! correct transactional behaviour through the same public API.

use std::sync::Arc;
use std::time::Duration;
use xtc_core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};
use xtc_protocols::ALL_PROTOCOLS;

fn db(protocol: &str) -> XtcDb {
    XtcDb::new(XtcConfig {
        protocol: protocol.to_string(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        ..XtcConfig::default()
    })
}

const SAMPLE: &str = r#"<bib><topics><topic id="t0"><book id="b0" year="2006"><title>One</title><author>A</author><history><lend person="p1" return="2006-01-01"/></history></book><book id="b1"><title>Two</title></book></topic></topics></bib>"#;

#[test]
fn basic_read_path_works_under_every_protocol() {
    for name in ALL_PROTOCOLS {
        let db = db(name);
        db.load_xml(SAMPLE).unwrap();
        let t = db.begin();
        let book = t.element_by_id("b0").unwrap().expect("b0 exists");
        assert_eq!(t.name(&book).unwrap().as_deref(), Some("book"), "{name}");
        assert_eq!(
            t.attribute(&book, "year").unwrap().as_deref(),
            Some("2006"),
            "{name}"
        );
        let kids = t.element_children(&book).unwrap();
        assert_eq!(kids.len(), 3, "{name}");
        let title_text = t.first_child(&kids[0]).unwrap().unwrap();
        assert_eq!(
            t.text_content(&title_text).unwrap().as_deref(),
            Some("One"),
            "{name}"
        );
        // Navigation.
        assert_eq!(t.next_sibling(&kids[0]).unwrap(), Some(kids[1].clone()));
        assert_eq!(t.prev_sibling(&kids[1]).unwrap().as_ref(), Some(&kids[0]));
        assert_eq!(t.parent(&kids[0]).unwrap(), Some(book.clone()));
        t.commit().unwrap();
        assert_eq!(db.lock_table().granted_count(), 0, "{name}: locks leaked");
    }
}

#[test]
fn write_and_commit_is_visible_under_every_protocol() {
    for name in ALL_PROTOCOLS {
        let db = db(name);
        db.load_xml(SAMPLE).unwrap();
        let t = db.begin();
        let book = t.element_by_id("b1").unwrap().unwrap();
        let chapter = t
            .insert_element(&book, InsertPos::LastChild, "chapter")
            .unwrap();
        t.insert_text(&chapter, InsertPos::LastChild, "content")
            .unwrap();
        t.set_attribute(&chapter, "num", "1").unwrap();
        t.commit().unwrap();

        let t2 = db.begin();
        let book = t2.element_by_id("b1").unwrap().unwrap();
        let kids = t2.element_children(&book).unwrap();
        assert_eq!(kids.len(), 2, "{name}");
        assert_eq!(t2.name(&kids[1]).unwrap().as_deref(), Some("chapter"));
        assert_eq!(t2.attribute(&kids[1], "num").unwrap().as_deref(), Some("1"));
        t2.commit().unwrap();
    }
}

#[test]
fn abort_rolls_back_every_kind_of_change() {
    for name in ALL_PROTOCOLS {
        let db = db(name);
        db.load_xml(SAMPLE).unwrap();
        let before = db.store().node_count();

        let t = db.begin();
        let b0 = t.element_by_id("b0").unwrap().unwrap();
        let b1 = t.element_by_id("b1").unwrap().unwrap();
        // Content change, rename, insert, attribute, delete — then abort.
        let title = t.element_children(&b1).unwrap()[0].clone();
        let text = t.first_child(&title).unwrap().unwrap();
        t.update_text(&text, "changed").unwrap();
        t.rename(&b1, "livre").unwrap();
        t.insert_element(&b1, InsertPos::LastChild, "extra").unwrap();
        t.set_attribute(&b1, "lang", "fr").unwrap();
        t.delete_subtree(&b0).unwrap();
        t.abort();

        assert_eq!(db.store().node_count(), before, "{name}: node count");
        let t2 = db.begin();
        let b0 = t2.element_by_id("b0").unwrap();
        assert!(b0.is_some(), "{name}: deleted subtree restored");
        let b1 = t2.element_by_id("b1").unwrap().unwrap();
        assert_eq!(t2.name(&b1).unwrap().as_deref(), Some("book"), "{name}");
        assert_eq!(t2.attribute(&b1, "lang").unwrap(), None, "{name}");
        let title = t2.element_children(&b1).unwrap()[0].clone();
        let text = t2.first_child(&title).unwrap().unwrap();
        assert_eq!(
            t2.text_content(&text).unwrap().as_deref(),
            Some("Two"),
            "{name}"
        );
        t2.commit().unwrap();
        assert_eq!(db.lock_table().granted_count(), 0, "{name}");
    }
}

#[test]
fn dropped_transaction_aborts() {
    let db = db("taDOM3+");
    db.load_xml(SAMPLE).unwrap();
    {
        let t = db.begin();
        let b1 = t.element_by_id("b1").unwrap().unwrap();
        t.rename(&b1, "nope").unwrap();
        // dropped without commit
    }
    let t = db.begin();
    let b1 = t.element_by_id("b1").unwrap().unwrap();
    assert_eq!(t.name(&b1).unwrap().as_deref(), Some("book"));
    t.commit().unwrap();
}

#[test]
fn repeatable_read_blocks_concurrent_writer_until_commit() {
    for name in ALL_PROTOCOLS {
        let db = Arc::new(db(name));
        db.load_xml(SAMPLE).unwrap();

        let reader = db.begin();
        let b0 = reader.element_by_id("b0").unwrap().unwrap();
        let title = reader.element_children(&b0).unwrap()[0].clone();
        let text = reader.first_child(&title).unwrap().unwrap();
        assert_eq!(reader.text_content(&text).unwrap().as_deref(), Some("One"));

        // A concurrent writer must not complete its conflicting update
        // while the reader is active.
        let db2 = db.clone();
        let text2 = text.clone();
        let h = std::thread::spawn(move || {
            let w = db2.begin();
            let r = w.update_text(&text2, "Dirty");
            match r {
                Ok(()) => {
                    w.commit().unwrap();
                    true
                }
                Err(_) => {
                    w.abort();
                    false
                }
            }
        });
        std::thread::sleep(Duration::from_millis(100));
        // Repeatable read: the value must be unchanged while we hold our
        // read locks.
        assert_eq!(
            reader.text_content(&text).unwrap().as_deref(),
            Some("One"),
            "{name}: repeatable read violated"
        );
        reader.commit().unwrap();
        h.join().unwrap();
    }
}

#[test]
fn uncommitted_isolation_skips_read_locks() {
    let db = db("taDOM3+");
    db.load_xml(SAMPLE).unwrap();
    let writer = db.begin();
    let b0 = writer.element_by_id("b0").unwrap().unwrap();
    let title = writer.element_children(&b0).unwrap()[0].clone();
    let text = writer.first_child(&title).unwrap().unwrap();
    writer.update_text(&text, "Dirty").unwrap();

    // An uncommitted-read transaction sees the dirty value without
    // blocking.
    let dirty = db.begin_with(IsolationLevel::Uncommitted, 4);
    assert_eq!(
        dirty.text_content(&text).unwrap().as_deref(),
        Some("Dirty"),
        "dirty read expected at uncommitted"
    );
    dirty.commit().unwrap();
    writer.abort();

    let t = db.begin();
    assert_eq!(t.text_content(&text).unwrap().as_deref(), Some("One"));
    t.commit().unwrap();
}

#[test]
fn isolation_none_acquires_no_locks() {
    let db = db("taDOM3+");
    db.load_xml(SAMPLE).unwrap();
    let t = db.begin_with(IsolationLevel::None, 4);
    let b0 = t.element_by_id("b0").unwrap().unwrap();
    let _ = t.subtree(&b0).unwrap();
    assert_eq!(t.held_locks(), 0);
    assert_eq!(db.lock_table().granted_count(), 0);
    t.commit().unwrap();
}

#[test]
fn conflicting_writers_deadlock_and_one_survives() {
    // Two transactions reading then writing each other's targets must end
    // in a deadlock with exactly one victim (under every protocol that
    // takes read locks).
    for name in ALL_PROTOCOLS {
        let db = Arc::new(db(name));
        db.load_xml(SAMPLE).unwrap();
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mut handles = Vec::new();
        for (mine, theirs) in [("b0", "b1"), ("b1", "b0")] {
            let db = db.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                let t = db.begin();
                let my = t.element_by_id(mine).unwrap().unwrap();
                let my_sub = t.subtree(&my).unwrap();
                assert!(!my_sub.is_empty());
                barrier.wait();
                let other = match t.element_by_id(theirs) {
                    Ok(Some(o)) => o,
                    _ => {
                        t.abort();
                        return false;
                    }
                };
                match t.delete_subtree(&other) {
                    Ok(()) => {
                        t.commit().unwrap();
                        true
                    }
                    Err(_) => {
                        t.abort();
                        false
                    }
                }
            }));
        }
        let results: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let committed = results.iter().filter(|r| **r).count();
        assert!(
            committed >= 1,
            "{name}: at least one transaction must survive"
        );
        assert_eq!(db.lock_table().granted_count(), 0, "{name}: lock leak");
    }
}

#[test]
fn rename_under_tadom3_coexists_with_deep_traversal() {
    // taDOM3's NX allows renaming a topic while another transaction reads
    // a book inside it (Fig. 10d's effect).
    let db = Arc::new(db("taDOM3+"));
    db.load_xml(SAMPLE).unwrap();

    let reader = db.begin();
    let book = reader.element_by_id("b0").unwrap().unwrap();
    let _ = reader.subtree(&book).unwrap(); // deep read inside the topic

    let renamer = db.begin();
    let topic = renamer.element_by_id("t0").unwrap().unwrap();
    renamer
        .rename(&topic, "subject")
        .expect("taDOM3+ rename must not block on deep readers");
    renamer.commit().unwrap();
    reader.commit().unwrap();
}

#[test]
fn rename_under_mgl_blocks_deep_readers() {
    // URIX has no node-only exclusive lock: the rename needs subtree X
    // and must wait for (here: time out on) the deep reader.
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: "URIX".into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 6,
        lock_timeout: Duration::from_millis(200),
        ..XtcConfig::default()
    }));
    db.load_xml(SAMPLE).unwrap();

    let reader = db.begin();
    let book = reader.element_by_id("b0").unwrap().unwrap();
    let _ = reader.subtree(&book).unwrap();

    let renamer = db.begin();
    let topic = renamer.element_by_id("t0").unwrap().unwrap();
    let res = renamer.rename(&topic, "subject");
    assert!(res.is_err(), "URIX rename should block behind deep readers");
    renamer.abort();
    reader.commit().unwrap();
}

#[test]
fn lock_depth_zero_serializes_writers_document_wide() {
    let db = Arc::new(db("taDOM2"));
    db.load_xml(SAMPLE).unwrap();

    let t1 = db.begin_with(IsolationLevel::Repeatable, 0);
    let b0 = t1.element_by_id("b0").unwrap().unwrap();
    let title = t1.element_children(&b0).unwrap()[0].clone();
    let text = t1.first_child(&title).unwrap().unwrap();
    t1.update_text(&text, "X").unwrap();

    // Another writer in a *different* subtree is blocked at depth 0
    // (document lock).
    let db2 = db.clone();
    let h = std::thread::spawn(move || {
        let t2 = db2.begin_with(IsolationLevel::Repeatable, 0);
        let b1 = match t2.element_by_id("b1") {
            Ok(Some(b)) => b,
            _ => {
                t2.abort();
                return false;
            }
        };
        let ok = t2.rename(&b1, "x").is_ok();
        if ok {
            t2.commit().unwrap();
        } else {
            t2.abort();
        }
        ok
    });
    std::thread::sleep(Duration::from_millis(100));
    assert!(!h.is_finished(), "depth 0 must serialize writers");
    t1.commit().unwrap();
    assert!(h.join().unwrap());
}

#[test]
fn high_lock_depth_allows_disjoint_writers() {
    let db = Arc::new(db("taDOM3+"));
    db.load_xml(SAMPLE).unwrap();

    let t1 = db.begin();
    let b0 = t1.element_by_id("b0").unwrap().unwrap();
    let title = t1.element_children(&b0).unwrap()[0].clone();
    let text = t1.first_child(&title).unwrap().unwrap();
    t1.update_text(&text, "X").unwrap();

    // A writer in the sibling book proceeds immediately.
    let t2 = db.begin();
    let b1 = t2.element_by_id("b1").unwrap().unwrap();
    t2.set_attribute(&b1, "year", "2007").unwrap();
    t2.commit().unwrap();
    t1.commit().unwrap();
}
