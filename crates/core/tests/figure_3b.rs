//! The paper's worked example (Figure 3b), reproduced with exact lock
//! states: two transactions on the taDOM tree of Figure 5 at lock
//! depth 4 under taDOM2.
//!
//! * T1 (TAqueryBook) jumps to the book, leaving NR on `book` and IR on
//!   all ancestors, then reads the `title` subtree — depth 4 is reached,
//!   so `title` ends up holding SR.
//! * T2 (TAlendAndReturn) jumps to the same book (NR/IR), reads the
//!   `history` subtree (SR), then decides to lend: attaching the new
//!   `lend` subtree needs SX on `history`, which propagates as CX on
//!   `book` and IX on the remaining ancestors — the paper's `T2conv`
//!   column.

use std::time::Duration;
use xtc_core::{InsertPos, IsolationLevel, SplId, XtcConfig, XtcDb};
use xtc_lock::{LockName, LockTarget};

fn held(db: &XtcDb, txn: u64, node: &SplId) -> Option<String> {
    let name = LockName {
        family: 0,
        target: LockTarget::Node(node.clone()),
    };
    db.lock_table()
        .held_mode(txn, &name)
        .map(|m| db.lock_table().family(0).name(m).to_string())
}

#[test]
fn figure_3b_lock_states() {
    let db = XtcDb::new(XtcConfig {
        protocol: "taDOM2".into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_secs(5),
        ..XtcConfig::default()
    });
    // The Figure 5 cutout: bib / topics / topic0 / book{title, author,
    // price, history(lend)}.
    db.load_xml(
        r#"<bib><topics><topic id="t0"><book id="b0"><title>first last</title><author>first last</author><price>9.95</price><history><lend person="p1" return="2005-01-01"/></history></book></topic></topics></bib>"#,
    )
    .unwrap();

    let store = db.store();
    let bib = SplId::root();
    let topics = store.elements_named("topics")[0].clone();
    let topic = store.elements_named("topic")[0].clone();
    assert_eq!(topic.level(), 2);

    // --- T1: TAqueryBook ---
    let t1 = db.begin();
    let book = t1.element_by_id("b0").unwrap().unwrap();
    assert_eq!(book.level(), 3);
    // "It sets an NR lock on book and IR locks on all ancestors up to the
    // root."
    assert_eq!(held(&db, t1.id(), &book).as_deref(), Some("NR"));
    for anc in [&topic, &topics, &bib] {
        assert_eq!(held(&db, t1.id(), anc).as_deref(), Some("IR"), "{anc}");
    }
    // "Then, it navigates to the first child and, because lock depth 4 is
    // reached, it places an SR lock on title, reads the nodes of the
    // subtree."
    let title = t1.first_child(&book).unwrap().unwrap();
    assert_eq!(title.level(), 4);
    let _ = t1.subtree(&title).unwrap();
    assert_eq!(held(&db, t1.id(), &title).as_deref(), Some("SR"));
    // "…and proceeds to the author node setting again an SR lock."
    let author = t1.next_sibling(&title).unwrap().unwrap();
    let _ = t1.subtree(&author).unwrap();
    assert_eq!(held(&db, t1.id(), &author).as_deref(), Some("SR"));

    // --- T2: TAlendAndReturn ---
    let t2 = db.begin();
    let book2 = t2.element_by_id("b0").unwrap().unwrap();
    assert_eq!(book2, book);
    assert_eq!(held(&db, t2.id(), &book).as_deref(), Some("NR"));
    for anc in [&topic, &topics, &bib] {
        assert_eq!(held(&db, t2.id(), anc).as_deref(), Some("IR"));
    }
    // "Afterwards it forwards to the last child and locks the entire
    // subtree history by SR (lock depth 4)."
    let history = t2.last_child(&book).unwrap().unwrap();
    let _ = t2.subtree(&history).unwrap();
    assert_eq!(held(&db, t2.id(), &history).as_deref(), Some("SR"));

    // "Assume it decides to lend this book; then it has to attach an
    // additional subtree lend' … a lock conversion to SX on history is
    // needed which is propagated to the root by converting NR on book to
    // CX and the remaining IR locks to IX" — the T2conv column.
    let lend = t2
        .insert_element(&history, InsertPos::LastChild, "lend")
        .unwrap();
    t2.set_attribute(&lend, "person", "p2").unwrap();
    t2.set_attribute(&lend, "return", "2006-01-01").unwrap();

    assert_eq!(held(&db, t2.id(), &history).as_deref(), Some("SX"));
    assert_eq!(held(&db, t2.id(), &book).as_deref(), Some("CX"));
    for anc in [&topic, &topics, &bib] {
        assert_eq!(held(&db, t2.id(), anc).as_deref(), Some("IX"), "{anc}");
    }

    // T1's locks are untouched and compatible with T2conv (the point of
    // lock depth 4 in the example).
    assert_eq!(held(&db, t1.id(), &title).as_deref(), Some("SR"));
    assert_eq!(held(&db, t1.id(), &book).as_deref(), Some("NR"));

    t2.commit().unwrap();
    t1.commit().unwrap();
}

/// The example's counterfactual: "If we would have chosen lock depth 3,
/// T1 would have set an SR lock on book. This lock, because incompatible
/// with CX, would have prohibited the lock conversion."
#[test]
fn figure_3b_depth_3_blocks_the_conversion() {
    let db = XtcDb::new(XtcConfig {
        protocol: "taDOM2".into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 3,
        lock_timeout: Duration::from_millis(200),
        ..XtcConfig::default()
    });
    db.load_xml(
        r#"<bib><topics><topic id="t0"><book id="b0"><title>t</title><history><lend person="p1"/></history></book></topic></topics></bib>"#,
    )
    .unwrap();

    let t1 = db.begin();
    let book = t1.element_by_id("b0").unwrap().unwrap();
    let title = t1.first_child(&book).unwrap().unwrap();
    let _ = t1.subtree(&title).unwrap(); // clamped to depth 3 → SR on book
    assert_eq!(held(&db, t1.id(), &book).as_deref(), Some("SR"));

    let t2 = db.begin();
    let book2 = t2.element_by_id("b0").unwrap().unwrap();
    let history = t2.last_child(&book2).unwrap().unwrap();
    let res = t2.insert_element(&history, InsertPos::LastChild, "lend");
    assert!(
        res.is_err(),
        "at depth 3, T1's SR on book must block T2's CX conversion"
    );
    t2.abort();
    t1.commit().unwrap();
}
