//! Repeatable-read navigation guarantees: "they have to isolate the
//! edges traversed to guarantee identical navigation paths on repeated
//! traversals" (§2 intro). Phantom-style checks for level reads and
//! sibling navigation.

use std::sync::Arc;
use std::time::Duration;
use xtc_core::{InsertPos, IsolationLevel, XtcConfig, XtcDb};

fn db(protocol: &str) -> Arc<XtcDb> {
    let db = Arc::new(XtcDb::new(XtcConfig {
        protocol: protocol.into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 6,
        lock_timeout: Duration::from_millis(300),
        ..XtcConfig::default()
    }));
    db.load_xml(r#"<r><a id="a"/><b id="b"/><c id="c"/></r>"#).unwrap();
    db
}

/// getChildNodes twice must see the same children; a concurrent insert
/// into the read level must block until commit.
#[test]
fn level_reads_are_phantom_free() {
    // Protocols with level locks, per-child node locks, or parent-level
    // structure locks must all prevent the phantom.
    for proto in ["taDOM2", "taDOM3+", "URIX", "IRX", "Node2PL", "Node2PLa", "NO2PL", "OO2PL"] {
        let db = db(proto);
        let reader = db.begin();
        let root = reader.root().unwrap().unwrap();
        let first = reader.element_children(&root).unwrap();
        assert_eq!(first.len(), 3, "{proto}");

        // Concurrent insert into the same level must not complete.
        let writer = db.begin();
        let res = writer.insert_element(&root, InsertPos::LastChild, "d");
        assert!(
            res.is_err(),
            "{proto}: insert into a read level must block (got {res:?})"
        );
        writer.abort();

        let second = reader.element_children(&root).unwrap();
        assert_eq!(first, second, "{proto}: repeated getChildNodes differs");
        reader.commit().unwrap();
    }
}

/// getNextSibling twice must stay stable against an insert between the
/// two siblings.
#[test]
fn sibling_navigation_is_stable() {
    for proto in ["taDOM3+", "URIX", "OO2PL", "NO2PL"] {
        let db = db(proto);
        let reader = db.begin();
        let a = reader.element_by_id("a").unwrap().unwrap();
        let b1 = reader.next_sibling(&a).unwrap().unwrap();

        let writer = db.begin();
        let root = a.parent().unwrap();
        let res = writer.insert_element(&root, InsertPos::After(a.clone()), "x");
        assert!(
            res.is_err(),
            "{proto}: insert on a traversed edge must block"
        );
        writer.abort();

        let b2 = reader.next_sibling(&a).unwrap().unwrap();
        assert_eq!(b1, b2, "{proto}: navigation not repeatable");
        reader.commit().unwrap();
    }
}

/// Deleting a node another transaction has read must block; reading a
/// node another transaction deleted (uncommitted) must block too.
#[test]
fn reads_and_deletes_exclude_each_other() {
    for proto in ["taDOM3+", "URIX", "Node2PLa"] {
        let db = db(proto);
        let reader = db.begin();
        let b = reader.element_by_id("b").unwrap().unwrap();
        assert_eq!(reader.name(&b).unwrap().as_deref(), Some("b"));

        let deleter = db.begin();
        let res = deleter.delete_subtree(&b);
        assert!(res.is_err(), "{proto}: delete of a read node must block");
        deleter.abort();
        reader.commit().unwrap();

        // Now the reverse: uncommitted delete blocks readers.
        let deleter = db.begin();
        deleter.delete_subtree(&b).unwrap();
        let reader = db.begin();
        let res = reader.element_by_id("b");
        // Either the jump blocks (timeout error) or, for protocols whose
        // jump locks don't collide with structure locks, the node is
        // already gone from the reader's view only after commit — in all
        // cases the reader must not observe a half-deleted node record.
        if let Ok(Some(node)) = res {
            assert!(
                reader.name(&node).is_err(),
                "{proto}: reader observed an uncommitted delete"
            );
        }
        reader.abort();
        deleter.abort();
        // After the deleter aborts, b is fully back.
        let check = db.begin();
        assert!(check.element_by_id("b").unwrap().is_some(), "{proto}");
        check.commit().unwrap();
    }
}
