//! End-to-end contracts of the versioned contestants (taMVCC, taOCC):
//! snapshot stability under concurrent committed writes, first-updater
//! write-write conflicts, commit-time read validation (and its
//! retryability through `run_retrying`), and recovery of the version
//! store to the committed watermark.

use std::sync::Arc;
use std::time::Duration;
use xtc_core::wal::WalConfig;
use xtc_core::{recover_from, IsolationLevel, RetryPolicy, XtcConfig, XtcDb, XtcError};

/// The text node under `elem` (its first child is the attribute root —
/// every element here carries an `id`).
fn text_child(txn: &xtc_core::Transaction<'_>, elem: &xtc_core::SplId) -> xtc_core::SplId {
    txn.children(elem)
        .unwrap()
        .into_iter()
        .find(|c| matches!(txn.node(c).unwrap(), Some(xtc_core::NodeData::Text)))
        .expect("element has a text child")
}

fn versioned_db(protocol: &str, wal: bool) -> XtcDb {
    let db = XtcDb::new(XtcConfig {
        protocol: protocol.into(),
        isolation: IsolationLevel::Repeatable,
        lock_depth: 4,
        lock_timeout: Duration::from_millis(500),
        wal: wal.then(WalConfig::default),
        ..XtcConfig::default()
    });
    db.load_xml(
        "<doc><a id=\"n1\">one</a><b id=\"n2\">two</b><c id=\"n3\">three</c></doc>",
    )
    .unwrap();
    db
}

/// A reader's snapshot is fixed at begin: writes committed afterwards
/// are invisible to it, visible to transactions begun later, and the
/// reader never waits on any lock to keep it that way.
#[test]
fn snapshot_reads_stay_stable_under_concurrent_committed_writes() {
    let db = versioned_db("taMVCC", false);
    let reader = db.begin();
    let a = reader.element_by_id("n1").unwrap().unwrap();
    assert_eq!(reader.element_text(&a).unwrap(), "one");

    let writer = db.begin();
    let wa = writer.element_by_id("n1").unwrap().unwrap();
    let text = text_child(&writer, &wa);
    writer.update_text(&text, "ONE'").unwrap();
    writer.rename(&wa, "renamed").unwrap();
    writer.commit().unwrap();

    // The pinned reader still sees its snapshot — content and name.
    assert_eq!(reader.element_text(&a).unwrap(), "one");
    assert_eq!(reader.name(&a).unwrap(), Some("a".to_string()));

    // A transaction begun after the commit sees the new world.
    let late = db.begin();
    let la = late.element_by_id("n1").unwrap().unwrap();
    assert_eq!(late.element_text(&la).unwrap(), "ONE'");
    assert_eq!(late.name(&la).unwrap(), Some("renamed".to_string()));
    late.commit().unwrap();
    reader.commit().unwrap();

    // With no snapshot left pinned, GC prunes the chains.
    let stats = db.versions().unwrap().stats();
    assert_eq!(stats.active_snapshots, 0);
    assert!(stats.pruned > 0, "watermark GC must reclaim dead versions");
}

/// Deleted subtrees stay navigable from an older snapshot: the version
/// store resurrects the pre-images the delete captured.
#[test]
fn snapshot_survives_a_concurrent_subtree_delete() {
    let db = versioned_db("taMVCC", false);
    let reader = db.begin();
    let b = reader.element_by_id("n2").unwrap().unwrap();

    let deleter = db.begin();
    let db_node = deleter.element_by_id("n2").unwrap().unwrap();
    deleter.delete_subtree(&db_node).unwrap();
    deleter.commit().unwrap();

    // Gone for newcomers…
    let late = db.begin();
    assert_eq!(late.element_by_id("n2").unwrap(), None);
    late.commit().unwrap();

    // …still whole for the pinned snapshot.
    assert_eq!(reader.name(&b).unwrap(), Some("b".to_string()));
    assert_eq!(reader.element_text(&b).unwrap(), "two");
    let root = reader.root().unwrap().unwrap();
    assert_eq!(reader.element_children(&root).unwrap().len(), 3);
    reader.commit().unwrap();
}

/// Write-write conflicts resolve first-updater-wins at write time, for
/// both versioned protocols: once the first updater commits, a
/// concurrent transaction whose snapshot predates that commit fails its
/// own write to the same node with the retryable `ValidationFailed` —
/// before touching the store. (While the first updater is still active
/// its write *locks* hold the second off; the version check takes over
/// the moment those locks are gone.)
#[test]
fn first_updater_wins_rejects_the_second_writer() {
    for proto in ["taMVCC", "taOCC"] {
        let db = versioned_db(proto, false);
        let t1 = db.begin();
        let t2 = db.begin();
        let a1 = t1.element_by_id("n1").unwrap().unwrap();
        let text1 = text_child(&t1, &a1);
        t1.update_text(&text1, "first").unwrap();
        t1.commit().unwrap();

        // `t2` began before the commit: its snapshot cannot see "first",
        // so overwriting it would lose an update — first updater wins.
        let a2 = t2.element_by_id("n1").unwrap().unwrap();
        assert_eq!(t2.element_text(&a2).unwrap(), "one", "{proto}: old snapshot");
        let text2 = text_child(&t2, &a2);
        let lost = t2.update_text(&text2, "second");
        assert!(
            matches!(lost, Err(XtcError::ValidationFailed)),
            "{proto}: second updater must lose, got {lost:?}"
        );
        assert!(
            XtcError::ValidationFailed.is_retryable(),
            "losers must be retryable"
        );
        t2.abort();
        let check = db.begin();
        let a = check.element_by_id("n1").unwrap().unwrap();
        assert_eq!(check.element_text(&a).unwrap(), "first");
        check.commit().unwrap();
    }
}

/// taOCC validates the read set at commit: a transaction that read a
/// node someone else overwrote (commit stamp above its snapshot) aborts
/// with `ValidationFailed`; under taMVCC the same history commits —
/// plain snapshot isolation does not validate reads.
#[test]
fn occ_validates_reads_at_commit_where_mvcc_does_not() {
    for (proto, expect_abort) in [("taOCC", true), ("taMVCC", false)] {
        let db = versioned_db(proto, false);
        let t = db.begin();
        let a = t.element_by_id("n1").unwrap().unwrap();
        assert_eq!(t.element_text(&a).unwrap(), "one");

        // A concurrent writer overwrites what `t` read, and commits.
        let w = db.begin();
        let wa = w.element_by_id("n1").unwrap().unwrap();
        let wt = text_child(&w, &wa);
        w.update_text(&wt, "clobbered").unwrap();
        w.commit().unwrap();

        // `t` then writes somewhere disjoint and tries to commit.
        let b = t.element_by_id("n2").unwrap().unwrap();
        let bt = text_child(&t, &b);
        t.update_text(&bt, "touched").unwrap();
        let result = t.commit();
        if expect_abort {
            assert!(
                matches!(result, Err(XtcError::ValidationFailed)),
                "{proto}: stale read must fail validation, got {result:?}"
            );
            // The validation abort rolled the write back.
            let check = db.begin();
            let cb = check.element_by_id("n2").unwrap().unwrap();
            assert_eq!(check.element_text(&cb).unwrap(), "two");
            check.commit().unwrap();
        } else {
            assert!(result.is_ok(), "{proto}: snapshot isolation commits: {result:?}");
        }
    }
}

/// `run_retrying` absorbs validation aborts the way it absorbs deadlock
/// victims: back off, take a fresh snapshot, try again.
#[test]
fn run_retrying_rides_out_validation_aborts() {
    let db = Arc::new(versioned_db("taOCC", false));

    // Provoke one real validation failure inside the retry loop: the
    // first attempt reads n1, then a side writer clobbers n1 before the
    // attempt commits. Later attempts see the new stamp and pass.
    let mut attempt = 0;
    let policy = RetryPolicy {
        max_attempts: 5,
        ..RetryPolicy::default()
    };
    let side = db.clone();
    let (result, stats) = db.run_retrying(&policy, |txn| {
        attempt += 1;
        let a = txn.element_by_id("n1").unwrap().unwrap();
        let _ = txn.element_text(&a)?;
        if attempt == 1 {
            let w = side.begin();
            let wa = w.element_by_id("n1").unwrap().unwrap();
            let wt = text_child(&w, &wa);
            w.update_text(&wt, "interference").unwrap();
            w.commit().unwrap();
        }
        let b = txn.element_by_id("n3").unwrap().unwrap();
        let bt = text_child(&txn, &b);
        txn.update_text(&bt, "retried")?;
        Ok(true)
    });
    assert_eq!(result.unwrap(), true);
    assert!(attempt >= 2, "the first attempt must have failed validation");
    assert!(stats.attempts >= 2);
    let check = db.begin();
    let c = check.element_by_id("n3").unwrap().unwrap();
    assert_eq!(check.element_text(&c).unwrap(), "retried");
    check.commit().unwrap();
}

/// Crash–recover: the version store of a recovered versioned engine
/// reflects exactly the committed history — winners rebuild the version
/// clock past zero, losers leave no trace, and new snapshots read the
/// committed state.
#[test]
fn version_chains_recover_to_the_committed_watermark() {
    let db = versioned_db("taMVCC", true);

    let t = db.begin();
    let a = t.element_by_id("n1").unwrap().unwrap();
    let text = text_child(&t, &a);
    t.update_text(&text, "durable").unwrap();
    t.commit().unwrap();

    // An in-flight loser: writes, never commits, dies with the crash.
    let loser = db.begin();
    let b = loser.element_by_id("n2").unwrap().unwrap();
    let btext = text_child(&loser, &b);
    loser.update_text(&btext, "lost").unwrap();

    let wal = db.wal().unwrap().clone();
    wal.sync_all().unwrap();
    wal.crash();
    drop(loser);
    drop(db);

    let (rec, report) = recover_from(
        &wal,
        XtcConfig {
            protocol: "taMVCC".into(),
            ..XtcConfig::default()
        },
    )
    .unwrap();
    assert!(report.redo_applied > 0, "the committed update must redo");

    let stats = rec.versions().expect("recovered engine is versioned").stats();
    assert!(stats.rebuilt > 0, "committed winners rebuild the version clock");
    assert!(stats.clock > 0, "the clock advances past the rebuilt history");
    assert_eq!(stats.active_snapshots, 0);

    let check = rec.begin();
    let a = check.element_by_id("n1").unwrap().unwrap();
    assert_eq!(check.element_text(&a).unwrap(), "durable");
    let b = check.element_by_id("n2").unwrap().unwrap();
    assert_eq!(check.element_text(&b).unwrap(), "two", "the loser rolled back");
    check.commit().unwrap();

    // The recovered engine keeps taking snapshots and committing.
    let t2 = rec.begin();
    let c = t2.element_by_id("n3").unwrap().unwrap();
    let ct = text_child(&t2, &c);
    t2.update_text(&ct, "after recovery").unwrap();
    t2.commit().unwrap();
}
