//! Admission-gate contracts under the ways transactions actually end:
//! commit, abort, and — the one that used to be easy to get wrong —
//! being dropped without either. A dropped admitted transaction must
//! release its slot *and* its locks through its `Drop` impl, or the
//! gate leaks capacity until the process dies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xtc_core::{AdmissionPolicy, RetryPolicy, XtcConfig, XtcDb, XtcError};

fn gated_db(limit: usize, policy: AdmissionPolicy) -> XtcDb {
    let db = XtcDb::new(XtcConfig {
        lock_timeout: Duration::from_millis(200),
        max_in_flight: Some(limit),
        admission: policy,
        ..XtcConfig::default()
    });
    db.load_xml("<doc><x id=\"n1\">v</x></doc>").unwrap();
    db
}

/// Regression: dropping an admitted transaction (no commit, no abort)
/// must return its slot and release its locks. Loop well past the gate
/// limit — a leak of either would wedge the loop within `limit` rounds.
#[test]
fn dropped_admitted_transactions_release_slots_and_locks() {
    let db = gated_db(2, AdmissionPolicy::Reject);
    for round in 0..50 {
        let txn = db.try_begin().unwrap_or_else(|e| {
            panic!("round {round}: admission slot leaked by a dropped txn: {e}")
        });
        // Take real write locks before abandoning the transaction.
        let x = txn.element_by_id("n1").unwrap().unwrap();
        txn.rename(&x, "dropped").unwrap();
        drop(txn);
        assert_eq!(db.admitted_in_flight(), 0, "round {round}: slot not returned");
    }
    // The dropped writers' locks are gone too: a fresh writer gets the
    // node immediately (lock_timeout would trip otherwise), and sees the
    // pre-drop name — drops roll back.
    let txn = db.try_begin().unwrap();
    let x = txn.element_by_id("n1").unwrap().unwrap();
    assert_eq!(txn.name(&x).unwrap(), Some("x".to_string()));
    txn.rename(&x, "committed").unwrap();
    txn.commit().unwrap();
    assert_eq!(db.admitted_in_flight(), 0);
}

/// `AdmissionRejected` is retryable, so `run_retrying` absorbs a full
/// gate the same way it absorbs deadlock victims: back off, try again.
#[test]
fn run_retrying_rides_out_admission_rejection() {
    let db = Arc::new(gated_db(1, AdmissionPolicy::Reject));
    let holder = db.try_begin().unwrap();
    let worker = {
        let db = db.clone();
        std::thread::spawn(move || {
            let policy = RetryPolicy {
                max_attempts: 100,
                base: Duration::from_millis(2),
                ..RetryPolicy::default()
            };
            db.run_retrying(&policy, |txn| {
                let x = txn.element_by_id("n1")?.unwrap();
                txn.rename(&x, "after-overload")
            })
        })
    };
    // Hold the only slot long enough that the worker must get rejected
    // at least once, then free it.
    std::thread::sleep(Duration::from_millis(30));
    holder.commit().unwrap();
    let (result, stats) = worker.join().unwrap();
    result.expect("retry loop should succeed once the gate drains");
    assert!(stats.attempts > 1, "worker never hit the full gate");
    // Gate rejections classify as "other retryable" aborts.
    assert!(stats.other_retryable_aborts > 0);
    assert_eq!(db.admitted_in_flight(), 0);
}

/// Concurrent stress on the gate, both policies: threads hammer
/// `try_begin` and finish their transactions by commit, abort, or drop,
/// interleaved. The gate must end at zero (no slot leaks), never exceed
/// its limit (counted at admission), and — for `Queue` — never strand a
/// waiter while a slot is free (every thread finishes its quota).
#[test]
fn concurrent_commits_aborts_and_drops_leak_nothing() {
    for policy in [AdmissionPolicy::Queue, AdmissionPolicy::Reject] {
        const LIMIT: usize = 4;
        const THREADS: usize = 12;
        const PER_THREAD: usize = 40;
        let db = Arc::new(gated_db(LIMIT, policy));
        let over_limit = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let db = db.clone();
                let over_limit = over_limit.clone();
                std::thread::spawn(move || {
                    let mut done = 0usize;
                    let mut rejected = 0usize;
                    while done < PER_THREAD {
                        let txn = match db.try_begin() {
                            Ok(txn) => txn,
                            Err(XtcError::AdmissionRejected) => {
                                rejected += 1;
                                std::thread::yield_now();
                                continue;
                            }
                            Err(e) => panic!("unexpected admission error: {e}"),
                        };
                        if db.admitted_in_flight() > LIMIT {
                            over_limit.fetch_add(1, Ordering::Relaxed);
                        }
                        // Touch the document so drops abandon real state.
                        let x = txn.element_by_id("n1").unwrap().unwrap();
                        match (t + done) % 3 {
                            0 => {
                                let _ = txn.rename(&x, "w");
                                let _ = txn.commit();
                            }
                            1 => txn.abort(),
                            _ => drop(txn),
                        }
                        done += 1;
                    }
                    rejected
                })
            })
            .collect();
        let mut rejections = 0usize;
        for h in handles {
            rejections += h.join().expect("stress thread panicked");
        }
        assert_eq!(
            db.admitted_in_flight(),
            0,
            "{policy:?}: slots leaked under concurrent commit/abort/drop ({rejections} rejections)"
        );
        assert_eq!(over_limit.load(Ordering::Relaxed), 0, "{policy:?}: limit exceeded");
        if policy == AdmissionPolicy::Reject {
            // The stress threads usually collide at the gate, but the
            // scheduler is free to serialize them entirely (one busy
            // core runs a thread's whole quota per timeslice), so shed
            // load deterministically: fill the gate, then overflow it.
            let held: Vec<_> = (0..LIMIT).map(|_| db.try_begin().unwrap()).collect();
            assert!(
                matches!(db.try_begin(), Err(XtcError::AdmissionRejected)),
                "full Reject gate admitted an overflowing transaction"
            );
            drop(held);
        }
        // The drained gate still works.
        let txn = db.try_begin().unwrap();
        txn.commit().unwrap();
    }
}

/// The MVCC read path extends the drop contract: a read-only snapshot
/// transaction that is dropped (no commit, no abort) must return its
/// admission slot *and* its snapshot registration — a leaked snapshot
/// pins the version-GC watermark forever — and must never have logged
/// a WAL `Begin`, because `Begin` is lazy on the first write and
/// snapshot reads don't write.
#[test]
fn dropped_snapshot_readers_release_slot_and_snapshot_and_log_nothing() {
    use xtc_core::wal::{RecordBody, WalConfig};

    let db = XtcDb::new(XtcConfig {
        protocol: "taMVCC".into(),
        lock_timeout: Duration::from_millis(200),
        max_in_flight: Some(2),
        admission: AdmissionPolicy::Reject,
        wal: Some(WalConfig::default()),
        ..XtcConfig::default()
    });
    db.load_xml("<doc><x id=\"n1\">v</x></doc>").unwrap();
    let versions = db.versions().expect("taMVCC keeps a version store").clone();

    for round in 0..50 {
        let txn = db.try_begin().unwrap_or_else(|e| {
            panic!("round {round}: admission slot leaked by a dropped reader: {e}")
        });
        let x = txn.element_by_id("n1").unwrap().unwrap();
        assert_eq!(txn.element_text(&x).unwrap(), "v");
        drop(txn);
        assert_eq!(db.admitted_in_flight(), 0, "round {round}: slot not returned");
        assert_eq!(
            versions.stats().active_snapshots,
            0,
            "round {round}: dropped reader left its snapshot pinned"
        );
    }

    let (records, _) = db.wal().unwrap().read_records().unwrap();
    assert!(
        records
            .iter()
            .all(|r| !matches!(r.body, RecordBody::Begin { .. })),
        "read-only snapshot transactions must not log Begin"
    );
}
