//! Virtual-time accounting: a lock-free run-wide clock that accumulates
//! *simulated* microseconds per cost source, so figure-shape assertions
//! can compare deterministic protocol cost instead of wall-clock time.
//!
//! Two charging disciplines coexist:
//!
//! - **Deterministic charges** use the *configured* cost, not a
//!   measurement: a page read charges the configured read latency, a
//!   think pause charges the configured pause. Replaying a seeded run
//!   reproduces these totals exactly.
//! - **Attributed charges** (lock waits, WAL flush waits) use the
//!   measured wall time of the wait. They are zero in single-threaded
//!   seeded runs — which keeps golden traces deterministic — and under
//!   concurrency they attribute blocking to its cause instead of leaving
//!   it smeared over elapsed time.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// The simulated cost sources the virtual clock distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Simulated page-read latency (configured per store, charged once
    /// per pool read miss-or-hit, like the paper's I/O cost model).
    PageRead,
    /// Client think time between operations (TaMix pacing waits).
    Think,
    /// Time spent blocked in the lock table waiting for a grant.
    LockWait,
    /// Time spent waiting for a WAL group-commit flush to become durable.
    WalFlush,
    /// Retry-loop backoff pauses between attempts of an aborted
    /// transaction (seeded jittered exponential delays).
    RetryBackoff,
    /// Crash-recovery work (analysis + redo + undo passes), charged once
    /// per `recover_from` on the recovered database's clock.
    Recovery,
    /// Replication apply work on a read replica: the configured
    /// per-record redo cost, charged on the replica engine's clock as
    /// shipped WAL records are replayed. Replication lag is derived from
    /// this same cost model, so lag numbers are deterministic.
    ReplApply,
    /// Simulated page-write latency: charged once per page flushed to
    /// the backing store (checkpoint flushes, background writeback,
    /// forced eviction writebacks). Zero-cost by default so existing
    /// deterministic runs are unchanged; the storage bench configures a
    /// nonzero write latency to price real media.
    PageWrite,
}

impl CostKind {
    /// All cost kinds, in counter order.
    pub const ALL: [CostKind; 8] = [
        CostKind::PageRead,
        CostKind::Think,
        CostKind::LockWait,
        CostKind::WalFlush,
        CostKind::RetryBackoff,
        CostKind::Recovery,
        CostKind::ReplApply,
        CostKind::PageWrite,
    ];

    /// Stable index of this kind into counter arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Snake-case name used in JSON exports.
    pub const fn name(self) -> &'static str {
        match self {
            CostKind::PageRead => "page_read_us",
            CostKind::Think => "think_us",
            CostKind::LockWait => "lock_wait_us",
            CostKind::WalFlush => "wal_flush_us",
            CostKind::RetryBackoff => "backoff_us",
            CostKind::Recovery => "recovery_us",
            CostKind::ReplApply => "repl_apply_us",
            CostKind::PageWrite => "page_write_us",
        }
    }
}

/// A snapshot of virtual-time totals, in microseconds per cost source.
///
/// Produced by [`VirtualClock::snapshot`] and carried per run
/// (`RunReport::vt`) and per transaction (the `TxnEnd` trace event).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct VirtualTimes {
    /// Microseconds charged for simulated page-read latency.
    pub page_read_us: u64,
    /// Microseconds charged for client think time.
    pub think_us: u64,
    /// Microseconds spent blocked on lock grants.
    pub lock_wait_us: u64,
    /// Microseconds spent waiting on WAL group-commit flushes.
    pub wal_flush_us: u64,
    /// Microseconds spent in retry-loop backoff pauses.
    pub backoff_us: u64,
    /// Microseconds of crash-recovery work.
    pub recovery_us: u64,
    /// Microseconds of replication apply work on a replica.
    pub repl_apply_us: u64,
    /// Microseconds charged for simulated page-write latency.
    pub page_write_us: u64,
}

impl VirtualTimes {
    /// The counter for one cost kind.
    pub fn get(&self, kind: CostKind) -> u64 {
        match kind {
            CostKind::PageRead => self.page_read_us,
            CostKind::Think => self.think_us,
            CostKind::LockWait => self.lock_wait_us,
            CostKind::WalFlush => self.wal_flush_us,
            CostKind::RetryBackoff => self.backoff_us,
            CostKind::Recovery => self.recovery_us,
            CostKind::ReplApply => self.repl_apply_us,
            CostKind::PageWrite => self.page_write_us,
        }
    }

    /// Adds `micros` to the counter for one cost kind.
    pub fn add_us(&mut self, kind: CostKind, micros: u64) {
        let slot = match kind {
            CostKind::PageRead => &mut self.page_read_us,
            CostKind::Think => &mut self.think_us,
            CostKind::LockWait => &mut self.lock_wait_us,
            CostKind::WalFlush => &mut self.wal_flush_us,
            CostKind::RetryBackoff => &mut self.backoff_us,
            CostKind::Recovery => &mut self.recovery_us,
            CostKind::ReplApply => &mut self.repl_apply_us,
            CostKind::PageWrite => &mut self.page_write_us,
        };
        *slot = slot.saturating_add(micros);
    }

    /// Sum over all cost sources.
    pub fn total_us(&self) -> u64 {
        self.page_read_us
            .saturating_add(self.think_us)
            .saturating_add(self.lock_wait_us)
            .saturating_add(self.wal_flush_us)
            .saturating_add(self.backoff_us)
            .saturating_add(self.recovery_us)
            .saturating_add(self.repl_apply_us)
            .saturating_add(self.page_write_us)
    }

    /// Simulated protocol cost: I/O plus lock waiting, excluding think
    /// time (which is workload pacing, not protocol work). This is the
    /// quantity the paper's figure arguments compare.
    pub fn protocol_cost_us(&self) -> u64 {
        self.page_read_us
            .saturating_add(self.lock_wait_us)
            .saturating_add(self.wal_flush_us)
            .saturating_add(self.page_write_us)
    }

    /// Component-wise saturating difference (`self - earlier`), used to
    /// scope counters to a measurement window.
    pub fn saturating_sub(self, earlier: VirtualTimes) -> VirtualTimes {
        VirtualTimes {
            page_read_us: self.page_read_us.saturating_sub(earlier.page_read_us),
            think_us: self.think_us.saturating_sub(earlier.think_us),
            lock_wait_us: self.lock_wait_us.saturating_sub(earlier.lock_wait_us),
            wal_flush_us: self.wal_flush_us.saturating_sub(earlier.wal_flush_us),
            backoff_us: self.backoff_us.saturating_sub(earlier.backoff_us),
            recovery_us: self.recovery_us.saturating_sub(earlier.recovery_us),
            repl_apply_us: self.repl_apply_us.saturating_sub(earlier.repl_apply_us),
            page_write_us: self.page_write_us.saturating_sub(earlier.page_write_us),
        }
    }

    /// Component-wise sum, used when aggregating repetitions.
    pub fn merged(self, other: VirtualTimes) -> VirtualTimes {
        VirtualTimes {
            page_read_us: self.page_read_us.saturating_add(other.page_read_us),
            think_us: self.think_us.saturating_add(other.think_us),
            lock_wait_us: self.lock_wait_us.saturating_add(other.lock_wait_us),
            wal_flush_us: self.wal_flush_us.saturating_add(other.wal_flush_us),
            backoff_us: self.backoff_us.saturating_add(other.backoff_us),
            recovery_us: self.recovery_us.saturating_add(other.recovery_us),
            repl_apply_us: self.repl_apply_us.saturating_add(other.repl_apply_us),
            page_write_us: self.page_write_us.saturating_add(other.page_write_us),
        }
    }

    /// Component-wise integer division, used to average repetitions.
    /// Dividing by zero returns the value unchanged.
    pub fn scaled_down(self, n: u64) -> VirtualTimes {
        if n == 0 {
            return self;
        }
        VirtualTimes {
            page_read_us: self.page_read_us / n,
            think_us: self.think_us / n,
            lock_wait_us: self.lock_wait_us / n,
            wal_flush_us: self.wal_flush_us / n,
            backoff_us: self.backoff_us / n,
            recovery_us: self.recovery_us / n,
            repl_apply_us: self.repl_apply_us / n,
            page_write_us: self.page_write_us / n,
        }
    }

    /// Renders the counters as a JSON object (the serde stub in this
    /// workspace is a no-op, so export is hand-rolled).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"page_read_us\":{},\"think_us\":{},\"lock_wait_us\":{},\"wal_flush_us\":{},\
             \"backoff_us\":{},\"recovery_us\":{},\"repl_apply_us\":{},\"page_write_us\":{}}}",
            self.page_read_us,
            self.think_us,
            self.lock_wait_us,
            self.wal_flush_us,
            self.backoff_us,
            self.recovery_us,
            self.repl_apply_us,
            self.page_write_us
        )
    }
}

/// Lock-free run-wide virtual clock: one atomic accumulator per
/// [`CostKind`]. Charging is a single relaxed `fetch_add`, cheap enough
/// to stay always-on (tracing is gated separately).
#[derive(Debug, Default)]
pub struct VirtualClock {
    counters: [AtomicU64; 8],
}

impl VirtualClock {
    /// Adds `micros` of simulated time to one cost source.
    #[inline]
    pub fn charge(&self, kind: CostKind, micros: u64) {
        self.counters[kind.index()].fetch_add(micros, Ordering::Relaxed);
    }

    /// Current totals. Each counter is read individually (relaxed), so a
    /// snapshot taken while writers run is per-counter accurate but not
    /// a single global instant — callers diff snapshots around quiesced
    /// windows for exact accounting.
    pub fn snapshot(&self) -> VirtualTimes {
        VirtualTimes {
            page_read_us: self.counters[0].load(Ordering::Relaxed),
            think_us: self.counters[1].load(Ordering::Relaxed),
            lock_wait_us: self.counters[2].load(Ordering::Relaxed),
            wal_flush_us: self.counters[3].load(Ordering::Relaxed),
            backoff_us: self.counters[4].load(Ordering::Relaxed),
            recovery_us: self.counters[5].load(Ordering::Relaxed),
            repl_apply_us: self.counters[6].load(Ordering::Relaxed),
            page_write_us: self.counters[7].load(Ordering::Relaxed),
        }
    }
}
