//! Structured trace events and the lock-free ring buffer that records
//! them.
//!
//! Events are fixed-size: each variant packs into six `u64` words
//! (tag/flag byte lane, transaction id, four payload words). Slots in
//! the ring store those words as `AtomicU64`s guarded by a per-slot
//! sequence word — a seqlock — so recording is lock-free, wait-free for
//! readers, and needs no `unsafe`:
//!
//! - A writer claims a global position with one `fetch_add`, CASes the
//!   slot's sequence from the previous lap's completed value to an odd
//!   "writing" value, stores the words, then publishes the new even
//!   completed value with a release store. If the CAS fails (a writer
//!   from a previous lap is still mid-write — only possible when the
//!   buffer wraps within one in-flight window), the event is counted as
//!   dropped rather than blocking.
//! - A snapshot reader accepts a slot only if the sequence is even and
//!   unchanged across the word reads (acquire/fence discipline), so it
//!   never observes torn events; slots being overwritten are skipped.
//!
//! The buffer wraps: once full, new events overwrite the oldest lap, so
//! the trace always holds the most recent `trace_events` entries.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::clock::VirtualTimes;
use crate::hist::{HistKind, Histogram};

/// Configuration for the tracing half of the observability layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Capacity of the event ring buffer, in events. Once exceeded the
    /// buffer wraps, keeping the most recent events and counting
    /// overwritten laps only implicitly (contended overwrites are
    /// reported via [`crate::Obs::dropped_events`]).
    pub trace_events: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            trace_events: 65_536,
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number: the order in which recording threads
    /// claimed slots. Gap-free per run except across wrap boundaries.
    pub seq: u64,
    /// Transaction the event is attributed to (0 = none/unknown).
    pub txn: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary: every instrumented point in the engine.
///
/// `name` fields carry a stable hash of the lock name (lock names are
/// protocol-level structures; the trace only needs identity). `mode`
/// fields carry the protocol's mode-table index. `waited_us` fields are
/// measured wall time and therefore not replay-deterministic — golden
/// traces compare events with those fields normalized to zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction began.
    TxnBegin,
    /// A transaction finished; carries its outcome and per-transaction
    /// virtual-time totals.
    TxnEnd {
        /// True for commit, false for abort.
        committed: bool,
        /// Virtual time charged to this transaction while it ran on
        /// the recording thread.
        vt: VirtualTimes,
    },
    /// A lock request was granted immediately (including cache hits and
    /// compatible re-requests).
    LockAcquire {
        /// Stable hash of the lock name.
        name: u64,
        /// Granted mode (mode-table index).
        mode: u8,
    },
    /// A lock request enqueued behind conflicting holders and is about
    /// to block. Recorded *before* the requester sleeps, under the
    /// shard lock — once a test observes this event the requester
    /// provably cannot proceed until a release or abort.
    LockWait {
        /// Stable hash of the lock name.
        name: u64,
        /// Requested mode (mode-table index).
        mode: u8,
        /// True when this is a conversion of an already-held lock.
        converting: bool,
    },
    /// A blocked request was granted after waiting.
    LockGrant {
        /// Stable hash of the lock name.
        name: u64,
        /// Granted mode (mode-table index).
        mode: u8,
        /// Measured wall microseconds spent blocked.
        waited_us: u64,
    },
    /// A held lock changed mode without blocking.
    LockConvert {
        /// Stable hash of the lock name.
        name: u64,
        /// Previously held mode (mode-table index).
        from: u8,
        /// Resulting mode (mode-table index).
        to: u8,
    },
    /// Deadlock detection chose a victim.
    DeadlockVictim {
        /// The aborted transaction.
        victim: u64,
        /// True when a conversion edge participated in the cycle.
        conversion: bool,
    },
    /// A page was read through the buffer pool.
    PageRead {
        /// Page number within the store.
        page: u64,
    },
    /// A page was written through the buffer pool.
    PageWrite {
        /// Page number within the store.
        page: u64,
    },
    /// A resident page was evicted to honor the pool budget.
    PageEvict {
        /// Page number within the store.
        page: u64,
    },
    /// A WAL record was appended (buffered, not yet durable).
    WalAppend {
        /// Log sequence number assigned to the record.
        lsn: u64,
    },
    /// A group-commit leader flushed a batch to the durable prefix.
    WalFlush {
        /// Records in the flushed batch.
        records: u64,
        /// Bytes in the flushed batch.
        bytes: u64,
    },
    /// A committing transaction's record became durable.
    WalCommit {
        /// The commit record's log sequence number.
        lsn: u64,
        /// Measured wall microseconds the committer waited for
        /// durability.
        waited_us: u64,
    },
    /// A dirty page was written back to the backing store (checkpoint
    /// flush, background writeback, or a forced eviction writeback).
    PageWriteback {
        /// Page number within the store.
        page: u64,
        /// True when the writeback was forced synchronously on the
        /// eviction path (no clean victim available).
        forced: bool,
    },
    /// A faulted-in page was found in the eviction policy's ghost list:
    /// it was resident recently enough that its access history was
    /// still remembered and restored (LRU-2 scan resistance at work).
    PoolGhostHit {
        /// Page number within the store.
        page: u64,
    },
    /// A negative-lookup filter answered "absent" for an index probe,
    /// skipping the B*-tree descent (and its page faults) entirely.
    FilterNegative {
        /// Stable hash of the probed key.
        key: u64,
    },
    /// A versioned protocol served a read from its MVCC snapshot — no
    /// lock was requested and no lock-wait time can accrue.
    SnapshotRead {
        /// The version-clock stamp the read resolved against.
        stamp: u64,
    },
    /// Commit-time validation under an optimistic protocol found
    /// conflicting committed writes and aborted the transaction.
    ValidationAbort {
        /// Read-set entries invalidated by concurrent committed writes.
        conflicts: u64,
    },
}

impl EventKind {
    /// Snake-case variant name used in JSON exports.
    pub const fn name(&self) -> &'static str {
        match self {
            EventKind::TxnBegin => "txn_begin",
            EventKind::TxnEnd { .. } => "txn_end",
            EventKind::LockAcquire { .. } => "lock_acquire",
            EventKind::LockWait { .. } => "lock_wait",
            EventKind::LockGrant { .. } => "lock_grant",
            EventKind::LockConvert { .. } => "lock_convert",
            EventKind::DeadlockVictim { .. } => "deadlock_victim",
            EventKind::PageRead { .. } => "page_read",
            EventKind::PageWrite { .. } => "page_write",
            EventKind::PageEvict { .. } => "page_evict",
            EventKind::WalAppend { .. } => "wal_append",
            EventKind::WalFlush { .. } => "wal_flush",
            EventKind::WalCommit { .. } => "wal_commit",
            EventKind::PageWriteback { .. } => "page_writeback",
            EventKind::PoolGhostHit { .. } => "pool_ghost_hit",
            EventKind::FilterNegative { .. } => "filter_negative",
            EventKind::SnapshotRead { .. } => "snapshot_read",
            EventKind::ValidationAbort { .. } => "validation_abort",
        }
    }

    /// A copy with measured-wall-time payload fields zeroed, leaving
    /// only replay-deterministic content. Golden-trace tests compare
    /// normalized events.
    pub fn normalized(self) -> EventKind {
        match self {
            EventKind::TxnEnd { committed, vt } => EventKind::TxnEnd {
                committed,
                vt: VirtualTimes {
                    lock_wait_us: 0,
                    wal_flush_us: 0,
                    ..vt
                },
            },
            EventKind::LockGrant { name, mode, .. } => EventKind::LockGrant {
                name,
                mode,
                waited_us: 0,
            },
            EventKind::WalCommit { lsn, .. } => EventKind::WalCommit { lsn, waited_us: 0 },
            other => other,
        }
    }

    /// Renders the variant-specific payload as JSON key/value pairs
    /// (empty for payload-free variants).
    pub fn payload_json(&self) -> String {
        match *self {
            EventKind::TxnBegin => String::new(),
            EventKind::TxnEnd { committed, vt } => {
                format!("\"committed\":{},\"vt\":{}", committed, vt.to_json())
            }
            EventKind::LockAcquire { name, mode } => {
                format!("\"name\":{name},\"mode\":{mode}")
            }
            EventKind::LockWait {
                name,
                mode,
                converting,
            } => format!("\"name\":{name},\"mode\":{mode},\"converting\":{converting}"),
            EventKind::LockGrant {
                name,
                mode,
                waited_us,
            } => format!("\"name\":{name},\"mode\":{mode},\"waited_us\":{waited_us}"),
            EventKind::LockConvert { name, from, to } => {
                format!("\"name\":{name},\"from\":{from},\"to\":{to}")
            }
            EventKind::DeadlockVictim { victim, conversion } => {
                format!("\"victim\":{victim},\"conversion\":{conversion}")
            }
            EventKind::PageRead { page }
            | EventKind::PageWrite { page }
            | EventKind::PageEvict { page } => format!("\"page\":{page}"),
            EventKind::WalAppend { lsn } => format!("\"lsn\":{lsn}"),
            EventKind::WalFlush { records, bytes } => {
                format!("\"records\":{records},\"bytes\":{bytes}")
            }
            EventKind::WalCommit { lsn, waited_us } => {
                format!("\"lsn\":{lsn},\"waited_us\":{waited_us}")
            }
            EventKind::PageWriteback { page, forced } => {
                format!("\"page\":{page},\"forced\":{forced}")
            }
            EventKind::PoolGhostHit { page } => format!("\"page\":{page}"),
            EventKind::FilterNegative { key } => format!("\"key\":{key}"),
            EventKind::SnapshotRead { stamp } => format!("\"stamp\":{stamp}"),
            EventKind::ValidationAbort { conflicts } => format!("\"conflicts\":{conflicts}"),
        }
    }
}

/// Word layout: `w0 = tag | flags << 8 | m1 << 16 | m2 << 24`,
/// `w1 = txn`, `w2..w5 = a, b, c, d`.
const TAG_TXN_BEGIN: u8 = 0;
const TAG_TXN_END: u8 = 1;
const TAG_LOCK_ACQUIRE: u8 = 2;
const TAG_LOCK_WAIT: u8 = 3;
const TAG_LOCK_GRANT: u8 = 4;
const TAG_LOCK_CONVERT: u8 = 5;
const TAG_DEADLOCK_VICTIM: u8 = 6;
const TAG_PAGE_READ: u8 = 7;
const TAG_PAGE_WRITE: u8 = 8;
const TAG_PAGE_EVICT: u8 = 9;
const TAG_WAL_APPEND: u8 = 10;
const TAG_WAL_FLUSH: u8 = 11;
const TAG_WAL_COMMIT: u8 = 12;
const TAG_PAGE_WRITEBACK: u8 = 13;
const TAG_POOL_GHOST_HIT: u8 = 14;
const TAG_FILTER_NEGATIVE: u8 = 15;
const TAG_SNAPSHOT_READ: u8 = 16;
const TAG_VALIDATION_ABORT: u8 = 17;

fn pack0(tag: u8, flags: u8, m1: u8, m2: u8) -> u64 {
    tag as u64 | (flags as u64) << 8 | (m1 as u64) << 16 | (m2 as u64) << 24
}

pub(crate) fn encode(txn: u64, kind: &EventKind) -> [u64; 6] {
    let (w0, a, b, c, d) = match *kind {
        EventKind::TxnBegin => (pack0(TAG_TXN_BEGIN, 0, 0, 0), 0, 0, 0, 0),
        EventKind::TxnEnd { committed, vt } => (
            pack0(TAG_TXN_END, committed as u8, 0, 0),
            vt.page_read_us,
            vt.think_us,
            vt.lock_wait_us,
            vt.wal_flush_us,
        ),
        EventKind::LockAcquire { name, mode } => {
            (pack0(TAG_LOCK_ACQUIRE, 0, mode, 0), name, 0, 0, 0)
        }
        EventKind::LockWait {
            name,
            mode,
            converting,
        } => (
            pack0(TAG_LOCK_WAIT, converting as u8, mode, 0),
            name,
            0,
            0,
            0,
        ),
        EventKind::LockGrant {
            name,
            mode,
            waited_us,
        } => (pack0(TAG_LOCK_GRANT, 0, mode, 0), name, waited_us, 0, 0),
        EventKind::LockConvert { name, from, to } => {
            (pack0(TAG_LOCK_CONVERT, 0, from, to), name, 0, 0, 0)
        }
        EventKind::DeadlockVictim { victim, conversion } => (
            pack0(TAG_DEADLOCK_VICTIM, conversion as u8, 0, 0),
            victim,
            0,
            0,
            0,
        ),
        EventKind::PageRead { page } => (pack0(TAG_PAGE_READ, 0, 0, 0), page, 0, 0, 0),
        EventKind::PageWrite { page } => (pack0(TAG_PAGE_WRITE, 0, 0, 0), page, 0, 0, 0),
        EventKind::PageEvict { page } => (pack0(TAG_PAGE_EVICT, 0, 0, 0), page, 0, 0, 0),
        EventKind::WalAppend { lsn } => (pack0(TAG_WAL_APPEND, 0, 0, 0), lsn, 0, 0, 0),
        EventKind::WalFlush { records, bytes } => {
            (pack0(TAG_WAL_FLUSH, 0, 0, 0), records, bytes, 0, 0)
        }
        EventKind::WalCommit { lsn, waited_us } => {
            (pack0(TAG_WAL_COMMIT, 0, 0, 0), lsn, waited_us, 0, 0)
        }
        EventKind::PageWriteback { page, forced } => {
            (pack0(TAG_PAGE_WRITEBACK, forced as u8, 0, 0), page, 0, 0, 0)
        }
        EventKind::PoolGhostHit { page } => (pack0(TAG_POOL_GHOST_HIT, 0, 0, 0), page, 0, 0, 0),
        EventKind::FilterNegative { key } => (pack0(TAG_FILTER_NEGATIVE, 0, 0, 0), key, 0, 0, 0),
        EventKind::SnapshotRead { stamp } => (pack0(TAG_SNAPSHOT_READ, 0, 0, 0), stamp, 0, 0, 0),
        EventKind::ValidationAbort { conflicts } => {
            (pack0(TAG_VALIDATION_ABORT, 0, 0, 0), conflicts, 0, 0, 0)
        }
    };
    [w0, txn, a, b, c, d]
}

pub(crate) fn decode(words: [u64; 6]) -> Option<(u64, EventKind)> {
    let [w0, txn, a, b, c, d] = words;
    let tag = (w0 & 0xFF) as u8;
    let flag = (w0 >> 8 & 0xFF) as u8 != 0;
    let m1 = (w0 >> 16 & 0xFF) as u8;
    let m2 = (w0 >> 24 & 0xFF) as u8;
    let kind = match tag {
        TAG_TXN_BEGIN => EventKind::TxnBegin,
        TAG_TXN_END => EventKind::TxnEnd {
            committed: flag,
            // The 6-word slot has four payload words: the original four
            // per-txn cost kinds travel in the trace; run-level kinds
            // (backoff, recovery) decode as zero.
            vt: VirtualTimes {
                page_read_us: a,
                think_us: b,
                lock_wait_us: c,
                wal_flush_us: d,
                ..VirtualTimes::default()
            },
        },
        TAG_LOCK_ACQUIRE => EventKind::LockAcquire { name: a, mode: m1 },
        TAG_LOCK_WAIT => EventKind::LockWait {
            name: a,
            mode: m1,
            converting: flag,
        },
        TAG_LOCK_GRANT => EventKind::LockGrant {
            name: a,
            mode: m1,
            waited_us: b,
        },
        TAG_LOCK_CONVERT => EventKind::LockConvert {
            name: a,
            from: m1,
            to: m2,
        },
        TAG_DEADLOCK_VICTIM => EventKind::DeadlockVictim {
            victim: a,
            conversion: flag,
        },
        TAG_PAGE_READ => EventKind::PageRead { page: a },
        TAG_PAGE_WRITE => EventKind::PageWrite { page: a },
        TAG_PAGE_EVICT => EventKind::PageEvict { page: a },
        TAG_WAL_APPEND => EventKind::WalAppend { lsn: a },
        TAG_WAL_FLUSH => EventKind::WalFlush {
            records: a,
            bytes: b,
        },
        TAG_WAL_COMMIT => EventKind::WalCommit {
            lsn: a,
            waited_us: b,
        },
        TAG_PAGE_WRITEBACK => EventKind::PageWriteback {
            page: a,
            forced: flag,
        },
        TAG_POOL_GHOST_HIT => EventKind::PoolGhostHit { page: a },
        TAG_FILTER_NEGATIVE => EventKind::FilterNegative { key: a },
        TAG_SNAPSHOT_READ => EventKind::SnapshotRead { stamp: a },
        TAG_VALIDATION_ABORT => EventKind::ValidationAbort { conflicts: a },
        _ => return None,
    };
    Some((txn, kind))
}

/// One ring slot: a seqlock word plus the encoded event words.
struct Slot {
    /// 0 = never written; odd = write in progress for position
    /// `(seq - 1) / 2`; even and non-zero = completed write of position
    /// `seq / 2 - 1`.
    seq: AtomicU64,
    words: [AtomicU64; 6],
}

/// Lock-free wrap-around event buffer (see module docs for the
/// seqlock protocol).
pub(crate) struct Ring {
    head: AtomicU64,
    slots: Box<[Slot]>,
    contended_drops: AtomicU64,
}

impl Ring {
    pub(crate) fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(16);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            head: AtomicU64::new(0),
            slots,
            contended_drops: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, words: [u64; 6]) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(pos % cap) as usize];
        // The slot last completed the write for position `pos - cap`
        // (or is untouched on the first lap). A failed CAS means a
        // straggling writer from a previous lap still owns the slot —
        // drop this event instead of spinning.
        let prev = if pos < cap { 0 } else { 2 * (pos - cap + 1) };
        if slot
            .seq
            .compare_exchange(prev, 2 * pos + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            self.contended_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.store(2 * (pos + 1), Ordering::Release);
    }

    /// Events recorded so far (claim count, including any dropped).
    pub(crate) fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    pub(crate) fn contended_drops(&self) -> u64 {
        self.contended_drops.load(Ordering::Relaxed)
    }

    /// Consistent copies of every completed slot, ordered by global
    /// position. Slots mid-write are skipped.
    pub(crate) fn snapshot(&self) -> Vec<(u64, [u64; 6])> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let words = std::array::from_fn(|i| slot.words[i].load(Ordering::Relaxed));
            fence(Ordering::Acquire);
            let after = slot.seq.load(Ordering::Relaxed);
            if before == after {
                out.push((before / 2 - 1, words));
            }
        }
        out.sort_unstable_by_key(|&(pos, _)| pos);
        out
    }
}

/// Shared tracing state: the event ring plus the latency histograms.
pub(crate) struct TraceState {
    pub(crate) ring: Ring,
    pub(crate) hists: [Histogram; 3],
}

impl TraceState {
    pub(crate) fn new(config: &ObsConfig) -> TraceState {
        TraceState {
            ring: Ring::new(config.trace_events),
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }

    pub(crate) fn hist(&self, kind: HistKind) -> &Histogram {
        &self.hists[kind.index()]
    }
}
