//! Log-scaled latency histograms.
//!
//! Microsecond samples land in power-of-two buckets (bucket 0 holds the
//! zero sample, bucket `i >= 1` holds `[2^(i-1), 2^i)` µs, the last
//! bucket is open-ended). The live [`Histogram`] is an array of atomics
//! so recording is lock-free; [`HistogramSnapshot`] is its plain-integer
//! counterpart with merge and percentile queries.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets per histogram.
pub const BUCKETS: usize = 64;

/// Which latency distribution a histogram tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HistKind {
    /// Time blocked in the lock table per granted wait.
    LockWait,
    /// Simulated latency per page read.
    PageRead,
    /// Wait per WAL group-commit flush.
    WalFlush,
}

impl HistKind {
    /// All histogram kinds, in storage order.
    pub const ALL: [HistKind; 3] = [HistKind::LockWait, HistKind::PageRead, HistKind::WalFlush];

    /// Stable index of this kind into histogram arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Snake-case name used in JSON exports.
    pub const fn name(self) -> &'static str {
        match self {
            HistKind::LockWait => "lock_wait_us",
            HistKind::PageRead => "page_read_us",
            HistKind::WalFlush => "wal_flush_us",
        }
    }
}

/// The bucket index a microsecond sample falls into.
pub fn bucket_of(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket, in microseconds. The top bucket
/// is open-ended and reports `u64::MAX`.
pub fn bucket_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Lock-free log2-bucketed histogram of microsecond latencies.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one microsecond sample (relaxed atomic increment).
    pub fn record(&self, micros: u64) {
        self.buckets[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-integer copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Plain-integer histogram: mergeable, queryable, comparable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log2 bucket (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// A fresh, empty snapshot.
    pub fn new() -> Self {
        HistogramSnapshot::default()
    }

    /// Records one sample (non-atomic counterpart of
    /// [`Histogram::record`], handy for tests and oracles).
    pub fn record(&mut self, micros: u64) {
        self.buckets[bucket_of(micros)] += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another snapshot's counts into this one, bucket by bucket.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
    }

    /// Upper bound (µs) of the bucket containing the `p`-th percentile
    /// sample, `p` in `[0, 100]`. An empty histogram reports 0; `p = 0`
    /// reports the first non-empty bucket's bound. Log bucketing means
    /// the answer is exact to within a factor of two — the right
    /// resolution for latency distributions spanning decades.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * total as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Upper bound (µs) of the highest non-empty bucket; 0 when empty.
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(bucket_bound)
            .unwrap_or(0)
    }

    /// Renders the histogram as a JSON object: summary percentiles plus
    /// the sparse non-empty buckets as `[index, count]` pairs.
    pub fn to_json(&self) -> String {
        let sparse: Vec<String> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| format!("[{i},{n}]"))
            .collect();
        format!(
            "{{\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"buckets\":[{}]}}",
            self.count(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max_bound(),
            sparse.join(",")
        )
    }
}
