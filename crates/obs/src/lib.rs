//! Observability layer for the xtc workspace: deterministic virtual-time
//! accounting plus an optional structured trace.
//!
//! The paper's figure arguments are about *simulated* cost — page reads,
//! lock waits — not about how fast the host machine happens to run the
//! harness. This crate makes that cost a first-class measurement:
//!
//! - The **virtual clock** ([`VirtualClock`], [`CostKind`]) is always
//!   on: every simulated cost source charges microseconds with one
//!   relaxed atomic add. Run reports diff [`VirtualTimes`] snapshots, so
//!   figure-shape assertions compare deterministic simulated time
//!   instead of wall-clock.
//! - The **trace** ([`Event`], [`EventKind`], the ring buffer and the
//!   [`Histogram`]s) is off by default and enabled via
//!   `XtcConfig::obs`. When off, every trace call is a branch on a
//!   `None` — near-zero cost. When on, events are recorded lock-free
//!   and exported as JSON (`results/trace_*.json`).
//!
//! A cloned [`Obs`] handle is threaded through the storage pool, the
//! lock table, the WAL, and the transaction layer; all clones share the
//! same clock and trace state.

#![warn(missing_docs)]

mod clock;
mod hist;
mod trace;

pub use clock::{CostKind, VirtualClock, VirtualTimes};
pub use hist::{bucket_bound, bucket_of, HistKind, Histogram, HistogramSnapshot, BUCKETS};
pub use trace::{Event, EventKind, ObsConfig};

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use trace::TraceState;

thread_local! {
    /// Stack of transactions active on this thread; the innermost frame
    /// *of the charging engine* accumulates per-transaction virtual
    /// time. Always on (deadline budgets charge against it),
    /// independent of tracing. Frames are tagged with the engine they
    /// belong to so a server worker touching two documents never bleeds
    /// cost attribution across engines.
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };

    /// Virtual time of the most recently ended transaction on this
    /// thread, kept per engine, for callers (the retry loop) that learn
    /// the outcome only after the frame is gone.
    static LAST_ENDED: RefCell<Vec<(EngineId, u64, VirtualTimes)>> = const { RefCell::new(Vec::new()) };
}

/// Identity of one engine: the address of its shared virtual clock.
/// All clones of an `Obs` handle share the clock `Arc`, so they agree
/// on the id; two independently built engines never collide.
type EngineId = usize;

struct Frame {
    engine: EngineId,
    txn: u64,
    vt: VirtualTimes,
}

/// Shared observability handle: an always-on virtual clock plus
/// optional tracing state. Cheap to clone (two `Arc`s); all clones
/// observe the same counters and events.
#[derive(Clone, Default)]
pub struct Obs {
    clock: Arc<VirtualClock>,
    trace: Option<Arc<TraceState>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("vt", &self.clock.snapshot())
            .field("tracing", &self.trace.is_some())
            .finish()
    }
}

impl Obs {
    /// A handle with the clock on and tracing enabled per `config`
    /// (`None` leaves tracing off — the [`Default`] behavior).
    pub fn with_config(config: Option<&ObsConfig>) -> Obs {
        Obs {
            clock: Arc::new(VirtualClock::default()),
            trace: config.map(|c| Arc::new(TraceState::new(c))),
        }
    }

    /// True when the tracing half is enabled.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// This engine's identity: the address of the clock shared by every
    /// clone of the handle. Frames on a thread are keyed by it so two
    /// engines used from one thread keep separate attribution.
    #[inline]
    fn engine_id(&self) -> EngineId {
        Arc::as_ptr(&self.clock) as EngineId
    }

    /// Charges simulated microseconds to the run-wide clock and to the
    /// current thread's innermost transaction frame *of this engine*
    /// (deadline budgets read the frame); while tracing, also to the
    /// matching latency histogram. Frames of other engines interleaved
    /// on the same thread are never charged.
    #[inline]
    pub fn charge(&self, kind: CostKind, micros: u64) {
        self.clock.charge(kind, micros);
        let engine = self.engine_id();
        FRAMES.with_borrow_mut(|frames| {
            if let Some(top) = frames.iter_mut().rev().find(|f| f.engine == engine) {
                top.vt.add_us(kind, micros);
            }
        });
        if let Some(trace) = &self.trace {
            let hist = match kind {
                CostKind::PageRead => Some(HistKind::PageRead),
                CostKind::LockWait => Some(HistKind::LockWait),
                CostKind::WalFlush => Some(HistKind::WalFlush),
                CostKind::Think
                | CostKind::RetryBackoff
                | CostKind::Recovery
                | CostKind::ReplApply
                | CostKind::PageWrite => None,
            };
            if let Some(h) = hist {
                trace.hist(h).record(micros);
            }
        }
    }

    /// Run-wide virtual-time totals so far.
    #[inline]
    pub fn vt(&self) -> VirtualTimes {
        self.clock.snapshot()
    }

    /// Marks a transaction as active on the current thread (its frame
    /// starts accumulating virtual time) and, while tracing, records its
    /// begin event.
    pub fn txn_begin(&self, txn: u64) {
        let engine = self.engine_id();
        FRAMES.with_borrow_mut(|frames| {
            frames.push(Frame {
                engine,
                txn,
                vt: VirtualTimes::default(),
            })
        });
        self.record_for(txn, EventKind::TxnBegin);
    }

    /// Ends a transaction: pops its frame (matched by engine and id,
    /// scanning from the top so nesting and cross-frame drops stay
    /// robust), remembers its totals for [`Obs::take_last_txn_vt`], and,
    /// while tracing, records the end event carrying them. Returns the
    /// transaction's charged time when a frame was found.
    pub fn txn_end(&self, txn: u64, committed: bool) -> Option<VirtualTimes> {
        let engine = self.engine_id();
        let found = FRAMES.with_borrow_mut(|frames| {
            frames
                .iter()
                .rposition(|f| f.engine == engine && f.txn == txn)
                .map(|i| frames.remove(i).vt)
        });
        let vt = found.unwrap_or_default();
        LAST_ENDED.with_borrow_mut(|last| {
            last.retain(|(e, _, _)| *e != engine);
            last.push((engine, txn, vt));
        });
        self.record_for(txn, EventKind::TxnEnd { committed, vt });
        found
    }

    /// Virtual time charged so far to a transaction still active on this
    /// thread (`None` when it has no frame here). This is the quantity
    /// deadline budgets are enforced against.
    pub fn txn_vt(&self, txn: u64) -> Option<VirtualTimes> {
        let engine = self.engine_id();
        FRAMES.with_borrow(|frames| {
            frames
                .iter()
                .rfind(|f| f.engine == engine && f.txn == txn)
                .map(|f| f.vt)
        })
    }

    /// Takes (and clears) the virtual time of this engine's transaction
    /// that most recently ended on this thread. The retry loop uses this
    /// to charge each attempt against a cross-attempt elapsed budget
    /// after commit/abort has already popped the frame. Other engines'
    /// entries on the thread are left untouched.
    pub fn take_last_txn_vt(&self) -> Option<(u64, VirtualTimes)> {
        let engine = self.engine_id();
        LAST_ENDED.with_borrow_mut(|last| {
            last.iter()
                .position(|(e, _, _)| *e == engine)
                .map(|i| {
                    let (_, txn, vt) = last.remove(i);
                    (txn, vt)
                })
        })
    }

    /// This engine's transaction currently active on this thread
    /// (0 when none).
    pub fn current_txn(&self) -> u64 {
        let engine = self.engine_id();
        FRAMES.with_borrow(|frames| {
            frames
                .iter()
                .rfind(|f| f.engine == engine)
                .map(|f| f.txn)
                .unwrap_or(0)
        })
    }

    /// Records an event attributed to the current thread's active
    /// transaction. No-op unless tracing.
    #[inline]
    pub fn record(&self, kind: EventKind) {
        if self.trace.is_some() {
            let txn = self.current_txn();
            self.record_for(txn, kind);
        }
    }

    /// Records an event attributed to an explicit transaction id.
    /// No-op unless tracing.
    #[inline]
    pub fn record_for(&self, txn: u64, kind: EventKind) {
        if let Some(trace) = &self.trace {
            trace.ring.push(trace::encode(txn, &kind));
        }
    }

    /// Like [`Obs::record_for`], but builds the event lazily: the closure
    /// runs only while tracing, so call sites with a non-trivial payload
    /// (lock-name hashing) pay nothing when the trace is off.
    #[inline]
    pub fn record_with(&self, txn: u64, kind: impl FnOnce() -> EventKind) {
        if let Some(trace) = &self.trace {
            trace.ring.push(trace::encode(txn, &kind()));
        }
    }

    /// A consistent, position-ordered copy of the recorded events
    /// (empty unless tracing). When the ring has wrapped, only the most
    /// recent lap is available.
    pub fn events(&self) -> Vec<Event> {
        let Some(trace) = &self.trace else {
            return Vec::new();
        };
        trace
            .ring
            .snapshot()
            .into_iter()
            .filter_map(|(pos, words)| {
                trace::decode(words).map(|(txn, kind)| Event {
                    seq: pos,
                    txn,
                    kind,
                })
            })
            .collect()
    }

    /// Total events recorded so far (including any that wrapped out of
    /// the buffer); 0 unless tracing.
    pub fn recorded_events(&self) -> u64 {
        self.trace
            .as_ref()
            .map(|t| t.ring.recorded())
            .unwrap_or(0)
    }

    /// Events dropped because a wrap raced an in-flight writer (distinct
    /// from events merely overwritten by newer laps); 0 unless tracing.
    pub fn dropped_events(&self) -> u64 {
        self.trace
            .as_ref()
            .map(|t| t.ring.contended_drops())
            .unwrap_or(0)
    }

    /// Snapshot of one latency histogram; `None` unless tracing.
    pub fn histogram(&self, kind: HistKind) -> Option<HistogramSnapshot> {
        self.trace.as_ref().map(|t| t.hist(kind).snapshot())
    }

    /// Exports the run as a JSON document: run-wide virtual time, the
    /// latency histograms, per-transaction timelines, and the full
    /// event list. Hand-rolled (the workspace serde is a stub).
    pub fn export_json(&self, label: &str) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(label)));
        out.push_str(&format!("  \"vt\": {},\n", self.vt().to_json()));
        out.push_str(&format!(
            "  \"events_recorded\": {},\n  \"events_dropped\": {},\n",
            self.recorded_events(),
            self.dropped_events()
        ));
        out.push_str("  \"histograms\": {");
        let hists: Vec<String> = HistKind::ALL
            .iter()
            .filter_map(|&k| {
                self.histogram(k)
                    .map(|h| format!("\"{}\": {}", k.name(), h.to_json()))
            })
            .collect();
        out.push_str(&hists.join(", "));
        out.push_str("},\n");

        // Per-transaction timelines: txns in order of first appearance,
        // each with its event span, outcome, and charged virtual time.
        out.push_str("  \"txns\": [\n");
        let mut order: Vec<u64> = Vec::new();
        for e in &events {
            if e.txn != 0 && !order.contains(&e.txn) {
                order.push(e.txn);
            }
        }
        let txn_lines: Vec<String> = order
            .iter()
            .map(|&txn| {
                let mine: Vec<&Event> = events.iter().filter(|e| e.txn == txn).collect();
                let first = mine.first().map(|e| e.seq).unwrap_or(0);
                let last = mine.last().map(|e| e.seq).unwrap_or(0);
                let end = mine.iter().rev().find_map(|e| match e.kind {
                    EventKind::TxnEnd { committed, vt } => Some((committed, vt)),
                    _ => None,
                });
                let (outcome, vt_json) = match end {
                    Some((true, vt)) => ("\"commit\"".to_string(), vt.to_json()),
                    Some((false, vt)) => ("\"abort\"".to_string(), vt.to_json()),
                    None => ("null".to_string(), VirtualTimes::default().to_json()),
                };
                format!(
                    "    {{\"txn\":{txn},\"events\":{},\"first_seq\":{first},\"last_seq\":{last},\"outcome\":{outcome},\"vt\":{vt_json}}}",
                    mine.len()
                )
            })
            .collect();
        out.push_str(&txn_lines.join(",\n"));
        out.push_str("\n  ],\n");

        out.push_str("  \"events\": [\n");
        let event_lines: Vec<String> = events
            .iter()
            .map(|e| {
                let payload = e.kind.payload_json();
                let sep = if payload.is_empty() { "" } else { "," };
                format!(
                    "    {{\"seq\":{},\"txn\":{},\"kind\":\"{}\"{sep}{payload}}}",
                    e.seq,
                    e.txn,
                    e.kind.name()
                )
            })
            .collect();
        out.push_str(&event_lines.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_charges_accumulate_per_kind() {
        let obs = Obs::default();
        obs.charge(CostKind::PageRead, 10);
        obs.charge(CostKind::PageRead, 5);
        obs.charge(CostKind::LockWait, 7);
        let vt = obs.vt();
        assert_eq!(vt.page_read_us, 15);
        assert_eq!(vt.lock_wait_us, 7);
        assert_eq!(vt.think_us, 0);
        assert_eq!(vt.total_us(), 22);
    }

    #[test]
    fn tracing_off_records_no_events_but_frames_still_account() {
        let obs = Obs::default();
        obs.record(EventKind::PageRead { page: 1 });
        obs.txn_begin(1);
        obs.charge(CostKind::PageRead, 21);
        assert!(obs.events().is_empty());
        assert_eq!(obs.recorded_events(), 0);
        assert!(obs.histogram(HistKind::PageRead).is_none());
        // Frames are always on: deadline budgets need per-txn virtual
        // time even in untraced production runs.
        assert_eq!(obs.txn_vt(1).unwrap().page_read_us, 21);
        assert_eq!(obs.txn_end(1, true).unwrap().page_read_us, 21);
        assert_eq!(obs.take_last_txn_vt().unwrap().1.page_read_us, 21);
        assert!(obs.take_last_txn_vt().is_none());
    }

    #[test]
    fn events_round_trip_through_the_ring() {
        let obs = Obs::with_config(Some(&ObsConfig::default()));
        let kinds = [
            EventKind::TxnBegin,
            EventKind::LockAcquire { name: 42, mode: 2 },
            EventKind::LockWait {
                name: 42,
                mode: 3,
                converting: true,
            },
            EventKind::LockGrant {
                name: 42,
                mode: 3,
                waited_us: 17,
            },
            EventKind::LockConvert {
                name: 9,
                from: 1,
                to: 4,
            },
            EventKind::DeadlockVictim {
                victim: 7,
                conversion: true,
            },
            EventKind::PageRead { page: 3 },
            EventKind::PageWrite { page: 4 },
            EventKind::PageEvict { page: 5 },
            EventKind::WalAppend { lsn: 100 },
            EventKind::WalFlush {
                records: 4,
                bytes: 512,
            },
            EventKind::WalCommit {
                lsn: 100,
                waited_us: 250,
            },
            EventKind::PageWriteback {
                page: 6,
                forced: true,
            },
            EventKind::PoolGhostHit { page: 7 },
            EventKind::FilterNegative { key: 0xFEED },
            EventKind::SnapshotRead { stamp: 12 },
            EventKind::ValidationAbort { conflicts: 3 },
            EventKind::TxnEnd {
                committed: true,
                vt: VirtualTimes {
                    page_read_us: 1,
                    think_us: 2,
                    lock_wait_us: 3,
                    wal_flush_us: 4,
                    ..VirtualTimes::default()
                },
            },
        ];
        for k in kinds {
            obs.record_for(11, k);
        }
        let events = obs.events();
        assert_eq!(events.len(), kinds.len());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.txn, 11);
            assert_eq!(e.kind, kinds[i]);
        }
    }

    #[test]
    fn ring_wraps_keeping_the_most_recent_lap() {
        let obs = Obs::with_config(Some(&ObsConfig { trace_events: 16 }));
        for i in 0..40u64 {
            obs.record_for(1, EventKind::WalAppend { lsn: i });
        }
        let events = obs.events();
        assert_eq!(events.len(), 16);
        assert_eq!(events.first().unwrap().seq, 24);
        assert_eq!(events.last().unwrap().seq, 39);
        assert_eq!(obs.recorded_events(), 40);
        assert_eq!(obs.dropped_events(), 0);
    }

    #[test]
    fn txn_frames_attribute_charges_to_the_active_txn() {
        let obs = Obs::with_config(Some(&ObsConfig::default()));
        obs.txn_begin(1);
        obs.charge(CostKind::PageRead, 30);
        obs.txn_begin(2); // nested: charges go to the top frame
        obs.charge(CostKind::Think, 5);
        let inner = obs.txn_end(2, false).unwrap();
        obs.charge(CostKind::LockWait, 9);
        let outer = obs.txn_end(1, true).unwrap();
        assert_eq!(inner.think_us, 5);
        assert_eq!(inner.page_read_us, 0);
        assert_eq!(outer.page_read_us, 30);
        assert_eq!(outer.lock_wait_us, 9);
        // Per-txn attribution feeds the run clock too.
        assert_eq!(obs.vt().total_us(), 44);
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        let obs = Obs::with_config(Some(&ObsConfig {
            trace_events: 8192,
        }));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let obs = obs.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        obs.record_for(t + 1, EventKind::WalAppend { lsn: i });
                    }
                });
            }
        });
        let events = obs.events();
        assert_eq!(events.len(), 4000);
        // Positions are unique and contiguous.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Every (txn, lsn) pair survives exactly once.
        for t in 1..=4u64 {
            let mut lsns: Vec<u64> = events
                .iter()
                .filter(|e| e.txn == t)
                .map(|e| match e.kind {
                    EventKind::WalAppend { lsn } => lsn,
                    _ => panic!("unexpected kind"),
                })
                .collect();
            lsns.sort_unstable();
            assert_eq!(lsns, (0..1000).collect::<Vec<_>>());
        }
    }

    #[test]
    fn two_engines_on_one_thread_keep_charges_separated() {
        // A server worker thread serving two documents interleaves two
        // engines' transactions. Each engine must charge only its own
        // frame, see only its own current txn, and take only its own
        // last-ended virtual time.
        let a = Obs::default();
        let b = Obs::default();
        a.txn_begin(1);
        b.txn_begin(1); // same txn id on purpose: ids are per-engine
        a.charge(CostKind::PageRead, 100);
        b.charge(CostKind::PageRead, 7);
        a.charge(CostKind::LockWait, 40);
        b.charge(CostKind::Think, 3);
        assert_eq!(a.current_txn(), 1);
        assert_eq!(b.current_txn(), 1);
        assert_eq!(a.txn_vt(1).unwrap().page_read_us, 100);
        assert_eq!(b.txn_vt(1).unwrap().page_read_us, 7);

        // Ending b's txn must not disturb a's frame, and each engine's
        // LAST_ENDED slot is independent.
        let bvt = b.txn_end(1, true).unwrap();
        assert_eq!(bvt.page_read_us, 7);
        assert_eq!(bvt.think_us, 3);
        assert_eq!(a.txn_vt(1).unwrap().lock_wait_us, 40);
        // a hasn't ended anything yet; b's entry is not visible to a.
        assert!(a.take_last_txn_vt().is_none());
        assert_eq!(b.take_last_txn_vt().unwrap().1.page_read_us, 7);

        // With b's frame gone, b's charges hit no frame (not a's).
        b.charge(CostKind::PageRead, 999);
        let avt = a.txn_end(1, false).unwrap();
        assert_eq!(avt.page_read_us, 100);
        assert_eq!(avt.lock_wait_us, 40);
        assert_eq!(a.take_last_txn_vt().unwrap().1.page_read_us, 100);
        // Run-wide clocks stay per-engine too.
        assert_eq!(a.vt().total_us(), 140);
        assert_eq!(b.vt().total_us(), 1009);
    }

    #[test]
    fn clones_of_one_engine_share_identity() {
        let a = Obs::default();
        let a2 = a.clone();
        a.txn_begin(5);
        a2.charge(CostKind::Think, 11); // clone charges the same frame
        assert_eq!(a2.current_txn(), 5);
        assert_eq!(a.txn_end(5, true).unwrap().think_us, 11);
        // The clone can take the last-ended entry the original wrote.
        assert_eq!(a2.take_last_txn_vt().unwrap().0, 5);
    }

    #[test]
    fn export_json_contains_timelines_and_histograms() {
        let obs = Obs::with_config(Some(&ObsConfig::default()));
        obs.txn_begin(1);
        obs.charge(CostKind::PageRead, 12);
        obs.txn_end(1, true);
        let json = obs.export_json("unit");
        assert!(json.contains("\"label\": \"unit\""));
        assert!(json.contains("\"txn\":1"));
        assert!(json.contains("\"outcome\":\"commit\""));
        assert!(json.contains("\"page_read_us\""));
        assert!(json.contains("\"histograms\""));
    }
}
