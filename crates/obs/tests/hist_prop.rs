//! Property tests for the log-scaled latency histograms: bucket bounds
//! sandwich their samples, merge behaves like recording both sample
//! sets into one histogram, counts are preserved, and percentiles are
//! monotone. A `proptest!` block covers the same ground where the real
//! proptest crate is available; the seed-loop tests below always run.

use xtc_obs::{bucket_bound, bucket_of, Histogram, HistogramSnapshot, BUCKETS};

/// Deterministic xorshift64* stream — no external RNG dependency.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A sample spanning many orders of magnitude: the shift spreads
    /// values across the full bucket range instead of clustering at the
    /// top buckets.
    fn sample(&mut self) -> u64 {
        let shift = (self.next() % 64) as u32;
        self.next() >> shift
    }
}

#[test]
fn bucket_bounds_sandwich_every_sample() {
    let mut rng = Prng(0x5EED_0001);
    for _ in 0..20_000 {
        let v = rng.sample();
        let b = bucket_of(v);
        assert!(b < BUCKETS, "bucket index in range for {v}");
        assert!(
            v <= bucket_bound(b),
            "sample {v} above its bucket bound {}",
            bucket_bound(b)
        );
        if b > 0 {
            assert!(
                v > bucket_bound(b - 1),
                "sample {v} not above the previous bound {}",
                bucket_bound(b - 1)
            );
        }
    }
    // Bounds themselves are strictly increasing.
    for b in 1..BUCKETS {
        assert!(bucket_bound(b) > bucket_bound(b - 1));
    }
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
}

#[test]
fn merge_equals_recording_both_sets() {
    for seed in 1..=20u64 {
        let mut rng = Prng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n_a = (rng.next() % 500) as usize;
        let n_b = (rng.next() % 500) as usize;
        let (a, b, both) = (Histogram::default(), Histogram::default(), Histogram::default());
        for _ in 0..n_a {
            let v = rng.sample();
            a.record(v);
            both.record(v);
        }
        for _ in 0..n_b {
            let v = rng.sample();
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(
            merged.buckets,
            both.snapshot().buckets,
            "seed {seed}: merge must equal recording both sample sets"
        );
        assert_eq!(merged.count(), (n_a + n_b) as u64, "seed {seed}: count preserved");
    }
}

#[test]
fn percentiles_are_monotone_and_bounded() {
    for seed in 1..=20u64 {
        let mut rng = Prng(seed.wrapping_mul(0xA076_1D64_78BD_642F));
        let mut h = HistogramSnapshot::new();
        let n = 1 + (rng.next() % 1000);
        let mut max = 0u64;
        for _ in 0..n {
            let v = rng.sample();
            h.record(v);
            max = max.max(v);
        }
        let ps = [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0];
        let mut prev = 0u64;
        for &p in &ps {
            let v = h.percentile(p);
            assert!(
                v >= prev,
                "seed {seed}: percentile({p}) = {v} below earlier percentile {prev}"
            );
            prev = v;
        }
        // Every percentile is a bucket upper bound at or above the true
        // maximum's bucket bound — never below the max's bucket.
        assert_eq!(
            h.percentile(100.0),
            bucket_bound(bucket_of(max)),
            "seed {seed}: p100 is the max sample's bucket bound"
        );
        assert!(h.max_bound() >= max, "seed {seed}");
    }
}

#[test]
fn empty_histogram_is_all_zeros() {
    let h = HistogramSnapshot::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.percentile(50.0), 0);
    assert_eq!(h.max_bound(), 0);
    let mut m = HistogramSnapshot::new();
    m.merge(&h);
    assert_eq!(m.count(), 0);
}

// With the real proptest crate (CI), the same properties run over
// generated inputs; the workspace's offline stub expands this block to
// nothing, which is fine — the seed loops above cover it locally.
mod generated {
    // Unused when the offline stub expands `proptest!` to nothing.
    #![allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn bucket_sandwich(v in any::<u64>()) {
            let b = bucket_of(v);
            prop_assert!(b < BUCKETS);
            prop_assert!(v <= bucket_bound(b));
            if b > 0 {
                prop_assert!(v > bucket_bound(b - 1));
            }
        }

        #[test]
        fn merge_matches_union(xs in proptest::collection::vec(any::<u64>(), 0..200),
                               ys in proptest::collection::vec(any::<u64>(), 0..200)) {
            let (a, b, both) = (Histogram::default(), Histogram::default(), Histogram::default());
            for &v in &xs { a.record(v); both.record(v); }
            for &v in &ys { b.record(v); both.record(v); }
            let mut merged = a.snapshot();
            merged.merge(&b.snapshot());
            prop_assert_eq!(merged.buckets, both.snapshot().buckets);
            prop_assert_eq!(merged.count(), (xs.len() + ys.len()) as u64);
        }

        #[test]
        fn percentile_monotone(xs in proptest::collection::vec(any::<u64>(), 1..300),
                               p in 0.0f64..100.0, q in 0.0f64..100.0) {
            let mut h = HistogramSnapshot::new();
            for &v in &xs { h.record(v); }
            let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
            prop_assert!(h.percentile(lo) <= h.percentile(hi));
        }
    }
}
