//! Structural fuzzer for the B\*-tree: after every mutation the tree's
//! physical invariants must hold — acyclic leaf chain consistent with the
//! logical content, every key reachable by descent, entry count accurate.
//!
//! Added after observing a (rare) structural corruption under the TaMix
//! workload; keeps the failure pinned down.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use xtc_storage::{BTree, BTreeConfig, StorageStats};

fn key(i: u32, wide: bool) -> Vec<u8> {
    if wide {
        // SPLID-ish: shared prefix + varying tail, variable length.
        format!("doc/prefix/{:04}/{}", i / 37, i).into_bytes()
    } else {
        format!("k{i:06}").into_bytes()
    }
}

fn check(t: &BTree, model: &BTreeMap<Vec<u8>, Vec<u8>>, step: usize) {
    assert_eq!(t.len(), model.len(), "step {step}: len");
    // Full forward scan must terminate and match the model exactly —
    // a cyclic or broken leaf chain fails here (or hangs, caught by the
    // test timeout).
    let all = t.scan_range(&[], &[0xFF; 40]);
    assert_eq!(all.len(), model.len(), "step {step}: scan length");
    for ((gk, gv), (mk, mv)) in all.iter().zip(model.iter()) {
        assert_eq!(gk, mk, "step {step}: key order");
        assert_eq!(gv, mv, "step {step}: value");
    }
    // Point lookups by descent.
    for (k, v) in model.iter().take(64) {
        assert_eq!(t.get(k).as_ref(), Some(v), "step {step}: get");
    }
    // Backward iteration via prev_before.
    let mut cur = vec![0xFFu8; 40];
    let mut seen = 0;
    while let Some((k, _)) = t.prev_before(&cur) {
        seen += 1;
        assert!(seen <= model.len(), "step {step}: backward cycle");
        cur = k;
    }
    assert_eq!(seen, model.len(), "step {step}: backward count");
}

fn run_fuzz(seed: u64, page_size: usize, ops: usize, check_every: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let t = BTree::with_config(
        BTreeConfig {
            page_size,
            max_key: 64,
            ..BTreeConfig::default()
        },
        StorageStats::default(),
    );
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let wide = seed.is_multiple_of(2);
    let key_space = 4000u32;
    for step in 0..ops {
        match rng.random_range(0..10) {
            0..=4 => {
                let k = key(rng.random_range(0..key_space), wide);
                let vlen = rng.random_range(0..(page_size / 8));
                let v = vec![rng.random::<u8>(); vlen];
                assert_eq!(
                    t.insert(&k, &v).unwrap(),
                    model.insert(k, v),
                    "step {step}"
                );
            }
            5..=6 => {
                let k = key(rng.random_range(0..key_space), wide);
                assert_eq!(t.remove(&k), model.remove(&k), "step {step}");
            }
            7..=8 => {
                // Range delete (the subtree-deletion path).
                let a = rng.random_range(0..key_space);
                let b = (a + rng.random_range(0..200)).min(key_space);
                let (lo, hi) = (key(a, wide), key(b, wide));
                if lo >= hi {
                    // Wide keys sort lexicographically, not numerically;
                    // an inverted/empty range must remove nothing.
                    assert_eq!(t.remove_range(&lo, &hi), 0, "step {step}");
                    continue;
                }
                let removed = t.remove_range(&lo, &hi);
                let doomed: Vec<Vec<u8>> = model
                    .range::<Vec<u8>, _>((
                        std::ops::Bound::Excluded(lo.clone()),
                        std::ops::Bound::Excluded(hi.clone()),
                    ))
                    .map(|(k, _)| k.clone())
                    .collect();
                assert_eq!(removed, doomed.len(), "step {step}: range delete count");
                for k in doomed {
                    model.remove(&k);
                }
            }
            _ => {
                // Value overwrite with a bigger value (rebuild path).
                if let Some(k) = model.keys().nth(rng.random_range(0..model.len().max(1)).min(model.len().saturating_sub(1))).cloned() {
                    let v = vec![0xAB; rng.random_range(0..(page_size / 6))];
                    assert_eq!(t.insert(&k, &v).unwrap(), model.insert(k, v), "step {step}");
                }
            }
        }
        if step % check_every == 0 {
            check(&t, &model, step);
        }
    }
    check(&t, &model, ops);
}

#[test]
fn fuzz_small_pages() {
    for seed in 0..6 {
        run_fuzz(seed, 512, 6000, 250);
    }
}

#[test]
fn fuzz_default_pages() {
    for seed in 6..10 {
        run_fuzz(seed, 8192, 8000, 500);
    }
}

#[test]
fn fuzz_medium_pages_heavy_ranges() {
    for seed in 10..14 {
        run_fuzz(seed, 2048, 8000, 400);
    }
}
