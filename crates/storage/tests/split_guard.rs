//! Split-guard regressions for the front-coded leaf format.
//!
//! A leaf split (and, since deletes rebuild restart positions, a delete)
//! re-encodes both halves; the first key of the right half always becomes
//! a restart point storing the *full* key. With adversarial key shapes the
//! naive midpoint split therefore inflates a half past page capacity —
//! `choose_split` must probe for a cut where BOTH halves fit, and the
//! rebuild asserts catch any miss by panicking. These tests drive the
//! shapes that historically broke the guard; passing means no panic and
//! exact model agreement.

use std::collections::BTreeMap;
use xtc_storage::{BTree, BTreeConfig, StorageStats};

fn tree(page_size: usize) -> BTree {
    BTree::with_config(
        BTreeConfig {
            page_size,
            max_key: 96,
            ..BTreeConfig::default()
        },
        StorageStats::default(),
    )
}

fn check(t: &BTree, model: &BTreeMap<Vec<u8>, Vec<u8>>, ctx: &str) {
    assert_eq!(t.len(), model.len(), "{ctx}: len");
    let all = t.scan_range(&[], &[0xFF; 100]);
    assert_eq!(all.len(), model.len(), "{ctx}: scan length");
    for ((gk, gv), (mk, mv)) in all.iter().zip(model.iter()) {
        assert_eq!(gk, mk, "{ctx}: key order");
        assert_eq!(gv, mv, "{ctx}: value");
    }
    let rep = t.occupancy();
    assert!(
        rep.occupancy() <= 1.0 + f64::EPSILON,
        "{ctx}: a leaf exceeds capacity (occupancy {:.3})",
        rep.occupancy()
    );
}

fn exercise(keys: Vec<Vec<u8>>, page_size: usize, ctx: &str) {
    // Insert in given order, then delete every third key from the middle
    // out — interior removals shift restart positions and may split.
    let t = tree(page_size);
    let mut model = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        let v = vec![(i % 251) as u8; i % 23];
        assert_eq!(
            t.insert(k, &v).unwrap(),
            model.insert(k.clone(), v),
            "{ctx}: insert {i}"
        );
    }
    check(&t, &model, &format!("{ctx}: after inserts"));
    let doomed: Vec<Vec<u8>> = model.keys().step_by(3).cloned().collect();
    for (i, k) in doomed.iter().enumerate() {
        assert_eq!(t.remove(k), model.remove(k), "{ctx}: delete {i}");
        if i % 16 == 0 {
            check(&t, &model, &format!("{ctx}: during deletes ({i})"));
        }
    }
    check(&t, &model, &format!("{ctx}: after deletes"));
}

/// Long shared stem, divergence only in the tail: every restart key is
/// near `max_key` long while front-coded slots are tiny — the shape with
/// the widest gap between "fits front-coded" and "fits re-encoded".
fn stem_keys(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("shared/stem/that/is/rather/long/and/identical/{i:05}").into_bytes())
        .collect()
}

/// Pseudo-random incompressible keys: front coding saves nothing, so
/// every slot is as large as a restart — splits must still balance.
fn noise_keys(n: usize) -> Vec<Vec<u8>> {
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let len = 8 + (x % 56) as usize;
            (0..len).map(|j| (x >> (j % 57)) as u8 | 1).collect()
        })
        .collect()
}

/// Alternating tiny and near-max keys: the preferred midpoint regularly
/// lands where promoting the next key to a restart blows the right half.
fn sawtooth_keys(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                format!("s{i:04}").into_bytes()
            } else {
                let mut k = vec![b'L'; 80];
                k.extend_from_slice(format!("{i:08}").as_bytes());
                k
            }
        })
        .collect()
}

#[test]
fn shared_stem_splits_fit_both_halves() {
    for &page in &[512usize, 1024] {
        exercise(stem_keys(900), page, &format!("stem/{page}/forward"));
        let mut rev = stem_keys(900);
        rev.reverse();
        exercise(rev, page, &format!("stem/{page}/reverse"));
    }
}

#[test]
fn incompressible_keys_split_cleanly() {
    for &page in &[512usize, 2048] {
        exercise(noise_keys(700), page, &format!("noise/{page}"));
    }
}

#[test]
fn sawtooth_keys_split_cleanly() {
    // Small pages hold only a handful of the long keys, so nearly every
    // split decision is near the infeasible edge.
    for &page in &[512usize, 1024] {
        exercise(sawtooth_keys(600), page, &format!("sawtooth/{page}"));
        let mut rev = sawtooth_keys(600);
        rev.reverse();
        exercise(rev, page, &format!("sawtooth/{page}/reverse"));
    }
}

#[test]
fn interleaved_insert_order_forces_interior_rebuilds() {
    // Even/odd interleave: every insert after the first pass lands in the
    // middle of a page, so the append fast path never hides rebuild bugs.
    let base = stem_keys(800);
    let mut order: Vec<Vec<u8>> = base.iter().step_by(2).cloned().collect();
    order.extend(base.iter().skip(1).step_by(2).cloned());
    exercise(order, 512, "interleaved/stem");

    let base = sawtooth_keys(500);
    let mut order: Vec<Vec<u8>> = base.iter().step_by(2).cloned().collect();
    order.extend(base.iter().skip(1).step_by(2).cloned());
    exercise(order, 1024, "interleaved/sawtooth");
}

#[test]
fn delete_induced_splits_keep_pages_within_capacity() {
    // Regression: with positional restarts (slot % interval), removing an
    // interior slot shifts later keys onto restart positions; re-encoding
    // them as full keys can overflow a page that was legally full before
    // the delete. Deletes must therefore be split-capable. Build full
    // pages of compressible keys, then delete ONLY interior keys.
    let t = tree(512);
    let mut model = BTreeMap::new();
    for k in stem_keys(1200) {
        let v = vec![0u8; 4];
        t.insert(&k, &v).unwrap();
        model.insert(k, v);
    }
    check(&t, &model, "delete-split: after fill");
    // Delete a dense run from the middle, one by one (not remove_range,
    // which frees whole pages) — each removal rebuilds a full page.
    let middle: Vec<Vec<u8>> = model.keys().skip(400).take(400).cloned().collect();
    for (i, k) in middle.iter().enumerate() {
        assert_eq!(t.remove(k), model.remove(k), "delete-split: {i}");
        if i % 25 == 0 {
            check(&t, &model, &format!("delete-split: during ({i})"));
        }
    }
    check(&t, &model, "delete-split: after");
}
