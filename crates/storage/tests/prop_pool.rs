//! Property test: LRU-2 buffer-manager coherence under randomized access
//! patterns (ISSUE 9, satellite 3).
//!
//! Seeded op sequences (alloc/free/read/write/pin/unpin/flush) against a
//! tightly budgeted pool must preserve the eviction-queue invariants —
//! no page on both the real and the ghost queue, pinned pages never
//! evicted, the resident counter exact — while page bytes survive
//! eviction and pinned pages always hit. Driven by a hand-rolled
//! deterministic generator rather than `proptest!` so the cases run (and
//! shrink by seed) in the offline build.

use std::collections::HashMap;
use xtc_storage::{EvictPolicy, PagePool, PoolConfig, StorageStats};

/// xorshift64*: deterministic op generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn run_case(seed: u64) {
    let mut rng = Rng(seed | 1);
    let correlated = rng.below(32);
    let stats = StorageStats::default();
    let mut pool = PagePool::with_config(
        PoolConfig {
            page_size: 64,
            max_resident: Some(4),
            policy: EvictPolicy::Lru2 {
                correlated_ticks: correlated,
            },
            ..PoolConfig::default()
        },
        stats.clone(),
    );
    // Model: live pages, their first byte, and our pin counts.
    let mut live: Vec<u32> = Vec::new();
    let mut bytes: HashMap<u32, u8> = HashMap::new();
    let mut pins: HashMap<u32, u32> = HashMap::new();
    let mut lsn = 0u64;
    let ops = 100 + rng.below(300);
    for step in 0..ops {
        let ctx = || format!("seed {seed} step {step} correlated {correlated}");
        match rng.below(18) {
            // Alloc (weight 3)
            0..=2 => {
                let id = pool.alloc();
                live.push(id);
                bytes.insert(id, 0);
                pins.insert(id, 0);
            }
            // Free (weight 1) — only unpinned pages (the B-tree's contract)
            3 if !live.is_empty() => {
                let i = rng.below(live.len() as u64) as usize;
                let id = live[i];
                if pins[&id] == 0 {
                    live.swap_remove(i);
                    bytes.remove(&id);
                    pins.remove(&id);
                    pool.free(id);
                }
            }
            // Read (weight 6)
            4..=9 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                let pinned = pins[&id] > 0;
                let misses_before = pool.pool_stats().misses;
                let data = pool.read(id);
                assert_eq!(data[0], bytes[&id], "page {id} bytes ({})", ctx());
                if pinned {
                    assert_eq!(
                        pool.pool_stats().misses,
                        misses_before,
                        "pinned page {id} was evicted ({})",
                        ctx()
                    );
                }
            }
            // Write (weight 5)
            10..=14 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                let b = rng.next() as u8;
                lsn += 1;
                stats.set_current_lsn(lsn);
                pool.write(id)[0] = b;
                bytes.insert(id, b);
            }
            // Pin (weight 1) — resident pages only, at most 2 pins so the
            // tiny budget keeps victims available
            15 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                if pins[&id] < 2 {
                    let _ = pool.read(id);
                    pool.pin(id);
                    *pins.get_mut(&id).unwrap() += 1;
                }
            }
            // Unpin (weight 1)
            16 if !live.is_empty() => {
                let id = live[rng.below(live.len() as u64) as usize];
                if pins[&id] > 0 {
                    pool.unpin(id);
                    *pins.get_mut(&id).unwrap() -= 1;
                }
            }
            // Flush (weight 1): publish durability, then write back —
            // also arms the forced-writeback path for later evictions.
            17 => {
                stats.set_durable_lsn(lsn);
                pool.flush_dirty(lsn);
            }
            _ => {} // op against an empty pool: skip
        }
        if let Err(why) = pool.debug_check_coherence() {
            panic!("{why} ({})", ctx());
        }
        let ps = pool.pool_stats();
        // Hits count once per uncorrelated burst, misses once per
        // fault-in — never more than one count per access.
        assert!(
            ps.hits + ps.misses <= stats.page_reads() + stats.page_writes(),
            "hit/miss accounting drifted: {ps:?} ({})",
            ctx()
        );
        // Ghost recalls only consume remembered evictions.
        assert!(ps.ghost_hits <= ps.evictions, "{ps:?} ({})", ctx());
        assert!(ps.resident <= ps.live, "{ps:?} ({})", ctx());
    }
    // Final sweep: all live bytes intact (eviction lost nothing).
    for &id in &live {
        assert_eq!(pool.read(id)[0], bytes[&id], "seed {seed} final sweep");
    }
}

#[test]
fn lru2_queues_stay_coherent_across_seeds() {
    for seed in 0..64u64 {
        run_case(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(seed + 1));
    }
}

#[test]
fn lru2_scan_workload_keeps_hot_set_resident_across_seeds() {
    // Randomized variant of the scan-resistance unit test: a hot set
    // re-referenced in uncorrelated bursts survives arbitrary-length
    // single-touch scans, for every seed.
    for seed in 1..32u64 {
        let mut rng = Rng(seed.wrapping_mul(0xD134_2543_DE82_EF95) | 1);
        let stats = StorageStats::default();
        let mut pool = PagePool::with_config(
            PoolConfig {
                page_size: 64,
                max_resident: Some(8),
                policy: EvictPolicy::Lru2 { correlated_ticks: 0 },
                ..PoolConfig::default()
            },
            stats.clone(),
        );
        let hot: Vec<u32> = (0..3).map(|_| pool.alloc()).collect();
        for &h in &hot {
            let _ = pool.read(h); // second uncorrelated reference
        }
        let scan_len = 6 + rng.below(40);
        for _ in 0..scan_len {
            let _ = pool.alloc(); // once-referenced scan page
        }
        let misses_before = pool.pool_stats().misses;
        for &h in &hot {
            let _ = pool.read(h);
        }
        assert_eq!(
            pool.pool_stats().misses,
            misses_before,
            "seed {seed}: scan of {scan_len} pages displaced the hot set"
        );
        pool.debug_check_coherence().unwrap();
    }
}
