//! Property test: the B*-tree behaves like a `BTreeMap` under arbitrary
//! operation sequences with SPLID-shaped keys.
//!
//! Driven by a hand-rolled deterministic generator rather than
//! `proptest!` so the cases run (and reproduce by seed) in the offline
//! build — the in-repo proptest stub expands `proptest!` to nothing.

use std::collections::BTreeMap;
use std::ops::Bound;
use xtc_splid::{encode, LabelAllocator, SplId};
use xtc_storage::{BTree, BTreeConfig, StorageStats};

/// xorshift64*: deterministic op generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A pool of SPLID-encoded keys: sequential children of the root with
/// nested children — the shape real document keys have.
fn key_pool() -> Vec<Vec<u8>> {
    let alloc = LabelAllocator::new(2);
    let root = SplId::root();
    let mut keys = Vec::new();
    let mut cur = alloc.first_child(&root);
    for _ in 0..40 {
        keys.push(encode(&cur));
        let mut child = alloc.first_child(&cur);
        for _ in 0..9 {
            keys.push(encode(&child));
            child = alloc.next_sibling(&child).unwrap();
        }
        cur = alloc.next_sibling(&cur).unwrap();
    }
    keys
}

#[test]
fn btree_matches_model() {
    let keys = key_pool();
    for case in 0..64u64 {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (case.wrapping_mul(0x0101_0101)));
        let tree = BTree::with_config(
            BTreeConfig { page_size: 256, max_key: 64, ..BTreeConfig::default() },
            StorageStats::default(),
        );
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let ops = 1 + rng.below(299);
        for _ in 0..ops {
            match rng.below(5) {
                0..=2 => {
                    let k = &keys[rng.below(keys.len() as u64) as usize];
                    let v: Vec<u8> = (0..rng.below(24)).map(|_| rng.next() as u8).collect();
                    let a = tree.insert(k, &v).unwrap();
                    let b = model.insert(k.clone(), v);
                    assert_eq!(a, b, "insert result diverged (case {case})");
                }
                3 => {
                    let k = &keys[rng.below(keys.len() as u64) as usize];
                    assert_eq!(tree.remove(k), model.remove(k), "remove diverged (case {case})");
                }
                _ => {
                    let got = tree.scan_range(&[], &[0xFF; 8]);
                    let want: Vec<_> =
                        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                    assert_eq!(got, want, "full scan diverged (case {case})");
                }
            }
        }
        assert_eq!(tree.len(), model.len(), "len diverged (case {case})");
        // next_after / prev_before agree with the model at every key.
        for k in &keys {
            let got = tree.next_after(k);
            let want = model
                .range::<Vec<u8>, _>((Bound::Excluded(k.clone()), Bound::Unbounded))
                .next()
                .map(|(k, v)| (k.clone(), v.clone()));
            assert_eq!(got, want, "next_after diverged (case {case})");
            let got = tree.prev_before(k);
            let want = model
                .range::<Vec<u8>, _>((Bound::Unbounded, Bound::Excluded(k.clone())))
                .next_back()
                .map(|(k, v)| (k.clone(), v.clone()));
            assert_eq!(got, want, "prev_before diverged (case {case})");
        }
    }
}
