//! Property test: the B*-tree behaves like a `BTreeMap` under arbitrary
//! operation sequences with SPLID-shaped keys.

use proptest::prelude::*;
use std::collections::BTreeMap;
use xtc_splid::{encode, LabelAllocator, SplId};
use xtc_storage::{BTree, BTreeConfig, StorageStats};

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, Vec<u8>),
    Remove(usize),
    ScanAll,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..400, prop::collection::vec(any::<u8>(), 0..24))
                .prop_map(|(k, v)| Op::Insert(k, v)),
            (0usize..400).prop_map(Op::Remove),
            Just(Op::ScanAll),
        ],
        1..300,
    )
}

/// A pool of SPLID-encoded keys: sequential children of the root with
/// nested children — the shape real document keys have.
fn key_pool() -> Vec<Vec<u8>> {
    let alloc = LabelAllocator::new(2);
    let root = SplId::root();
    let mut keys = Vec::new();
    let mut cur = alloc.first_child(&root);
    for _ in 0..40 {
        keys.push(encode(&cur));
        let mut child = alloc.first_child(&cur);
        for _ in 0..9 {
            keys.push(encode(&child));
            child = alloc.next_sibling(&child).unwrap();
        }
        cur = alloc.next_sibling(&cur).unwrap();
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn btree_matches_model(ops in arb_ops()) {
        let keys = key_pool();
        let tree = BTree::with_config(
            BTreeConfig { page_size: 256, max_key: 64, ..BTreeConfig::default() },
            StorageStats::default(),
        );
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let k = &keys[k % keys.len()];
                    let a = tree.insert(k, &v).unwrap();
                    let b = model.insert(k.clone(), v);
                    prop_assert_eq!(a, b);
                }
                Op::Remove(k) => {
                    let k = &keys[k % keys.len()];
                    prop_assert_eq!(tree.remove(k), model.remove(k));
                }
                Op::ScanAll => {
                    let got = tree.scan_range(&[], &[0xFF; 8]);
                    let want: Vec<_> = model.iter()
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(tree.len(), model.len());
        // next_after / prev_before agree with the model at every key.
        for k in &keys {
            let got = tree.next_after(k);
            let want = model.range::<Vec<u8>, _>((
                std::ops::Bound::Excluded(k.clone()),
                std::ops::Bound::Unbounded,
            )).next().map(|(k, v)| (k.clone(), v.clone()));
            prop_assert_eq!(got, want);
            let got = tree.prev_before(k);
            let want = model.range::<Vec<u8>, _>((
                std::ops::Bound::Unbounded,
                std::ops::Bound::Excluded(k.clone()),
            )).next_back().map(|(k, v)| (k.clone(), v.clone()));
            prop_assert_eq!(got, want);
        }
    }
}
