//! Slotted-page layout for B*-tree nodes, with **front-coded leaves**.
//!
//! Two page kinds share a common header:
//!
//! ```text
//! offset  size  field
//! 0       1     page type (1 = leaf, 2 = inner)
//! 1       2     cell count (u16 LE)
//! 3       2     cell area start: lowest cell offset (u16 LE)
//! 5       4     leaf: next-leaf page id / inner: leftmost child (u32 LE)
//! 9       4     leaf: previous-leaf page id (u32 LE)
//! 13      —     slot array (u16 offsets); cells grow down from the end.
//! ```
//!
//! Leaf cell:  `[shared u8][suffix_len u8][val_len u16][key suffix][value]`
//! Inner cell: `[key_len u16][key][child u32]`
//!
//! Leaves use *front coding* (restart-point incremental encoding): each
//! cell stores only the bytes of its key that differ from the previous
//! slot's key — `shared` is the length of the common prefix with the
//! predecessor, `suffix` the distinct tail. Every
//! [`RESTART_INTERVAL`]-th slot is a *restart point* holding its full key
//! (`shared == 0`), so binary search runs over the restart keys and then
//! decodes at most one interval linearly. Restart positions are implicit
//! (slot index divisible by the interval) — the slot array doubles as the
//! restart array, and no separate offset list is needed.
//!
//! Consecutive SPLIDs in document order differ almost only in their final
//! division, so per-key front coding is what delivers the paper's §3.2
//! "2–3 bytes per stored SPLID" — a page-wide common prefix cannot, since
//! one divergent key on the page destroys the whole saving.
//!
//! Mutation rules keeping the restart invariant cheap:
//!
//! * appends (`leaf_append`) and tail removals extend/shrink the slot
//!   array in place — document-order builds never rebuild;
//! * value replacement reuses the cell when the new value fits;
//! * any other insert or removal re-encodes the page from its entries
//!   (`leaf_rebuild`), which also compacts dead cell space.

use crate::pool::PageId;
use std::cmp::Ordering;
use xtc_splid::common_prefix_len;

pub const HEADER: usize = 13;
pub const TYPE_LEAF: u8 = 1;
pub const TYPE_INNER: u8 = 2;

/// Every `RESTART_INTERVAL`-th leaf slot stores its full key. Smaller
/// intervals cost stored bytes, larger ones lengthen the linear decode in
/// searches; 16 keeps both at a few percent (see DESIGN.md, storage).
pub const RESTART_INTERVAL: usize = 16;

// ---- header accessors ------------------------------------------------

pub fn page_type(p: &[u8]) -> u8 {
    p[0]
}

pub fn count(p: &[u8]) -> usize {
    u16::from_le_bytes([p[1], p[2]]) as usize
}

fn set_count(p: &mut [u8], n: usize) {
    p[1..3].copy_from_slice(&(n as u16).to_le_bytes());
}

fn cell_start(p: &[u8]) -> usize {
    u16::from_le_bytes([p[3], p[4]]) as usize
}

fn set_cell_start(p: &mut [u8], off: usize) {
    p[3..5].copy_from_slice(&(off as u16).to_le_bytes());
}

/// Leaf: next leaf in the chain. Inner: leftmost child.
pub fn link(p: &[u8]) -> PageId {
    u32::from_le_bytes([p[5], p[6], p[7], p[8]])
}

pub fn set_link(p: &mut [u8], id: PageId) {
    p[5..9].copy_from_slice(&id.to_le_bytes());
}

/// Leaf: previous leaf in the chain.
pub fn prev_link(p: &[u8]) -> PageId {
    u32::from_le_bytes([p[9], p[10], p[11], p[12]])
}

pub fn set_prev_link(p: &mut [u8], id: PageId) {
    p[9..13].copy_from_slice(&id.to_le_bytes());
}

fn slot(p: &[u8], i: usize) -> usize {
    let off = HEADER + i * 2;
    u16::from_le_bytes([p[off], p[off + 1]]) as usize
}

fn set_slot(p: &mut [u8], i: usize, cell: usize) {
    let off = HEADER + i * 2;
    p[off..off + 2].copy_from_slice(&(cell as u16).to_le_bytes());
}

/// Free bytes between the slot array and the cell area.
pub fn free_space(p: &[u8]) -> usize {
    cell_start(p) - (HEADER + count(p) * 2)
}

/// Bytes of payload currently stored (cells + slots + header) — used for
/// occupancy reporting.
pub fn used_bytes(p: &[u8]) -> usize {
    p.len() - free_space(p)
}

// ---- leaf pages --------------------------------------------------------

pub fn init_leaf(p: &mut [u8], next: PageId, prev: PageId) {
    let len = p.len();
    p[0] = TYPE_LEAF;
    set_count(p, 0);
    set_cell_start(p, len);
    set_link(p, next);
    set_prev_link(p, prev);
}

/// Front-coding parts of leaf cell `i`: bytes shared with the previous
/// slot's key, and the distinct suffix. Restart slots have `shared == 0`
/// and carry the full key as their suffix.
pub fn leaf_suffix_parts(p: &[u8], i: usize) -> (usize, &[u8]) {
    let off = slot(p, i);
    let shared = p[off] as usize;
    let slen = p[off + 1] as usize;
    (shared, &p[off + 4..off + 4 + slen])
}

/// Value of leaf cell `i`.
pub fn leaf_val(p: &[u8], i: usize) -> &[u8] {
    let off = slot(p, i);
    let slen = p[off + 1] as usize;
    let vlen = u16::from_le_bytes([p[off + 2], p[off + 3]]) as usize;
    &p[off + 4 + slen..off + 4 + slen + vlen]
}

/// Full key of leaf cell `i`, reconstructed from the covering restart
/// point (at most [`RESTART_INTERVAL`] incremental steps).
pub fn leaf_key(p: &[u8], i: usize) -> Vec<u8> {
    let restart = i - i % RESTART_INTERVAL;
    let mut key = Vec::new();
    for j in restart..=i {
        let (shared, suffix) = leaf_suffix_parts(p, j);
        key.truncate(shared);
        key.extend_from_slice(suffix);
    }
    key
}

/// Binary search in a leaf: `Ok(i)` if `key` is at slot `i`, `Err(i)` for
/// the insertion position. Searches the restart keys (full keys, direct
/// slice compare), then decodes one restart interval incrementally.
pub fn leaf_search(p: &[u8], key: &[u8]) -> Result<usize, usize> {
    let n = count(p);
    if n == 0 {
        return Err(0);
    }
    // First restart whose full key is strictly greater than `key`.
    let restarts = n.div_ceil(RESTART_INTERVAL);
    let mut lo = 0usize;
    let mut hi = restarts;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (_, full) = leaf_suffix_parts(p, mid * RESTART_INTERVAL);
        if full <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        return Err(0); // key sorts before the first key on the page
    }
    let start = (lo - 1) * RESTART_INTERVAL;
    let end = (start + RESTART_INTERVAL).min(n);
    let mut cur = Vec::new();
    for i in start..end {
        let (shared, suffix) = leaf_suffix_parts(p, i);
        cur.truncate(shared);
        cur.extend_from_slice(suffix);
        match cur.as_slice().cmp(key) {
            Ordering::Equal => return Ok(i),
            Ordering::Greater => return Err(i),
            Ordering::Less => {}
        }
    }
    Err(end)
}

/// Streams `(slot, full key, value)` from slot `start` to the end of the
/// page, decoding keys incrementally; stop early by returning `false`.
pub fn leaf_for_each_from(p: &[u8], start: usize, mut f: impl FnMut(usize, &[u8], &[u8]) -> bool) {
    let n = count(p);
    if start >= n {
        return;
    }
    let mut cur = leaf_key(p, start);
    if !f(start, &cur, leaf_val(p, start)) {
        return;
    }
    for i in start + 1..n {
        let (shared, suffix) = leaf_suffix_parts(p, i);
        cur.truncate(shared);
        cur.extend_from_slice(suffix);
        if !f(i, &cur, leaf_val(p, i)) {
            return;
        }
    }
}

/// Physically stored vs logical (uncompressed) key bytes on a leaf — the
/// `OccupancyReport` inputs behind the §3.2 "2–3 bytes per SPLID" claim.
pub fn leaf_key_byte_stats(p: &[u8]) -> (usize, usize) {
    let mut stored = 0;
    let mut logical = 0;
    leaf_for_each_from(p, 0, |i, key, _| {
        let (_, suffix) = leaf_suffix_parts(p, i);
        stored += suffix.len();
        logical += key.len();
        true
    });
    (stored, logical)
}

fn front_coded_shared(i: usize, prev_key: &[u8], key: &[u8]) -> usize {
    if i.is_multiple_of(RESTART_INTERVAL) {
        0
    } else {
        common_prefix_len(prev_key, key)
    }
}

/// Whether appending `key`/`val` after the current last slot fits in
/// place. Returns the required cell size on success. (Caller guarantees
/// `key` sorts after every key on the page.)
pub fn leaf_append_fits(p: &[u8], key: &[u8], val: &[u8]) -> Option<usize> {
    let n = count(p);
    let shared = if n == 0 || n.is_multiple_of(RESTART_INTERVAL) {
        0
    } else {
        common_prefix_len(&leaf_key(p, n - 1), key)
    };
    let cell = 4 + (key.len() - shared) + val.len();
    if free_space(p) >= cell + 2 {
        Some(cell)
    } else {
        None
    }
}

/// In-place append after the last slot (caller checked
/// [`leaf_append_fits`]). The document-order build fast path: positions
/// never shift, so restart points stay put.
pub fn leaf_append(p: &mut [u8], key: &[u8], val: &[u8]) {
    let n = count(p);
    let shared = if n == 0 || n.is_multiple_of(RESTART_INTERVAL) {
        0
    } else {
        common_prefix_len(&leaf_key(p, n - 1), key)
    };
    debug_assert!(!n.is_multiple_of(RESTART_INTERVAL) || shared == 0);
    push_cell(p, n, shared, &key[shared..], val);
}

/// Writes a cell for slot `i` (which must be the current count) into the
/// cell area and appends its slot.
fn push_cell(p: &mut [u8], i: usize, shared: usize, suffix: &[u8], val: &[u8]) {
    debug_assert!(shared <= u8::MAX as usize && suffix.len() <= u8::MAX as usize);
    let cell = 4 + suffix.len() + val.len();
    let off = cell_start(p) - cell;
    p[off] = shared as u8;
    p[off + 1] = suffix.len() as u8;
    p[off + 2..off + 4].copy_from_slice(&(val.len() as u16).to_le_bytes());
    p[off + 4..off + 4 + suffix.len()].copy_from_slice(suffix);
    p[off + 4 + suffix.len()..off + cell].copy_from_slice(val);
    set_cell_start(p, off);
    set_count(p, i + 1);
    set_slot(p, i, off);
}

/// Replaces the value of slot `i` in place when the new value fits in the
/// old cell footprint; returns false otherwise (caller rebuilds). Keys
/// and positions are untouched, so the front coding stays valid.
pub fn leaf_replace_val_at(p: &mut [u8], i: usize, val: &[u8]) -> bool {
    let off = slot(p, i);
    let slen = p[off + 1] as usize;
    let vlen = u16::from_le_bytes([p[off + 2], p[off + 3]]) as usize;
    if val.len() > vlen {
        return false;
    }
    p[off + 2..off + 4].copy_from_slice(&(val.len() as u16).to_le_bytes());
    p[off + 4 + slen..off + 4 + slen + val.len()].copy_from_slice(val);
    true
}

/// Removes slot `i`. Removing the last slot is O(1); any other removal
/// re-encodes the page (the successor's front coding and every later
/// restart position depend on slot indexes), which also compacts dead
/// cell space.
pub fn leaf_remove_at(p: &mut [u8], i: usize) {
    let n = count(p);
    if i == n - 1 {
        set_count(p, n - 1);
        return;
    }
    let mut entries = leaf_entries(p);
    entries.remove(i);
    let (next, prev) = (link(p), prev_link(p));
    leaf_rebuild(p, &entries, next, prev);
}

/// Decodes all (full key, value) pairs of a leaf in one sequential pass.
pub fn leaf_entries(p: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut out = Vec::with_capacity(count(p));
    leaf_for_each_from(p, 0, |_, k, v| {
        out.push((k.to_vec(), v.to_vec()));
        true
    });
    out
}

/// Rebuilds a leaf from sorted entries with fresh front coding and
/// restart points. Caller guarantees the entries fit
/// (see [`leaf_build_size`]).
pub fn leaf_rebuild(p: &mut [u8], entries: &[(Vec<u8>, Vec<u8>)], next: PageId, prev: PageId) {
    init_leaf(p, next, prev);
    for (i, (k, v)) in entries.iter().enumerate() {
        let shared = front_coded_shared(i, if i == 0 { &[] } else { &entries[i - 1].0 }, k);
        debug_assert!(
            free_space(p) >= 2 + 4 + (k.len() - shared) + v.len(),
            "rebuild overflow"
        );
        push_cell(p, i, shared, &k[shared..], v);
    }
}

/// Bytes a rebuilt leaf would occupy for these entries (header + slots +
/// front-coded cells).
pub fn leaf_build_size(entries: &[(Vec<u8>, Vec<u8>)]) -> usize {
    let mut size = HEADER;
    for (i, (k, v)) in entries.iter().enumerate() {
        let shared = front_coded_shared(i, if i == 0 { &[] } else { &entries[i - 1].0 }, k);
        size += 2 + 4 + (k.len() - shared) + v.len();
    }
    size
}

// ---- inner pages -------------------------------------------------------

pub fn init_inner(p: &mut [u8], leftmost: PageId) {
    let len = p.len();
    p[0] = TYPE_INNER;
    set_count(p, 0);
    set_cell_start(p, len);
    set_link(p, leftmost);
    set_prev_link(p, 0);
}

/// Separator key and right-child of inner cell `i`.
pub fn inner_cell(p: &[u8], i: usize) -> (&[u8], PageId) {
    let off = slot(p, i);
    let klen = u16::from_le_bytes([p[off], p[off + 1]]) as usize;
    let key = &p[off + 2..off + 2 + klen];
    let c = off + 2 + klen;
    let child = u32::from_le_bytes([p[c], p[c + 1], p[c + 2], p[c + 3]]);
    (key, child)
}

/// Child page to descend into for `key`: the child of the greatest
/// separator `<= key`, or the leftmost child. Returns (child, separator
/// slot index or None for leftmost).
pub fn inner_descend(p: &[u8], key: &[u8]) -> (PageId, Option<usize>) {
    let n = count(p);
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (sep, _) = inner_cell(p, mid);
        if sep <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo == 0 {
        (link(p), None)
    } else {
        (inner_cell(p, lo - 1).1, Some(lo - 1))
    }
}

/// Whether a separator insert fits.
pub fn inner_fits(p: &[u8], key: &[u8]) -> bool {
    free_space(p) >= 2 + 2 + key.len() + 4
}

/// Inserts separator `key` → `child` keeping separator order.
pub fn inner_insert(p: &mut [u8], key: &[u8], child: PageId) {
    let n = count(p);
    let mut i = 0;
    while i < n && inner_cell(p, i).0 < key {
        i += 1;
    }
    let cell = 2 + key.len() + 4;
    let off = cell_start(p) - cell;
    p[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
    p[off + 2..off + 2 + key.len()].copy_from_slice(key);
    p[off + 2 + key.len()..off + cell].copy_from_slice(&child.to_le_bytes());
    set_cell_start(p, off);
    p.copy_within(HEADER + i * 2..HEADER + n * 2, HEADER + i * 2 + 2);
    set_count(p, n + 1);
    set_slot(p, i, off);
}

/// Removes separator slot `i`.
pub fn inner_remove_at(p: &mut [u8], i: usize) {
    let n = count(p);
    p.copy_within(HEADER + (i + 1) * 2..HEADER + n * 2, HEADER + i * 2);
    set_count(p, n - 1);
}

/// All (separator, child) pairs.
pub fn inner_entries(p: &[u8]) -> Vec<(Vec<u8>, PageId)> {
    (0..count(p))
        .map(|i| {
            let (k, c) = inner_cell(p, i);
            (k.to_vec(), c)
        })
        .collect()
}

/// Rebuilds an inner page from a leftmost child and sorted separators.
pub fn inner_rebuild(p: &mut [u8], leftmost: PageId, entries: &[(Vec<u8>, PageId)]) {
    init_inner(p, leftmost);
    for (k, c) in entries {
        debug_assert!(inner_fits(p, k));
        inner_insert(p, k, *c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<u8> {
        vec![0u8; 512]
    }

    fn build(entries: &[(&[u8], &[u8])]) -> Vec<u8> {
        let owned: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        let mut p = page();
        leaf_rebuild(&mut p, &owned, 0, 0);
        p
    }

    #[test]
    fn leaf_append_search_remove() {
        let mut p = page();
        init_leaf(&mut p, 7, 9);
        assert_eq!(link(&p), 7);
        assert_eq!(prev_link(&p), 9);
        for (i, k) in [b"xya", b"xyc", b"xye"].iter().enumerate() {
            assert_eq!(leaf_search(&p, *k), Err(i));
            assert!(leaf_append_fits(&p, *k, &[i as u8]).is_some());
            leaf_append(&mut p, *k, &[i as u8]);
        }
        assert_eq!(count(&p), 3);
        assert_eq!(leaf_search(&p, b"xyc"), Ok(1));
        assert_eq!(leaf_search(&p, b"xyb"), Err(1));
        assert_eq!(leaf_search(&p, b"xx"), Err(0));
        assert_eq!(leaf_search(&p, b"xz"), Err(3));
        let (shared, suffix) = leaf_suffix_parts(&p, 1);
        assert_eq!((shared, suffix), (2, &b"c"[..]), "front-coded tail only");
        assert_eq!(leaf_val(&p, 1), &[1]);
        assert_eq!(leaf_key(&p, 2), b"xye");
        leaf_remove_at(&mut p, 1);
        assert_eq!(count(&p), 2);
        assert_eq!(leaf_search(&p, b"xyc"), Err(1));
        assert_eq!(leaf_key(&p, 1), b"xye");
        assert_eq!(link(&p), 7, "interior removal keeps chain links");
        assert_eq!(prev_link(&p), 9);
    }

    #[test]
    fn leaf_value_replace() {
        let mut p = page();
        init_leaf(&mut p, 0, 0);
        leaf_append(&mut p, b"k", b"hello");
        assert!(leaf_replace_val_at(&mut p, 0, b"hi"));
        assert_eq!(leaf_val(&p, 0), b"hi");
        assert!(!leaf_replace_val_at(&mut p, 0, b"toolongnow"));
    }

    #[test]
    fn leaf_rebuild_front_codes() {
        let mut p = page();
        let entries = vec![
            (b"abc1".to_vec(), b"v1".to_vec()),
            (b"abc2".to_vec(), b"v2".to_vec()),
            (b"abd".to_vec(), b"v3".to_vec()),
        ];
        leaf_rebuild(&mut p, &entries, 0, 0);
        assert_eq!(leaf_suffix_parts(&p, 0), (0, &b"abc1"[..]), "restart = full key");
        assert_eq!(leaf_suffix_parts(&p, 1), (3, &b"2"[..]));
        assert_eq!(leaf_suffix_parts(&p, 2), (2, &b"d"[..]));
        assert_eq!(leaf_entries(&p), entries);
        assert_eq!(used_bytes(&p), leaf_build_size(&entries));
        let (stored, logical) = leaf_key_byte_stats(&p);
        assert_eq!(stored, 4 + 1 + 1);
        assert_eq!(logical, 4 + 4 + 3);
    }

    #[test]
    fn restart_points_recur_every_interval() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..3 * RESTART_INTERVAL)
            .map(|i| (format!("key{i:05}").into_bytes(), vec![]))
            .collect();
        let mut p = vec![0u8; 2048];
        leaf_rebuild(&mut p, &entries, 0, 0);
        for (i, (k, _)) in entries.iter().enumerate() {
            let (shared, _) = leaf_suffix_parts(&p, i);
            if i % RESTART_INTERVAL == 0 {
                assert_eq!(shared, 0, "slot {i} must be a restart");
            }
            assert_eq!(&leaf_key(&p, i), k, "slot {i}");
            assert_eq!(leaf_search(&p, k), Ok(i), "slot {i}");
        }
        // Appends continue the pattern without a rebuild.
        let k = b"key99999";
        leaf_append(&mut p, k, b"");
        let n = count(&p);
        assert_eq!(leaf_search(&p, k), Ok(n - 1));
        let (shared, _) = leaf_suffix_parts(&p, n - 1);
        assert_eq!(shared, if (n - 1).is_multiple_of(RESTART_INTERVAL) { 0 } else { 3 });
    }

    #[test]
    fn search_across_restart_boundaries() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..5 * RESTART_INTERVAL as u32)
            .map(|i| (format!("pfx/{:04}", i * 2).into_bytes(), vec![i as u8]))
            .collect();
        let mut p = vec![0u8; 4096];
        leaf_rebuild(&mut p, &entries, 0, 0);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(leaf_search(&p, k), Ok(i));
            assert_eq!(leaf_val(&p, i), v.as_slice());
            // Probe the gap right after each key: insertion point i + 1.
            let mut gap = k.clone();
            gap.push(b'!');
            assert_eq!(leaf_search(&p, &gap), Err(i + 1));
        }
        assert_eq!(leaf_search(&p, b"pfx/"), Err(0));
        assert_eq!(leaf_search(&p, b"pfx/9999"), Err(entries.len()));
    }

    #[test]
    fn interior_remove_reencodes_successor() {
        // Removing a key must re-expand its successor's suffix: with
        // `abc` gone, `abd`'s predecessor shares only `ab`… and restart
        // positions shift too.
        let p0 = build(&[(b"abc", b"1"), (b"abd", b"2"), (b"abe", b"3")]);
        let mut p = p0.clone();
        leaf_remove_at(&mut p, 0);
        assert_eq!(leaf_suffix_parts(&p, 0), (0, &b"abd"[..]));
        assert_eq!(leaf_entries(&p), vec![
            (b"abd".to_vec(), b"2".to_vec()),
            (b"abe".to_vec(), b"3".to_vec()),
        ]);
        // Tail removal is the in-place fast path.
        let mut p = p0.clone();
        let used_before = used_bytes(&p);
        leaf_remove_at(&mut p, 2);
        assert_eq!(count(&p), 2);
        assert_eq!(used_bytes(&p), used_before - 2, "only the slot is dropped");
    }

    #[test]
    fn inner_descend_picks_ranges() {
        let mut p = page();
        init_inner(&mut p, 10);
        inner_insert(&mut p, b"m", 20);
        inner_insert(&mut p, b"t", 30);
        assert_eq!(inner_descend(&p, b"a"), (10, None));
        assert_eq!(inner_descend(&p, b"m"), (20, Some(0)));
        assert_eq!(inner_descend(&p, b"p"), (20, Some(0)));
        assert_eq!(inner_descend(&p, b"t"), (30, Some(1)));
        assert_eq!(inner_descend(&p, b"z"), (30, Some(1)));
        inner_remove_at(&mut p, 0);
        assert_eq!(inner_descend(&p, b"p"), (10, None));
    }

    #[test]
    fn empty_key_and_value_edge_cases() {
        let mut p = page();
        init_leaf(&mut p, 0, 0);
        leaf_append(&mut p, b"", b"");
        assert_eq!(leaf_search(&p, b""), Ok(0));
        assert_eq!(leaf_suffix_parts(&p, 0), (0, &b""[..]));
        assert_eq!(leaf_val(&p, 0), b"");
    }
}
